//! The Table 2 cast — TriPoll (both engines), Pearce et al., Tom et al.
//! and TriC — must produce identical triangle counts on every dataset
//! stand-in, on the same simulated runtime.

use tripoll::baselines::{pearce_count, tom2d_count, tric_count};
use tripoll::gen::{self, DatasetSize};
use tripoll::graph::{build_dist_graph, EdgeList, Partition};
use tripoll::prelude::*;

fn strided(edges: &[(u64, u64)], rank: usize, nranks: usize) -> Vec<(u64, u64)> {
    edges.iter().skip(rank).step_by(nranks).copied().collect()
}

#[test]
fn four_systems_one_answer() {
    // 4 ranks: a perfect square, so the 2D baseline can participate.
    let nranks = 4;
    for ds in gen::table2_suite(DatasetSize::Tiny, 23) {
        let edges = ds.edges.clone();
        let list = EdgeList::from_vec(edges.iter().map(|&(u, v)| (u, v, ())).collect::<Vec<_>>());
        let counts = World::new(nranks).run(|comm| {
            let local_topo = strided(&edges, comm.rank(), comm.nranks());
            let local_list = list.stride_for_rank(comm.rank(), comm.nranks());

            let g = build_dist_graph(comm, local_list, |_| (), Partition::Hashed);
            let tripoll_po = triangle_count(comm, &g, EngineMode::PushOnly).0;
            let tripoll_pp = triangle_count(comm, &g, EngineMode::PushPull).0;
            let (pearce, _) = pearce_count(comm, local_topo.clone(), Partition::Hashed);
            let (tom, _) = tom2d_count(comm, local_topo.clone());
            let (tric, _) = tric_count(comm, local_topo);
            [tripoll_po, tripoll_pp, pearce, tom, tric]
        });
        for rank_counts in &counts {
            assert!(
                rank_counts.iter().all(|&c| c == rank_counts[0]),
                "{}: systems disagree: {rank_counts:?}",
                ds.name
            );
            assert!(rank_counts[0] > 0, "{}: no triangles found", ds.name);
        }
    }
}

#[test]
fn baselines_handle_pruned_away_graphs() {
    // A pure tree prunes to nothing under Pearce and has no triangles
    // anywhere.
    let edges: Vec<(u64, u64)> = (1..40u64).map(|v| (v / 2, v)).collect();
    let out = World::new(4).run(|comm| {
        let local = strided(&edges, comm.rank(), comm.nranks());
        let (p, _) = pearce_count(comm, local.clone(), Partition::Hashed);
        let (t, _) = tom2d_count(comm, local.clone());
        let (c, _) = tric_count(comm, local);
        (p, t, c)
    });
    for (p, t, c) in out {
        assert_eq!((p, t, c), (0, 0, 0));
    }
}

#[test]
fn pearce_sends_more_records_than_tripoll() {
    // The structural claim behind Table 2: Pearce's per-wedge queries
    // cost more application records than TriPoll's batched suffixes on a
    // wedge-heavy graph.
    let ds = gen::twitter_like(DatasetSize::Tiny, 31);
    let edges = ds.edges.clone();
    let list = EdgeList::from_vec(edges.iter().map(|&(u, v)| (u, v, ())).collect::<Vec<_>>());
    let nranks = 4;

    let tripoll_out = World::new(nranks).run_with_stats(|comm| {
        let local = list.stride_for_rank(comm.rank(), comm.nranks());
        let g = build_dist_graph(comm, local, |_| (), Partition::Hashed);
        let before = comm.stats();
        let (count, _) = triangle_count(comm, &g, EngineMode::PushPull);
        (count, comm.stats().delta(&before))
    });
    let pearce_out = World::new(nranks).run_with_stats(|comm| {
        let local = strided(&edges, comm.rank(), comm.nranks());
        pearce_count(comm, local, Partition::Hashed)
    });

    let tripoll_records: u64 = tripoll_out
        .results
        .iter()
        .map(|(_, d)| d.records_total())
        .sum();
    let pearce_records: u64 = pearce_out.total_stats().records_total();
    assert!(
        pearce_records > 2 * tripoll_records,
        "expected Pearce to send far more records: {pearce_records} vs {tripoll_records}"
    );
}
