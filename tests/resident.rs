//! Differential tests of the resident survey service.
//!
//! A [`ResidentGraph`] separates graph lifetime from survey lifetime:
//! storage is built (or snapshot-loaded) once and every query runs in
//! a fresh per-query world against the shared shards. Its contract is
//! strict: a resident query must be **observationally identical** to
//! the from-scratch `survey_*_with` path — same triangle counts, same
//! metadata seen by every callback, bit-identical merged
//! [`KernelStats`] — across engine × ranks {1,2,4,7} × rpn {1,2},
//! whether the resident graph came from ingest or from a
//! saved-then-loaded snapshot. Hostile snapshot bytes must always
//! surface as structured errors, never panics.

use std::cell::Cell;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

use tripoll::core::{
    kernel_stats_take, survey_push_only_with, survey_push_pull_with, EngineMode, KernelStats,
    Parallelism, ResidentGraph, ResidentQuery, SurveyConfig,
};
use tripoll::graph::snapshot::{encode_snapshot, SNAPSHOT_MAGIC};
use tripoll::graph::{build_dist_graph, EdgeList, Partition, SnapshotError};
use tripoll::ygm::hash::hash64;
use tripoll::ygm::{Comm, CommConfig, World};

/// One run's observable outcome: global triangle count, global
/// metadata checksum, and the globally summed kernel counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Outcome {
    count: u64,
    checksum: u64,
    stats: KernelStats,
}

/// Folds one triangle's ids and all six metadata values into a
/// commutative checksum contribution (same folding as tests/parallel.rs).
fn triangle_hash(tm: &tripoll::core::TriangleMeta<'_, String, String>) -> u64 {
    let mut h = hash64(tm.p) ^ hash64(tm.q).rotate_left(1) ^ hash64(tm.r).rotate_left(2);
    for (i, m) in [
        tm.meta_p, tm.meta_q, tm.meta_r, tm.meta_pq, tm.meta_pr, tm.meta_qr,
    ]
    .iter()
    .enumerate()
    {
        for b in m.bytes() {
            h = h.rotate_left(7) ^ hash64(u64::from(b) + i as u64);
        }
    }
    h & 0xffff_ffff
}

fn vm_of(v: u64) -> String {
    format!("v{v}")
}

/// The from-scratch reference: build the graph inside the world, run
/// `survey_*_with`, harvest globally-reduced outcome.
fn run_direct(
    list: &EdgeList<String>,
    nranks: usize,
    mode: EngineMode,
    config: SurveyConfig,
    comm_config: CommConfig,
) -> Outcome {
    let out = World::new(nranks).with_config(comm_config).run(|comm| {
        let local = list.stride_for_rank(comm.rank(), comm.nranks());
        let g = build_dist_graph(comm, local, vm_of, Partition::Hashed);
        let _ = kernel_stats_take();
        let count = Rc::new(Cell::new(0u64));
        let sum = Rc::new(Cell::new(0u64));
        let (c2, s2) = (count.clone(), sum.clone());
        let cb = move |_c: &Comm, tm: &tripoll::core::TriangleMeta<'_, String, String>| {
            c2.set(c2.get() + 1);
            s2.set(s2.get() + triangle_hash(tm));
        };
        match mode {
            EngineMode::PushOnly => survey_push_only_with(comm, &g, config, cb),
            EngineMode::PushPull => survey_push_pull_with(comm, &g, config, cb),
        };
        let ks = kernel_stats_take();
        Outcome {
            count: comm.all_reduce_sum(count.get()),
            checksum: comm.all_reduce_sum(sum.get()),
            stats: KernelStats {
                compares: comm.all_reduce_sum(ks.compares),
                candidates: comm.all_reduce_sum(ks.candidates),
                matches: comm.all_reduce_sum(ks.matches),
                scalar_runs: comm.all_reduce_sum(ks.scalar_runs),
                gallop_runs: comm.all_reduce_sum(ks.gallop_runs),
                blocked_runs: comm.all_reduce_sum(ks.blocked_runs),
                simd_runs: comm.all_reduce_sum(ks.simd_runs),
            },
        }
    });
    for o in &out {
        assert_eq!(o, &out[0], "direct path must agree on all ranks");
    }
    out[0]
}

/// The resident path: one query against shared storage; count and
/// checksum accumulate through a mutex (commutative sums), kernel
/// counters come from the per-rank [`tripoll::core::QueryOutcome`]s.
fn run_resident(resident: &ResidentGraph<String, String>, query: &ResidentQuery) -> Outcome {
    let acc = Arc::new(Mutex::new((0u64, 0u64)));
    let acc2 = acc.clone();
    let outcomes = resident.survey(query, move |_c, tm| {
        let mut a = acc2.lock().unwrap();
        a.0 += 1;
        a.1 += triangle_hash(tm);
    });
    let mut stats = KernelStats::default();
    for o in &outcomes {
        stats.compares += o.kernel.compares;
        stats.candidates += o.kernel.candidates;
        stats.matches += o.kernel.matches;
        stats.scalar_runs += o.kernel.scalar_runs;
        stats.gallop_runs += o.kernel.gallop_runs;
        stats.blocked_runs += o.kernel.blocked_runs;
        stats.simd_runs += o.kernel.simd_runs;
    }
    let (count, checksum) = *acc.lock().unwrap();
    Outcome {
        count,
        checksum,
        stats,
    }
}

fn labeled(edges: Vec<(u64, u64)>) -> EdgeList<String> {
    EdgeList::from_vec(
        edges
            .into_iter()
            .map(|(u, v)| (u, v, format!("e{}-{}", u.min(v), u.max(v))))
            .collect(),
    )
}

/// A deterministic dense-ish random graph (the general case).
fn random_graph() -> EdgeList<String> {
    let mut edges = Vec::new();
    for u in 0..32u64 {
        for v in (u + 1)..32 {
            if (u * 7919 + v * 104_729) % 4 == 0 {
                edges.push((u, v));
            }
        }
    }
    labeled(edges)
}

/// The shared-hub construction that forces Push-Pull's pull phase to
/// carry triangles.
fn hub_graph() -> EdgeList<String> {
    let k = 24u64;
    let (h1, h2) = (1000, 1001);
    let mut edges = vec![(h1, h2)];
    for sv in 0..k {
        edges.push((sv, h1));
        edges.push((sv, h2));
    }
    labeled(edges)
}

fn query(nranks: usize, mode: EngineMode, rpn: usize) -> ResidentQuery {
    ResidentQuery::new(nranks)
        .with_mode(mode)
        .with_threads(Parallelism::Threads(2))
        .with_comm(
            CommConfig {
                ranks_per_node: rpn,
                ..Default::default()
            }
            .pinned(),
        )
}

/// The acceptance matrix: resident surveys — direct **and** via a
/// saved-then-loaded snapshot — bit-identical to the from-scratch path
/// across engine × ranks {1,2,4,7} × rpn {1,2}.
#[test]
fn snapshot_differential_resident_matches_from_scratch() {
    for (gname, list) in [("random", random_graph()), ("hub", hub_graph())] {
        let resident = ResidentGraph::build(&list, vm_of, Partition::Hashed);
        let restored =
            ResidentGraph::<String, String>::from_snapshot_bytes(&resident.snapshot_bytes(3))
                .expect("own snapshot must load");
        for nranks in [1usize, 2, 4, 7] {
            for mode in [EngineMode::PushOnly, EngineMode::PushPull] {
                for rpn in [1usize, 2] {
                    let q = query(nranks, mode, rpn);
                    let reference = run_direct(&list, nranks, mode, q.config, q.comm.clone());
                    assert!(reference.count > 0, "{gname} must contain triangles");
                    let ctx = format!("{gname} {mode} n={nranks} rpn={rpn}");
                    assert_eq!(
                        run_resident(&resident, &q),
                        reference,
                        "resident != from-scratch [{ctx}]"
                    );
                    assert_eq!(
                        run_resident(&restored, &q),
                        reference,
                        "snapshot-restored != from-scratch [{ctx}]"
                    );
                }
            }
        }
    }
}

/// Repeat queries replay the cached Push-Pull dry-run plan; the
/// replayed query must be bit-identical and its dry-run phase silent.
#[test]
fn snapshot_differential_plan_replay_is_bit_identical() {
    let list = hub_graph();
    let resident = ResidentGraph::build(&list, vm_of, Partition::Hashed);
    let q = query(4, EngineMode::PushPull, 1);
    let first = run_resident(&resident, &q);
    // Replay twice — once with the same config, once with a different
    // engine configuration (the plan is config-independent).
    let again = run_resident(&resident, &q);
    assert_eq!(first, again, "replayed query diverged");
    let serial = query(4, EngineMode::PushPull, 1).with_threads(Parallelism::Serial);
    let reference = run_direct(
        &list,
        4,
        EngineMode::PushPull,
        serial.config,
        serial.comm.clone(),
    );
    assert_eq!(run_resident(&resident, &serial), reference);
    let replay_outcomes = resident.survey(&q, |_c, _tm| {});
    for o in &replay_outcomes {
        assert_eq!(o.report.phases[0].name, "dry-run");
        assert_eq!(
            o.report.phases[0].stats.records_total(),
            0,
            "replayed dry-run must move zero records"
        );
    }
}

/// Two *concurrent* queries with different thread counts and node
/// widths against one resident graph: each must match its own direct
/// reference — queries carry explicit settings and never share a
/// process-global env default.
#[test]
fn concurrent_queries_with_different_configs_do_not_interfere() {
    let list = random_graph();
    let resident = Arc::new(ResidentGraph::build(&list, vm_of, Partition::Hashed));
    let q_serial = ResidentQuery::new(2)
        .with_threads(Parallelism::Serial)
        .with_comm(CommConfig::default().pinned());
    let q_wide = query(4, EngineMode::PushOnly, 2).with_threads(Parallelism::Threads(4));
    assert!(
        !matches!(q_serial.config.threads, Parallelism::Env),
        "ResidentQuery::new must pin the thread axis"
    );
    assert!(q_serial.comm.overlap_flush.is_some(), "overlap pinned");

    let ref_serial = run_direct(
        &list,
        2,
        EngineMode::PushPull,
        q_serial.config,
        q_serial.comm.clone(),
    );
    let ref_wide = run_direct(
        &list,
        4,
        EngineMode::PushOnly,
        q_wide.config,
        q_wide.comm.clone(),
    );

    let mut joins = Vec::new();
    for _ in 0..2 {
        let (r, qs, qw) = (resident.clone(), q_serial.clone(), q_wide.clone());
        joins.push(std::thread::spawn(move || {
            (run_resident(&r, &qs), run_resident(&r, &qw))
        }));
    }
    for j in joins {
        let (serial, wide) = j.join().expect("query thread panicked");
        assert_eq!(
            serial, ref_serial,
            "serial query diverged under concurrency"
        );
        assert_eq!(wide, ref_wide, "wide query diverged under concurrency");
    }
}

/// Hostile-snapshot fuzz sweep: every strict prefix of a valid
/// snapshot, wrong magic, a future schema version, and a per-section
/// length overrun must all surface as structured [`SnapshotError`]s
/// from the resident loader — never a panic.
#[test]
fn snapshot_differential_hostile_bytes_never_panic() {
    let resident = ResidentGraph::build(&hub_graph(), vm_of, Partition::Hashed);
    let bytes = resident.snapshot_bytes(2);

    // Sanity: the intact bytes load.
    assert!(ResidentGraph::<String, String>::from_snapshot_bytes(&bytes).is_ok());

    // Every strict prefix.
    for cut in 0..bytes.len() {
        let err = ResidentGraph::<String, String>::from_snapshot_bytes(&bytes[..cut])
            .err()
            .unwrap_or_else(|| panic!("prefix of {cut} bytes loaded successfully"));
        let _ = format!("{err}"); // structured and printable
    }

    // Wrong magic.
    let mut wrong = bytes.clone();
    wrong[0] ^= 0xFF;
    assert!(matches!(
        ResidentGraph::<String, String>::from_snapshot_bytes(&wrong),
        Err(SnapshotError::BadMagic)
    ));

    // Future schema version (version varint follows the magic).
    let mut future = bytes.clone();
    future[SNAPSHOT_MAGIC.len()] = 0x7F;
    assert!(matches!(
        ResidentGraph::<String, String>::from_snapshot_bytes(&future),
        Err(SnapshotError::UnsupportedVersion(0x7F))
    ));

    // Per-section length overrun: regenerate with a single empty
    // section (header | byte_len varint | body), strip the trailing
    // byte_len + body, and claim a section far past the buffer end.
    let one = encode_snapshot::<String, String>(&[], Partition::Hashed, 1);
    let mut evil = one[..one.len() - 2].to_vec();
    evil.extend_from_slice(&[0xFF, 0xFF, 0xFF, 0x7F]);
    assert!(matches!(
        ResidentGraph::<String, String>::from_snapshot_bytes(&evil),
        Err(SnapshotError::SectionOverrun { .. })
    ));

    // Truncated envelopes are covered by tripoll-ygm's structural abort
    // suite; here the loader-level guarantee is: no byte string reaches
    // a panic. Random-ish mutations of every byte:
    for i in 0..bytes.len() {
        let mut m = bytes.clone();
        m[i] = m[i].wrapping_add(1 + (i as u8 % 7));
        // Either still decodable (mutation hit metadata) or a
        // structured error — both fine; a panic fails the test.
        let _ = ResidentGraph::<String, String>::from_snapshot_bytes(&m);
    }
}
