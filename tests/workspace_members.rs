//! Guards the tier-1 coverage contract: root `cargo test` covers the
//! whole workspace because `default-members` mirrors `members`. A
//! crate added to one list but not the other would silently fall out
//! of the tier-1 command while `--workspace` CI stayed green — this
//! test turns that drift into a failure.

fn toml_list(manifest: &str, key: &str) -> Vec<String> {
    let start = manifest
        .find(&format!("{key} = ["))
        .unwrap_or_else(|| panic!("{key} list not found in root Cargo.toml"));
    let rest = &manifest[start..];
    let end = rest.find(']').expect("unterminated list");
    rest[..end]
        .lines()
        .filter_map(|l| {
            let l = l.trim().trim_end_matches(',');
            l.strip_prefix('"')?.strip_suffix('"').map(str::to_owned)
        })
        .collect()
}

#[test]
fn default_members_mirror_members() {
    let manifest = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/Cargo.toml"))
        .expect("read root Cargo.toml");
    let members = toml_list(&manifest, "members");
    let mut defaults = toml_list(&manifest, "default-members");
    assert!(!members.is_empty());
    // The root package itself ("." in default-members) is an implicit
    // workspace member, not listed under `members`.
    defaults.retain(|m| m != ".");
    assert_eq!(
        members, defaults,
        "default-members must mirror members (plus \".\"), or root `cargo test` \
         silently loses tier-1 coverage of the missing crate"
    );
}
