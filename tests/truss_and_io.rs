//! End-to-end: distributed edge supports feed the k-truss application,
//! and survey inputs round-trip through the file format.

use tripoll::analysis::{self, truss_decomposition};
use tripoll::gen::{self, DatasetSize};
use tripoll::graph::{build_dist_graph, io, Csr, EdgeList, Partition};
use tripoll::prelude::*;
use tripoll_ygm::hash::FastMap;

#[test]
fn distributed_edge_supports_match_serial_truss_inputs() {
    let ds = gen::livejournal_like(DatasetSize::Tiny, 8);
    let csr = Csr::from_edges(&ds.edges);

    // Serial supports: triangles per edge via the oracle enumerator.
    let mut serial: FastMap<(u64, u64), u64> = FastMap::default();
    analysis::enumerate_triangles(&csr, |p, q, r| {
        for (a, b) in [(p, q), (p, r), (q, r)] {
            *serial.entry((a.min(b), a.max(b))).or_insert(0) += 1;
        }
    });

    let list = EdgeList::from_vec(
        ds.edges
            .iter()
            .map(|&(u, v)| (u, v, ()))
            .collect::<Vec<_>>(),
    );
    let out = World::new(4).run(|comm| {
        let local = list.stride_for_rank(comm.rank(), comm.nranks());
        let g = build_dist_graph(comm, local, |_| (), Partition::Hashed);
        edge_triangle_counts(comm, &g, EngineMode::PushPull).0
    });
    for gathered in out {
        let distributed: FastMap<(u64, u64), u64> = gathered.into_iter().collect();
        assert_eq!(distributed, serial);
    }
}

#[test]
fn truss_decomposition_on_distributed_standin() {
    // The §1 pipeline: survey the graph distributed, decompose serially.
    let ds = gen::webcc12_like(DatasetSize::Tiny, 6);
    let csr = Csr::from_edges(&ds.edges);
    let d = truss_decomposition(&csr);
    assert!(d.max_k >= 4, "web stand-in should have dense trusses");
    // k-truss edge sets are nested.
    let mut prev = usize::MAX;
    for k in 3..=d.max_k {
        let size = d.ktruss_edges(k).len();
        assert!(size <= prev, "k-truss sizes must be non-increasing");
        assert!(size > 0, "k={k} within max_k must be non-empty");
        prev = size;
    }
    // Every edge of the k-truss has support >= k-2 *within the truss*.
    let top = d.ktruss_edges(d.max_k);
    let sub = Csr::from_edges(&top);
    let mut support: FastMap<(u64, u64), u64> = FastMap::default();
    analysis::enumerate_triangles(&sub, |p, q, r| {
        for (a, b) in [(p, q), (p, r), (q, r)] {
            *support.entry((a.min(b), a.max(b))).or_insert(0) += 1;
        }
    });
    for &(u, v) in &top {
        assert!(
            support.get(&(u, v)).copied().unwrap_or(0) >= (d.max_k - 2) as u64,
            "edge ({u},{v}) under-supported in the {}-truss",
            d.max_k
        );
    }
}

#[test]
fn survey_inputs_roundtrip_through_files() {
    // Write the Reddit stand-in to disk, read it back, and get the exact
    // same closure-time distribution.
    let edges = gen::reddit_like(DatasetSize::Tiny, 12);
    let dir = std::env::temp_dir().join("tripoll-roundtrip-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("reddit.tsv");
    io::write_edge_file(&path, &edges).unwrap();

    let reread = io::read_edge_file_with_attr(&path).unwrap();
    let relist = EdgeList::from_vec(reread).canonicalize_by(|&t| t);
    assert_eq!(relist.as_slice(), edges.as_slice());

    let run = |list: &EdgeList<u64>| {
        let out = World::new(2).run(|comm| {
            let local = list.stride_for_rank(comm.rank(), comm.nranks());
            let g: DistGraph<(), u64> = build_dist_graph(comm, local, |_| (), Partition::Hashed);
            closure_time_survey(comm, &g, EngineMode::PushPull, |&t| t).0
        });
        out.into_iter().next().unwrap()
    };
    assert_eq!(run(&edges), run(&relist));
    std::fs::remove_dir_all(&dir).ok();
}
