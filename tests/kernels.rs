//! Differential tests of the intersection-kernel layer.
//!
//! The kernel ([`IntersectKernel`]) is the third engine dimension next
//! to [`BatchLayout`] and [`DecodePath`], and its contract is strict:
//! every kernel emits the **identical match sequence** — same pairs,
//! same callback order — as the scalar merge oracle, on every layout,
//! decode path, engine and rank count. Two layers of evidence:
//!
//! * **Survey matrix** — full kernel × layout × decode × engine ×
//!   {1,2,4,7}-rank surveys on string-metadata graphs: triangle
//!   counts, metadata checksums and the kernels' deterministic match
//!   counters must all agree with the `MergeScalar` oracle run.
//! * **Kernel fuzz** — the kernels run directly (no engines) over
//!   random sorted lists and adversarial shapes (empty sides,
//!   all-equal keys, hub-scale 1000:1 skew, near-miss off-by-one
//!   keys), on slices, on columnar frames ([`intersect_col`], which
//!   exercises the `ColKeys` block decode) and on streams, asserting
//!   the exact ordered match set of [`merge_path`].

use std::cell::Cell;
use std::rc::Rc;

use proptest::prelude::*;
use tripoll::core::{
    intersect_col, intersect_slices, intersect_stream, kernel_stats, kernel_stats_take, merge_path,
    simd_backend, simd_force_swar, survey_push_only_with, survey_push_pull_with, BatchLayout,
    DecodePath, EngineMode, IntersectKernel, SimdBackend, SurveyConfig,
};
use tripoll::graph::{build_dist_graph, EdgeList, OrderKey, Partition};
use tripoll::ygm::hash::hash64;
use tripoll::ygm::wire::{to_bytes, ColBatch, ColCursor, WireReader};
use tripoll::ygm::World;

const KERNELS: [IntersectKernel; 5] = [
    IntersectKernel::MergeScalar,
    IntersectKernel::Gallop,
    IntersectKernel::BlockedMerge,
    IntersectKernel::Simd,
    IntersectKernel::Auto,
];

const LAYOUT_DECODE: [(BatchLayout, DecodePath); 4] = [
    (BatchLayout::Columnar, DecodePath::Cursor),
    (BatchLayout::Columnar, DecodePath::Owned),
    (BatchLayout::Interleaved, DecodePath::Cursor),
    (BatchLayout::Interleaved, DecodePath::Owned),
];

// ------------------------------------------------------------------
// Survey-level matrix
// ------------------------------------------------------------------

/// One run's observable outcome per rank: global triangle count,
/// global metadata checksum, and the global kernel counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Outcome {
    count: u64,
    checksum: u64,
    compares: u64,
    candidates: u64,
    matches: u64,
}

/// Runs one survey with string metadata, folding all six metadata
/// values of every triangle into the checksum and harvesting each
/// rank's kernel counters after the run.
fn run_survey(
    list: &EdgeList<String>,
    nranks: usize,
    mode: EngineMode,
    config: SurveyConfig,
) -> Vec<Outcome> {
    World::new(nranks).run(|comm| {
        let local = list.stride_for_rank(comm.rank(), comm.nranks());
        let g = build_dist_graph(comm, local, |v| format!("v{v}"), Partition::Hashed);
        let _ = kernel_stats_take(); // fresh counters for this rank
        let count = Rc::new(Cell::new(0u64));
        let sum = Rc::new(Cell::new(0u64));
        let (c2, s2) = (count.clone(), sum.clone());
        let cb = move |_c: &tripoll::ygm::Comm,
                       tm: &tripoll::core::TriangleMeta<'_, String, String>| {
            c2.set(c2.get() + 1);
            let mut h = hash64(tm.p) ^ hash64(tm.q).rotate_left(1) ^ hash64(tm.r).rotate_left(2);
            for (i, m) in [
                tm.meta_p, tm.meta_q, tm.meta_r, tm.meta_pq, tm.meta_pr, tm.meta_qr,
            ]
            .iter()
            .enumerate()
            {
                for b in m.bytes() {
                    h = h.rotate_left(7) ^ hash64(u64::from(b) + i as u64);
                }
            }
            s2.set(s2.get() + (h & 0xffff_ffff));
        };
        match mode {
            EngineMode::PushOnly => survey_push_only_with(comm, &g, config, cb),
            EngineMode::PushPull => survey_push_pull_with(comm, &g, config, cb),
        };
        let ks = kernel_stats_take();
        Outcome {
            count: comm.all_reduce_sum(count.get()),
            checksum: comm.all_reduce_sum(sum.get()),
            compares: comm.all_reduce_sum(ks.compares),
            candidates: comm.all_reduce_sum(ks.candidates),
            matches: comm.all_reduce_sum(ks.matches),
        }
    })
}

fn labeled(edges: Vec<(u64, u64)>) -> EdgeList<String> {
    EdgeList::from_vec(
        edges
            .into_iter()
            .map(|(u, v)| (u, v, format!("e{}-{}", u.min(v), u.max(v))))
            .collect(),
    )
}

/// A deterministic dense-ish random graph (the general case).
fn random_graph() -> EdgeList<String> {
    let mut edges = Vec::new();
    for u in 0..32u64 {
        for v in (u + 1)..32 {
            if (u * 7919 + v * 104_729) % 4 == 0 {
                edges.push((u, v));
            }
        }
    }
    labeled(edges)
}

/// The shared-hub construction that forces the Push-Pull pull phase to
/// carry triangles (the re-walked `ColView`/`SeqView` kernel sites)
/// and yields skewed intersections for the heuristic.
fn hub_graph() -> EdgeList<String> {
    let k = 24u64;
    let (h1, h2) = (1000, 1001);
    let mut edges = vec![(h1, h2)];
    for sv in 0..k {
        edges.push((sv, h1));
        edges.push((sv, h2));
    }
    labeled(edges)
}

/// The full matrix: kernel × layout × decode × engine × {1,2,4,7}
/// ranks, with `MergeScalar` on each layout/decode cell as the oracle.
/// Counts, checksums and the kernels' match counters must agree
/// everywhere.
#[test]
fn kernel_matrix_agrees_with_the_scalar_oracle() {
    for (gname, list) in [("random", random_graph()), ("hub", hub_graph())] {
        for nranks in [1usize, 2, 4, 7] {
            for mode in [EngineMode::PushOnly, EngineMode::PushPull] {
                let oracle = run_survey(
                    &list,
                    nranks,
                    mode,
                    SurveyConfig::default().with_kernel(IntersectKernel::MergeScalar),
                );
                assert!(oracle[0].count > 0, "{gname} must contain triangles");
                for (layout, decode) in LAYOUT_DECODE {
                    for kernel in KERNELS {
                        let config = SurveyConfig {
                            layout,
                            decode,
                            kernel,
                            ..SurveyConfig::default()
                        };
                        let runs = run_survey(&list, nranks, mode, config);
                        for (rank, (o, r)) in runs.iter().zip(oracle.iter()).enumerate() {
                            let ctx =
                                format!("{gname} {mode} n={nranks} {layout} {decode:?} {kernel} rank {rank}");
                            assert_eq!(o.count, r.count, "triangle count [{ctx}]");
                            assert_eq!(o.checksum, r.checksum, "metadata checksum [{ctx}]");
                            // Kernel-layer cross-check: every kernel
                            // emits exactly the oracle's match set, and
                            // each match is one triangle callback.
                            assert_eq!(o.matches, r.matches, "kernel match counter [{ctx}]");
                            assert_eq!(o.matches, o.count, "matches are triangles [{ctx}]");
                        }
                    }
                }
            }
        }
    }
}

/// The kernel counters are deterministic: the same configuration on
/// the same graph yields bit-identical tallies, run to run.
#[test]
fn kernel_counters_are_deterministic() {
    let list = hub_graph();
    for kernel in KERNELS {
        let config = SurveyConfig::default().with_kernel(kernel);
        let a = run_survey(&list, 4, EngineMode::PushPull, config);
        let b = run_survey(&list, 4, EngineMode::PushPull, config);
        assert_eq!(a, b, "kernel {kernel} counters must be reproducible");
        assert!(
            a[0].compares > 0 && a[0].candidates > 0,
            "kernel {kernel} ran"
        );
    }
}

// ------------------------------------------------------------------
// Kernel-level fuzz harness (no engines)
// ------------------------------------------------------------------

/// Builds `<+`-sorted entries from raw values: degree = value (so key
/// order follows value order, with hash ties only between duplicates)
/// and the entry's original position as payload.
fn entries(vals: &[u64]) -> Vec<(u64, OrderKey)> {
    let mut out: Vec<(u64, OrderKey)> = vals.iter().map(|&v| (v, OrderKey::new(v, v))).collect();
    out.sort_by_key(|e| e.1);
    out
}

/// Ordered match list of the `merge_path` oracle over two entry lists.
fn oracle_matches(left: &[(u64, OrderKey)], right: &[(u64, OrderKey)]) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    merge_path(left, right, |l| l.1, |r| r.1, |l, r| out.push((l.0, r.0)));
    out
}

/// Asserts every kernel reproduces the oracle's ordered match list on
/// all three kernel entry points: slices, the columnar frame walk
/// (which exercises the `ColKeys` block decode under `BlockedMerge`),
/// and the generic stream.
fn assert_kernels_match(left_vals: &[u64], right_vals: &[u64], ctx: &str) {
    let left = entries(left_vals);
    let right = entries(right_vals);
    let oracle = oracle_matches(&left, &right);

    // Columnar frame of the left side: metadata is the left position,
    // so ColKey.idx mapping is verified on every match.
    let frame = to_bytes(&ColBatch::<u64>(
        left.iter()
            .enumerate()
            .map(|(i, e)| (e.0, e.1.degree, i as u64))
            .collect(),
    ));

    for kernel in KERNELS {
        // Slices.
        let mut got = Vec::new();
        intersect_slices(
            kernel,
            &left,
            &right,
            |l| l.1,
            |r| r.1,
            |l, r| {
                got.push((l.0, r.0));
            },
        );
        assert_eq!(got, oracle, "slices, kernel {kernel} [{ctx}]");

        // Columnar frame.
        let mut r = WireReader::new(&frame);
        let ColCursor {
            mut keys,
            mut metas,
        }: ColCursor<'_, u64> = ColCursor::begin(&mut r).expect("frame");
        let mut got = Vec::new();
        intersect_col(
            kernel,
            &mut keys,
            &right,
            |e| e.1,
            |k, e| {
                assert_eq!(metas.get(k.idx)?, k.idx as u64, "meta idx mapping [{ctx}]");
                got.push((k.v, e.0));
                Ok(())
            },
        )
        .expect("columnar intersect");
        assert_eq!(got, oracle, "columnar, kernel {kernel} [{ctx}]");

        // Stream.
        let mut it = left.iter();
        let mut got = Vec::new();
        intersect_stream(
            kernel,
            left.len(),
            || it.next().map(|l| Ok::<_, ()>(*l)),
            &right,
            |l| l.1,
            |r| r.1,
            |l, r| {
                got.push((l.0, r.0));
                Ok(())
            },
        )
        .expect("stream intersect");
        assert_eq!(got, oracle, "stream, kernel {kernel} [{ctx}]");
    }
}

#[test]
fn adversarial_shapes_match_the_oracle() {
    // Empty sides.
    assert_kernels_match(&[], &[], "both empty");
    assert_kernels_match(&[1, 2, 3], &[], "right empty");
    assert_kernels_match(&[], &[1, 2, 3], "left empty");
    // All-equal keys (duplicate keys on one or both sides).
    assert_kernels_match(&[7; 40], &[7; 40], "all equal both");
    assert_kernels_match(&[7; 100], &[7], "all equal, singleton right");
    assert_kernels_match(&[7], &[7; 100], "all equal, singleton left");
    // Hub-scale 1000:1 skew with sprinkled matches.
    let big: Vec<u64> = (0..16_000u64).collect();
    let small: Vec<u64> = (0..16u64).map(|i| i * 1000 + 1).collect();
    assert_kernels_match(&small, &big, "1000:1 small left");
    assert_kernels_match(&big, &small, "1000:1 small right");
    // Near-miss off-by-one keys: interleaved, zero matches.
    let evens: Vec<u64> = (0..200u64).map(|i| i * 2).collect();
    let odds: Vec<u64> = (0..200u64).map(|i| i * 2 + 1).collect();
    assert_kernels_match(&evens, &odds, "off-by-one disjoint");
    // Off-by-one with a single aligned key in the middle.
    let mut nearly = odds.clone();
    nearly[100] = 200;
    assert_kernels_match(&evens, &nearly, "off-by-one single match");
    // Block-boundary shapes around KEY_BLOCK_LEN (32).
    for n in [31u64, 32, 33, 63, 64, 65] {
        let l: Vec<u64> = (0..n).collect();
        let r: Vec<u64> = (0..n).filter(|v| v % 3 == 0).collect();
        assert_kernels_match(&l, &r, &format!("block boundary n={n}"));
    }
}

/// At hub-scale skew the gallop kernel must do strictly fewer compares
/// than the scalar merge — the deterministic inequality the Auto
/// heuristic banks on (and the bench gate tracks).
#[test]
fn gallop_beats_scalar_compares_at_heavy_skew() {
    let small = entries(&(0..16u64).map(|i| i * 1000 + 1).collect::<Vec<_>>());
    let big = entries(&(0..16_000u64).collect::<Vec<_>>());
    let tally = |kernel| {
        let _ = kernel_stats_take();
        intersect_slices(kernel, &small, &big, |l| l.1, |r| r.1, |_, _| {});
        kernel_stats_take().compares
    };
    let scalar = tally(IntersectKernel::MergeScalar);
    let gallop = tally(IntersectKernel::Gallop);
    let auto = tally(IntersectKernel::Auto);
    assert!(
        gallop * 10 < scalar,
        "gallop ({gallop}) must be far under scalar ({scalar}) at 1000:1"
    );
    assert_eq!(auto, gallop, "Auto resolves to Gallop at this skew");
    // And the dispatch counters say so.
    let _ = kernel_stats_take();
    intersect_slices(
        IntersectKernel::Auto,
        &small,
        &big,
        |l| l.1,
        |r| r.1,
        |_, _| {},
    );
    let s = kernel_stats();
    assert_eq!((s.gallop_runs, s.scalar_runs, s.blocked_runs), (1, 0, 0));
}

/// Serializes every test that reads or writes the process-global
/// forced-SWAR flag: without it, one test's guard drop could un-force
/// the flag while another test is mid-differential (silently running
/// its "forced" pass on the native backend), and backend-restore
/// assertions could observe the other test's state.
static SWAR_FLAG_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Holds [`SWAR_FLAG_LOCK`] for the test's whole body and restores the
/// SIMD backend override when dropped, so a failing assertion cannot
/// leave the forced-SWAR flag set for later tests.
struct SwarTestLock(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);
impl SwarTestLock {
    fn acquire() -> Self {
        // A panic in the other serialized test poisons the lock; the
        // flag is restored by its guard's Drop either way, so the
        // poison itself carries no state worth failing over.
        let guard = SWAR_FLAG_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        SwarTestLock(guard)
    }
}

/// Forces the SWAR backend for a scope (the lock must already be held
/// via [`SwarTestLock`]).
struct SwarGuard;
impl SwarGuard {
    fn force() -> Self {
        simd_force_swar(true);
        assert_eq!(simd_backend(), SimdBackend::Swar, "force knob must stick");
        SwarGuard
    }
}
impl Drop for SwarGuard {
    fn drop(&mut self) {
        simd_force_swar(false);
    }
}

/// The SIMD kernel must behave identically with the intrinsics
/// disabled: same ordered match sets, and bit-identical deterministic
/// `KernelStats` whether AVX2/SSE2 ran or the portable SWAR fallback
/// did. (The force knob is process-global, but it is safe against the
/// concurrently running tests in this binary precisely because of the
/// property asserted here: backends change how a probe group is
/// compared, never what is counted or matched.)
#[test]
fn forced_swar_matches_native_backend() {
    let _lock = SwarTestLock::acquire();
    let native = simd_backend();
    // Deterministic counter capture of one Simd run over all three
    // entry points, at a mixed-skew shape that exercises group skips,
    // matches and misses.
    let run_all = |ctx: &str| -> tripoll::core::KernelStats {
        let left: Vec<u64> = (0..400u64).map(|i| i * 3).collect();
        let right: Vec<u64> = (0..900u64).map(|i| i * 2).collect();
        let _ = kernel_stats_take();
        assert_kernels_match(&left, &right, ctx);
        assert_kernels_match(&right, &left, ctx);
        assert_kernels_match(&[7; 100], &[7; 40], ctx);
        kernel_stats_take()
    };
    let with_native = run_all("native backend");
    let with_swar = {
        let _guard = SwarGuard::force();
        run_all("forced swar")
    };
    assert_eq!(
        with_native, with_swar,
        "KernelStats must not depend on the SIMD backend (native = {native})"
    );
    assert!(with_native.simd_runs > 0, "the Simd kernel must have run");
    assert_eq!(simd_backend(), native, "guard must restore the backend");
}

/// Survey-level forced-SWAR differential: a full Simd-kernel survey
/// (both engines) must produce the oracle's counts, checksums and
/// match counters with the intrinsics disabled.
#[test]
fn forced_swar_surveys_agree_with_the_oracle() {
    let _lock = SwarTestLock::acquire();
    let list = hub_graph();
    for mode in [EngineMode::PushOnly, EngineMode::PushPull] {
        let oracle = run_survey(
            &list,
            4,
            mode,
            SurveyConfig::default().with_kernel(IntersectKernel::MergeScalar),
        );
        let native = run_survey(
            &list,
            4,
            mode,
            SurveyConfig::default().with_kernel(IntersectKernel::Simd),
        );
        let swar = {
            let _guard = SwarGuard::force();
            run_survey(
                &list,
                4,
                mode,
                SurveyConfig::default().with_kernel(IntersectKernel::Simd),
            )
        };
        assert_eq!(native, swar, "{mode}: backend must not change any outcome");
        for (rank, (n, o)) in native.iter().zip(oracle.iter()).enumerate() {
            assert_eq!(n.count, o.count, "{mode} rank {rank} count");
            assert_eq!(n.checksum, o.checksum, "{mode} rank {rank} checksum");
            assert_eq!(n.matches, o.matches, "{mode} rank {rank} matches");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// Random sorted `u64` lists with random skew: gallop and blocked
    /// must emit the exact ordered match set of `merge_path` on every
    /// kernel entry point.
    #[test]
    fn kernels_emit_identical_matches_on_random_lists(
        lv in proptest::collection::vec(0u64..800, 0..160),
        rv in proptest::collection::vec(0u64..800, 0..160),
        skew in 0usize..3,
    ) {
        // Skew 1/2 shrink one side hard so the Auto heuristic flips.
        let (lv, rv): (Vec<u64>, Vec<u64>) = match skew {
            1 => (lv.into_iter().take(3).collect(), rv),
            2 => (lv, rv.into_iter().take(3).collect()),
            _ => (lv, rv),
        };
        assert_kernels_match(&lv, &rv, &format!("proptest skew={skew}"));
    }
}
