//! Differential tests of the receive decode paths.
//!
//! The cursor (zero-copy) handlers must be observationally identical to
//! the owned-decode reference: same triangle counts, same metadata seen
//! by every callback, same send-side traffic — on both engines, across
//! rank counts, on the Table 4 topologies and on random graphs with
//! string metadata (which exercises the lazy in-place string decode).

use std::cell::Cell;
use std::rc::Rc;

use proptest::prelude::*;
use tripoll::core::{
    survey_push_only_with, survey_push_pull_with, DecodePath, EngineMode, SurveyReport,
};
use tripoll::gen::table4_suite;
use tripoll::graph::{build_dist_graph, EdgeList, Partition};
use tripoll::prelude::DatasetSize;
use tripoll::ygm::hash::hash64;
use tripoll::ygm::World;

/// The deterministic fingerprint of one survey run: everything both
/// decode paths must agree on. Send-side traffic is compared per
/// phase; `handlers_run` and `work` are receive-side counters whose
/// *phase* attribution depends on barrier timing (a rank spinning in
/// the previous phase's quiescence barrier may execute early-arriving
/// records there), so only their survey-wide totals are compared.
/// (Receive-side `records_borrowed` / `bytes_decoded_in_place` are
/// *expected* to differ — that is the point of the comparison.)
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    phases: Vec<(&'static str, u64, u64, u64, u64)>,
    handlers_total: u64,
    work_total: u64,
    pulled: u64,
    grants: u64,
}

fn fingerprint(r: &SurveyReport) -> Fingerprint {
    Fingerprint {
        phases: r
            .phases
            .iter()
            .map(|p| {
                (
                    p.name,
                    p.stats.records_remote,
                    p.stats.records_local,
                    p.stats.bytes_remote,
                    p.stats.bytes_local,
                )
            })
            .collect(),
        handlers_total: r.phases.iter().map(|p| p.stats.handlers_run).sum(),
        work_total: r.phases.iter().map(|p| p.stats.work).sum(),
        pulled: r.pulled_vertices,
        grants: r.pull_grants,
    }
}

/// Runs one survey with string metadata and returns, per rank:
/// (global triangle count, global metadata checksum, fingerprint,
/// records decoded in place). The checksum folds all six metadata
/// values of every triangle, so any divergence in what a callback
/// observes — not just how many times it ran — fails the comparison.
fn run_survey(
    list: &EdgeList<String>,
    nranks: usize,
    mode: EngineMode,
    decode: DecodePath,
) -> Vec<(u64, u64, Fingerprint, u64)> {
    World::new(nranks).run(|comm| {
        let local = list.stride_for_rank(comm.rank(), comm.nranks());
        let g = build_dist_graph(comm, local, |v| format!("v{v}"), Partition::Hashed);
        let count = Rc::new(Cell::new(0u64));
        let sum = Rc::new(Cell::new(0u64));
        let (c2, s2) = (count.clone(), sum.clone());
        let cb = move |_c: &tripoll::ygm::Comm,
                       tm: &tripoll::core::TriangleMeta<'_, String, String>| {
            c2.set(c2.get() + 1);
            let mut h = hash64(tm.p) ^ hash64(tm.q).rotate_left(1) ^ hash64(tm.r).rotate_left(2);
            for (i, m) in [
                tm.meta_p, tm.meta_q, tm.meta_r, tm.meta_pq, tm.meta_pr, tm.meta_qr,
            ]
            .iter()
            .enumerate()
            {
                for b in m.bytes() {
                    h = h.rotate_left(7) ^ hash64(u64::from(b) + i as u64);
                }
            }
            // Masked so the cross-rank all_reduce_sum cannot overflow.
            s2.set(s2.get() + (h & 0xffff_ffff));
        };
        let report = match mode {
            EngineMode::PushOnly => survey_push_only_with(comm, &g, decode, cb),
            EngineMode::PushPull => survey_push_pull_with(comm, &g, decode, cb),
        };
        let borrowed = report
            .phases
            .iter()
            .map(|p| p.stats.records_borrowed)
            .sum::<u64>();
        (
            comm.all_reduce_sum(count.get()),
            comm.all_reduce_sum(sum.get()),
            fingerprint(&report),
            comm.all_reduce_sum(borrowed),
        )
    })
}

fn labeled(edges: Vec<(u64, u64)>) -> EdgeList<String> {
    EdgeList::from_vec(
        edges
            .into_iter()
            .map(|(u, v)| (u, v, format!("e{}-{}", u.min(v), u.max(v))))
            .collect(),
    )
}

/// Asserts cursor ≡ owned for one graph at one configuration.
fn assert_paths_agree(list: &EdgeList<String>, nranks: usize, mode: EngineMode, ctx: &str) {
    let owned = run_survey(list, nranks, mode, DecodePath::Owned);
    let cursor = run_survey(list, nranks, mode, DecodePath::Cursor);
    for (rank, (o, c)) in owned.iter().zip(cursor.iter()).enumerate() {
        assert_eq!(o.0, c.0, "triangle count [{ctx}, rank {rank}]");
        assert_eq!(o.1, c.1, "metadata checksum [{ctx}, rank {rank}]");
        assert_eq!(o.2, c.2, "send-side fingerprint [{ctx}, rank {rank}]");
        assert_eq!(o.3, 0, "owned path must not decode in place [{ctx}]");
        // Any triangle requires at least one received wedge batch or
        // pull delivery, all of which the cursor path decodes in place.
        if c.0 > 0 {
            assert!(c.3 > 0, "cursor path must decode in place [{ctx}]");
        }
    }
}

#[test]
fn tab4_topologies_identical_across_decode_paths() {
    // The Table 4 suite at tiny scale, both engines, 1/2/4/7 ranks.
    for ds in table4_suite(DatasetSize::Tiny, 42) {
        let list = labeled(ds.edges.clone());
        for nranks in [1usize, 2, 4, 7] {
            for mode in [EngineMode::PushOnly, EngineMode::PushPull] {
                let ctx = format!("{} {mode} n={nranks}", ds.name);
                assert_paths_agree(&list, nranks, mode, &ctx);
            }
        }
    }
}

#[test]
fn hub_pull_topology_identical_across_decode_paths() {
    // Shared-hub construction that forces the pull phase to carry the
    // triangles, so the SeqView re-walk path is differentially tested.
    let k = 24u64;
    let (h1, h2) = (1000, 1001);
    let mut edges = vec![(h1, h2)];
    for sv in 0..k {
        edges.push((sv, h1));
        edges.push((sv, h2));
    }
    let list = labeled(edges);
    for nranks in [1usize, 2, 4, 7] {
        let owned = run_survey(&list, nranks, EngineMode::PushPull, DecodePath::Owned);
        assert_eq!(owned[0].0, k);
        assert_paths_agree(
            &list,
            nranks,
            EngineMode::PushPull,
            &format!("hub n={nranks}"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn random_string_metadata_graphs_identical_across_decode_paths(
        edges in proptest::collection::vec((0u64..40, 0u64..40), 1..120),
        nranks in 1usize..5,
        push_pull in any::<bool>(),
    ) {
        let list = labeled(edges);
        let mode = if push_pull { EngineMode::PushPull } else { EngineMode::PushOnly };
        let owned = run_survey(&list, nranks, mode, DecodePath::Owned);
        let cursor = run_survey(&list, nranks, mode, DecodePath::Cursor);
        for (o, c) in owned.iter().zip(cursor.iter()) {
            prop_assert_eq!(o.0, c.0);
            prop_assert_eq!(o.1, c.1);
            prop_assert_eq!(&o.2, &c.2);
        }
    }
}
