//! Differential tests of the wedge-batch wire layouts and receive
//! decode paths.
//!
//! The engine configuration is a 2×2 matrix — [`BatchLayout`]
//! (columnar vs interleaved wire format) × [`DecodePath`] (in-place
//! cursor vs materializing owned decode) — and every cell must be
//! observationally identical: same triangle counts, same metadata seen
//! by every callback, on both engines, across rank counts, on the
//! Table 4 topologies and on random graphs with string metadata (which
//! exercises the lazy in-place string decode). Within one layout the
//! two decode paths must additionally produce identical send-side
//! traffic fingerprints (the bytes are the same bytes); across layouts
//! the byte counts legitimately differ — that is the point of the
//! columnar format — so only the survey outcome is compared.

use std::cell::Cell;
use std::rc::Rc;

use proptest::prelude::*;
use tripoll::core::{
    survey_push_only_with, survey_push_pull_with, BatchLayout, DecodePath, EngineMode,
    IntersectKernel, Parallelism, SurveyConfig, SurveyReport,
};
use tripoll::gen::table4_suite;
use tripoll::graph::{build_dist_graph, EdgeList, Partition};
use tripoll::prelude::DatasetSize;
use tripoll::ygm::hash::hash64;
use tripoll::ygm::{CommConfig, World};

/// Every layout×decode cell, production default first (all under the
/// default auto-selected kernel; the kernel axis has its own
/// differential suite in `tests/kernels.rs`).
const MATRIX: [SurveyConfig; 4] = [
    SurveyConfig {
        layout: BatchLayout::Columnar,
        decode: DecodePath::Cursor,
        kernel: IntersectKernel::Auto,
        threads: Parallelism::Env,
    },
    SurveyConfig {
        layout: BatchLayout::Columnar,
        decode: DecodePath::Owned,
        kernel: IntersectKernel::Auto,
        threads: Parallelism::Env,
    },
    SurveyConfig {
        layout: BatchLayout::Interleaved,
        decode: DecodePath::Cursor,
        kernel: IntersectKernel::Auto,
        threads: Parallelism::Env,
    },
    SurveyConfig {
        layout: BatchLayout::Interleaved,
        decode: DecodePath::Owned,
        kernel: IntersectKernel::Auto,
        threads: Parallelism::Env,
    },
];

/// The deterministic fingerprint of one survey run: everything both
/// decode paths of one layout must agree on. Send-side traffic is
/// compared per phase; `handlers_run` and `work` are receive-side
/// counters whose *phase* attribution depends on barrier timing (a rank
/// spinning in the previous phase's quiescence barrier may execute
/// early-arriving records there), so only their survey-wide totals are
/// compared. (Receive-side `records_borrowed` /
/// `bytes_decoded_in_place` are *expected* to differ — that is the
/// point of the comparison.)
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    phases: Vec<(&'static str, u64, u64, u64, u64)>,
    handlers_total: u64,
    work_total: u64,
    pulled: u64,
    grants: u64,
}

fn fingerprint(r: &SurveyReport) -> Fingerprint {
    Fingerprint {
        phases: r
            .phases
            .iter()
            .map(|p| {
                (
                    p.name,
                    p.stats.records_remote,
                    p.stats.records_local,
                    p.stats.bytes_remote,
                    p.stats.bytes_local,
                )
            })
            .collect(),
        handlers_total: r.phases.iter().map(|p| p.stats.handlers_run).sum(),
        work_total: r.phases.iter().map(|p| p.stats.work).sum(),
        pulled: r.pulled_vertices,
        grants: r.pull_grants,
    }
}

/// One run's observable outcome per rank: (global triangle count,
/// global metadata checksum, fingerprint, records decoded in place).
struct Outcome {
    count: u64,
    checksum: u64,
    fingerprint: Fingerprint,
    borrowed: u64,
}

/// Runs one survey with string metadata. The checksum folds all six
/// metadata values of every triangle, so any divergence in what a
/// callback observes — not just how many times it ran — fails the
/// comparison.
fn run_survey(
    list: &EdgeList<String>,
    nranks: usize,
    mode: EngineMode,
    config: SurveyConfig,
) -> Vec<Outcome> {
    run_survey_with_comm(list, nranks, mode, config, CommConfig::default())
}

/// [`run_survey`] with an explicit communicator configuration, for the
/// node-aggregation (`ranks_per_node`) and overlapped-flush axes.
fn run_survey_with_comm(
    list: &EdgeList<String>,
    nranks: usize,
    mode: EngineMode,
    config: SurveyConfig,
    comm_config: CommConfig,
) -> Vec<Outcome> {
    World::new(nranks).with_config(comm_config).run(|comm| {
        let local = list.stride_for_rank(comm.rank(), comm.nranks());
        let g = build_dist_graph(comm, local, |v| format!("v{v}"), Partition::Hashed);
        let count = Rc::new(Cell::new(0u64));
        let sum = Rc::new(Cell::new(0u64));
        let (c2, s2) = (count.clone(), sum.clone());
        let cb = move |_c: &tripoll::ygm::Comm,
                       tm: &tripoll::core::TriangleMeta<'_, String, String>| {
            c2.set(c2.get() + 1);
            let mut h = hash64(tm.p) ^ hash64(tm.q).rotate_left(1) ^ hash64(tm.r).rotate_left(2);
            for (i, m) in [
                tm.meta_p, tm.meta_q, tm.meta_r, tm.meta_pq, tm.meta_pr, tm.meta_qr,
            ]
            .iter()
            .enumerate()
            {
                for b in m.bytes() {
                    h = h.rotate_left(7) ^ hash64(u64::from(b) + i as u64);
                }
            }
            // Masked so the cross-rank all_reduce_sum cannot overflow.
            s2.set(s2.get() + (h & 0xffff_ffff));
        };
        let report = match mode {
            EngineMode::PushOnly => survey_push_only_with(comm, &g, config, cb),
            EngineMode::PushPull => survey_push_pull_with(comm, &g, config, cb),
        };
        let borrowed = report
            .phases
            .iter()
            .map(|p| p.stats.records_borrowed)
            .sum::<u64>();
        Outcome {
            count: comm.all_reduce_sum(count.get()),
            checksum: comm.all_reduce_sum(sum.get()),
            fingerprint: fingerprint(&report),
            borrowed: comm.all_reduce_sum(borrowed),
        }
    })
}

fn labeled(edges: Vec<(u64, u64)>) -> EdgeList<String> {
    EdgeList::from_vec(
        edges
            .into_iter()
            .map(|(u, v)| (u, v, format!("e{}-{}", u.min(v), u.max(v))))
            .collect(),
    )
}

/// Asserts the full configuration matrix agrees for one graph at one
/// (nranks, mode): identical surveys everywhere, identical send
/// fingerprints within each layout, and the expected decode-in-place
/// accounting per decode path.
fn assert_matrix_agrees(list: &EdgeList<String>, nranks: usize, mode: EngineMode, ctx: &str) {
    let runs: Vec<(SurveyConfig, Vec<Outcome>)> = MATRIX
        .iter()
        .map(|&config| (config, run_survey(list, nranks, mode, config)))
        .collect();
    let (_, reference) = &runs[0];
    for (config, outcomes) in &runs {
        for (rank, (o, r)) in outcomes.iter().zip(reference.iter()).enumerate() {
            let ctx = format!("{ctx}, {config:?}, rank {rank}");
            assert_eq!(o.count, r.count, "triangle count [{ctx}]");
            assert_eq!(o.checksum, r.checksum, "metadata checksum [{ctx}]");
            match config.decode {
                DecodePath::Owned => {
                    assert_eq!(o.borrowed, 0, "owned path must not decode in place [{ctx}]");
                }
                DecodePath::Cursor => {
                    // Any triangle requires at least one received wedge
                    // batch or pull delivery, all of which the cursor
                    // path decodes in place.
                    if o.count > 0 {
                        assert!(o.borrowed > 0, "cursor path must decode in place [{ctx}]");
                    }
                }
            }
        }
    }
    // Same layout ⇒ same bytes on the wire ⇒ identical fingerprints.
    for layout in [BatchLayout::Columnar, BatchLayout::Interleaved] {
        let in_layout: Vec<&Vec<Outcome>> = runs
            .iter()
            .filter(|(c, _)| c.layout == layout)
            .map(|(_, o)| o)
            .collect();
        for pair in in_layout.windows(2) {
            for (rank, (a, b)) in pair[0].iter().zip(pair[1].iter()).enumerate() {
                assert_eq!(
                    a.fingerprint, b.fingerprint,
                    "send-side fingerprint [{ctx}, {layout}, rank {rank}]"
                );
            }
        }
    }
}

#[test]
fn tab4_topologies_identical_across_layouts_and_decode_paths() {
    // The Table 4 suite at tiny scale, both engines, 1/2/4/7 ranks.
    for ds in table4_suite(DatasetSize::Tiny, 42) {
        let list = labeled(ds.edges.clone());
        for nranks in [1usize, 2, 4, 7] {
            for mode in [EngineMode::PushOnly, EngineMode::PushPull] {
                let ctx = format!("{} {mode} n={nranks}", ds.name);
                assert_matrix_agrees(&list, nranks, mode, &ctx);
            }
        }
    }
}

#[test]
fn hub_pull_topology_identical_across_layouts_and_decode_paths() {
    // Shared-hub construction that forces the pull phase to carry the
    // triangles, so the ColView / SeqView re-walk paths are
    // differentially tested.
    let k = 24u64;
    let (h1, h2) = (1000, 1001);
    let mut edges = vec![(h1, h2)];
    for sv in 0..k {
        edges.push((sv, h1));
        edges.push((sv, h2));
    }
    let list = labeled(edges);
    for nranks in [1usize, 2, 4, 7] {
        let reference = run_survey(&list, nranks, EngineMode::PushPull, MATRIX[0]);
        assert_eq!(reference[0].count, k);
        assert_matrix_agrees(
            &list,
            nranks,
            EngineMode::PushPull,
            &format!("hub n={nranks}"),
        );
    }
}

/// The per-phase record volume — remote/local classification and byte
/// counts stripped. This is what node aggregation is allowed to
/// reshape: at rpn > 1 intra-node records reclassify local and
/// multicast sections dedup payload bytes, but each phase still
/// delivers exactly the same records.
fn phase_record_totals(fp: &Fingerprint) -> Vec<(&'static str, u64)> {
    fp.phases
        .iter()
        .map(|&(name, rr, rl, _, _)| (name, rr + rl))
        .collect()
}

/// Node aggregation (`ranks_per_node` ∈ {1, 2, 4}) crossed with the
/// overlapped transport stage, against the flat rpn=1 reference, on the
/// pull-heavy hub topology at even and odd world sizes. Two tiers of
/// invariance:
///
/// * across **rpn**: triangle counts, metadata checksums, handler/work
///   totals, pull accounting and per-phase record totals are identical
///   — only the remote/local split and wire bytes may move (that is
///   the documented wire change multicast makes);
/// * across **overlap** at fixed rpn: the *full* send fingerprint is
///   bit-identical — the transport stage changes when envelopes are
///   handed to the channel, never what is sent.
#[test]
fn node_aggregation_and_overlap_matrix_preserves_surveys() {
    let k = 24u64;
    let (h1, h2) = (1000, 1001);
    let mut edges = vec![(h1, h2)];
    for sv in 0..k {
        edges.push((sv, h1));
        edges.push((sv, h2));
    }
    let list = labeled(edges);
    for nranks in [4usize, 7] {
        for mode in [EngineMode::PushOnly, EngineMode::PushPull] {
            let reference = run_survey_with_comm(
                &list,
                nranks,
                mode,
                MATRIX[0],
                CommConfig {
                    ranks_per_node: 1,
                    overlap_flush: Some(false),
                    ..Default::default()
                },
            );
            for rpn in [1usize, 2, 4] {
                let mut per_overlap: Vec<Vec<Outcome>> = Vec::new();
                for overlap in [false, true] {
                    let runs = run_survey_with_comm(
                        &list,
                        nranks,
                        mode,
                        MATRIX[0],
                        CommConfig {
                            ranks_per_node: rpn,
                            overlap_flush: Some(overlap),
                            ..Default::default()
                        },
                    );
                    for (rank, (o, r)) in runs.iter().zip(reference.iter()).enumerate() {
                        let ctx =
                            format!("{mode} n={nranks} rpn={rpn} overlap={overlap} rank {rank}");
                        assert_eq!(o.count, r.count, "triangle count [{ctx}]");
                        assert_eq!(o.checksum, r.checksum, "metadata checksum [{ctx}]");
                        assert_eq!(
                            o.fingerprint.handlers_total, r.fingerprint.handlers_total,
                            "handler total [{ctx}]"
                        );
                        assert_eq!(
                            o.fingerprint.work_total, r.fingerprint.work_total,
                            "work total [{ctx}]"
                        );
                        assert_eq!(o.fingerprint.pulled, r.fingerprint.pulled, "pulled [{ctx}]");
                        assert_eq!(o.fingerprint.grants, r.fingerprint.grants, "grants [{ctx}]");
                        assert_eq!(
                            phase_record_totals(&o.fingerprint),
                            phase_record_totals(&r.fingerprint),
                            "per-phase record totals [{ctx}]"
                        );
                    }
                    per_overlap.push(runs);
                }
                let (off, on) = (&per_overlap[0], &per_overlap[1]);
                for (rank, (a, b)) in off.iter().zip(on.iter()).enumerate() {
                    assert_eq!(
                        a.fingerprint, b.fingerprint,
                        "overlap must not reshape the wire [{mode} n={nranks} rpn={rpn} rank {rank}]"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn random_string_metadata_graphs_identical_across_matrix(
        edges in proptest::collection::vec((0u64..40, 0u64..40), 1..120),
        nranks in 1usize..5,
        push_pull in any::<bool>(),
    ) {
        let list = labeled(edges);
        let mode = if push_pull { EngineMode::PushPull } else { EngineMode::PushOnly };
        let runs: Vec<Vec<Outcome>> = MATRIX
            .iter()
            .map(|&config| run_survey(&list, nranks, mode, config))
            .collect();
        for alt in &runs[1..] {
            for (r, o) in runs[0].iter().zip(alt.iter()) {
                prop_assert_eq!(r.count, o.count);
                prop_assert_eq!(r.checksum, o.checksum);
            }
        }
        // Decode paths within one layout share bytes exactly — both the
        // columnar pair and the interleaved pair.
        for (a, b) in runs[0].iter().zip(runs[1].iter()) {
            prop_assert_eq!(&a.fingerprint, &b.fingerprint);
        }
        for (a, b) in runs[2].iter().zip(runs[3].iter()) {
            prop_assert_eq!(&a.fingerprint, &b.fingerprint);
        }
    }
}
