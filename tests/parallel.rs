//! Differential tests of the multi-threaded intra-rank merge path.
//!
//! The `threads` axis ([`Parallelism`]) routes received wedge batches
//! and pull deliveries through the persistent work-stealing pool
//! instead of intersecting them inline, and its contract is strict
//! determinism: a parallel survey must be **observationally identical**
//! to the serial one — same triangle counts, same metadata seen by
//! every callback, and bit-identical merged [`KernelStats`] (the
//! per-worker tallies are reduced in batch-index order, so even the
//! compare counters cannot drift). Three layers of evidence:
//!
//! * **Thread sweep** — serial vs {1, 2, 4, 8} threads × both engines
//!   × {1, 2, 4, 7} ranks on random and hub graphs.
//! * **Config spot matrix** — every kernel × layout × decode cell at 4
//!   threads (the owned-decode cells document the designed serial
//!   fallback: the parallel path only exists for cursor decode).
//! * **Stealing stress** — repeated runs with many tiny batches and
//!   more ranks than cores, so partial flushes, barrier-drain flushes
//!   and cross-worker stealing all occur, asserting run-to-run
//!   stability.

use std::cell::Cell;
use std::rc::Rc;

use tripoll::core::{
    kernel_stats_take, survey_push_only_with, survey_push_pull_with, BatchLayout, DecodePath,
    EngineMode, IntersectKernel, KernelStats, Parallelism, SurveyConfig,
};
use tripoll::graph::{build_dist_graph, EdgeList, Partition};
use tripoll::ygm::hash::hash64;
use tripoll::ygm::{CommConfig, World};

const THREADS: [Parallelism; 4] = [
    Parallelism::Threads(1),
    Parallelism::Threads(2),
    Parallelism::Threads(4),
    Parallelism::Threads(8),
];

/// One run's observable outcome per rank: global triangle count, global
/// metadata checksum, and the globally summed merged kernel counters —
/// every field of [`KernelStats`], so a parallel run that dispatched
/// through a different kernel arm or double-counted a batch fails even
/// if its match totals happen to agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Outcome {
    count: u64,
    checksum: u64,
    stats: KernelStats,
}

/// Runs one survey with string metadata, folding all six metadata
/// values of every triangle into the checksum and harvesting each
/// rank's merged kernel counters after the run.
fn run_survey(
    list: &EdgeList<String>,
    nranks: usize,
    mode: EngineMode,
    config: SurveyConfig,
) -> Vec<Outcome> {
    run_survey_with_comm(list, nranks, mode, config, CommConfig::default())
}

/// [`run_survey`] with an explicit communicator configuration, for the
/// node-aggregation (`ranks_per_node`) and overlapped-flush axes.
fn run_survey_with_comm(
    list: &EdgeList<String>,
    nranks: usize,
    mode: EngineMode,
    config: SurveyConfig,
    comm_config: CommConfig,
) -> Vec<Outcome> {
    World::new(nranks).with_config(comm_config).run(|comm| {
        let local = list.stride_for_rank(comm.rank(), comm.nranks());
        let g = build_dist_graph(comm, local, |v| format!("v{v}"), Partition::Hashed);
        let _ = kernel_stats_take(); // fresh counters for this rank
        let count = Rc::new(Cell::new(0u64));
        let sum = Rc::new(Cell::new(0u64));
        let (c2, s2) = (count.clone(), sum.clone());
        let cb = move |_c: &tripoll::ygm::Comm,
                       tm: &tripoll::core::TriangleMeta<'_, String, String>| {
            c2.set(c2.get() + 1);
            let mut h = hash64(tm.p) ^ hash64(tm.q).rotate_left(1) ^ hash64(tm.r).rotate_left(2);
            for (i, m) in [
                tm.meta_p, tm.meta_q, tm.meta_r, tm.meta_pq, tm.meta_pr, tm.meta_qr,
            ]
            .iter()
            .enumerate()
            {
                for b in m.bytes() {
                    h = h.rotate_left(7) ^ hash64(u64::from(b) + i as u64);
                }
            }
            s2.set(s2.get() + (h & 0xffff_ffff));
        };
        match mode {
            EngineMode::PushOnly => survey_push_only_with(comm, &g, config, cb),
            EngineMode::PushPull => survey_push_pull_with(comm, &g, config, cb),
        };
        let ks = kernel_stats_take();
        Outcome {
            count: comm.all_reduce_sum(count.get()),
            checksum: comm.all_reduce_sum(sum.get()),
            stats: KernelStats {
                compares: comm.all_reduce_sum(ks.compares),
                candidates: comm.all_reduce_sum(ks.candidates),
                matches: comm.all_reduce_sum(ks.matches),
                scalar_runs: comm.all_reduce_sum(ks.scalar_runs),
                gallop_runs: comm.all_reduce_sum(ks.gallop_runs),
                blocked_runs: comm.all_reduce_sum(ks.blocked_runs),
                simd_runs: comm.all_reduce_sum(ks.simd_runs),
            },
        }
    })
}

fn labeled(edges: Vec<(u64, u64)>) -> EdgeList<String> {
    EdgeList::from_vec(
        edges
            .into_iter()
            .map(|(u, v)| (u, v, format!("e{}-{}", u.min(v), u.max(v))))
            .collect(),
    )
}

/// A deterministic dense-ish random graph (the general case).
fn random_graph() -> EdgeList<String> {
    let mut edges = Vec::new();
    for u in 0..32u64 {
        for v in (u + 1)..32 {
            if (u * 7919 + v * 104_729) % 4 == 0 {
                edges.push((u, v));
            }
        }
    }
    labeled(edges)
}

/// The shared-hub construction that forces the Push-Pull pull phase to
/// carry triangles, so the parallel pull-delivery enqueue (one work
/// item per resume suffix, shared frame) is differentially tested.
fn hub_graph() -> EdgeList<String> {
    let k = 24u64;
    let (h1, h2) = (1000, 1001);
    let mut edges = vec![(h1, h2)];
    for sv in 0..k {
        edges.push((sv, h1));
        edges.push((sv, h2));
    }
    labeled(edges)
}

/// Serial vs every thread count, both engines, {1,2,4,7} ranks, random
/// and hub graphs: counts, checksums and every merged kernel counter
/// must be bit-identical to the serial reference.
#[test]
fn parallel_surveys_are_bit_identical_to_serial() {
    for (gname, list) in [("random", random_graph()), ("hub", hub_graph())] {
        for nranks in [1usize, 2, 4, 7] {
            for mode in [EngineMode::PushOnly, EngineMode::PushPull] {
                let serial = run_survey(
                    &list,
                    nranks,
                    mode,
                    SurveyConfig::default().with_threads(Parallelism::Serial),
                );
                assert!(serial[0].count > 0, "{gname} must contain triangles");
                for threads in THREADS {
                    let runs = run_survey(
                        &list,
                        nranks,
                        mode,
                        SurveyConfig::default().with_threads(threads),
                    );
                    for (rank, (o, r)) in runs.iter().zip(serial.iter()).enumerate() {
                        let ctx = format!("{gname} {mode} n={nranks} {threads} rank {rank}");
                        assert_eq!(o.count, r.count, "triangle count [{ctx}]");
                        assert_eq!(o.checksum, r.checksum, "metadata checksum [{ctx}]");
                        assert_eq!(o.stats, r.stats, "merged kernel stats [{ctx}]");
                    }
                }
            }
        }
    }
}

/// Every kernel × layout × decode cell at 4 threads against its serial
/// twin. The cursor cells run the parallel merge queue; the owned cells
/// document the designed fallback (no parallel path exists for the
/// materializing decode, so they must — trivially — agree too).
#[test]
fn parallel_config_matrix_agrees_with_serial() {
    const LAYOUT_DECODE: [(BatchLayout, DecodePath); 4] = [
        (BatchLayout::Columnar, DecodePath::Cursor),
        (BatchLayout::Columnar, DecodePath::Owned),
        (BatchLayout::Interleaved, DecodePath::Cursor),
        (BatchLayout::Interleaved, DecodePath::Owned),
    ];
    const KERNELS: [IntersectKernel; 5] = [
        IntersectKernel::MergeScalar,
        IntersectKernel::Gallop,
        IntersectKernel::BlockedMerge,
        IntersectKernel::Simd,
        IntersectKernel::Auto,
    ];
    let list = hub_graph();
    for mode in [EngineMode::PushOnly, EngineMode::PushPull] {
        for (layout, decode) in LAYOUT_DECODE {
            for kernel in KERNELS {
                let base = SurveyConfig {
                    layout,
                    decode,
                    kernel,
                    threads: Parallelism::Serial,
                };
                let serial = run_survey(&list, 4, mode, base);
                let parallel = run_survey(
                    &list,
                    4,
                    mode,
                    SurveyConfig {
                        threads: Parallelism::Threads(4),
                        ..base
                    },
                );
                let ctx = format!("{mode} {layout} {decode:?} {kernel}");
                assert_eq!(parallel, serial, "parallel != serial [{ctx}]");
            }
        }
    }
}

/// Stealing stress: a graph of many tiny wedge batches (every target's
/// candidate list is short) on more ranks than this machine has cores,
/// at 8 threads. Partial batches are flushed by the barrier drain hook,
/// full batches by the threshold, and the per-rank caller competes with
/// the shared pool's workers — across repeated runs every outcome must
/// be stable and equal to the serial reference.
#[test]
fn tiny_batch_stealing_is_deterministic() {
    // A ring of overlapping K4 cliques: lots of distinct targets with
    // 1-3 candidate wedges each, spread over all ranks.
    let n = 64u64;
    let mut edges = Vec::new();
    for i in 0..n {
        for a in 1..=3u64 {
            for b in (a + 1)..=3 {
                edges.push(((i + a) % n, (i + b) % n));
            }
        }
        edges.push((i, (i + 1) % n));
    }
    edges.sort_unstable();
    edges.dedup();
    let list = labeled(edges);
    for mode in [EngineMode::PushOnly, EngineMode::PushPull] {
        let serial = run_survey(
            &list,
            7,
            mode,
            SurveyConfig::default().with_threads(Parallelism::Serial),
        );
        assert!(serial[0].count > 0, "stress graph must contain triangles");
        for round in 0..8 {
            let runs = run_survey(
                &list,
                7,
                mode,
                SurveyConfig::default().with_threads(Parallelism::Threads(8)),
            );
            assert_eq!(runs, serial, "{mode} round {round} diverged");
        }
    }
}

/// The comm-layer topology axes must be invisible to survey results:
/// node aggregation (`ranks_per_node` ∈ {1, 2, 4}) crossed with the
/// overlapped transport stage (on/off) and the merge parallelism
/// (serial / 4 threads), on the pull-heavy hub graph under both
/// engines. Multicast fan-out, gateway forwarding, per-destination
/// flush thresholds and the drain-stage handoff may reshape the wire —
/// counts, metadata checksums and merged kernel counters may not move
/// a bit.
#[test]
fn node_aggregation_and_overlap_are_bit_identical() {
    let list = hub_graph();
    for mode in [EngineMode::PushOnly, EngineMode::PushPull] {
        let reference = run_survey_with_comm(
            &list,
            4,
            mode,
            SurveyConfig::default().with_threads(Parallelism::Serial),
            CommConfig {
                ranks_per_node: 1,
                overlap_flush: Some(false),
                ..Default::default()
            },
        );
        assert!(reference[0].count > 0, "hub graph must contain triangles");
        for rpn in [1usize, 2, 4] {
            for overlap in [false, true] {
                for threads in [Parallelism::Serial, Parallelism::Threads(4)] {
                    let runs = run_survey_with_comm(
                        &list,
                        4,
                        mode,
                        SurveyConfig::default().with_threads(threads),
                        CommConfig {
                            ranks_per_node: rpn,
                            overlap_flush: Some(overlap),
                            ..Default::default()
                        },
                    );
                    for (rank, (o, r)) in runs.iter().zip(reference.iter()).enumerate() {
                        let ctx =
                            format!("{mode} rpn={rpn} overlap={overlap} {threads} rank {rank}");
                        assert_eq!(o, r, "survey outcome diverged [{ctx}]");
                    }
                }
            }
        }
    }
}

/// The `TRIPOLL_THREADS` environment axis resolves once per process and
/// `Threads(n)` overrides it — the knobs the CI matrix and the bench
/// harness rely on.
#[test]
fn thread_axis_resolution_contract() {
    assert_eq!(Parallelism::Serial.resolved(), 1);
    assert!(!Parallelism::Serial.is_parallel());
    assert_eq!(Parallelism::Threads(0).resolved(), 1);
    assert_eq!(Parallelism::Threads(4).resolved(), 4);
    assert!(Parallelism::Threads(2).is_parallel());
    // Env resolves to a fixed value for the whole process (whatever the
    // harness set), and the explicit variants ignore it entirely.
    assert_eq!(Parallelism::Env.resolved(), Parallelism::Env.resolved());
    let cfg = SurveyConfig::default().with_threads(Parallelism::Threads(3));
    assert_eq!(cfg.threads.resolved(), 3);
}
