//! Batch-split differential oracle for incremental ingestion.
//!
//! The incremental contract is bit-exactness, twice over:
//!
//! 1. **Storage**: after `ResidentGraph::ingest_batch` the resident
//!    DODGr storage — and therefore every full survey of it — is
//!    bit-identical to a from-scratch build + survey of the
//!    concatenated prefix: same counts, same metadata seen by every
//!    callback (checksummed), same merged [`KernelStats`] counters,
//!    across engine × ranks {1,2,4,7} × rpn {1,2} × Serial/Threads(4).
//! 2. **Surveys**: the delta survey of each batch, merged additively
//!    into a running [`SurveyDelta`], equals the full survey of the
//!    prefix: `full(G ∪ B) == full(G) + delta(G, B)` for the count,
//!    local counts, degree triples, and closure times.
//!
//! The full 32-combination setting matrix is too slow to cross with
//! every (graph, split, batch) triple, so each batch checks a rotating
//! deterministic slice of the matrix — every combination is exercised
//! against several prefixes across the test — and selected final
//! prefixes sweep all 32.
//!
//! Hostile cases ride along: empty first batches, batches referencing
//! unknown vertices under strict ingest (structured error, graph
//! untouched), ingest after a snapshot restart, concurrent queries
//! racing an ingest (old or new graph, never torn), and a proptest
//! sweep over random partitions of random edge lists (duplicates and
//! self-loops included) converging to the one-shot survey.

use std::cell::Cell;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use tripoll::core::{
    kernel_stats_take, survey_push_only_with, survey_push_pull_with, EngineMode, KernelStats,
    Parallelism, ResidentGraph, ResidentQuery, SurveyConfig, SurveyDelta, SurveyDeltaSink,
    TriangleMeta, TriangleSample,
};
use tripoll::gen::edge_batches;
use tripoll::graph::{build_dist_graph, EdgeList, GraphError, Partition};
use tripoll::ygm::hash::hash64;
use tripoll::ygm::wire::Wire;
use tripoll::ygm::{Comm, CommConfig, World};

/// One run's observable outcome: global triangle count, global
/// metadata checksum, and the globally summed kernel counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Outcome {
    count: u64,
    checksum: u64,
    stats: KernelStats,
}

/// Commutative checksum over ids and all six metadata values (same
/// folding as tests/resident.rs, generic over the metadata's byte
/// rendering).
fn triangle_hash<VM: std::fmt::Debug, EM: std::fmt::Debug>(tm: &TriangleMeta<'_, VM, EM>) -> u64 {
    let mut h = hash64(tm.p) ^ hash64(tm.q).rotate_left(1) ^ hash64(tm.r).rotate_left(2);
    for (i, m) in [
        format!("{:?}", tm.meta_p),
        format!("{:?}", tm.meta_q),
        format!("{:?}", tm.meta_r),
        format!("{:?}", tm.meta_pq),
        format!("{:?}", tm.meta_pr),
        format!("{:?}", tm.meta_qr),
    ]
    .iter()
    .enumerate()
    {
        for b in m.bytes() {
            h = h.rotate_left(7) ^ hash64(u64::from(b) + i as u64);
        }
    }
    h & 0xffff_ffff
}

fn vm_of(v: u64) -> String {
    format!("v{v}")
}

fn em_of(u: u64, v: u64) -> String {
    format!("e{}-{}", u.min(v), u.max(v))
}

/// Numeric metadata universe for the accumulator tests: the vertex
/// value doubles as a pseudo-degree, the edge value as a timestamp.
/// Both are **fixed** deterministic functions of the ids — the ingest
/// bit-identity contract requires metadata that does not change as the
/// graph grows.
fn vm_num(v: u64) -> u64 {
    v * 31 + 7
}

fn em_num(u: u64, v: u64) -> u64 {
    hash64(u.min(v) * 2_000_003 + u.max(v)) % 997
}

fn sample_of(tm: &TriangleMeta<'_, u64, u64>) -> TriangleSample {
    TriangleSample {
        p: tm.p,
        q: tm.q,
        r: tm.r,
        degree_p: *tm.meta_p,
        degree_q: *tm.meta_q,
        degree_r: *tm.meta_r,
        t_pq: *tm.meta_pq,
        t_pr: *tm.meta_pr,
        t_qr: *tm.meta_qr,
    }
}

/// The from-scratch reference: build the prefix graph inside the
/// world, run `survey_*_with`, harvest the globally-reduced outcome.
fn run_direct<VM, EM>(
    list: &EdgeList<EM>,
    nranks: usize,
    mode: EngineMode,
    config: SurveyConfig,
    comm_config: CommConfig,
    vm_fn: fn(u64) -> VM,
) -> Outcome
where
    VM: Wire + Clone + Send + Sync + std::fmt::Debug + 'static,
    EM: Wire + Clone + Send + Sync + std::fmt::Debug + 'static,
{
    let out = World::new(nranks).with_config(comm_config).run(|comm| {
        let local = list.stride_for_rank(comm.rank(), comm.nranks());
        let g = build_dist_graph(comm, local, vm_fn, Partition::Hashed);
        let _ = kernel_stats_take();
        let count = Rc::new(Cell::new(0u64));
        let sum = Rc::new(Cell::new(0u64));
        let (c2, s2) = (count.clone(), sum.clone());
        let cb = move |_c: &Comm, tm: &TriangleMeta<'_, VM, EM>| {
            c2.set(c2.get() + 1);
            s2.set(s2.get() + triangle_hash(tm));
        };
        match mode {
            EngineMode::PushOnly => survey_push_only_with(comm, &g, config, cb),
            EngineMode::PushPull => survey_push_pull_with(comm, &g, config, cb),
        };
        let ks = kernel_stats_take();
        Outcome {
            count: comm.all_reduce_sum(count.get()),
            checksum: comm.all_reduce_sum(sum.get()),
            stats: KernelStats {
                compares: comm.all_reduce_sum(ks.compares),
                candidates: comm.all_reduce_sum(ks.candidates),
                matches: comm.all_reduce_sum(ks.matches),
                scalar_runs: comm.all_reduce_sum(ks.scalar_runs),
                gallop_runs: comm.all_reduce_sum(ks.gallop_runs),
                blocked_runs: comm.all_reduce_sum(ks.blocked_runs),
                simd_runs: comm.all_reduce_sum(ks.simd_runs),
            },
        }
    });
    for o in &out {
        assert_eq!(o, &out[0], "direct path must agree on all ranks");
    }
    out[0]
}

/// The incremental path: one query against the resident graph.
fn run_resident<VM, EM>(resident: &ResidentGraph<VM, EM>, query: &ResidentQuery) -> Outcome
where
    VM: Wire + Clone + Send + Sync + std::fmt::Debug + 'static,
    EM: Wire + Clone + Send + Sync + std::fmt::Debug + 'static,
{
    let acc = Arc::new(Mutex::new((0u64, 0u64)));
    let acc2 = acc.clone();
    let outcomes = resident.survey(query, move |_c, tm| {
        let mut a = acc2.lock().unwrap();
        a.0 += 1;
        a.1 += triangle_hash(tm);
    });
    let mut stats = KernelStats::default();
    for o in &outcomes {
        stats += o.kernel;
    }
    let (count, checksum) = *acc.lock().unwrap();
    Outcome {
        count,
        checksum,
        stats,
    }
}

fn labeled(edges: Vec<(u64, u64)>) -> Vec<(u64, u64, String)> {
    edges
        .into_iter()
        .map(|(u, v)| (u, v, em_of(u, v)))
        .collect()
}

/// A deterministic dense-ish random graph (the general case).
fn random_edges() -> Vec<(u64, u64)> {
    let mut edges = Vec::new();
    for u in 0..32u64 {
        for v in (u + 1)..32 {
            if (u * 7919 + v * 104_729) % 4 == 0 {
                edges.push((u, v));
            }
        }
    }
    edges
}

/// The shared-hub construction that forces Push-Pull's pull phase to
/// carry triangles.
fn hub_edges() -> Vec<(u64, u64)> {
    let k = 24u64;
    let (h1, h2) = (1000, 1001);
    let mut edges = vec![(h1, h2)];
    for sv in 0..k {
        edges.push((sv, h1));
        edges.push((sv, h2));
    }
    edges
}

fn query(nranks: usize, mode: EngineMode, rpn: usize, threads: Parallelism) -> ResidentQuery {
    ResidentQuery::new(nranks)
        .with_mode(mode)
        .with_threads(threads)
        .with_comm(
            CommConfig {
                ranks_per_node: rpn,
                ..Default::default()
            }
            .pinned(),
        )
}

/// The full setting matrix: engine × ranks {1,2,4,7} × rpn {1,2} ×
/// Serial/Threads(4) — 32 combinations.
fn combos() -> Vec<(usize, EngineMode, usize, Parallelism)> {
    let mut out = Vec::new();
    for &nranks in &[1usize, 2, 4, 7] {
        for mode in [EngineMode::PushOnly, EngineMode::PushPull] {
            for &rpn in &[1usize, 2] {
                for threads in [Parallelism::Serial, Parallelism::Threads(4)] {
                    out.push((nranks, mode, rpn, threads));
                }
            }
        }
    }
    out
}

/// Satellite 1: after EVERY batch of every split, the incrementally
/// maintained resident graph surveys bit-identically to a from-scratch
/// build of the prefix — counts, metadata checksums, merged kernel
/// counters.
#[test]
fn batch_split_differential_oracle() {
    let combos = combos();
    for (gname, edges) in [
        ("random", labeled(random_edges())),
        ("hub", labeled(hub_edges())),
    ] {
        for (ki, &k) in [1usize, 2, 5, 17].iter().enumerate() {
            let chunk = edges.len().div_ceil(k);
            let nbatches = edges.len().div_ceil(chunk);
            let resident: ResidentGraph<String, String> =
                ResidentGraph::from_vertices(Vec::new(), Partition::Hashed);
            let mut prefix: Vec<(u64, u64, String)> = Vec::new();
            for (bi, batch) in edges.chunks(chunk).enumerate() {
                let delta = resident
                    .ingest_batch_with(batch, vm_of)
                    .expect("oracle batches only add known-good edges");
                assert_eq!(delta.epoch(), bi as u64 + 1);
                prefix.extend(batch.iter().cloned());
                let plist = EdgeList::from_vec(prefix.clone());
                // Rotating slice of the matrix per batch; a full sweep
                // on the final prefix of the 5-way split (the final
                // prefixes of all splits are the same graph).
                let picks: Vec<usize> = if bi + 1 == nbatches && k == 5 {
                    (0..combos.len()).collect()
                } else {
                    (0..3)
                        .map(|j| (bi * 3 + j + ki * 11) % combos.len())
                        .collect()
                };
                for ci in picks {
                    let (nranks, mode, rpn, threads) = combos[ci];
                    let q = query(nranks, mode, rpn, threads);
                    let reference =
                        run_direct(&plist, nranks, mode, q.config, q.comm.clone(), vm_of);
                    let got = run_resident(&resident, &q);
                    assert_eq!(
                        got, reference,
                        "incremental != from-scratch [{gname} k={k} batch={bi} \
                         {mode} n={nranks} rpn={rpn} {threads:?}]"
                    );
                }
            }
            assert_eq!(resident.epoch(), nbatches as u64);
        }
    }
}

/// A full survey of the resident graph folded into a [`SurveyDelta`].
fn full_accumulation(resident: &ResidentGraph<u64, u64>, q: &ResidentQuery) -> SurveyDelta {
    let sink = SurveyDeltaSink::new();
    let s2 = sink.clone();
    resident.survey(q, move |_c, tm| s2.record(sample_of(tm)));
    sink.take()
}

/// Tentpole acceptance: `full(G ∪ B) == full(G) + delta(G, B)` holds
/// bit-for-bit for all four accumulators, after every batch, with the
/// full side surveyed by both engines.
#[test]
fn merged_deltas_match_full_survey_accumulators() {
    let edges: Vec<(u64, u64, u64)> = random_edges()
        .into_iter()
        .map(|(u, v)| (u, v, em_num(u, v)))
        .collect();
    for k in [1usize, 4, 9] {
        let chunk = edges.len().div_ceil(k);
        let resident: ResidentGraph<u64, u64> =
            ResidentGraph::from_vertices(Vec::new(), Partition::Hashed);
        let mut running = SurveyDelta::default();
        for batch in edges.chunks(chunk) {
            let delta = resident.ingest_batch_with(batch, vm_num).unwrap();
            let sink = SurveyDeltaSink::new();
            let s2 = sink.clone();
            resident
                .survey_delta(
                    &delta,
                    &query(2, EngineMode::PushOnly, 1, Parallelism::Serial),
                    move |_c, tm| s2.record(sample_of(tm)),
                )
                .expect("delta is current");
            running.merge(&sink.take());
            for mode in [EngineMode::PushOnly, EngineMode::PushPull] {
                let full =
                    full_accumulation(&resident, &query(3, mode, 2, Parallelism::Threads(2)));
                assert_eq!(full.count(), running.count(), "count [k={k} {mode}]");
                assert_eq!(full, running, "accumulators diverged [k={k} {mode}]");
                assert_eq!(full.local_counts(), running.local_counts());
                assert_eq!(full.degree_triples(), running.degree_triples());
                assert_eq!(full.closure_times(), running.closure_times());
            }
        }
    }
}

/// Hostile: an empty first batch (and empty batches between real ones)
/// must be a no-op that still advances the epoch and leaves every
/// later survey exact.
#[test]
fn empty_first_batch_is_harmless() {
    let resident: ResidentGraph<String, String> =
        ResidentGraph::from_vertices(Vec::new(), Partition::Hashed);
    let d0 = resident.ingest_batch_with(&[], vm_of).unwrap();
    assert!(d0.is_empty());
    assert_eq!(d0.epoch(), 1);
    let edges = labeled(hub_edges());
    let d1 = resident.ingest_batch_with(&edges, vm_of).unwrap();
    assert!(!d1.is_empty());
    let d2 = resident.ingest_batch_with(&[], vm_of).unwrap();
    assert!(d2.is_empty());
    assert_eq!(resident.epoch(), 3);
    let q = query(2, EngineMode::PushPull, 1, Parallelism::Serial);
    let reference = run_direct(
        &EdgeList::from_vec(edges),
        2,
        EngineMode::PushPull,
        q.config,
        q.comm.clone(),
        vm_of,
    );
    assert_eq!(run_resident(&resident, &q), reference);
    // An empty delta surveys zero triangles (and is current).
    let sink = Arc::new(Mutex::new(0u64));
    let s2 = sink.clone();
    resident
        .survey_delta(&d2, &q, move |_c, _tm| *s2.lock().unwrap() += 1)
        .expect("latest delta is current");
    assert_eq!(*sink.lock().unwrap(), 0);
}

/// Hostile: strict ingest of a batch naming an unknown vertex is a
/// structured [`GraphError::UnknownVertex`] — not a panic — and the
/// graph (storage, epoch, surveys) is untouched.
#[test]
fn unknown_vertex_rejection_stays_structured() {
    let edges = labeled(random_edges());
    let resident =
        ResidentGraph::build(&EdgeList::from_vec(edges.clone()), vm_of, Partition::Hashed);
    let q = query(2, EngineMode::PushOnly, 1, Parallelism::Serial);
    let before = run_resident(&resident, &q);
    let bad = vec![
        (0u64, 1u64, "dup".to_string()),
        (5, 4242, "ghost".to_string()),
    ];
    let err = resident.ingest_batch(&bad).unwrap_err();
    assert_eq!(err, GraphError::UnknownVertex { vertex: 4242 });
    assert!(err.to_string().contains("4242"), "error names the vertex");
    assert_eq!(resident.epoch(), 0, "failed ingest leaves no trace");
    assert_eq!(run_resident(&resident, &q), before, "graph unchanged");
}

/// Hostile: a snapshot-loaded graph accepts further batches, and the
/// result is bit-identical to a from-scratch build of the whole list.
#[test]
fn ingest_after_snapshot_load_is_exact() {
    let edges = labeled(random_edges());
    let half = edges.len() / 2;
    let first = ResidentGraph::build(
        &EdgeList::from_vec(edges[..half].to_vec()),
        vm_of,
        Partition::Hashed,
    );
    let restored =
        ResidentGraph::<String, String>::from_snapshot_bytes(&first.snapshot_bytes(3)).unwrap();
    let delta = restored.ingest_batch_with(&edges[half..], vm_of).unwrap();
    assert_eq!(delta.epoch(), 1, "restored graph restarts its epochs");
    let plist = EdgeList::from_vec(edges);
    for (nranks, mode) in [(2, EngineMode::PushOnly), (4, EngineMode::PushPull)] {
        let q = query(nranks, mode, 2, Parallelism::Threads(4));
        let reference = run_direct(&plist, nranks, mode, q.config, q.comm.clone(), vm_of);
        assert_eq!(
            run_resident(&restored, &q),
            reference,
            "snapshot+ingest != from-scratch [{mode} n={nranks}]"
        );
    }
}

/// Hostile: queries racing an ingest must observe some complete graph
/// state — the count of one of the ingested prefixes — never a torn
/// intermediate.
#[test]
fn concurrent_queries_racing_ingest_see_whole_graphs() {
    let edges = labeled(random_edges());
    let chunk = edges.len().div_ceil(5);
    let batches: Vec<&[(u64, u64, String)]> = edges.chunks(chunk).collect();

    // Valid observable counts: every prefix of whole batches.
    let mut valid = vec![0u64]; // before the first batch lands
    let q = query(2, EngineMode::PushOnly, 1, Parallelism::Serial);
    for j in 1..=batches.len() {
        let plist = EdgeList::from_vec(edges[..(j * chunk).min(edges.len())].to_vec());
        valid.push(
            run_direct(
                &plist,
                2,
                EngineMode::PushOnly,
                q.config,
                q.comm.clone(),
                vm_of,
            )
            .count,
        );
    }

    let resident: Arc<ResidentGraph<String, String>> =
        Arc::new(ResidentGraph::from_vertices(Vec::new(), Partition::Hashed));
    let stop = Arc::new(AtomicBool::new(false));
    let mut joins = Vec::new();
    for t in 0..2 {
        let (r, stop2, valid2, q2) = (resident.clone(), stop.clone(), valid.clone(), q.clone());
        joins.push(std::thread::spawn(move || {
            let mut observed = Vec::new();
            while !stop2.load(Ordering::Relaxed) {
                let c = r.triangle_count(&q2);
                assert!(
                    valid2.contains(&c),
                    "thread {t} observed torn count {c}, valid: {valid2:?}"
                );
                observed.push(c);
            }
            observed
        }));
    }
    for batch in &batches {
        resident
            .ingest_batch_with(batch, vm_of)
            .expect("racing ingest succeeds");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    stop.store(true, Ordering::Relaxed);
    let mut all_observed = Vec::new();
    for j in joins {
        all_observed.extend(j.join().expect("query thread panicked"));
    }
    assert!(!all_observed.is_empty(), "raced queries actually ran");
    // After the dust settles the final graph is complete.
    assert_eq!(resident.triangle_count(&q), *valid.last().unwrap());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    /// Satellite 2: ANY partition of an edge list into batches —
    /// empty batches, duplicates and self-loops straddling boundaries —
    /// converges to the same final survey as one-shot ingest, and the
    /// merged per-batch deltas equal the full accumulation.
    #[test]
    fn any_batch_partition_converges(eb in edge_batches(10, 60, 6)) {
        let resident: ResidentGraph<u64, u64> =
            ResidentGraph::from_vertices(Vec::new(), Partition::Hashed);
        let mut running = SurveyDelta::default();
        for batch in eb.batches() {
            let b: Vec<(u64, u64, u64)> =
                batch.iter().map(|&(u, v)| (u, v, em_num(u, v))).collect();
            let delta = resident.ingest_batch_with(&b, vm_num).unwrap();
            let sink = SurveyDeltaSink::new();
            let s2 = sink.clone();
            resident
                .survey_delta(
                    &delta,
                    &query(2, EngineMode::PushOnly, 1, Parallelism::Serial),
                    move |_c, tm| s2.record(sample_of(tm)),
                )
                .expect("freshest delta is never stale");
            running.merge(&sink.take());
        }
        let all: Vec<(u64, u64, u64)> = eb
            .edges
            .iter()
            .map(|&(u, v)| (u, v, em_num(u, v)))
            .collect();
        let oneshot =
            ResidentGraph::build(&EdgeList::from_vec(all), vm_num, Partition::Hashed);
        prop_assert_eq!(resident.num_vertices(), oneshot.num_vertices());
        for (nranks, mode) in [(2usize, EngineMode::PushOnly), (3, EngineMode::PushPull)] {
            let q = query(nranks, mode, 1, Parallelism::Serial);
            prop_assert_eq!(
                run_resident(&resident, &q),
                run_resident(&oneshot, &q),
                "incremental != one-shot [{} n={}]", mode, nranks
            );
        }
        let full = full_accumulation(
            &resident,
            &query(2, EngineMode::PushOnly, 1, Parallelism::Serial),
        );
        prop_assert_eq!(full, running, "merged deltas != full accumulation");
    }
}
