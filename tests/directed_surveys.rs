//! Directed-input support end-to-end (paper §4): arcs collapse to
//! undirected edges tagged with their original directionality, and the
//! tags arrive intact in survey callbacks.

use std::cell::RefCell;
use std::rc::Rc;

use tripoll::graph::{build_dist_graph, from_directed_edges, Partition, Provenance};
use tripoll::prelude::*;

#[test]
fn provenance_reaches_the_callback() {
    // Directed triangle 0 -> 1 -> 2 -> 0 plus a bidirectional chord 0 <-> 3
    // and arcs 1 -> 3, 2 <- 3 forming more triangles.
    let directed = vec![
        (0u64, 1u64, "a"),
        (1, 2, "b"),
        (2, 0, "c"),
        (0, 3, "d"),
        (3, 0, "e"), // together with (0,3): bidirectional
        (1, 3, "f"),
        (3, 2, "g"),
    ];
    let list = from_directed_edges(
        directed
            .into_iter()
            .map(|(u, v, m)| (u, v, m.to_string()))
            .collect(),
    );

    let out = World::new(3).run(|comm| {
        let local = list.stride_for_rank(comm.rank(), comm.nranks());
        let g = build_dist_graph(comm, local, |_| (), Partition::Hashed);
        type SeenEdges = Rc<RefCell<Vec<(u64, u64, Provenance, String)>>>;
        let seen: SeenEdges = Rc::new(RefCell::new(Vec::new()));
        let seen_cb = seen.clone();
        survey(comm, &g, EngineMode::PushPull, move |_c, tm| {
            for ((a, b), (prov, label)) in [
                ((tm.p, tm.q), tm.meta_pq.clone()),
                ((tm.p, tm.r), tm.meta_pr.clone()),
                ((tm.q, tm.r), tm.meta_qr.clone()),
            ] {
                seen_cb.borrow_mut().push((a.min(b), a.max(b), prov, label));
            }
        });
        comm.barrier();
        let collected = seen.borrow().clone();
        collected
    });

    let mut all: Vec<(u64, u64, Provenance, String)> = out.into_iter().flatten().collect();
    all.sort_by_key(|x| (x.0, x.1, x.3.clone()));
    all.dedup();
    assert!(!all.is_empty(), "directed graph should contain triangles");

    // Every observed (edge, provenance, label) matches the input arcs.
    for (u, v, prov, label) in &all {
        match (*u, *v) {
            (0, 1) => assert_eq!((*prov, label.as_str()), (Provenance::Forward, "a")),
            (1, 2) => assert_eq!((*prov, label.as_str()), (Provenance::Forward, "b")),
            (0, 2) => assert_eq!((*prov, label.as_str()), (Provenance::Reversed, "c")),
            (0, 3) => assert_eq!((*prov, label.as_str()), (Provenance::Bidirectional, "d")),
            (1, 3) => assert_eq!((*prov, label.as_str()), (Provenance::Forward, "f")),
            (2, 3) => assert_eq!((*prov, label.as_str()), (Provenance::Reversed, "g")),
            other => panic!("unexpected edge {other:?}"),
        }
    }
}

#[test]
fn directed_cycle_census() {
    // Use provenance to count *directed 3-cycles* (all arcs pointing the
    // same way around) vs merely undirected triangles.
    //
    // Graph: a directed 3-cycle {0,1,2}; a "feed-forward" triangle
    // {3,4,5} (3->4, 3->5, 4->5 — transitive, NOT a directed cycle).
    let directed = vec![
        (0u64, 1u64, ()),
        (1, 2, ()),
        (2, 0, ()),
        (3, 4, ()),
        (3, 5, ()),
        (4, 5, ()),
    ];
    let list = from_directed_edges(directed);
    let out = World::new(2).run(|comm| {
        let local = list.stride_for_rank(comm.rank(), comm.nranks());
        let g = build_dist_graph(comm, local, |_| (), Partition::Hashed);
        let cycles = Rc::new(std::cell::Cell::new(0u64));
        let triangles = Rc::new(std::cell::Cell::new(0u64));
        let (cyc, tri) = (cycles.clone(), triangles.clone());
        survey(comm, &g, EngineMode::PushOnly, move |_c, tm| {
            tri.set(tri.get() + 1);
            let arc = |a: u64, b: u64, prov: Provenance| prov.has_arc(a, b);
            let (pq, pr, qr) = (tm.meta_pq.0, tm.meta_pr.0, tm.meta_qr.0);
            // Directed cycle: p->q->r->p or p->r->q->p.
            let fwd = arc(tm.p, tm.q, pq) && arc(tm.q, tm.r, qr) && arc(tm.r, tm.p, pr);
            let bwd = arc(tm.p, tm.r, pr) && arc(tm.r, tm.q, qr) && arc(tm.q, tm.p, pq);
            if fwd || bwd {
                cyc.set(cyc.get() + 1);
            }
        });
        comm.barrier();
        (
            comm.all_reduce_sum(triangles.get()),
            comm.all_reduce_sum(cycles.get()),
        )
    });
    for (triangles, cycles) in out {
        assert_eq!(triangles, 2, "two undirected triangles");
        assert_eq!(cycles, 1, "only {{0,1,2}} is a directed cycle");
    }
}
