//! Cross-crate validation: both distributed survey engines against the
//! serial oracle, across rank counts, modes and generated workloads.

use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

use tripoll::analysis;
use tripoll::gen::{self, DatasetSize};
use tripoll::graph::{build_dist_graph, Csr, EdgeList, Partition};
use tripoll::prelude::*;

fn oracle(edges: &[(u64, u64)]) -> u64 {
    analysis::triangle_count(&Csr::from_edges(edges))
}

fn distributed_count(edges: &[(u64, u64)], nranks: usize, mode: EngineMode) -> u64 {
    let list = EdgeList::from_vec(edges.iter().map(|&(u, v)| (u, v, ())).collect::<Vec<_>>());
    let out = World::new(nranks).run(|comm| {
        let local = list.stride_for_rank(comm.rank(), comm.nranks());
        let g = build_dist_graph(comm, local, |_| (), Partition::Hashed);
        triangle_count(comm, &g, mode).0
    });
    assert!(out.iter().all(|&c| c == out[0]), "ranks disagree");
    out[0]
}

#[test]
fn all_dataset_standins_match_oracle() {
    for ds in gen::table2_suite(DatasetSize::Tiny, 11) {
        let expect = oracle(&ds.edges);
        assert!(expect > 0, "{} has no triangles", ds.name);
        for mode in [EngineMode::PushOnly, EngineMode::PushPull] {
            assert_eq!(
                distributed_count(&ds.edges, 3, mode),
                expect,
                "{} under {mode}",
                ds.name
            );
        }
    }
}

#[test]
fn counts_invariant_across_rank_counts_and_partitions() {
    let ds = gen::webcc12_like(DatasetSize::Tiny, 3);
    let expect = oracle(&ds.edges);
    let list = EdgeList::from_vec(
        ds.edges
            .iter()
            .map(|&(u, v)| (u, v, ()))
            .collect::<Vec<_>>(),
    );
    for nranks in [1, 2, 3, 5, 8] {
        for partition in [Partition::Hashed, Partition::Cyclic] {
            let out = World::new(nranks).run(|comm| {
                let local = list.stride_for_rank(comm.rank(), comm.nranks());
                let g = build_dist_graph(comm, local, |_| (), partition);
                triangle_count(comm, &g, EngineMode::PushPull).0
            });
            assert_eq!(out[0], expect, "nranks={nranks} partition={partition:?}");
        }
    }
}

#[test]
fn every_triangle_reported_exactly_once() {
    // Gather the (p, q, r) id triples from every rank's callbacks and
    // compare against the oracle's enumeration as *sets with
    // multiplicity*.
    let ds = gen::livejournal_like(DatasetSize::Tiny, 5);
    let csr = Csr::from_edges(&ds.edges);
    let mut expected: Vec<(u64, u64, u64)> = Vec::new();
    analysis::enumerate_triangles(&csr, |p, q, r| {
        let mut t = [p, q, r];
        t.sort_unstable();
        expected.push((t[0], t[1], t[2]));
    });
    expected.sort_unstable();

    let list = EdgeList::from_vec(
        ds.edges
            .iter()
            .map(|&(u, v)| (u, v, ()))
            .collect::<Vec<_>>(),
    );
    for mode in [EngineMode::PushOnly, EngineMode::PushPull] {
        let out = World::new(4).run(|comm| {
            let local = list.stride_for_rank(comm.rank(), comm.nranks());
            let g = build_dist_graph(comm, local, |_| (), Partition::Hashed);
            let seen: Rc<RefCell<Vec<(u64, u64, u64)>>> = Rc::new(RefCell::new(Vec::new()));
            let seen_cb = seen.clone();
            survey(comm, &g, mode, move |_c, tm| {
                let mut t = [tm.p, tm.q, tm.r];
                t.sort_unstable();
                seen_cb.borrow_mut().push((t[0], t[1], t[2]));
            });
            comm.barrier();
            let collected = seen.borrow().clone();
            collected
        });
        let mut got: Vec<(u64, u64, u64)> = out.into_iter().flatten().collect();
        got.sort_unstable();
        assert_eq!(got, expected, "{mode}");
    }
}

#[test]
fn rmat_counts_match_oracle() {
    let edges = gen::rmat_edges(&gen::RmatConfig::graph500(9, 17));
    let expect = oracle(&edges);
    assert!(expect > 0);
    for nranks in [1, 4] {
        for mode in [EngineMode::PushOnly, EngineMode::PushPull] {
            assert_eq!(distributed_count(&edges, nranks, mode), expect);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn random_graphs_match_oracle(
        edges in proptest::collection::vec((0u64..48, 0u64..48), 1..160),
        nranks in 1usize..5,
        push_pull in any::<bool>(),
    ) {
        let expect = oracle(&edges);
        let mode = if push_pull { EngineMode::PushPull } else { EngineMode::PushOnly };
        prop_assert_eq!(distributed_count(&edges, nranks, mode), expect);
    }
}
