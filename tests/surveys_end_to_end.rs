//! End-to-end survey validation on generated workloads: the paper's
//! analyses produce identical results whichever engine runs them, on any
//! rank count, and match a serial recomputation.

use tripoll::analysis::{self, ceil_log2, JointHistogram};
use tripoll::gen::{self, DatasetSize};
use tripoll::graph::{build_dist_graph, Csr, EdgeList, Partition};
use tripoll::prelude::*;
use tripoll_ygm::hash::FastMap;

#[test]
fn closure_survey_matches_serial_on_reddit_standin() {
    let edges = gen::reddit_like(DatasetSize::Tiny, 9);

    // Serial recomputation.
    let ts: FastMap<(u64, u64), u64> = edges
        .as_slice()
        .iter()
        .map(|&(u, v, t)| ((u, v), t))
        .collect();
    let topo: Vec<(u64, u64)> = edges.as_slice().iter().map(|&(u, v, _)| (u, v)).collect();
    let csr = Csr::from_edges(&topo);
    let mut expect = JointHistogram::new();
    analysis::enumerate_triangles(&csr, |p, q, r| {
        let get = |a: u64, b: u64| ts[&(a.min(b), a.max(b))];
        let mut tt = [get(p, q), get(p, r), get(q, r)];
        tt.sort_unstable();
        expect.add(ceil_log2(tt[1] - tt[0]), ceil_log2(tt[2] - tt[0]), 1);
    });
    assert!(expect.total() > 100, "stand-in should be triangle-rich");

    for mode in [EngineMode::PushOnly, EngineMode::PushPull] {
        for nranks in [1, 4] {
            let out = World::new(nranks).run(|comm| {
                let local = edges.stride_for_rank(comm.rank(), comm.nranks());
                let g: DistGraph<(), u64> =
                    build_dist_graph(comm, local, |_| (), Partition::Hashed);
                closure_time_survey(comm, &g, mode, |&t| t).0
            });
            for hist in &out {
                assert_eq!(*hist, expect, "{mode} nranks={nranks}");
            }
        }
    }
}

#[test]
fn fqdn_survey_engines_agree_and_find_planted_structure() {
    let web = gen::wdc_like(DatasetSize::Tiny, 13);
    let list = EdgeList::from_vec(
        web.edges
            .iter()
            .map(|&(u, v)| (u, v, ()))
            .collect::<Vec<_>>(),
    )
    .canonicalize();
    let fqdn_fn = web.fqdn_fn();
    let out = World::new(3).run(move |comm| {
        let local = list.stride_for_rank(comm.rank(), comm.nranks());
        let g: DistGraph<String, ()> =
            build_dist_graph(comm, local, fqdn_fn.clone(), Partition::Hashed);
        let (a, _) = fqdn_tuple_survey(comm, &g, EngineMode::PushOnly);
        let (b, _) = fqdn_tuple_survey(comm, &g, EngineMode::PushPull);
        (a, b)
    });
    for (a, b) in &out {
        assert_eq!(a.tuples, b.tuples, "engines disagree on tuple counts");
        assert_eq!(a.distinct_triangles, b.distinct_triangles);
        // Planted structure: the amazon family co-occurs with the hub.
        let partners: Vec<String> = a
            .pairs_with("amazon.example")
            .into_iter()
            .flat_map(|(x, y, _)| [x, y])
            .collect();
        assert!(
            partners.iter().any(|p| p == "abebooks.example"),
            "competitor bookseller missing from hub triangles"
        );
        assert!(
            partners
                .iter()
                .any(|p| p.starts_with("amazon") || p == "audible.example"),
            "amazon family missing from hub triangles"
        );
    }
}

#[test]
fn degree_triples_sum_to_triangle_count() {
    let ds = gen::livejournal_like(DatasetSize::Tiny, 21);
    let expect = analysis::triangle_count(&Csr::from_edges(&ds.edges));
    let list = EdgeList::from_vec(
        ds.edges
            .iter()
            .map(|&(u, v)| (u, v, ()))
            .collect::<Vec<_>>(),
    )
    .canonicalize();
    // Degree table (canonical edges).
    let mut deg: FastMap<u64, u64> = FastMap::default();
    for (u, v, ()) in list.as_slice() {
        *deg.entry(*u).or_insert(0) += 1;
        *deg.entry(*v).or_insert(0) += 1;
    }
    let deg = std::sync::Arc::new(deg);
    let out = World::new(4).run(move |comm| {
        let local = list.stride_for_rank(comm.rank(), comm.nranks());
        let deg = std::sync::Arc::clone(&deg);
        let g = build_dist_graph(comm, local, move |v| deg[&v], Partition::Hashed);
        degree_triple_survey(comm, &g, EngineMode::PushPull).0
    });
    for dist in out {
        let total: u64 = dist.iter().map(|(_, c)| c).sum();
        assert_eq!(total, expect, "every triangle contributes one triple");
    }
}

#[test]
fn custom_callback_with_counting_set_composes_with_engine_traffic() {
    // The §4.1.4 composability claim: a user survey may drive its own
    // distributed counting set from inside the callback, interleaving
    // counting-set flushes with triangle identification messages.
    let ds = gen::friendster_like(DatasetSize::Tiny, 2);
    let expect = analysis::triangle_count(&Csr::from_edges(&ds.edges));
    let list = EdgeList::from_vec(
        ds.edges
            .iter()
            .map(|&(u, v)| (u, v, ()))
            .collect::<Vec<_>>(),
    );
    let out = World::new(4).run(|comm| {
        let local = list.stride_for_rank(comm.rank(), comm.nranks());
        let g = build_dist_graph(comm, local, |v| v % 7, Partition::Hashed);
        // Tiny cache so flushes definitely interleave with pushes/pulls.
        let set = tripoll_ygm::container::DistCountingSet::<u64>::with_cache_capacity(comm, 8);
        let set_cb = set.clone();
        survey(comm, &g, EngineMode::PushPull, move |c, tm| {
            set_cb.increment(c, (*tm.meta_p + *tm.meta_q + *tm.meta_r) % 21);
        });
        let gathered = set.gather(comm);
        gathered.iter().map(|(_, c)| c).sum::<u64>()
    });
    assert_eq!(out, vec![expect; 4]);
}

#[test]
fn survey_reports_are_consistent() {
    let ds = gen::webcc12_like(DatasetSize::Tiny, 4);
    let list = EdgeList::from_vec(
        ds.edges
            .iter()
            .map(|&(u, v)| (u, v, ()))
            .collect::<Vec<_>>(),
    )
    .canonicalize();
    let out = World::new(3).run(|comm| {
        let local = list.stride_for_rank(comm.rank(), comm.nranks());
        let g = build_dist_graph(comm, local, |_| false, Partition::Hashed);
        let (_, po) = triangle_count(comm, &g, EngineMode::PushOnly);
        let (_, pp) = triangle_count(comm, &g, EngineMode::PushPull);
        (po, pp)
    });
    for (po, pp) in &out {
        assert_eq!(po.mode, EngineMode::PushOnly);
        assert_eq!(po.phases.len(), 1);
        assert_eq!(po.pulled_vertices, 0);
        assert_eq!(pp.mode, EngineMode::PushPull);
        assert_eq!(pp.phases.len(), 3);
        assert!(pp.total_seconds >= 0.0);
        // Phase stats sum to the local stats.
        let sum = pp.local_stats();
        assert_eq!(
            sum.records_total(),
            pp.phases
                .iter()
                .map(|p| p.stats.records_total())
                .sum::<u64>()
        );
    }
    // Push-Pull moves fewer payload bytes than Push-Only on this
    // hub-heavy web graph (the Table 4 headline).
    let po_bytes: u64 = out
        .iter()
        .map(|(po, _)| po.local_stats().bytes_total())
        .sum();
    let pp_bytes: u64 = out
        .iter()
        .map(|(_, pp)| pp.local_stats().bytes_total())
        .sum();
    assert!(
        pp_bytes * 2 < po_bytes,
        "expected >=2x traffic cut on web graph: push-only {po_bytes}, push-pull {pp_bytes}"
    );
}
