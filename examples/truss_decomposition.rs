//! k-truss decomposition from a distributed triangle survey.
//!
//! ```text
//! cargo run --release --example truss_decomposition [nranks]
//! ```
//!
//! The paper's §1 motivates processing every triangle with downstream
//! applications like truss decomposition [Cohen 2008]: counts of
//! triangles at *edges*. This example runs that pipeline end-to-end:
//!
//! 1. survey the distributed graph with the per-edge participation
//!    callback (`edge_triangle_counts`, a two-line survey);
//! 2. peel the gathered supports into the full truss decomposition.

use tripoll::analysis::truss_decomposition;
use tripoll::graph::Csr;
use tripoll::prelude::*;

fn main() {
    let nranks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    println!("Generating a web-like graph (dense domains -> dense trusses)...");
    let web = tripoll::gen::webcc12_like(DatasetSize::Tiny, 3);
    let edges = EdgeList::from_vec(
        web.edges
            .iter()
            .map(|&(u, v)| (u, v, ()))
            .collect::<Vec<_>>(),
    )
    .canonicalize();
    println!("  {} edges\n", edges.len());

    // Distributed: per-edge triangle supports via the survey engine.
    let outputs = World::new(nranks).run(|comm| {
        let local = edges.stride_for_rank(comm.rank(), comm.nranks());
        let graph = build_dist_graph(comm, local, |_| (), Partition::Hashed);
        edge_triangle_counts(comm, &graph, EngineMode::PushPull).0
    });
    let supports = &outputs[0];
    let supported: usize = supports.len();
    println!("Distributed survey: {supported} edges participate in at least one triangle.");

    // Serial peeling on the gathered supports.
    let d = truss_decomposition(&Csr::from_edges(&web.edges));
    let mut table = Table::new(
        format!("Truss decomposition (max k = {})", d.max_k),
        &["k", "edges in k-truss"],
    );
    for k in 3..=d.max_k {
        table.row(&[k.to_string(), d.ktruss_edges(k).len().to_string()]);
    }
    println!("{}", table.render());

    // Consistency: initial supports from the distributed survey equal the
    // trussness-3 candidates.
    let with_triangles = d.trussness.iter().filter(|(_, t)| *t >= 3).count();
    println!(
        "{with_triangles} edges have trussness >= 3; the distributed survey found \
         supports for {supported} edges."
    );
    assert_eq!(with_triangles, supported);
    println!("Distributed supports and serial peeling agree.");
}
