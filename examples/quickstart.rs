//! Quickstart: count triangles in an R-MAT graph with both engines.
//!
//! ```text
//! cargo run --release --example quickstart [scale] [nranks]
//! ```
//!
//! This is the paper's Alg. 2 — the simplest survey, whose callback
//! ignores all metadata and just increments a counter. The run prints
//! per-engine timing and exact communication volumes, cross-checked
//! against the serial reference counter.

use tripoll::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(12);
    let nranks: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    println!("Generating R-MAT scale {scale} (edge factor 16)...");
    let cfg = RmatConfig::graph500(scale, 42);
    let raw = rmat_edges(&cfg);
    let edges =
        EdgeList::from_vec(raw.iter().map(|&(u, v)| (u, v, ())).collect::<Vec<_>>()).canonicalize();
    println!(
        "  {} raw records -> {} canonical undirected edges, {} vertices\n",
        raw.len(),
        edges.len(),
        edges.vertex_count()
    );

    let expected = tripoll::analysis::triangle_count(&tripoll::graph::Csr::from_edges(&raw));
    println!("Serial reference count: {expected} triangles\n");

    for mode in [EngineMode::PushOnly, EngineMode::PushPull] {
        let outputs = World::new(nranks).run_with_stats(|comm| {
            let local = edges.stride_for_rank(comm.rank(), comm.nranks());
            // The paper affixes dummy boolean metadata for plain counting.
            let graph = build_dist_graph(comm, local, |_| false, Partition::Hashed);
            triangle_count(comm, &graph, mode)
        });
        let (count, report) = &outputs.results[0];
        assert_eq!(*count, expected, "distributed count must match oracle");

        let total = outputs.total_stats();
        println!("{mode} on {nranks} simulated ranks:");
        println!("  triangles: {count}");
        println!(
            "  survey wall time (max rank): {:.1} ms",
            outputs
                .results
                .iter()
                .map(|(_, r)| r.total_seconds)
                .fold(0.0, f64::max)
                * 1e3
        );
        for phase in &report.phases {
            println!(
                "  phase {:>7}: {:.1} ms (rank 0)",
                phase.name,
                phase.seconds * 1e3
            );
        }
        println!(
            "  communication: {} payload bytes in {} records ({} buffered messages)",
            total.bytes_total(),
            total.records_total(),
            total.envelopes_remote + total.envelopes_local,
        );
        let pulled: u64 = outputs.results.iter().map(|(_, r)| r.pulled_vertices).sum();
        println!("  adjacency lists pulled: {pulled}\n");
    }
    println!("Both engines agree with the serial oracle.");
}
