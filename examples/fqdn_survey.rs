//! FQDN metadata survey on a web graph (the paper's §5.8 / Fig. 8).
//!
//! ```text
//! cargo run --release --example fqdn_survey [nranks]
//! ```
//!
//! Every page carries its fully qualified domain name as a *string*
//! vertex metadata value — exercising the serialization layer's
//! variable-length payloads exactly as the paper does. The survey counts
//! FQDN 3-tuples over triangles with three distinct domains; the
//! post-processing slices the tuples around `amazon.example` and orders
//! the co-occurring domains by Louvain communities.

use tripoll::prelude::*;

fn main() {
    let nranks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    println!("Generating a Web-Data-Commons-like page graph with FQDN metadata...");
    let web = tripoll::gen::wdc_like(DatasetSize::Tiny, 42);
    let edges = EdgeList::from_vec(
        web.edges
            .iter()
            .map(|&(u, v)| (u, v, ()))
            .collect::<Vec<_>>(),
    )
    .canonicalize();
    println!(
        "  {} pages across {} domains, {} edges\n",
        web.vertices(),
        web.num_domains(),
        edges.len()
    );

    let fqdn_fn = web.fqdn_fn();
    let outputs = World::new(nranks).run(move |comm| {
        let local = edges.stride_for_rank(comm.rank(), comm.nranks());
        let graph: DistGraph<String, ()> =
            build_dist_graph(comm, local, fqdn_fn.clone(), Partition::Hashed);
        fqdn_tuple_survey(comm, &graph, EngineMode::PushPull)
    });
    let (result, _report) = &outputs[0];

    println!(
        "Triangles with 3 distinct FQDNs: {}; unique FQDN 3-tuples: {}\n",
        result.distinct_triangles,
        result.unique_tuples()
    );

    // Community structure of the co-occurrence graph.
    let mut co: std::collections::BTreeMap<(String, String), f64> = Default::default();
    for ((a, b, c), count) in &result.tuples {
        for (x, y) in [(a, b), (a, c), (b, c)] {
            *co.entry((x.clone(), y.clone())).or_insert(0.0) += *count as f64;
        }
    }
    let co_edges: Vec<(String, String, f64)> =
        co.into_iter().map(|((a, b), w)| (a, b, w)).collect();
    let (communities, louvain) = louvain_labeled(&co_edges);
    println!(
        "Louvain: {} FQDNs -> {} communities (modularity {:.3})\n",
        communities.len(),
        louvain.num_communities(),
        louvain.modularity
    );

    // The Fig. 8 slice: who shares triangles with the hub?
    let hub = "amazon.example";
    let pairs = result.pairs_with(hub);
    let mut weight: std::collections::BTreeMap<&str, u64> = Default::default();
    for (a, b, c) in &pairs {
        *weight.entry(a.as_str()).or_insert(0) += c;
        *weight.entry(b.as_str()).or_insert(0) += c;
    }
    let mut table = Table::new(
        format!("Top FQDNs co-occurring in triangles with \"{hub}\""),
        &["FQDN", "weight", "community"],
    );
    let mut rows: Vec<(&str, u64)> = weight.into_iter().collect();
    rows.sort_by_key(|&(_, w)| std::cmp::Reverse(w));
    for (name, w) in rows.into_iter().take(15) {
        let com = communities
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c.to_string())
            .unwrap_or_else(|| "-".into());
        table.row(&[name.to_string(), w.to_string(), com]);
    }
    println!("{}", table.render());
    println!(
        "Expect the amazon family (amazon.co / amazon-media / audible) near the top,\n\
         the competing bookseller abebooks.example well-connected, and the\n\
         edu/library domains grouped in their own community."
    );
}
