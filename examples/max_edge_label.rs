//! Max-edge-label distribution (the paper's Alg. 3).
//!
//! ```text
//! cargo run --release --example max_edge_label [nranks]
//! ```
//!
//! "Suppose we wish to know the distribution of maximum edge labels seen
//! among all triangles in which all vertex labels are distinct." A social
//! graph is decorated with vertex group labels and edge interaction
//! labels; the survey callback filters triangles with three distinct
//! groups and tallies the strongest interaction on each.

use tripoll::prelude::*;
use tripoll_ygm::hash::hash64;

/// Edge interaction labels, ordered weakest to strongest.
const INTERACTIONS: [&str; 4] = ["viewed", "messaged", "traded", "endorsed"];

fn main() {
    let nranks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    println!("Generating a labeled social graph...");
    let topo = tripoll::gen::livejournal_like(DatasetSize::Tiny, 7);
    // Edge label: deterministic "interaction strength" 0..4.
    let edges = EdgeList::from_vec(
        topo.edges
            .iter()
            .map(|&(u, v)| (u, v, hash64(u.min(v) ^ u.max(v).rotate_left(17)) % 4))
            .collect::<Vec<_>>(),
    )
    .canonicalize();
    println!("  {} edges\n", edges.len());

    let outputs = World::new(nranks).run(|comm| {
        let local = edges.stride_for_rank(comm.rank(), comm.nranks());
        // Vertex label: one of 5 user groups.
        let graph = build_dist_graph(comm, local, |v| hash64(v) % 5, Partition::Hashed);
        max_edge_label_distribution(comm, &graph, EngineMode::PushPull, |&label| label)
    });
    let (dist, _report) = &outputs[0];

    let total: u64 = dist.iter().map(|(_, c)| c).sum();
    println!("Triangles with three distinct vertex groups: {total}\n");
    let mut table = Table::new(
        "Distribution of the strongest interaction per triangle (Alg. 3)",
        &["max edge label", "interaction", "triangles", "share"],
    );
    for (label, count) in dist {
        table.row(&[
            label.to_string(),
            INTERACTIONS[*label as usize].to_string(),
            count.to_string(),
            format!("{:.1}%", 100.0 * *count as f64 / total.max(1) as f64),
        ]);
    }
    println!("{}", table.render());
}
