//! Reddit triangle closure times (the paper's §5.7 / Fig. 6 survey).
//!
//! ```text
//! cargo run --release --example reddit_closure_times [users] [nranks]
//! ```
//!
//! Builds a temporal comment graph (authors as vertices, first-comment
//! timestamps as edge metadata), then surveys every triangle: sort the
//! three timestamps `t1 <= t2 <= t3`, bucket the wedge opening time
//! `t2 - t1` and the triangle closing time `t3 - t1` by `ceil(log2(.))`,
//! and count `(open, close)` pairs in a distributed counting set — the
//! paper's Alg. 4, verbatim.

use tripoll::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let users: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(5_000);
    let nranks: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    println!("Generating a Reddit-like temporal graph: {users} authors...");
    let cfg = RedditConfig {
        users,
        comments: users * 12,
        ..Default::default()
    };
    let edges = tripoll::gen::reddit_edges(&cfg);
    println!(
        "  {} unique author-pair edges (chronologically-first timestamps kept)\n",
        edges.len()
    );

    let outputs = World::new(nranks).run(|comm| {
        let local = edges.stride_for_rank(comm.rank(), comm.nranks());
        // Timestamps ride as edge metadata; vertex metadata is unused.
        let graph: DistGraph<(), u64> = build_dist_graph(comm, local, |_| (), Partition::Hashed);
        closure_time_survey(comm, &graph, EngineMode::PushPull, |&t| t)
    });
    let (hist, report) = &outputs[0];

    println!("Surveyed {} triangles on {nranks} ranks.", hist.total());
    println!(
        "Survey phases (rank 0): {}\n",
        report
            .phases
            .iter()
            .map(|p| format!("{} {:.1}ms", p.name, p.seconds * 1e3))
            .collect::<Vec<_>>()
            .join(", ")
    );

    println!(
        "{}",
        hist.marginal_y()
            .render("Distribution of closing time (2^k seconds)")
    );
    println!(
        "{}",
        hist.marginal_x()
            .render("Distribution of opening time (2^k seconds)")
    );
    println!("{}", hist.render("opening time", "closing time"));
    println!("CSV (x=open bucket, y=close bucket):\n{}", hist.to_csv());
}
