//! Load-once, serve-many: the resident survey service.
//!
//! ```text
//! cargo run --release --example resident_service
//! ```
//!
//! The classic entry points rebuild the distributed graph (and, for
//! Push-Pull, rerun the dry-run) on every survey. This example shows
//! the server shape instead: ingest an R-MAT graph **once** into a
//! [`ResidentGraph`], save it as a versioned binary snapshot, restart
//! from the snapshot in O(read), and then serve a stream of queries —
//! different world sizes, engines, and thread counts — against the
//! same shared storage. Repeat Push-Pull queries at a world size
//! replay the cached dry-run plan with zero dry-run traffic.

use std::time::Instant;

use tripoll::core::Parallelism;
use tripoll::prelude::*;

fn main() {
    // ---- Ingest once -------------------------------------------------
    let cfg = RmatConfig::graph500(10, 42);
    let edges = EdgeList::from_vec(
        rmat_edges(&cfg)
            .into_iter()
            .map(|(u, v)| (u, v, ()))
            .collect::<Vec<_>>(),
    )
    .canonicalize();
    println!(
        "Ingesting {} R-MAT edges into resident storage...",
        edges.len()
    );
    let t = Instant::now();
    let resident: ResidentGraph<(), ()> = ResidentGraph::build(&edges, |_| (), Partition::Hashed);
    println!(
        "  built {} resident vertices in {:.1?}\n",
        resident.num_vertices(),
        t.elapsed()
    );

    // ---- Snapshot: persist, then restart in O(read) ------------------
    let dir = std::env::temp_dir().join("tripoll-resident-example");
    std::fs::create_dir_all(&dir).expect("create snapshot dir");
    let path = dir.join("graph.tplsnap");
    resident
        .save_snapshot(&path, 4)
        .expect("snapshot write failed");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let t = Instant::now();
    let restored: ResidentGraph<(), ()> =
        ResidentGraph::load_snapshot(&path).expect("snapshot load failed");
    println!(
        "Snapshot: {} bytes on disk, restart (load + validate) in {:.1?}\n",
        bytes,
        t.elapsed()
    );

    // ---- Serve many queries against the shared storage ---------------
    println!("Serving queries against the restored graph:");
    for (nranks, mode, threads) in [
        (2, EngineMode::PushOnly, Parallelism::Serial),
        (4, EngineMode::PushPull, Parallelism::Serial),
        (4, EngineMode::PushPull, Parallelism::Threads(4)), // replays the cached plan
        (7, EngineMode::PushPull, Parallelism::Threads(2)),
    ] {
        let q = ResidentQuery::new(nranks)
            .with_mode(mode)
            .with_threads(threads);
        let t = Instant::now();
        let count = restored.triangle_count(&q);
        println!(
            "  {mode} on {nranks} ranks ({:?} merge): {count} triangles in {:.1?}",
            threads,
            t.elapsed()
        );
    }

    // Queries see the same graph the original resident instance holds.
    let q = ResidentQuery::new(4);
    assert_eq!(resident.triangle_count(&q), restored.triangle_count(&q));
    println!("\nOriginal and snapshot-restored graphs agree. Done.");
    let _ = std::fs::remove_file(&path);
}
