//! Streaming ingest: grow a resident graph batch by batch and survey
//! only the delta.
//!
//! ```text
//! cargo run --release --example incremental_ingest
//! ```
//!
//! The paper's workflow assumes the graph is fixed before the survey
//! starts, but real edge streams keep arriving. This example builds a
//! [`ResidentGraph`] from a base prefix of an R-MAT edge list, then
//! appends the rest in batches with `ingest_batch_with` — each append
//! merges adjacency in place and re-derives the degree order only for
//! touched vertices — and runs `survey_delta` after every batch, so
//! the callback fires exactly once per *new* triangle. The per-batch
//! [`SurveyDelta`] accumulators merge additively into a running total
//! that stays bit-identical to a from-scratch full survey of
//! everything ingested so far: `full(G ∪ B) == full(G) + delta(G, B)`.
//!
//! Edge metadata is a deterministic timestamp, so the closure-time
//! accumulator (§5.7 of the paper) works incrementally too; vertex
//! metadata is a per-vertex weight feeding the degree-triple buckets.

use std::time::Instant;

use tripoll::prelude::*;
use tripoll::ygm::hash::hash64;

/// Deterministic per-edge timestamp (same value however often the
/// edge is re-sent — ingest keeps the first occurrence).
fn timestamp(u: u64, v: u64) -> u64 {
    hash64(u.min(v) * 1_000_003 + u.max(v)) % 10_000
}

/// One triangle's metadata, shaped for the [`SurveyDelta`] buckets.
fn sample(tm: &TriangleMeta<'_, u64, u64>) -> TriangleSample {
    TriangleSample {
        p: tm.p,
        q: tm.q,
        r: tm.r,
        degree_p: *tm.meta_p,
        degree_q: *tm.meta_q,
        degree_r: *tm.meta_r,
        t_pq: *tm.meta_pq,
        t_pr: *tm.meta_pr,
        t_qr: *tm.meta_qr,
    }
}

/// A full survey of the resident graph, folded into the accumulators.
fn full_survey(g: &ResidentGraph<u64, u64>, q: &ResidentQuery) -> SurveyDelta {
    let sink = SurveyDeltaSink::new();
    let s = sink.clone();
    g.survey(q, move |_c, tm| s.record(sample(tm)));
    sink.take()
}

fn main() {
    let weight = |v: u64| v % 97 + 1;
    let cfg = RmatConfig::graph500(10, 42);
    let all: Vec<(u64, u64, u64)> = EdgeList::from_vec(
        rmat_edges(&cfg)
            .into_iter()
            .map(|(u, v)| (u, v, timestamp(u, v)))
            .collect::<Vec<_>>(),
    )
    .canonicalize()
    .as_slice()
    .to_vec();

    // ---- Base graph: the first 80% of the stream ---------------------
    let cut = all.len() * 8 / 10;
    let resident: ResidentGraph<u64, u64> = ResidentGraph::build(
        &EdgeList::from_vec(all[..cut].to_vec()),
        weight,
        Partition::Hashed,
    );
    let q = ResidentQuery::new(4);
    let t = Instant::now();
    let mut total = full_survey(&resident, &q);
    println!(
        "Base graph: {} edges, {} vertices, {} triangles (full survey {:.1?})\n",
        cut,
        resident.num_vertices(),
        total.count(),
        t.elapsed()
    );

    // ---- Stream the rest in batches, surveying only the delta --------
    let nbatches = 4;
    let chunk = (all.len() - cut).div_ceil(nbatches);
    let mut last_delta = None;
    for (i, batch) in all[cut..].chunks(chunk).enumerate() {
        let t = Instant::now();
        // `ingest_batch` is strict (unknown endpoints are a structured
        // GraphError); `_with` admits the batch's new vertices too.
        let delta = resident
            .ingest_batch_with(batch, weight)
            .expect("canonical batch ingests");
        let ingest = t.elapsed();

        let sink = SurveyDeltaSink::new();
        let s = sink.clone();
        let t = Instant::now();
        resident
            .survey_delta(&delta, &q, move |_c, tm| s.record(sample(tm)))
            .expect("delta is from the current epoch");
        let new = sink.take();
        println!(
            "batch {i}: +{} edges (epoch {}), +{} triangles — ingest {ingest:.1?}, delta survey {:.1?}",
            delta.new_edges().len(),
            delta.epoch(),
            new.count(),
            t.elapsed()
        );
        total.merge(&new);
        last_delta = Some(delta);
    }

    // ---- The additive contract ---------------------------------------
    let t = Instant::now();
    let full = full_survey(&resident, &q);
    println!(
        "\nFull recount: {} triangles in {:.1?}",
        full.count(),
        t.elapsed()
    );
    assert_eq!(
        full, total,
        "merged deltas must equal the full accumulators bit-for-bit"
    );
    println!("Merged per-batch deltas equal the full survey — all four accumulators.");
    println!(
        "  {} degree-triple buckets, {} closure-time buckets, {} vertices with triangles",
        full.degree_triples().len(),
        full.closure_times().len(),
        full.local_counts().len()
    );

    // ---- Staleness is structural, not silent -------------------------
    let stale = last_delta.expect("streamed at least one batch");
    resident
        .ingest_batch_with(&[(0, 1, timestamp(0, 1))], weight)
        .expect("duplicate edge is a harmless no-op batch");
    let err = resident
        .survey_delta(&stale, &q, |_c, _tm| {})
        .expect_err("superseded delta must be refused");
    println!("\nSuperseded delta refused as expected: {err}. Done.");
}
