//! # TriPoll — surveys of triangles in massive-scale temporal graphs
//! # with metadata
//!
//! A from-scratch Rust reproduction of *"TriPoll: Computing Surveys of
//! Triangles in Massive-Scale Temporal Graphs with Metadata"* (Steil,
//! Reza, Iwabuchi, Priest, Sanders, Pearce — SC 2021,
//! [arXiv:2107.12330](https://arxiv.org/abs/2107.12330)).
//!
//! TriPoll identifies **every triangle** of a distributed graph whose
//! vertices and edges carry metadata, and runs a **user callback** on the
//! six metadata values of each triangle as it is found — triangle
//! counting, temporal closure analysis, and string-metadata surveys are
//! all the same engine with different callbacks.
//!
//! This crate is a facade over the workspace:
//!
//! * [`ygm`] — the asynchronous active-message runtime
//!   (YGM's role): wire serialization, message buffering, quiescence
//!   barriers, distributed containers, exact traffic accounting.
//! * [`graph`] — edge-list ingest and the distributed
//!   degree-ordered directed graph (DODGr) with metadata-augmented
//!   adjacency.
//! * [`core`] — the Push-Only and Push-Pull survey engines
//!   plus the paper's published surveys.
//! * [`gen`] — deterministic dataset stand-ins (R-MAT,
//!   social, web-with-FQDNs, temporal Reddit).
//! * [`baselines`] — the Table 2 comparison systems.
//! * [`analysis`] — serial oracle, histograms, Louvain,
//!   table rendering.
//!
//! ## Quickstart
//!
//! ```
//! use tripoll::prelude::*;
//!
//! // An R-MAT graph, surveyed on four simulated ranks.
//! let cfg = RmatConfig::graph500(8, 42);
//! let edges = EdgeList::from_vec(
//!     rmat_edges(&cfg).into_iter().map(|(u, v)| (u, v, ())).collect(),
//! )
//! .canonicalize();
//!
//! let counts = World::new(4).run(|comm| {
//!     let local = edges.stride_for_rank(comm.rank(), comm.nranks());
//!     let graph = build_dist_graph(comm, local, |_| (), Partition::Hashed);
//!     triangle_count(comm, &graph, EngineMode::PushPull).0
//! });
//! assert!(counts[0] > 0);
//! assert!(counts.iter().all(|&c| c == counts[0]));
//! ```
//!
//! See `examples/` for the paper's flagship analyses (Reddit closure
//! times, the FQDN survey) and `crates/bench/benches/` for the harness
//! that regenerates every table and figure of the evaluation.

pub use tripoll_analysis as analysis;
pub use tripoll_baselines as baselines;
pub use tripoll_core as core;
pub use tripoll_gen as gen;
pub use tripoll_graph as graph;
pub use tripoll_ygm as ygm;

/// One-stop imports for applications.
pub mod prelude {
    pub use tripoll_analysis::{ceil_log2, louvain_labeled, Histogram, JointHistogram, Table};
    pub use tripoll_core::surveys::closure_times::closure_time_survey;
    pub use tripoll_core::surveys::count::triangle_count;
    pub use tripoll_core::surveys::degree_triples::degree_triple_survey;
    pub use tripoll_core::surveys::fqdn_tuples::fqdn_tuple_survey;
    pub use tripoll_core::surveys::local_counts::{
        clustering_coefficients, edge_triangle_counts, vertex_triangle_counts,
    };
    pub use tripoll_core::surveys::max_edge_label::max_edge_label_distribution;
    pub use tripoll_core::{
        survey, survey_delta_push, survey_push_only, survey_push_only_with, survey_push_pull,
        survey_push_pull_with, BatchLayout, DecodePath, EngineMode, IngestDelta, QueryOutcome,
        ResidentGraph, ResidentQuery, StaleDeltaError, SurveyConfig, SurveyDelta, SurveyDeltaSink,
        SurveyReport, TriangleMeta, TriangleSample,
    };
    pub use tripoll_gen::{
        rmat_edges, web_graph, DatasetSize, RedditConfig, RmatConfig, WebGraphConfig,
    };
    pub use tripoll_graph::{
        build_dist_graph, from_directed_edges, load_snapshot, save_snapshot, DistGraph, EdgeList,
        GraphError, Partition, Provenance, SnapshotError,
    };
    pub use tripoll_ygm::prelude::*;
}
