//! TriC-style distributed triangle counting.
//!
//! Re-implementation of the approach of TriC (Ghosh & Halappanavar,
//! HPEC'20 — the paper's reference \[20\], 2020 GraphChallenge champion):
//!
//! * **edge-balanced partitions** — vertices are assigned to ranks in
//!   *contiguous blocks* cut so every rank holds roughly the same number
//!   of edges (not the same number of vertices),
//! * **parallel edge enumeration** with closure queries batched per
//!   destination into large vectors, exchanged in bulk rounds (TriC's
//!   "batch-oriented scalable communication substrate").
//!
//! Contiguous blocks interact badly with hub vertices (a block that
//! contains a hub owns a disproportionate share of wedges), which is one
//! reason Table 2 shows TriC lagging the hash-partitioned systems —
//! a behaviour this reimplementation inherits by design.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use tripoll_graph::OrderKey;
use tripoll_ygm::hash::{FastMap, FastSet};
use tripoll_ygm::Comm;

use crate::report::{BaselineReport, BaselineTimer};

/// Queries per batch record in the bulk exchange.
const BATCH: usize = 1024;

/// Edge-balanced contiguous partition: rank of vertex `v` given the
/// block boundaries (first vertex of each block, ascending).
fn block_owner(boundaries: &[u64], v: u64) -> usize {
    match boundaries.binary_search(&v) {
        Ok(i) => i,
        Err(i) => i - 1,
    }
}

/// Computes block boundaries so each rank's vertex range covers roughly
/// `total_degree / nranks` edge endpoints. `degrees` must be sorted by
/// vertex id.
fn edge_balanced_boundaries(degrees: &[(u64, u64)], nranks: usize) -> Vec<u64> {
    let total: u64 = degrees.iter().map(|&(_, d)| d).sum();
    let per_rank = total.div_ceil(nranks as u64).max(1);
    let mut boundaries = vec![0u64];
    let mut acc = 0u64;
    for &(v, d) in degrees {
        if boundaries.len() < nranks && acc >= per_rank * boundaries.len() as u64 {
            boundaries.push(v);
        }
        acc += d;
    }
    while boundaries.len() < nranks {
        // Degenerate graphs: pad with unreachable blocks.
        boundaries.push(u64::MAX);
    }
    boundaries
}

/// Counts triangles TriC-style. Collective; all ranks receive the global
/// count plus their own report.
pub fn tric_count(comm: &Comm, local_edges: Vec<(u64, u64)>) -> (u64, BaselineReport) {
    let timer = BaselineTimer::begin(comm, "TriC");
    let nranks = comm.nranks();

    // ---- Global degree table (gathered; TriC precomputes its partition
    // from the degree distribution) -------------------------------------
    let mut local_deg: FastMap<u64, u64> = FastMap::default();
    {
        // Canonical ownership of raw edges for dedup: hash of the pair.
        let canon: Rc<RefCell<FastSet<(u64, u64)>>> = Rc::new(RefCell::new(FastSet::default()));
        let canon_in = canon.clone();
        let h_edge = comm.register::<(u64, u64), _>(move |_c, e| {
            canon_in.borrow_mut().insert(e);
        });
        for (u, v) in &local_edges {
            if u == v {
                continue;
            }
            let e = (*u.min(v), *u.max(v));
            let dest =
                (tripoll_ygm::hash::hash64(e.0 ^ e.1.rotate_left(32)) % nranks as u64) as usize;
            comm.send(dest, &h_edge, &e);
        }
        comm.barrier();
        for &(u, v) in canon.borrow().iter() {
            *local_deg.entry(u).or_insert(0) += 1;
            *local_deg.entry(v).or_insert(0) += 1;
        }
        // Keep the deduplicated edges for redistribution below.
        let owned: Vec<(u64, u64)> = canon.borrow().iter().copied().collect();
        // Gather (v, partial degree) from all ranks; partial degrees for
        // a vertex may come from several ranks — merge.
        let mine: Vec<(u64, u64)> = local_deg.iter().map(|(&v, &d)| (v, d)).collect();
        let mut all: FastMap<u64, u64> = FastMap::default();
        for part in comm.all_gather(&mine) {
            for (v, d) in part {
                *all.entry(v).or_insert(0) += d;
            }
        }
        let mut degrees: Vec<(u64, u64)> = all.into_iter().collect();
        degrees.sort_unstable();

        let boundaries = edge_balanced_boundaries(&degrees, nranks);
        let deg_of: Rc<FastMap<u64, u64>> = Rc::new(degrees.iter().copied().collect());

        // ---- Redistribute adjacency to block owners -----------------------
        type BlockAdjacency = Rc<RefCell<FastMap<u64, Vec<(u64, u64)>>>>;
        let adj: BlockAdjacency = Rc::new(RefCell::new(FastMap::default()));
        let adj_in = adj.clone();
        let h_adj = comm.register::<(u64, u64, u64), _>(move |_c, (u, v, dv)| {
            adj_in.borrow_mut().entry(u).or_default().push((v, dv));
        });
        for (u, v) in owned {
            let (du, dv) = (deg_of[&u], deg_of[&v]);
            // Orient by <+ during scatter: only the out-edge is stored.
            if OrderKey::new(u, du) < OrderKey::new(v, dv) {
                comm.send(block_owner(&boundaries, u), &h_adj, &(u, v, dv));
            } else {
                comm.send(block_owner(&boundaries, v), &h_adj, &(v, u, du));
            }
        }
        comm.barrier();
        {
            let mut a = adj.borrow_mut();
            for list in a.values_mut() {
                list.sort_by_key(|&(v, dv)| OrderKey::new(v, dv));
                list.dedup();
            }
        }

        // ---- Bulk wedge-query exchange ------------------------------------
        let count = Rc::new(Cell::new(0u64));
        let count_in = count.clone();
        let adj_q = adj.clone();
        let h_queries = comm.register::<Vec<(u64, u64, u64)>, _>(move |_c, batch| {
            let a = adj_q.borrow();
            let mut hits = 0u64;
            _c.add_work(batch.len() as u64 * 8);
            for (q, r, dr) in batch {
                if let Some(list) = a.get(&q) {
                    let key = OrderKey::new(r, dr);
                    if list
                        .binary_search_by(|&(v, dv)| OrderKey::new(v, dv).cmp(&key))
                        .is_ok()
                    {
                        hits += 1;
                    }
                }
            }
            count_in.set(count_in.get() + hits);
        });

        {
            let a = adj.borrow();
            let mut batches: Vec<Vec<(u64, u64, u64)>> = (0..nranks).map(|_| Vec::new()).collect();
            for (_p, list) in a.iter() {
                for (i, &(q, _dq)) in list.iter().enumerate() {
                    let dest = block_owner(&boundaries, q);
                    for &(r, dr) in &list[i + 1..] {
                        batches[dest].push((q, r, dr));
                        if batches[dest].len() >= BATCH {
                            comm.send(dest, &h_queries, &batches[dest]);
                            batches[dest].clear();
                        }
                    }
                }
            }
            for (dest, batch) in batches.into_iter().enumerate() {
                if !batch.is_empty() {
                    comm.send(dest, &h_queries, &batch);
                }
            }
        }
        comm.barrier();

        let global = comm.all_reduce_sum(count.get());
        (global, timer.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tripoll_ygm::World;

    fn run(edges: &[(u64, u64)], nranks: usize) -> u64 {
        let edges = edges.to_vec();
        let out = World::new(nranks).run(move |comm| {
            let local: Vec<(u64, u64)> = edges
                .iter()
                .skip(comm.rank())
                .step_by(comm.nranks())
                .copied()
                .collect();
            tric_count(comm, local).0
        });
        let first = out[0];
        assert!(out.iter().all(|&c| c == first));
        first
    }

    #[test]
    fn counts_small_graphs() {
        assert_eq!(run(&[(0, 1), (1, 2), (2, 0)], 2), 1);
        assert_eq!(run(&[(0, 1), (1, 2), (2, 3)], 2), 0);
        let mut k6 = Vec::new();
        for u in 0..6u64 {
            for v in (u + 1)..6 {
                k6.push((u, v));
            }
        }
        for nranks in [1, 2, 3, 4] {
            assert_eq!(run(&k6, nranks), 20, "nranks={nranks}");
        }
    }

    #[test]
    fn matches_oracle() {
        let mut edges = Vec::new();
        for u in 0..50u64 {
            for v in (u + 1)..50 {
                if (u * 11 + v * 3) % 7 == 0 {
                    edges.push((u, v));
                }
            }
        }
        let expect = tripoll_analysis::triangle_count(&tripoll_graph::Csr::from_edges(&edges));
        assert!(expect > 0);
        assert_eq!(run(&edges, 4), expect);
    }

    #[test]
    fn boundaries_are_edge_balanced() {
        // One hub with degree 50 plus 50 degree-1 vertices: the hub's
        // block should not also absorb all the leaves.
        let mut degrees: Vec<(u64, u64)> = vec![(0, 50)];
        degrees.extend((1..=50u64).map(|v| (v, 1)));
        let b = edge_balanced_boundaries(&degrees, 2);
        assert_eq!(b.len(), 2);
        assert_eq!(b[0], 0);
        // The second block starts right after the hub's weight is covered.
        assert!(b[1] <= 26, "boundaries {b:?}");
        assert_eq!(block_owner(&b, 0), 0);
        assert_eq!(block_owner(&b, 50), 1);
    }

    #[test]
    fn block_owner_lookup() {
        let b = vec![0u64, 10, 20];
        assert_eq!(block_owner(&b, 0), 0);
        assert_eq!(block_owner(&b, 9), 0);
        assert_eq!(block_owner(&b, 10), 1);
        assert_eq!(block_owner(&b, 19), 1);
        assert_eq!(block_owner(&b, 1000), 2);
    }

    #[test]
    fn duplicate_and_reversed_input_edges() {
        assert_eq!(run(&[(0, 1), (1, 0), (0, 1), (1, 2), (2, 0), (0, 2)], 3), 1);
    }
}
