//! Tom & Karypis style 2D triangle counting.
//!
//! Re-implementation of the approach of "A 2D Parallel Triangle Counting
//! Algorithm for Distributed-Memory Architectures" (ICPP'19, the paper's
//! reference \[58\]): the adjacency matrix of the degree-ordered graph is
//! decomposed over a `√P × √P` process grid, and triangles are counted
//! as the masked sparse product `(L·L) ⊙ L` with Cannon-style stage
//! rotations of the blocks.
//!
//! Faithful operational properties:
//!
//! * requires a **perfect-square rank count** (the reason the paper's
//!   Table 2 runs used exactly 1024 ranks, and why TriPoll could not run
//!   it at other scales);
//! * per-stage block exchange: every block is shipped `2(√P − 1)` times,
//!   so communication volume grows with `√P` — high throughput at
//!   moderate scale, poor scalability beyond (the paper "was unable to
//!   get their code to run with more than 1024 MPI ranks").
//!
//! Block assignment is 2D-cyclic on hashed vertex ids:
//! `block(p → q) = (hash(p) mod √P, hash(q) mod √P)`.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use tripoll_graph::OrderKey;
use tripoll_ygm::hash::{hash64, FastMap, FastSet};
use tripoll_ygm::Comm;

use crate::report::{BaselineReport, BaselineTimer};

/// Chunk size for block shipping.
const CHUNK: usize = 1024;

/// Integer square root of a perfect square, or `None`.
fn perfect_sqrt(n: usize) -> Option<usize> {
    let s = (n as f64).sqrt().round() as usize;
    (s * s == n).then_some(s)
}

/// Counts triangles with the 2D algorithm. Collective.
///
/// # Panics
///
/// Panics unless the world's rank count is a perfect square (1, 4, 9,
/// 16, ...), mirroring the real implementation's requirement.
pub fn tom2d_count(comm: &Comm, local_edges: Vec<(u64, u64)>) -> (u64, BaselineReport) {
    let s = perfect_sqrt(comm.nranks()).unwrap_or_else(|| {
        panic!(
            "2D algorithm needs a perfect-square rank count, got {}",
            comm.nranks()
        )
    });
    let timer = BaselineTimer::begin(comm, "Tom et al.");
    let nranks = comm.nranks();
    let my_row = comm.rank() / s;
    let my_col = comm.rank() % s;
    let grid = |i: usize, j: usize| i * s + j;

    // ---- Canonical edges + degrees (as in the TriC setup) ----------------
    let canon: Rc<RefCell<FastSet<(u64, u64)>>> = Rc::new(RefCell::new(FastSet::default()));
    let canon_in = canon.clone();
    let h_edge = comm.register::<(u64, u64), _>(move |_c, e| {
        canon_in.borrow_mut().insert(e);
    });
    for (u, v) in &local_edges {
        if u == v {
            continue;
        }
        let e = (*u.min(v), *u.max(v));
        let dest = (hash64(e.0 ^ e.1.rotate_left(32)) % nranks as u64) as usize;
        comm.send(dest, &h_edge, &e);
    }
    comm.barrier();

    let mut partial: FastMap<u64, u64> = FastMap::default();
    for &(u, v) in canon.borrow().iter() {
        *partial.entry(u).or_insert(0) += 1;
        *partial.entry(v).or_insert(0) += 1;
    }
    let mine: Vec<(u64, u64)> = partial.into_iter().collect();
    let mut deg: FastMap<u64, u64> = FastMap::default();
    for part in comm.all_gather(&mine) {
        for (v, d) in part {
            *deg.entry(v).or_insert(0) += d;
        }
    }

    // ---- Distribute DODGr edges onto the 2D grid --------------------------
    // Local block storage: L_(my_row, my_col).
    let block: Rc<RefCell<Vec<(u64, u64)>>> = Rc::new(RefCell::new(Vec::new()));
    let block_in = block.clone();
    let h_block = comm.register::<(u64, u64), _>(move |_c, e| {
        block_in.borrow_mut().push(e);
    });
    {
        let owned: Vec<(u64, u64)> = canon.borrow().iter().copied().collect();
        for (u, v) in owned {
            let (p, q) = if OrderKey::new(u, deg[&u]) < OrderKey::new(v, deg[&v]) {
                (u, v)
            } else {
                (v, u)
            };
            let dest = grid(
                (hash64(p) % s as u64) as usize,
                (hash64(q) % s as u64) as usize,
            );
            comm.send(dest, &h_block, &(p, q));
        }
    }
    comm.barrier();

    // ---- Ship blocks for the stage joins ---------------------------------
    // Stage k at rank (i, j) joins A = L_(i,k) with B = L_(k,j), masked by
    // the local block L_(i,j). Rank (a, b) therefore serves as:
    //   A for stage b on every rank of row a,
    //   B for stage a on every rank of column b.
    #[derive(Default)]
    struct Stages {
        a: FastMap<u64, Vec<(u64, u64)>>, // stage -> A edges
        b: FastMap<u64, Vec<(u64, u64)>>, // stage -> B edges
    }
    let stages: Rc<RefCell<Stages>> = Rc::new(RefCell::new(Stages::default()));
    let stages_in = stages.clone();
    // (stage, role, edges): role 0 = A, 1 = B.
    let h_ship = comm.register::<(u64, u8, Vec<(u64, u64)>), _>(move |_c, (k, role, mut edges)| {
        let mut st = stages_in.borrow_mut();
        let slot = if role == 0 { &mut st.a } else { &mut st.b };
        slot.entry(k).or_default().append(&mut edges);
    });
    {
        let mine = block.borrow();
        for chunk in mine.chunks(CHUNK) {
            let payload = chunk.to_vec();
            for j in 0..s {
                comm.send(
                    grid(my_row, j),
                    &h_ship,
                    &(my_col as u64, 0u8, payload.clone()),
                );
            }
            for i in 0..s {
                comm.send(
                    grid(i, my_col),
                    &h_ship,
                    &(my_row as u64, 1u8, payload.clone()),
                );
            }
        }
    }
    comm.barrier();

    // ---- Local masked joins ----------------------------------------------
    let count = Rc::new(Cell::new(0u64));
    {
        let mask: FastSet<(u64, u64)> = block.borrow().iter().copied().collect();
        let st = stages.borrow();
        for k in 0..s as u64 {
            let (Some(a_edges), Some(b_edges)) = (st.a.get(&k), st.b.get(&k)) else {
                continue;
            };
            // Index B by source: q -> [r].
            let mut b_by_src: FastMap<u64, Vec<u64>> = FastMap::default();
            for &(q, r) in b_edges {
                b_by_src.entry(q).or_default().push(r);
            }
            let mut hits = 0u64;
            let mut probes = a_edges.len() as u64;
            for &(p, q) in a_edges {
                if let Some(rs) = b_by_src.get(&q) {
                    probes += rs.len() as u64;
                    for &r in rs {
                        if mask.contains(&(p, r)) {
                            hits += 1;
                        }
                    }
                }
            }
            comm.add_work(probes);
            count.set(count.get() + hits);
        }
    }
    comm.barrier();

    let global = comm.all_reduce_sum(count.get());
    (global, timer.end())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tripoll_ygm::World;

    fn run(edges: &[(u64, u64)], nranks: usize) -> u64 {
        let edges = edges.to_vec();
        let out = World::new(nranks).run(move |comm| {
            let local: Vec<(u64, u64)> = edges
                .iter()
                .skip(comm.rank())
                .step_by(comm.nranks())
                .copied()
                .collect();
            tom2d_count(comm, local).0
        });
        let first = out[0];
        assert!(out.iter().all(|&c| c == first));
        first
    }

    #[test]
    fn perfect_sqrt_detection() {
        assert_eq!(perfect_sqrt(1), Some(1));
        assert_eq!(perfect_sqrt(4), Some(2));
        assert_eq!(perfect_sqrt(9), Some(3));
        assert_eq!(perfect_sqrt(16), Some(4));
        assert_eq!(perfect_sqrt(2), None);
        assert_eq!(perfect_sqrt(8), None);
    }

    #[test]
    #[should_panic(expected = "perfect-square rank count")]
    fn rejects_non_square_worlds() {
        World::new(3).run(|comm| {
            tom2d_count(comm, vec![(0, 1)]);
        });
    }

    #[test]
    fn counts_k6_on_square_grids() {
        let mut k6 = Vec::new();
        for u in 0..6u64 {
            for v in (u + 1)..6 {
                k6.push((u, v));
            }
        }
        for nranks in [1, 4, 9] {
            assert_eq!(run(&k6, nranks), 20, "nranks={nranks}");
        }
    }

    #[test]
    fn matches_oracle() {
        let mut edges = Vec::new();
        for u in 0..45u64 {
            for v in (u + 1)..45 {
                if (u * 5 + v * 17) % 6 == 0 {
                    edges.push((u, v));
                }
            }
        }
        let expect = tripoll_analysis::triangle_count(&tripoll_graph::Csr::from_edges(&edges));
        assert!(expect > 0);
        assert_eq!(run(&edges, 4), expect);
    }

    #[test]
    fn triangle_free_graph() {
        assert_eq!(run(&[(0, 1), (1, 2), (2, 3), (3, 0)], 4), 0);
    }
}
