//! Pearce et al. style asynchronous wedge-query triangle counting.
//!
//! Re-implementation of the approach of "Triangle counting for
//! scale-free graphs at scale in distributed memory" (HPEC'17, the
//! paper's reference \[42\]) — at the time of the TriPoll paper the only
//! openly available code able to count the 224B-edge Web Data Commons
//! graph, and the comparison TriPoll beats by ~1.8-6.8x in Table 2.
//!
//! The published algorithm:
//!
//! 1. *iteratively prune degree-one vertices* (they cannot participate
//!    in triangles, and scale-free graphs have many),
//! 2. order vertices by degree (the same DODGr construction TriPoll
//!    uses),
//! 3. *query wedges for closure*: for every wedge `(q, r)` anchored at a
//!    pivot `p`, send one query record to `Rank(q)` asking whether the
//!    closing edge `(q, r)` exists.
//!
//! The structural difference from TriPoll is step 3: one message **per
//! wedge** instead of one batch per `(p, q)` pair, so the record count
//! equals `|W+|` — more, smaller application records for the same
//! triangles, which is exactly the traffic profile Table 2 punishes.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use tripoll_graph::{build_dist_graph, DistGraph, OrderKey, Partition};
use tripoll_ygm::hash::FastMap;
use tripoll_ygm::Comm;

use crate::report::{BaselineReport, BaselineTimer};

/// Maximum degree-one pruning sweeps (real graphs converge in a few).
const MAX_PRUNE_ROUNDS: usize = 64;

/// Iteratively removes degree-one vertices from a distributed edge set.
///
/// Returns this rank's share of the pruned, canonicalized undirected
/// edges (each edge emitted exactly once, by the owner of its smaller
/// endpoint). Collective.
pub fn prune_degree_one(
    comm: &Comm,
    local_edges: Vec<(u64, u64)>,
    partition: Partition,
) -> Vec<(u64, u64)> {
    let nranks = comm.nranks();

    // Owner-side undirected adjacency.
    let adj: Rc<RefCell<FastMap<u64, Vec<u64>>>> = Rc::new(RefCell::new(FastMap::default()));
    let adj_in = adj.clone();
    let h_edge = comm.register::<(u64, u64), _>(move |_c, (u, v)| {
        adj_in.borrow_mut().adj_push(u, v);
    });
    // Removal notification: drop `u` from Adj(v).
    let adj_rm = adj.clone();
    let h_remove = comm.register::<(u64, u64), _>(move |_c, (v, u)| {
        if let Some(list) = adj_rm.borrow_mut().get_mut(&v) {
            if let Ok(pos) = list.binary_search(&u) {
                list.remove(pos);
            }
        }
    });

    for (u, v) in local_edges {
        if u == v {
            continue;
        }
        comm.send(partition.owner(u, nranks), &h_edge, &(u, v));
        comm.send(partition.owner(v, nranks), &h_edge, &(v, u));
    }
    comm.barrier();
    {
        let mut a = adj.borrow_mut();
        for list in a.values_mut() {
            list.sort_unstable();
            list.dedup();
        }
    }

    for _round in 0..MAX_PRUNE_ROUNDS {
        let mut removed_local = 0u64;
        {
            let mut a = adj.borrow_mut();
            let doomed: Vec<(u64, u64)> = a
                .iter()
                .filter(|(_, list)| list.len() == 1)
                .map(|(&u, list)| (u, list[0]))
                .collect();
            for (u, v) in doomed {
                a.remove(&u);
                removed_local += 1;
                comm.send(partition.owner(v, nranks), &h_remove, &(v, u));
            }
        }
        comm.barrier();
        if comm.all_reduce_sum(removed_local) == 0 {
            break;
        }
    }

    // Emit each surviving edge once, from the smaller endpoint's owner.
    let a = adj.borrow();
    let mut out = Vec::new();
    for (&u, list) in a.iter() {
        for &v in list {
            if u < v {
                out.push((u, v));
            }
        }
    }
    out
}

/// Counts triangles with the wedge-query algorithm. Collective; all
/// ranks receive the global count plus their own report.
pub fn pearce_count(
    comm: &Comm,
    local_edges: Vec<(u64, u64)>,
    partition: Partition,
) -> (u64, BaselineReport) {
    let timer = BaselineTimer::begin(comm, "Pearce et al.");

    // Step 1: degree-one pruning.
    let pruned = prune_degree_one(comm, local_edges, partition);

    // Step 2: degree-ordered directed graph.
    let graph: DistGraph<(), ()> = build_dist_graph(
        comm,
        pruned.into_iter().map(|(u, v)| (u, v, ())).collect(),
        |_| (),
        partition,
    );

    // Step 3: per-wedge closure queries.
    let count = Rc::new(Cell::new(0u64));
    let count_in = count.clone();
    let g = graph.clone();
    let h_query = comm.register::<(u64, u64, u64), _>(move |_c, (q, r, deg_r)| {
        let lv = g
            .shard()
            .get(q)
            .expect("queried vertex must be locally owned");
        let key = OrderKey::new(r, deg_r);
        _c.add_work(1 + (lv.adj.len() as u64).next_power_of_two().trailing_zeros() as u64);
        if lv.adj.binary_search_by(|e| e.key.cmp(&key)).is_ok() {
            count_in.set(count_in.get() + 1);
        }
    });

    for lv in graph.shard().vertices() {
        for (i, eq) in lv.adj.iter().enumerate() {
            for er in &lv.adj[i + 1..] {
                comm.send(graph.owner(eq.v), &h_query, &(eq.v, er.v, er.key.degree));
            }
        }
    }
    comm.barrier();

    let global = comm.all_reduce_sum(count.get());
    (global, timer.end())
}

/// Small helper trait so the adjacency map reads naturally above.
trait AdjPush {
    fn adj_push(&mut self, u: u64, v: u64);
}
impl AdjPush for FastMap<u64, Vec<u64>> {
    fn adj_push(&mut self, u: u64, v: u64) {
        self.entry(u).or_default().push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tripoll_ygm::World;

    fn run(edges: &[(u64, u64)], nranks: usize) -> u64 {
        let edges = edges.to_vec();
        let out = World::new(nranks).run(move |comm| {
            let local: Vec<(u64, u64)> = edges
                .iter()
                .skip(comm.rank())
                .step_by(comm.nranks())
                .copied()
                .collect();
            pearce_count(comm, local, Partition::Hashed).0
        });
        let first = out[0];
        assert!(out.iter().all(|&c| c == first));
        first
    }

    #[test]
    fn counts_k5() {
        let mut edges = Vec::new();
        for u in 0..5u64 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        for nranks in [1, 2, 4] {
            assert_eq!(run(&edges, nranks), 10);
        }
    }

    #[test]
    fn pruning_removes_pendant_trees() {
        // Triangle with a long tail: the tail prunes away entirely.
        let edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 6)];
        let out = World::new(2).run(move |comm| {
            let local: Vec<(u64, u64)> = edges
                .iter()
                .skip(comm.rank())
                .step_by(comm.nranks())
                .copied()
                .collect();
            let pruned = prune_degree_one(comm, local, Partition::Hashed);
            comm.barrier();
            comm.all_reduce_sum(pruned.len() as u64)
        });
        // Only the triangle's 3 edges survive.
        assert_eq!(out, vec![3, 3]);
    }

    #[test]
    fn pruning_preserves_triangle_count() {
        let edges = vec![
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3), // pendant
            (0, 4),
            (4, 1), // second triangle 0-4-1
            (4, 5), // pendant
        ];
        assert_eq!(run(&edges, 3), 2);
    }

    #[test]
    fn empty_after_pruning() {
        // A tree has no triangles and prunes to nothing.
        let edges = vec![(0, 1), (1, 2), (1, 3), (3, 4)];
        assert_eq!(run(&edges, 2), 0);
    }

    #[test]
    fn matches_oracle_on_pseudorandom_graph() {
        let mut edges = Vec::new();
        for u in 0..40u64 {
            for v in (u + 1)..40 {
                if (u * 7 + v * 13) % 6 == 0 {
                    edges.push((u, v));
                }
            }
        }
        let expect = tripoll_analysis::triangle_count(&tripoll_graph::Csr::from_edges(&edges));
        assert_eq!(run(&edges, 3), expect);
        assert!(expect > 0);
    }

    #[test]
    fn sends_one_record_per_wedge() {
        // On K5 with 1 rank there are sum C(d+,2) = C(4,2)+C(3,2)+C(2,2)+C(1,2)
        // ... = 6+3+1+0 = 10 wedges; every wedge is one (local) record.
        let mut edges = Vec::new();
        for u in 0..5u64 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        let out = World::new(1).run(move |comm| {
            let before = comm.stats();
            let (count, _) = pearce_count(comm, edges.clone(), Partition::Hashed);
            let delta = comm.stats().delta(&before);
            (count, delta)
        });
        let (count, delta) = &out[0];
        assert_eq!(*count, 10);
        // 10 edge-scatter sends x2 directions + 10 wedge queries +
        // build exchanges; at minimum the wedge queries are present.
        assert!(delta.records_local >= 10);
    }
}
