//! # tripoll-baselines — the Table 2 comparison systems
//!
//! Re-implementations of the three tailor-made distributed triangle
//! counters the TriPoll paper compares against (§5.6, Table 2), built on
//! the *same* simulated runtime so the comparison isolates algorithmic
//! differences rather than harness differences:
//!
//! * [`pearce`] — Pearce et al. (HPEC'17): degree-one pruning + one
//!   asynchronous closure query **per wedge**.
//! * [`tric`] — TriC (HPEC'20): edge-balanced contiguous partitions +
//!   bulk-batched closure queries.
//! * [`tom2d`] — Tom & Karypis (ICPP'19): 2D `√P×√P` decomposition with
//!   Cannon-style masked SpGEMM; perfect-square rank counts only.
//!
//! Every baseline is validated against the serial oracle in
//! `tripoll-analysis`.

#![warn(missing_docs)]

pub mod pearce;
mod report;
pub mod tom2d;
pub mod tric;

pub use pearce::{pearce_count, prune_degree_one};
pub use report::BaselineReport;
pub use tom2d::tom2d_count;
pub use tric::tric_count;
