//! Common reporting for baseline runs.

use tripoll_ygm::stats::CommStats;
use tripoll_ygm::Comm;

/// Per-rank outcome of one baseline triangle count.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// Which system this run emulates.
    pub name: &'static str,
    /// Wall-clock seconds on this rank (barrier-inclusive).
    pub seconds: f64,
    /// Communication-counter delta of this rank over the run.
    pub stats: CommStats,
}

/// Times a baseline region and captures its traffic delta.
pub(crate) struct BaselineTimer<'a> {
    comm: &'a Comm,
    name: &'static str,
    start_stats: CommStats,
    start: std::time::Instant,
}

impl<'a> BaselineTimer<'a> {
    pub(crate) fn begin(comm: &'a Comm, name: &'static str) -> Self {
        BaselineTimer {
            comm,
            name,
            start_stats: comm.stats(),
            start: std::time::Instant::now(),
        }
    }

    pub(crate) fn end(self) -> BaselineReport {
        BaselineReport {
            name: self.name,
            seconds: self.start.elapsed().as_secs_f64(),
            stats: self.comm.stats().delta(&self.start_stats),
        }
    }
}
