//! Louvain community detection.
//!
//! The FQDN experiment (§5.8, Fig. 8) orders the domains co-occurring in
//! triangles with a hub domain "based on communities identified by the
//! Louvain method". This is that method: greedy modularity optimization
//! with local moving and graph coarsening (Blondel et al. 2008),
//! implemented deterministically (fixed sweep order, smallest-id
//! tie-break) so experiment output is reproducible.

use std::collections::BTreeMap;
use std::hash::Hash;

use tripoll_ygm::hash::FastMap;

/// Result of a Louvain run over nodes `0..n`.
#[derive(Debug, Clone)]
pub struct LouvainResult {
    /// `communities[v]` is the community of node `v`, renumbered to
    /// `0..num_communities` in order of first appearance.
    pub communities: Vec<usize>,
    /// Modularity of the final partition.
    pub modularity: f64,
    /// Number of coarsening levels performed.
    pub levels: usize,
}

impl LouvainResult {
    /// Number of communities in the final partition.
    pub fn num_communities(&self) -> usize {
        self.communities.iter().copied().max().map_or(0, |m| m + 1)
    }
}

/// Weighted graph in the internal format Louvain iterates on.
struct WGraph {
    /// Neighbor lists excluding self-loops: `adj[u] = [(v, w)]`.
    adj: Vec<Vec<(usize, f64)>>,
    /// Doubled self-loop weight per node (`A_ii`).
    self_w: Vec<f64>,
    /// Weighted degree `k_i = Σ_j A_ij` (self-loops already doubled).
    k: Vec<f64>,
    /// `2m = Σ_i k_i`.
    m2: f64,
}

impl WGraph {
    fn new(n: usize, edges: &[(usize, usize, f64)]) -> Self {
        let mut adj = vec![Vec::new(); n];
        let mut self_w = vec![0.0; n];
        for &(u, v, w) in edges {
            assert!(u < n && v < n, "edge ({u},{v}) out of range 0..{n}");
            if u == v {
                self_w[u] += 2.0 * w;
            } else {
                adj[u].push((v, w));
                adj[v].push((u, w));
            }
        }
        let k: Vec<f64> = (0..n)
            .map(|u| self_w[u] + adj[u].iter().map(|&(_, w)| w).sum::<f64>())
            .collect();
        let m2 = k.iter().sum();
        WGraph { adj, self_w, k, m2 }
    }

    fn len(&self) -> usize {
        self.adj.len()
    }
}

/// One level of local moving. Returns (community of each node, improved?).
fn one_level(g: &WGraph) -> (Vec<usize>, bool) {
    let n = g.len();
    let mut com: Vec<usize> = (0..n).collect();
    let mut tot: Vec<f64> = g.k.clone();
    let mut improved = false;

    if g.m2 <= 0.0 {
        return (com, false);
    }

    // Bounded sweeps; Louvain converges fast in practice.
    for _sweep in 0..64 {
        let mut moved = 0usize;
        for u in 0..n {
            let cu = com[u];
            // Weights from u to each neighboring community.
            let mut to_com: FastMap<usize, f64> = FastMap::default();
            for &(v, w) in &g.adj[u] {
                *to_com.entry(com[v]).or_insert(0.0) += w;
            }
            let k_u = g.k[u];
            // Remove u from its community.
            tot[cu] -= k_u;
            let base = to_com.get(&cu).copied().unwrap_or(0.0);
            // Gain of joining community c: k_{u→c} - tot[c]·k_u / 2m.
            let mut best_c = cu;
            let mut best_gain = base - tot[cu] * k_u / g.m2;
            // Deterministic: consider candidates in ascending community id.
            let mut candidates: Vec<usize> = to_com.keys().copied().collect();
            candidates.sort_unstable();
            for c in candidates {
                if c == cu {
                    continue;
                }
                let gain = to_com[&c] - tot[c] * k_u / g.m2;
                let strictly_better = gain > best_gain + 1e-12;
                let tie_with_smaller_id = (gain - best_gain).abs() <= 1e-12 && c < best_c;
                if strictly_better || tie_with_smaller_id {
                    best_gain = gain;
                    best_c = c;
                }
            }
            tot[best_c] += k_u;
            if best_c != cu {
                com[u] = best_c;
                moved += 1;
                improved = true;
            }
        }
        if moved == 0 {
            break;
        }
    }
    (com, improved)
}

/// Renumbers communities to a dense `0..k` range (first-appearance order).
fn renumber(com: &[usize]) -> (Vec<usize>, usize) {
    let mut map: FastMap<usize, usize> = FastMap::default();
    let mut out = Vec::with_capacity(com.len());
    for &c in com {
        let next = map.len();
        out.push(*map.entry(c).or_insert(next));
    }
    (out, map.len())
}

/// Coarsens: community graph with aggregated weights.
fn coarsen(g: &WGraph, com: &[usize], ncom: usize) -> WGraph {
    let mut self_w = vec![0.0; ncom];
    let mut cross: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    for u in 0..g.len() {
        let cu = com[u];
        self_w[cu] += g.self_w[u];
        for &(v, w) in &g.adj[u] {
            let cv = com[v];
            if cu == cv {
                // Each undirected edge visits twice (u→v and v→u).
                self_w[cu] += w;
            } else if cu < cv {
                *cross.entry((cu, cv)).or_insert(0.0) += w;
            }
        }
    }
    let mut adj = vec![Vec::new(); ncom];
    for (&(a, b), &w) in &cross {
        adj[a].push((b, w));
        adj[b].push((a, w));
    }
    let k: Vec<f64> = (0..ncom)
        .map(|u| self_w[u] + adj[u].iter().map(|&(_, w)| w).sum::<f64>())
        .collect();
    let m2 = k.iter().sum();
    WGraph { adj, self_w, k, m2 }
}

/// Modularity of a partition on the *original* graph.
fn modularity(g: &WGraph, com: &[usize]) -> f64 {
    if g.m2 <= 0.0 {
        return 0.0;
    }
    let ncom = com.iter().copied().max().map_or(0, |m| m + 1);
    let mut inside = vec![0.0; ncom];
    let mut tot = vec![0.0; ncom];
    for u in 0..g.len() {
        tot[com[u]] += g.k[u];
        inside[com[u]] += g.self_w[u];
        for &(v, w) in &g.adj[u] {
            if com[v] == com[u] {
                inside[com[u]] += w;
            }
        }
    }
    (0..ncom)
        .map(|c| inside[c] / g.m2 - (tot[c] / g.m2).powi(2))
        .sum()
}

/// Runs Louvain on a weighted undirected graph over nodes `0..n`.
///
/// `edges` are undirected `(u, v, weight)` records; duplicates accumulate.
pub fn louvain(n: usize, edges: &[(usize, usize, f64)]) -> LouvainResult {
    let original = WGraph::new(n, edges);
    let mut g = WGraph::new(n, edges);
    // node -> community, composed across levels.
    let mut assignment: Vec<usize> = (0..n).collect();
    let mut levels = 0usize;

    loop {
        let (com, improved) = one_level(&g);
        if !improved && levels > 0 {
            break;
        }
        let (dense, ncom) = renumber(&com);
        for slot in assignment.iter_mut() {
            *slot = dense[*slot];
        }
        levels += 1;
        if ncom == g.len() {
            // No merge happened; fixed point.
            break;
        }
        g = coarsen(&g, &dense, ncom);
        if !improved {
            break;
        }
    }

    let (communities, _) = renumber(&assignment);
    let modularity = modularity(&original, &communities);
    LouvainResult {
        communities,
        modularity,
        levels,
    }
}

/// Louvain over arbitrary hashable node labels (e.g. FQDN strings).
///
/// Returns `(label → community)` pairs sorted by label, plus the result.
/// Labels are indexed in sorted order so the outcome is deterministic.
pub fn louvain_labeled<K>(edges: &[(K, K, f64)]) -> (Vec<(K, usize)>, LouvainResult)
where
    K: Eq + Hash + Clone + Ord,
{
    let mut labels: Vec<K> = edges
        .iter()
        .flat_map(|(a, b, _)| [a.clone(), b.clone()])
        .collect();
    labels.sort();
    labels.dedup();
    let index: FastMap<&K, usize> = labels.iter().enumerate().map(|(i, k)| (k, i)).collect();
    let idx_edges: Vec<(usize, usize, f64)> = edges
        .iter()
        .map(|(a, b, w)| (index[a], index[b], *w))
        .collect();
    let result = louvain(labels.len(), &idx_edges);
    let pairs = labels
        .into_iter()
        .enumerate()
        .map(|(i, k)| (k, result.communities[i]))
        .collect();
    (pairs, result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique_edges(members: &[usize]) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::new();
        for (i, &u) in members.iter().enumerate() {
            for &v in &members[i + 1..] {
                out.push((u, v, 1.0));
            }
        }
        out
    }

    #[test]
    fn two_disjoint_edges() {
        let r = louvain(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        assert_eq!(r.num_communities(), 2);
        assert_eq!(r.communities[0], r.communities[1]);
        assert_eq!(r.communities[2], r.communities[3]);
        assert_ne!(r.communities[0], r.communities[2]);
        assert!((r.modularity - 0.5).abs() < 1e-9, "Q={}", r.modularity);
    }

    #[test]
    fn two_cliques_with_bridge() {
        let mut edges = clique_edges(&[0, 1, 2, 3]);
        edges.extend(clique_edges(&[4, 5, 6, 7]));
        edges.push((3, 4, 1.0));
        let r = louvain(8, &edges);
        assert_eq!(r.num_communities(), 2);
        for v in 0..4 {
            assert_eq!(r.communities[v], r.communities[0]);
        }
        for v in 4..8 {
            assert_eq!(r.communities[v], r.communities[4]);
        }
        assert!(r.modularity > 0.3, "Q={}", r.modularity);
    }

    #[test]
    fn ring_of_cliques() {
        // Four K5 cliques joined in a ring by single edges — the standard
        // Louvain sanity benchmark; each clique is one community.
        let mut edges = Vec::new();
        for c in 0..4usize {
            let members: Vec<usize> = (0..5).map(|i| c * 5 + i).collect();
            edges.extend(clique_edges(&members));
            edges.push((c * 5, ((c + 1) % 4) * 5 + 1, 1.0));
        }
        let r = louvain(20, &edges);
        assert_eq!(r.num_communities(), 4);
        for c in 0..4 {
            let rep = r.communities[c * 5];
            for i in 0..5 {
                assert_eq!(r.communities[c * 5 + i], rep, "clique {c} split");
            }
        }
        assert!(r.modularity > 0.5, "Q={}", r.modularity);
    }

    #[test]
    fn deterministic() {
        let mut edges = clique_edges(&[0, 1, 2]);
        edges.extend(clique_edges(&[3, 4, 5]));
        edges.push((2, 3, 0.5));
        let a = louvain(6, &edges);
        let b = louvain(6, &edges);
        assert_eq!(a.communities, b.communities);
        assert_eq!(a.modularity, b.modularity);
    }

    #[test]
    fn empty_graph() {
        let r = louvain(3, &[]);
        assert_eq!(r.communities.len(), 3);
        assert_eq!(r.modularity, 0.0);
    }

    #[test]
    fn self_loops_tolerated() {
        let r = louvain(2, &[(0, 0, 5.0), (0, 1, 1.0)]);
        assert_eq!(r.communities.len(), 2);
        // Modularity finite and sane.
        assert!(r.modularity.is_finite());
    }

    #[test]
    fn weights_matter() {
        // Path 0-1-2-3 with a heavy middle edge: {0,1} vs {2,3} split is
        // *not* optimal; {1,2} must end up together.
        let r = louvain(4, &[(0, 1, 0.1), (1, 2, 10.0), (2, 3, 0.1)]);
        assert_eq!(r.communities[1], r.communities[2]);
    }

    #[test]
    fn labeled_interface() {
        let edges = vec![
            ("a".to_string(), "b".to_string(), 1.0),
            ("b".to_string(), "c".to_string(), 1.0),
            ("a".to_string(), "c".to_string(), 1.0),
            ("x".to_string(), "y".to_string(), 1.0),
            ("y".to_string(), "z".to_string(), 1.0),
            ("x".to_string(), "z".to_string(), 1.0),
            ("c".to_string(), "x".to_string(), 0.2),
        ];
        let (pairs, result) = louvain_labeled(&edges);
        assert_eq!(pairs.len(), 6);
        assert_eq!(result.num_communities(), 2);
        let get = |name: &str| {
            pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, c)| *c)
                .unwrap()
        };
        assert_eq!(get("a"), get("b"));
        assert_eq!(get("b"), get("c"));
        assert_eq!(get("x"), get("y"));
        assert_ne!(get("a"), get("x"));
    }

    #[test]
    fn modularity_improves_over_singletons() {
        // Modularity of the found partition must beat the all-singletons
        // partition (which has Q = -Σ(k_i/2m)² < 0).
        let mut edges = clique_edges(&[0, 1, 2, 3, 4]);
        edges.extend(clique_edges(&[5, 6, 7, 8, 9]));
        edges.push((0, 5, 1.0));
        let r = louvain(10, &edges);
        assert!(r.modularity > 0.0);
    }
}
