//! Column-aligned text tables for experiment output.
//!
//! The benchmark harness prints the paper's tables (Table 1, 2, 3, 4) as
//! plain text; this tiny renderer keeps columns aligned and provides a
//! CSV escape hatch for plotting.

use std::fmt::Write as _;

/// A simple text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header arity.
    pub fn add_row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
    }

    /// Convenience: appends a row of displayable values.
    pub fn row<D: std::fmt::Display>(&mut self, cells: &[D]) {
        let strings: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.add_row(&strings);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "=== {} ===", self.title);
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate().take(ncols) {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(line, "{:<width$}", cell, width = width + 2);
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let total: usize = widths.iter().map(|w| w + 2).sum();
        let _ = writeln!(out, "{}", "-".repeat(total.saturating_sub(2)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }

    /// Renders as CSV (headers included, naive quoting for commas).
    pub fn to_csv(&self) -> String {
        let quote = |s: &String| {
            if s.contains(',') {
                format!("\"{s}\"")
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(quote).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(quote).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a byte count as a human-friendly `GB`/`MB`/`KB` string with
/// two decimals, matching the units of the paper's Table 4.
pub fn fmt_bytes(bytes: u64) -> String {
    const KB: f64 = 1024.0;
    const MB: f64 = KB * 1024.0;
    const GB: f64 = MB * 1024.0;
    let b = bytes as f64;
    if b >= GB {
        format!("{:.2} GB", b / GB)
    } else if b >= MB {
        format!("{:.2} MB", b / MB)
    } else if b >= KB {
        format!("{:.2} KB", b / KB)
    } else {
        format!("{bytes} B")
    }
}

/// Formats seconds with adaptive precision (`ms` below one second).
pub fn fmt_secs(secs: f64) -> String {
    if secs < 1.0 {
        format!("{:.1} ms", secs * 1e3)
    } else if secs < 100.0 {
        format!("{secs:.2} s")
    } else {
        format!("{secs:.0} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["graph", "time"]);
        t.row(&["LiveJournal", "1.01s"]);
        t.row(&["Friendster-long-name", "38.62s"]);
        let s = t.render();
        assert!(s.contains("=== Demo ==="));
        assert!(s.contains("LiveJournal"));
        // Columns aligned: both time cells start at the same offset.
        let lines: Vec<&str> = s.lines().collect();
        let idx = |line: &str, needle: &str| line.find(needle).unwrap();
        assert_eq!(idx(lines[3], "1.01s"), idx(lines[4], "38.62s"), "\n{s}");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new("x", &["name", "value"]);
        t.row(&["a,b".to_string(), "1".to_string()]);
        let csv = t.to_csv();
        assert_eq!(csv, "name,value\n\"a,b\",1\n");
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00 MB");
        assert_eq!(fmt_bytes(5 * 1024 * 1024 * 1024), "5.00 GB");
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(fmt_secs(0.0123), "12.3 ms");
        assert_eq!(fmt_secs(2.5), "2.50 s");
        assert_eq!(fmt_secs(456.7), "457 s");
    }

    #[test]
    fn empty_table() {
        let t = Table::new("empty", &["a"]);
        assert!(t.is_empty());
        assert!(t.render().contains("empty"));
    }
}
