//! Serial reference triangle enumeration.
//!
//! A single-machine, obviously-correct triangle enumerator over [`Csr`],
//! using the same degree ordering `<+` as the distributed engines. It is
//! the oracle every distributed implementation (TriPoll Push-Only,
//! Push-Pull, and all three baselines) is validated against, and it
//! computes the `|T|` column of Table 1 for the dataset stand-ins.

use rayon::prelude::*;
use tripoll_graph::order::OrderKey;
use tripoll_graph::Csr;

/// Enumerates every triangle, invoking `f(p, q, r)` once per triangle
/// with **original** vertex ids ordered `p <+ q <+ r`.
pub fn enumerate_triangles(csr: &Csr, mut f: impl FnMut(u64, u64, u64)) {
    let n = csr.num_vertices();
    let key = |v: usize| OrderKey::new(csr.original_id(v), csr.degree(v) as u64);

    // Out-adjacency under <+, sorted by order key.
    let out: Vec<Vec<usize>> = (0..n)
        .map(|u| {
            let ku = key(u);
            let mut o: Vec<usize> = csr
                .neighbors(u)
                .iter()
                .map(|&v| v as usize)
                .filter(|&v| ku < key(v))
                .collect();
            o.sort_by_key(|&v| key(v));
            o
        })
        .collect();

    for p in 0..n {
        let adj_p = &out[p];
        for (i, &q) in adj_p.iter().enumerate() {
            // Merge-path intersect suffix of Adj+(p) after q with Adj+(q).
            let suffix = &adj_p[i + 1..];
            let adj_q = &out[q];
            let (mut a, mut b) = (0, 0);
            while a < suffix.len() && b < adj_q.len() {
                let (ka, kb) = (key(suffix[a]), key(adj_q[b]));
                match ka.cmp(&kb) {
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        f(
                            csr.original_id(p),
                            csr.original_id(q),
                            csr.original_id(suffix[a]),
                        );
                        a += 1;
                        b += 1;
                    }
                }
            }
        }
    }
}

/// Counts triangles (parallel over pivot vertices).
pub fn triangle_count(csr: &Csr) -> u64 {
    let n = csr.num_vertices();
    let key = |v: usize| OrderKey::new(csr.original_id(v), csr.degree(v) as u64);

    let out: Vec<Vec<usize>> = (0..n)
        .into_par_iter()
        .map(|u| {
            let ku = key(u);
            let mut o: Vec<usize> = csr
                .neighbors(u)
                .iter()
                .map(|&v| v as usize)
                .filter(|&v| ku < key(v))
                .collect();
            o.sort_by_key(|&v| key(v));
            o
        })
        .collect();

    (0..n)
        .into_par_iter()
        .map(|p| {
            let adj_p = &out[p];
            let mut count = 0u64;
            for (i, &q) in adj_p.iter().enumerate() {
                let suffix = &adj_p[i + 1..];
                let adj_q = &out[q];
                let (mut a, mut b) = (0, 0);
                while a < suffix.len() && b < adj_q.len() {
                    match key(suffix[a]).cmp(&key(adj_q[b])) {
                        std::cmp::Ordering::Less => a += 1,
                        std::cmp::Ordering::Greater => b += 1,
                        std::cmp::Ordering::Equal => {
                            count += 1;
                            a += 1;
                            b += 1;
                        }
                    }
                }
            }
            count
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count(edges: &[(u64, u64)]) -> u64 {
        triangle_count(&Csr::from_edges(edges))
    }

    #[test]
    fn single_triangle() {
        assert_eq!(count(&[(0, 1), (1, 2), (2, 0)]), 1);
    }

    #[test]
    fn path_has_none() {
        assert_eq!(count(&[(0, 1), (1, 2), (2, 3)]), 0);
    }

    #[test]
    fn complete_graphs() {
        // K_n has C(n,3) triangles.
        for n in 2..=8u64 {
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    edges.push((u, v));
                }
            }
            let expect = n * (n - 1) * (n - 2) / 6;
            assert_eq!(count(&edges), expect, "K{n}");
        }
    }

    #[test]
    fn bowtie() {
        // Two triangles sharing vertex 2.
        assert_eq!(count(&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]), 2);
    }

    #[test]
    fn petersen_graph_is_triangle_free() {
        let edges: &[(u64, u64)] = &[
            // outer 5-cycle
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 0),
            // spokes
            (0, 5),
            (1, 6),
            (2, 7),
            (3, 8),
            (4, 9),
            // inner pentagram
            (5, 7),
            (7, 9),
            (9, 6),
            (6, 8),
            (8, 5),
        ];
        assert_eq!(count(edges), 0);
    }

    #[test]
    fn duplicate_edges_do_not_inflate() {
        assert_eq!(count(&[(0, 1), (0, 1), (1, 0), (1, 2), (2, 0)]), 1);
    }

    #[test]
    fn enumeration_matches_count_and_orders_vertices() {
        let edges: Vec<(u64, u64)> = vec![(0, 1), (1, 2), (2, 0), (2, 3), (3, 0), (1, 3)];
        let csr = Csr::from_edges(&edges);
        let mut triangles = Vec::new();
        enumerate_triangles(&csr, |p, q, r| triangles.push((p, q, r)));
        assert_eq!(triangles.len() as u64, triangle_count(&csr));
        // K4 on {0,1,2,3} → 4 triangles, each emitted once, each ordered.
        assert_eq!(triangles.len(), 4);
        let deg = |v: u64| csr.degree(csr.csr_index(v).unwrap()) as u64;
        for &(p, q, r) in &triangles {
            let (kp, kq, kr) = (
                OrderKey::new(p, deg(p)),
                OrderKey::new(q, deg(q)),
                OrderKey::new(r, deg(r)),
            );
            assert!(kp < kq && kq < kr, "ordering violated: {p},{q},{r}");
        }
        // No duplicates.
        let mut dedup = triangles.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), triangles.len());
    }

    #[test]
    fn larger_random_ish_graph_sane() {
        // Deterministic pseudo-random graph; cross-check count via the
        // brute-force O(n^3) method.
        let n = 40u64;
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if (u * 7919 + v * 104729) % 7 == 0 {
                    edges.push((u, v));
                }
            }
        }
        let csr = Csr::from_edges(&edges);
        let fast = triangle_count(&csr);

        // Brute force on the adjacency.
        let mut brute = 0u64;
        let nn = csr.num_vertices();
        for a in 0..nn {
            for b in (a + 1)..nn {
                if !csr.has_edge(a, b) {
                    continue;
                }
                for c in (b + 1)..nn {
                    if csr.has_edge(a, c) && csr.has_edge(b, c) {
                        brute += 1;
                    }
                }
            }
        }
        assert_eq!(fast, brute);
        assert!(brute > 0, "test graph should contain triangles");
    }
}
