//! Log-scale histograms for survey post-processing.
//!
//! The Reddit experiment (§5.7, Fig. 6) bins triangle timing deltas by
//! `ceil(log2(Δt))` and counts pairs `(ceil(log2(Δt_open)),
//! ceil(log2(Δt_close)))` in a joint distribution; the degree-metadata
//! experiment (§5.9) does the same with `ceil(log2(d(v)))` triples. These
//! types turn the raw `(bucket, count)` pairs a
//! [`DistCountingSet`](tripoll_ygm::container::DistCountingSet) gathers
//! into marginal and joint distributions with text renderings.

/// `ceil(log2(x))` as used by the paper's callbacks (Alg. 4).
///
/// `x = 0` is mapped to bucket 0 (the paper leaves simultaneous edges
/// unspecified; 0 and 1 share the first bucket here), `x = 1 → 0`,
/// `x = 2 → 1`, `x = 3 → 2`, `x = 4 → 2`, ...
#[inline]
pub fn ceil_log2(x: u64) -> u32 {
    if x <= 1 {
        0
    } else {
        64 - (x - 1).leading_zeros()
    }
}

/// A one-dimensional histogram over `u32` buckets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Builds from `(bucket, count)` pairs (e.g. a gathered counting set).
    pub fn from_pairs<I: IntoIterator<Item = (u32, u64)>>(pairs: I) -> Self {
        let mut h = Histogram::new();
        for (bucket, count) in pairs {
            h.add(bucket, count);
        }
        h
    }

    /// Adds `count` observations to `bucket`.
    pub fn add(&mut self, bucket: u32, count: u64) {
        let idx = bucket as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += count;
    }

    /// Records a single observation of a raw value via [`ceil_log2`].
    pub fn observe_log2(&mut self, value: u64) {
        self.add(ceil_log2(value), 1);
    }

    /// Count in `bucket`.
    pub fn count(&self, bucket: u32) -> u64 {
        self.counts.get(bucket as usize).copied().unwrap_or(0)
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Largest non-empty bucket index, if any.
    pub fn max_bucket(&self) -> Option<u32> {
        self.counts.iter().rposition(|&c| c > 0).map(|i| i as u32)
    }

    /// Iterates `(bucket, count)` over non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (b as u32, c))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, c) in other.iter() {
            self.add(b, c);
        }
    }

    /// ASCII bar rendering with log-scaled bars (the figure axes are
    /// log-scale), one line per bucket.
    pub fn render(&self, label: &str) -> String {
        let mut out = format!("{label}\n");
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let scale = |c: u64| {
            if c == 0 {
                0
            } else {
                // 1..=50 chars, log scaled.
                let frac = ((c as f64).ln() + 1.0) / ((max as f64).ln() + 1.0);
                (frac * 50.0).ceil() as usize
            }
        };
        for (b, c) in self.counts.iter().enumerate() {
            out.push_str(&format!("  2^{b:<3} | {:<50} {c}\n", "#".repeat(scale(*c))));
        }
        out
    }
}

/// A two-dimensional histogram over `(u32, u32)` bucket pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JointHistogram {
    counts: std::collections::BTreeMap<(u32, u32), u64>,
}

impl JointHistogram {
    /// Creates an empty joint histogram.
    pub fn new() -> Self {
        JointHistogram::default()
    }

    /// Builds from `((x_bucket, y_bucket), count)` pairs.
    pub fn from_pairs<I: IntoIterator<Item = ((u32, u32), u64)>>(pairs: I) -> Self {
        let mut h = JointHistogram::new();
        for ((x, y), count) in pairs {
            h.add(x, y, count);
        }
        h
    }

    /// Adds `count` observations at `(x, y)`.
    pub fn add(&mut self, x: u32, y: u32, count: u64) {
        *self.counts.entry((x, y)).or_insert(0) += count;
    }

    /// Count at `(x, y)`.
    pub fn count(&self, x: u32, y: u32) -> u64 {
        self.counts.get(&(x, y)).copied().unwrap_or(0)
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Marginal distribution over the x (first) coordinate.
    pub fn marginal_x(&self) -> Histogram {
        Histogram::from_pairs(self.counts.iter().map(|(&(x, _), &c)| (x, c)))
    }

    /// Marginal distribution over the y (second) coordinate.
    pub fn marginal_y(&self) -> Histogram {
        Histogram::from_pairs(self.counts.iter().map(|(&(_, y), &c)| (y, c)))
    }

    /// Iterates `((x, y), count)` in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = ((u32, u32), u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// Text heat map: rows are y buckets (descending), columns x buckets;
    /// cells are log10-scaled digits, '.' for empty — a terminal rendition
    /// of Fig. 6's joint distribution.
    pub fn render(&self, x_label: &str, y_label: &str) -> String {
        let (mut max_x, mut max_y) = (0u32, 0u32);
        for &(x, y) in self.counts.keys() {
            max_x = max_x.max(x);
            max_y = max_y.max(y);
        }
        let mut out = format!("{y_label} (rows, 2^y) vs {x_label} (cols, 2^x)\n");
        for y in (0..=max_y).rev() {
            out.push_str(&format!("  {y:>3} |"));
            for x in 0..=max_x {
                let c = self.count(x, y);
                let ch = if c == 0 {
                    '.'
                } else {
                    // digit = floor(log10(c)) capped at 9
                    let d = (c as f64).log10().floor() as u32;
                    char::from_digit(d.min(9), 10).unwrap()
                };
                out.push(ch);
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "       {}\n",
            (0..=max_x)
                .map(|x| char::from_digit(x % 10, 10).unwrap())
                .collect::<String>()
        ));
        out
    }

    /// CSV rendering: `x,y,count` lines (plot-ready).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("x,y,count\n");
        for ((x, y), c) in self.iter() {
            out.push_str(&format!("{x},{y},{c}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(ceil_log2(1 << 20), 20);
        assert_eq!(ceil_log2((1 << 20) + 1), 21);
        assert_eq!(ceil_log2(u64::MAX), 64);
    }

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new();
        h.observe_log2(1); // bucket 0
        h.observe_log2(7); // bucket 3
        h.observe_log2(8); // bucket 3
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(3), 2);
        assert_eq!(h.count(9), 0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.max_bucket(), Some(3));
        assert_eq!(h.iter().collect::<Vec<_>>(), vec![(0, 1), (3, 2)]);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::from_pairs([(0, 1), (2, 5)]);
        let b = Histogram::from_pairs([(2, 5), (4, 1)]);
        a.merge(&b);
        assert_eq!(a.count(2), 10);
        assert_eq!(a.count(4), 1);
        assert_eq!(a.total(), 12);
    }

    #[test]
    fn joint_histogram_marginals() {
        let j = JointHistogram::from_pairs([((0, 1), 2), ((0, 3), 4), ((2, 1), 1)]);
        assert_eq!(j.total(), 7);
        let mx = j.marginal_x();
        assert_eq!(mx.count(0), 6);
        assert_eq!(mx.count(2), 1);
        let my = j.marginal_y();
        assert_eq!(my.count(1), 3);
        assert_eq!(my.count(3), 4);
    }

    #[test]
    fn joint_open_le_close_property() {
        // Closure-time surveys guarantee open <= close; bucket monotone.
        let mut j = JointHistogram::new();
        for (open, close) in [(3u64, 10u64), (1, 1), (100, 5000)] {
            assert!(open <= close);
            j.add(ceil_log2(open), ceil_log2(close), 1);
        }
        for ((x, y), _) in j.iter() {
            assert!(x <= y, "open bucket {x} must not exceed close bucket {y}");
        }
    }

    #[test]
    fn renders_do_not_panic_and_mention_counts() {
        let h = Histogram::from_pairs([(0, 10), (5, 1000)]);
        let s = h.render("closing times");
        assert!(s.contains("closing times"));
        assert!(s.contains("1000"));

        let j = JointHistogram::from_pairs([((0, 0), 1), ((3, 5), 99)]);
        let r = j.render("open", "close");
        assert!(r.contains("open"));
        let csv = j.to_csv();
        assert!(csv.contains("3,5,99"));
    }

    #[test]
    fn empty_renders() {
        assert!(Histogram::new().render("x").contains('x'));
        assert_eq!(JointHistogram::new().total(), 0);
        let _ = JointHistogram::new().render("a", "b");
    }
}
