//! # tripoll-analysis — analysis utilities for TriPoll experiments
//!
//! Post-processing and validation tools around the TriPoll reproduction:
//!
//! * [`reference`](mod@reference) — a serial oracle triangle enumerator (validates every
//!   distributed engine; computes `|T|` for Table 1).
//! * [`hist`] — `ceil(log2(·))` histograms and joint distributions
//!   (Fig. 6's closure-time plots, Fig. 9's degree triples).
//! * [`louvain`](mod@louvain) — Louvain community detection (the ordering used in
//!   Fig. 8's FQDN co-occurrence plot).
//! * [`ktruss`] — truss decomposition from per-edge triangle supports
//!   (the §1 application of local counting).
//! * [`table`] — aligned text/CSV tables for the experiment harness.

#![warn(missing_docs)]

pub mod hist;
pub mod ktruss;
pub mod louvain;
pub mod reference;
pub mod table;

pub use hist::{ceil_log2, Histogram, JointHistogram};
pub use ktruss::{truss_decomposition, TrussDecomposition};
pub use louvain::{louvain, louvain_labeled, LouvainResult};
pub use reference::{enumerate_triangles, triangle_count};
pub use table::{fmt_bytes, fmt_secs, Table};
