//! k-truss decomposition.
//!
//! The paper motivates per-edge triangle counts with truss decomposition
//! (§1, §5.3, citing Cohen \[15\]): the *k-truss* of a graph is its maximal
//! subgraph in which every edge is supported by at least `k − 2`
//! triangles. The *trussness* of an edge is the largest `k` for which it
//! survives in the k-truss.
//!
//! [`truss_decomposition`] runs the standard support-peeling algorithm:
//! repeatedly remove the edge of minimum remaining support, assign its
//! trussness, and decrement the support of the edges it formed triangles
//! with. Initial supports can come from any source — the serial CSR
//! computation here, or the distributed
//! `tripoll_core::surveys::local_counts::edge_triangle_counts` survey
//! (the two are cross-validated in the integration tests).

use std::collections::BTreeSet;

use tripoll_graph::Csr;
use tripoll_ygm::hash::FastMap;

/// Result of a truss decomposition.
#[derive(Debug, Clone)]
pub struct TrussDecomposition {
    /// Trussness per canonical edge `(min, max)`, sorted by edge.
    pub trussness: Vec<((u64, u64), u32)>,
    /// The largest k with a non-empty k-truss (2 for triangle-free).
    pub max_k: u32,
}

impl TrussDecomposition {
    /// Edges belonging to the k-truss (trussness ≥ k).
    pub fn ktruss_edges(&self, k: u32) -> Vec<(u64, u64)> {
        self.trussness
            .iter()
            .filter(|(_, t)| *t >= k)
            .map(|(e, _)| *e)
            .collect()
    }
}

/// Computes the truss decomposition of the graph.
pub fn truss_decomposition(csr: &Csr) -> TrussDecomposition {
    let n = csr.num_vertices();
    // Live adjacency sets (CSR indices) for common-neighbor queries.
    let mut adj: Vec<BTreeSet<u32>> = (0..n)
        .map(|v| csr.neighbors(v).iter().map(|&t| t as u32).collect())
        .collect();

    // Initial supports per canonical (CSR-index) edge.
    let mut support: FastMap<(u32, u32), i64> = FastMap::default();
    for u in 0..n {
        for &v in csr.neighbors(u) {
            let v = v as usize;
            if u < v {
                let common = adj[u].intersection(&adj[v]).count() as i64;
                support.insert((u as u32, v as u32), common);
            }
        }
    }

    // Peeling queue ordered by (support, edge) — BTreeSet as a mutable
    // priority structure.
    let mut queue: BTreeSet<(i64, (u32, u32))> = support.iter().map(|(&e, &s)| (s, e)).collect();
    let mut trussness: FastMap<(u32, u32), u32> = FastMap::default();
    let mut k = 2u32;

    while let Some(&(s, (u, v))) = queue.iter().next() {
        queue.remove(&(s, (u, v)));
        support.remove(&(u, v));
        // Trussness is monotone over the peeling order.
        k = k.max((s + 2) as u32);
        trussness.insert((u, v), k);

        // Remove the edge; decrement supports of co-triangle edges.
        adj[u as usize].remove(&v);
        adj[v as usize].remove(&u);
        let commons: Vec<u32> = adj[u as usize]
            .intersection(&adj[v as usize])
            .copied()
            .collect();
        for w in commons {
            for e in [(u.min(w), u.max(w)), (v.min(w), v.max(w))] {
                if let Some(sup) = support.get_mut(&e) {
                    queue.remove(&(*sup, e));
                    *sup -= 1;
                    queue.insert((*sup, e));
                }
            }
        }
    }

    let max_k = trussness.values().copied().max().unwrap_or(2);
    let mut out: Vec<((u64, u64), u32)> = trussness
        .into_iter()
        .map(|((u, v), t)| {
            (
                (
                    csr.original_id(u as usize).min(csr.original_id(v as usize)),
                    csr.original_id(u as usize).max(csr.original_id(v as usize)),
                ),
                t,
            )
        })
        .collect();
    out.sort_unstable();
    TrussDecomposition {
        trussness: out,
        max_k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decompose(edges: &[(u64, u64)]) -> TrussDecomposition {
        truss_decomposition(&Csr::from_edges(edges))
    }

    #[test]
    fn triangle_is_a_3truss() {
        let d = decompose(&[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(d.max_k, 3);
        for (_, t) in &d.trussness {
            assert_eq!(*t, 3);
        }
    }

    #[test]
    fn complete_graphs_are_n_trusses() {
        for n in 3..=7u64 {
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    edges.push((u, v));
                }
            }
            let d = decompose(&edges);
            assert_eq!(d.max_k, n as u32, "K{n}");
            assert!(d.trussness.iter().all(|(_, t)| *t == n as u32));
            assert_eq!(d.ktruss_edges(n as u32).len(), edges.len());
            assert!(d.ktruss_edges(n as u32 + 1).is_empty());
        }
    }

    #[test]
    fn triangle_free_graphs_are_2trusses() {
        let d = decompose(&[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(d.max_k, 2);
        assert!(d.trussness.iter().all(|(_, t)| *t == 2));
    }

    #[test]
    fn mixed_structure() {
        // K4 on {0..3} plus a pendant triangle {3,4,5}: K4 edges have
        // trussness 4, the pendant triangle's 3.
        let mut edges = vec![(3u64, 4u64), (4, 5), (5, 3)];
        for u in 0..4u64 {
            for v in (u + 1)..4 {
                edges.push((u, v));
            }
        }
        let d = decompose(&edges);
        assert_eq!(d.max_k, 4);
        let t_of = |a: u64, b: u64| {
            d.trussness
                .iter()
                .find(|(e, _)| *e == (a.min(b), a.max(b)))
                .map(|(_, t)| *t)
                .unwrap()
        };
        for u in 0..4u64 {
            for v in (u + 1)..4 {
                assert_eq!(t_of(u, v), 4, "K4 edge ({u},{v})");
            }
        }
        assert_eq!(t_of(3, 4), 3); // pendant triangle edges
        assert_eq!(t_of(4, 5), 3);
        assert_eq!(t_of(5, 3), 3);
        // The 4-truss is exactly the K4.
        assert_eq!(d.ktruss_edges(4).len(), 6);
    }

    #[test]
    fn two_k4s_sharing_an_edge() {
        // K4 on {0,1,2,3} and K4 on {2,3,4,5}: all edges trussness 4
        // (the shared edge (2,3) has support 4 but peels at k=4).
        let mut edges = Vec::new();
        for quad in [[0u64, 1, 2, 3], [2, 3, 4, 5]] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((quad[i], quad[j]));
                }
            }
        }
        let d = decompose(&edges);
        assert_eq!(d.max_k, 4);
        assert!(d.trussness.iter().all(|(_, t)| *t == 4));
        // 11 distinct edges (the shared (2,3) deduplicates).
        assert_eq!(d.trussness.len(), 11);
    }

    #[test]
    fn empty_graph() {
        let d = decompose(&[]);
        assert_eq!(d.max_k, 2);
        assert!(d.trussness.is_empty());
    }
}
