//! Instrumented drop-in replacements for `std::sync::{Mutex, Condvar}`
//! and the `core::sync::atomic` integer/bool types.
//!
//! Each type wraps its std counterpart and, when the calling thread
//! belongs to a live model execution (is inside a [`crate::check`] run),
//! routes every operation through the scheduler: the op becomes a
//! schedule point, and its synchronization effect is recorded in the
//! vector-clock layer *according to the `Ordering` the caller passed*.
//! Outside a model execution every method falls through to std
//! directly, so code routed through these types still behaves normally
//! in non-model builds of the same compilation (e.g. the rest of the
//! test suite when `--cfg tripoll_model` is set globally).
//!
//! Values are always sequentially consistent (the scheduler serializes
//! execution), so a too-weak `Ordering` does not produce stale values
//! here — it produces *missing happens-before edges*, which the
//! [`crate::cell::RaceCell`] race detector turns into failures.

use std::sync::atomic::Ordering;
use std::sync::{Condvar as StdCondvar, LockResult, Mutex as StdMutex, PoisonError};

use crate::sched::{ctx, Hb};

fn acq_of(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn rel_of(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn ord_index(o: Ordering) -> usize {
    match o {
        Ordering::Relaxed => 0,
        Ordering::Acquire => 1,
        Ordering::Release => 2,
        Ordering::AcqRel => 3,
        Ordering::SeqCst => 4,
        _ => 4,
    }
}

// ---- Mutex --------------------------------------------------------------

/// A mutex with the `std::sync::Mutex` API whose lock/unlock become
/// model schedule points (and happens-before edges) under a model
/// execution, and plain std operations otherwise.
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// Guard returned by [`Mutex::lock`]; releases the model mutex (a
/// schedule point) when dropped under a model execution.
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can take the std guard out and
    // rebuild it after re-acquisition.
    inner: Option<std::sync::MutexGuard<'a, T>>,
    /// Model identity of the owning mutex (its address), when locked
    /// under a model execution.
    model_addr: Option<usize>,
}

impl<T> Mutex<T> {
    /// Creates a mutex. `const` so it can live in statics, like std's.
    pub const fn new(v: T) -> Self {
        Mutex {
            inner: StdMutex::new(v),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn addr(&self) -> usize {
        self as *const Self as *const u8 as usize
    }

    /// Acquires the mutex. Under a model execution this never reports
    /// poisoning (a model panic aborts the whole execution instead).
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match ctx() {
            None => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    inner: Some(g),
                    model_addr: None,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    inner: Some(p.into_inner()),
                    model_addr: None,
                })),
            },
            Some((exec, me)) => {
                exec.mutex_lock(me, self.addr());
                // The model protocol guarantees exclusivity, so the std
                // lock is uncontended; `lock()` (not `try_lock`) keeps
                // us robust to a racing passthrough thread misusing the
                // same mutex, and poisoning is ignored (the model owns
                // failure reporting).
                let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
                Ok(MutexGuard {
                    inner: Some(g),
                    model_addr: Some(self.addr()),
                })
            }
        }
    }

    /// Mutable access without locking (exclusive borrow).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the data lock first, then the model lock.
        drop(self.inner.take());
        if let Some(addr) = self.model_addr {
            // Skip the model release while unwinding: either the
            // execution is already aborting (teardown) or a user panic
            // is about to be recorded as the failure — in both cases a
            // schedule point here could double-panic.
            if !std::thread::panicking() {
                if let Some((exec, me)) = ctx() {
                    exec.mutex_unlock(me, addr);
                }
            }
        }
    }
}

// ---- Condvar ------------------------------------------------------------

/// A condition variable with the `std::sync::Condvar` API; waits and
/// notifies become model schedule points under a model execution.
/// Lost-wakeup bugs surface as model deadlocks.
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: StdCondvar::new(),
        }
    }

    fn addr(&self) -> usize {
        self as *const Self as *const u8 as usize
    }

    /// Releases the guard's mutex, parks until notified, re-acquires.
    /// Model waits have no spurious wakeups (every wake is a notify),
    /// which is the *conservative* direction for finding lost wakeups.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match guard.model_addr {
            None => {
                let std_guard = guard.inner.take().expect("guard holds the lock");
                match self.inner.wait(std_guard) {
                    Ok(g) => Ok(MutexGuard {
                        inner: Some(g),
                        model_addr: None,
                    }),
                    Err(p) => Err(PoisonError::new(MutexGuard {
                        inner: Some(p.into_inner()),
                        model_addr: None,
                    })),
                }
            }
            Some(mutex_addr) => {
                let (exec, me) = ctx().expect("model guard outside model execution");
                // Drop the std guard (the data lock) before parking;
                // the model re-acquire below re-takes it.
                let std_guard = guard.inner.take().expect("guard holds the lock");
                // Neutralize the guard's Drop: the model release is
                // performed by condvar_wait itself, atomically with the
                // park.
                guard.model_addr = None;
                drop(std_guard);
                exec.condvar_wait(me, self.addr(), mutex_addr);
                // Model mutex re-acquired; re-take the data lock. The
                // pointer round-trip is how we get back to the Mutex
                // without a lifetime-carrying handle.
                // SAFETY: `mutex_addr` is the address of the `Mutex<T>`
                // the caller's guard borrowed from, so it is live for
                // 'a, and `StdMutex` is the first (only) field of
                // `Mutex<T>`; locking through the erased pointer is
                // sound because we only materialize the guard for the
                // original `'a` lifetime and immediately repackage it.
                let relocked: std::sync::MutexGuard<'a, T> = unsafe {
                    let m: &'a Mutex<T> = &*(mutex_addr as *const Mutex<T>);
                    m.inner.lock().unwrap_or_else(|p| p.into_inner())
                };
                Ok(MutexGuard {
                    inner: Some(relocked),
                    model_addr: Some(mutex_addr),
                })
            }
        }
    }

    /// Waits while `condition` holds (std-compatible helper).
    pub fn wait_while<'a, T, F: FnMut(&mut T) -> bool>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut condition: F,
    ) -> LockResult<MutexGuard<'a, T>> {
        while condition(&mut *guard) {
            guard = self.wait(guard)?;
        }
        Ok(guard)
    }

    /// Wakes one waiter (the lowest-tid one, deterministically, under
    /// a model execution).
    pub fn notify_one(&self) {
        match ctx() {
            None => self.inner.notify_one(),
            Some((exec, me)) => exec.condvar_notify(me, self.addr(), false),
        }
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        match ctx() {
            None => self.inner.notify_all(),
            Some((exec, me)) => exec.condvar_notify(me, self.addr(), true),
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

// ---- atomics ------------------------------------------------------------

macro_rules! instrumented_atomic {
    ($name:ident, $std:ident, $prim:ty) => {
        /// Instrumented counterpart of the std atomic of the same
        /// name: every operation is a model schedule point, and its
        /// `Ordering` argument drives the happens-before bookkeeping
        /// (see the module docs). Falls through to std outside a model
        /// execution.
        pub struct $name {
            inner: std::sync::atomic::$std,
        }

        impl $name {
            const LOAD: [&'static str; 5] = instrumented_atomic!(@names $name, "load");
            const STORE: [&'static str; 5] = instrumented_atomic!(@names $name, "store");
            const SWAP: [&'static str; 5] = instrumented_atomic!(@names $name, "swap");
            const CAS: [&'static str; 5] = instrumented_atomic!(@names $name, "compare_exchange");

            /// Creates a new atomic (const, like std's).
            pub const fn new(v: $prim) -> Self {
                $name {
                    inner: std::sync::atomic::$std::new(v),
                }
            }

            fn addr(&self) -> usize {
                self as *const Self as *const u8 as usize
            }

            /// Loads the value.
            pub fn load(&self, order: Ordering) -> $prim {
                if let Some((exec, me)) = ctx() {
                    exec.atomic_hb(
                        me,
                        Self::LOAD[ord_index(order)],
                        self.addr(),
                        Hb {
                            acq: acq_of(order),
                            rel: false,
                            rmw: false,
                            store: false,
                        },
                    );
                }
                self.inner.load(order)
            }

            /// Stores a value. A `Relaxed` store *breaks* the
            /// location's release chain in the model, exactly as a
            /// relaxed store replaces a release sequence in C11.
            pub fn store(&self, v: $prim, order: Ordering) {
                if let Some((exec, me)) = ctx() {
                    exec.atomic_hb(
                        me,
                        Self::STORE[ord_index(order)],
                        self.addr(),
                        Hb {
                            acq: false,
                            rel: rel_of(order),
                            rmw: false,
                            store: true,
                        },
                    );
                }
                self.inner.store(v, order)
            }

            /// Swaps the value, returning the previous one.
            pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                self.rmw(Self::SWAP[ord_index(order)], order);
                self.inner.swap(v, order)
            }

            fn rmw(&self, op: &'static str, order: Ordering) {
                if let Some((exec, me)) = ctx() {
                    exec.atomic_hb(
                        me,
                        op,
                        self.addr(),
                        Hb {
                            acq: acq_of(order),
                            rel: rel_of(order),
                            rmw: true,
                            store: false,
                        },
                    );
                }
            }

            /// Compare-and-exchange; the happens-before effect follows
            /// the outcome (success → RMW at `success` ordering,
            /// failure → load at `failure` ordering).
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                match ctx() {
                    None => self.inner.compare_exchange(current, new, success, failure),
                    Some((exec, me)) => {
                        exec.atomic_point(me, Self::CAS[ord_index(success)], self.addr());
                        let r = self.inner.compare_exchange(current, new, success, failure);
                        match r {
                            Ok(_) => exec.atomic_apply(
                                me,
                                self.addr(),
                                Hb {
                                    acq: acq_of(success),
                                    rel: rel_of(success),
                                    rmw: true,
                                    store: false,
                                },
                            ),
                            Err(_) => exec.atomic_apply(
                                me,
                                self.addr(),
                                Hb {
                                    acq: acq_of(failure),
                                    rel: false,
                                    rmw: false,
                                    store: false,
                                },
                            ),
                        }
                        r
                    }
                }
            }

            /// Weak compare-and-exchange. The model never fails
            /// spuriously (it delegates to the strong version), which
            /// only *shrinks* the behavior set — sound for finding
            /// bugs in success-path protocols.
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.compare_exchange(current, new, success, failure)
            }

            /// Mutable access without synchronization (exclusive borrow).
            pub fn get_mut(&mut self) -> &mut $prim {
                self.inner.get_mut()
            }

            /// Consumes the atomic, returning the value.
            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }
        }

        impl Default for $name {
            fn default() -> Self {
                $name::new(Default::default())
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                self.inner.fmt(f)
            }
        }
    };
    (@names $name:ident, $op:literal) => {
        [
            concat!(stringify!($name), "::", $op, "(Relaxed)"),
            concat!(stringify!($name), "::", $op, "(Acquire)"),
            concat!(stringify!($name), "::", $op, "(Release)"),
            concat!(stringify!($name), "::", $op, "(AcqRel)"),
            concat!(stringify!($name), "::", $op, "(SeqCst)"),
        ]
    };
}

macro_rules! instrumented_atomic_arith {
    ($name:ident, $prim:ty) => {
        impl $name {
            const FETCH_ADD: [&'static str; 5] = instrumented_atomic!(@names $name, "fetch_add");
            const FETCH_SUB: [&'static str; 5] = instrumented_atomic!(@names $name, "fetch_sub");
            const FETCH_MAX: [&'static str; 5] = instrumented_atomic!(@names $name, "fetch_max");
            const FETCH_MIN: [&'static str; 5] = instrumented_atomic!(@names $name, "fetch_min");

            /// Adds to the value, returning the previous one.
            pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                self.rmw(Self::FETCH_ADD[ord_index(order)], order);
                self.inner.fetch_add(v, order)
            }

            /// Subtracts from the value, returning the previous one.
            pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                self.rmw(Self::FETCH_SUB[ord_index(order)], order);
                self.inner.fetch_sub(v, order)
            }

            /// Maximum with the value, returning the previous one.
            pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                self.rmw(Self::FETCH_MAX[ord_index(order)], order);
                self.inner.fetch_max(v, order)
            }

            /// Minimum with the value, returning the previous one.
            pub fn fetch_min(&self, v: $prim, order: Ordering) -> $prim {
                self.rmw(Self::FETCH_MIN[ord_index(order)], order);
                self.inner.fetch_min(v, order)
            }
        }
    };
}

instrumented_atomic!(AtomicUsize, AtomicUsize, usize);
instrumented_atomic!(AtomicU64, AtomicU64, u64);
instrumented_atomic!(AtomicI64, AtomicI64, i64);
instrumented_atomic!(AtomicU32, AtomicU32, u32);
instrumented_atomic!(AtomicBool, AtomicBool, bool);
instrumented_atomic_arith!(AtomicUsize, usize);
instrumented_atomic_arith!(AtomicU64, u64);
instrumented_atomic_arith!(AtomicI64, i64);
instrumented_atomic_arith!(AtomicU32, u32);

impl AtomicBool {
    const FETCH_OR: [&'static str; 5] = instrumented_atomic!(@names AtomicBool, "fetch_or");
    const FETCH_AND: [&'static str; 5] = instrumented_atomic!(@names AtomicBool, "fetch_and");

    /// Logical OR with the value, returning the previous one.
    pub fn fetch_or(&self, v: bool, order: Ordering) -> bool {
        self.rmw(Self::FETCH_OR[ord_index(order)], order);
        self.inner.fetch_or(v, order)
    }

    /// Logical AND with the value, returning the previous one.
    pub fn fetch_and(&self, v: bool, order: Ordering) -> bool {
        self.rmw(Self::FETCH_AND[ord_index(order)], order);
        self.inner.fetch_and(v, order)
    }
}
