//! Vector clocks: the happens-before lattice the race detector and the
//! synchronization bookkeeping are built on.
//!
//! Every model thread carries a [`VClock`]; every synchronizing object
//! (mutex, condvar, atomic location with release semantics) carries the
//! clock its last releasing accessor published. An access A
//! happens-before an access B exactly when A's `(thread, time)` epoch
//! is `<=` B's thread clock — the standard vector-clock formulation
//! (FastTrack's full-clock variant; epochs are not compressed because
//! model runs involve a handful of threads).

/// A vector timestamp over model-thread ids. Component `t` is the
/// number of scheduled operations thread `t` had completed at the time
/// this clock was captured (plus transitively-joined knowledge).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock {
    t: Vec<u32>,
}

impl VClock {
    /// The zero clock: happens-before everything.
    pub fn new() -> Self {
        VClock { t: Vec::new() }
    }

    /// Component for thread `tid` (0 when never touched).
    #[inline]
    pub fn get(&self, tid: usize) -> u32 {
        self.t.get(tid).copied().unwrap_or(0)
    }

    /// Sets component `tid` to `v` (growing as needed).
    pub fn set(&mut self, tid: usize, v: u32) {
        if self.t.len() <= tid {
            self.t.resize(tid + 1, 0);
        }
        self.t[tid] = v;
    }

    /// Advances this thread's own component by one — called once per
    /// scheduled operation.
    pub fn tick(&mut self, tid: usize) {
        let v = self.get(tid) + 1;
        self.set(tid, v);
    }

    /// Componentwise maximum: after `self.join(o)`, everything that
    /// happened-before `o` also happens-before `self`.
    pub fn join(&mut self, other: &VClock) {
        if self.t.len() < other.t.len() {
            self.t.resize(other.t.len(), 0);
        }
        for (i, &v) in other.t.iter().enumerate() {
            if self.t[i] < v {
                self.t[i] = v;
            }
        }
    }

    /// Whether the epoch `(tid, time)` happens-before (or equals) this
    /// clock — i.e. this clock has observed that operation.
    #[inline]
    pub fn observed(&self, tid: usize, time: u32) -> bool {
        self.get(tid) >= time
    }

    /// Whether every component of `other` is `<=` the matching
    /// component here (i.e. `other` ⊑ `self`).
    pub fn dominates(&self, other: &VClock) -> bool {
        (0..other.t.len()).all(|i| self.get(i) >= other.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_dominates() {
        let mut a = VClock::new();
        a.set(0, 3);
        let mut b = VClock::new();
        b.set(1, 5);
        assert!(!a.dominates(&b));
        a.join(&b);
        assert!(a.dominates(&b));
        assert_eq!(a.get(0), 3);
        assert_eq!(a.get(1), 5);
        assert!(a.observed(1, 5));
        assert!(!a.observed(1, 6));
    }

    #[test]
    fn tick_advances_own_component_only() {
        let mut a = VClock::new();
        a.tick(2);
        a.tick(2);
        assert_eq!(a.get(2), 2);
        assert_eq!(a.get(0), 0);
    }
}
