//! Instrumented `std::thread` subset: `spawn`, `Builder`, `yield_now`,
//! `JoinHandle`.
//!
//! Under a model execution, a spawned closure becomes a new *model
//! thread*: it runs on a real OS thread but parks at a start gate
//! until the scheduler hands it the token, and every instrumented
//! operation inside it is a schedule point. `yield_now` participates
//! in the scheduler's spin-loop rule: a yielded thread is not
//! rescheduled while any non-yielded runnable thread exists, which
//! bounds `spin; yield` loops without exploding the schedule space.

use std::io;
use std::sync::Arc;

use crate::sched::{ctx, run_model_thread, Exec, Tid};

/// Handle to a spawned thread; `join` is a model schedule point (and a
/// happens-before edge from the child's last op) under a model
/// execution.
pub struct JoinHandle<T> {
    model: Option<(Arc<Exec>, Tid)>,
    inner: std::thread::JoinHandle<Option<T>>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((exec, target)) = &self.model {
            if let Some((me_exec, me)) = ctx() {
                debug_assert!(Arc::ptr_eq(exec, &me_exec), "join across executions");
                me_exec.join_thread(me, *target);
            }
        }
        match self.inner.join() {
            Ok(Some(v)) => Ok(v),
            // The child was torn down (aborted execution): the joiner
            // is itself being torn down and should never observe this,
            // but surface it as a join error rather than a unwrap.
            Ok(None) => Err(Box::new("model thread torn down")),
            Err(e) => Err(e),
        }
    }

    /// Whether the thread has finished (passthrough only; not a model
    /// schedule point).
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

/// Spawns a thread running `f`. Inside a model execution the spawn is
/// a schedule point and the child starts parked until scheduled.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    spawn_named(f, None).expect("failed to spawn thread")
}

fn spawn_named<F, T>(f: F, name: Option<String>) -> io::Result<JoinHandle<T>>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let mut b = std::thread::Builder::new();
    match ctx() {
        None => {
            if let Some(n) = name {
                b = b.name(n);
            }
            let inner = b.spawn(move || Some(f()))?;
            Ok(JoinHandle { model: None, inner })
        }
        Some((exec, me)) => {
            exec.atomic_point(me, "thread::spawn", 0);
            let tid = exec.register_thread(me);
            b = b.name(name.unwrap_or_else(|| format!("model-{tid}")));
            let e2 = exec.clone();
            let inner = b.spawn(move || run_model_thread(e2, tid, f))?;
            Ok(JoinHandle {
                model: Some((exec, tid)),
                inner,
            })
        }
    }
}

/// Cooperatively yields. Under a model execution this deprioritizes
/// the calling thread deterministically (see the module docs) instead
/// of branching the schedule.
pub fn yield_now() {
    match ctx() {
        None => std::thread::yield_now(),
        Some((exec, me)) => exec.yield_now(me),
    }
}

/// `std::thread::Builder` subset (name only; stack size is ignored in
/// model builds where threads are scheduler-managed).
#[derive(Default)]
pub struct Builder {
    name: Option<String>,
    stack_size: Option<usize>,
}

impl Builder {
    /// Creates a builder.
    pub fn new() -> Self {
        Builder::default()
    }

    /// Names the thread.
    pub fn name(mut self, name: String) -> Self {
        self.name = Some(name);
        self
    }

    /// Requests a stack size (honored only in passthrough mode).
    pub fn stack_size(mut self, size: usize) -> Self {
        self.stack_size = Some(size);
        self
    }

    /// Spawns the thread.
    pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        // Stack size is deliberately dropped in model mode; pass it
        // through otherwise by re-implementing the passthrough arm.
        if ctx().is_none() {
            let mut b = std::thread::Builder::new();
            if let Some(n) = self.name {
                b = b.name(n);
            }
            if let Some(s) = self.stack_size {
                b = b.stack_size(s);
            }
            let inner = b.spawn(move || Some(f()))?;
            return Ok(JoinHandle { model: None, inner });
        }
        spawn_named(f, self.name)
    }
}
