//! The deterministic scheduler and interleaving explorer.
//!
//! One *execution* runs the closure-under-test with every model thread
//! mapped to a real OS thread, but **strictly serialized**: exactly one
//! thread is `active` at any instant, and control is handed off only at
//! *schedule points* — every operation on an instrumented primitive
//! ([`crate::sync`], [`crate::cell`], [`crate::thread`]). At each point
//! the scheduler either continues the current thread or preempts to
//! another runnable one; the sequence of such choices *is* the
//! interleaving. The explorer (in [`crate::check`]) enumerates choice
//! sequences by depth-first search with a preemption bound, so every
//! sequentially-consistent interleaving with at most `preemption_bound`
//! involuntary context switches is executed.
//!
//! Serialization makes values sequentially consistent; weaker-ordering
//! bugs are surfaced through the happens-before layer instead: every
//! synchronizing operation updates vector clocks per its `Ordering`
//! argument (a `Relaxed` op creates no edge), and [`crate::cell::RaceCell`]
//! accesses are checked against those clocks, so a protocol whose only
//! ordering is too weak fails with a **data race** even though the
//! serialized values looked fine. See `docs/CONCURRENCY.md` for the
//! fidelity discussion.

use std::collections::HashMap;
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard};

use crate::clock::VClock;

/// Model-thread index (0 is the closure-under-test's root thread).
pub(crate) type Tid = usize;

/// Panic payload used to unwind model threads when an execution aborts
/// (failure found, or teardown of a doomed schedule). Swallowed by the
/// per-thread wrapper; never escapes to user code.
pub(crate) struct Teardown;

/// Why a thread is not runnable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Block {
    /// Waiting to acquire the model mutex at this address.
    Mutex(usize),
    /// Waiting on the model condvar at this address.
    Condvar(usize),
    /// Waiting for this thread id to finish.
    Join(Tid),
}

impl Block {
    fn describe(self, core: &mut Core) -> String {
        match self {
            Block::Mutex(a) => format!("Mutex#{}", core.oid(a)),
            Block::Condvar(a) => format!("Condvar#{}", core.oid(a)),
            Block::Join(t) => format!("join(thread {t})"),
        }
    }
}

#[derive(Clone, PartialEq, Debug)]
pub(crate) enum Status {
    Runnable,
    Blocked(Block),
    Finished,
}

struct Th {
    status: Status,
    yielded: bool,
    clock: VClock,
    finished_clock: Option<VClock>,
}

impl Th {
    fn new(clock: VClock) -> Self {
        Th {
            status: Status::Runnable,
            yielded: false,
            clock,
            finished_clock: None,
        }
    }
}

/// One executed schedule point, for the failure trace.
#[derive(Clone)]
pub(crate) struct TraceEntry {
    pub tid: Tid,
    pub op: &'static str,
    /// Small model-local object id (first-touch order), so traces are
    /// identical across runs regardless of allocation addresses. 0
    /// means "no object".
    pub obj: usize,
}

/// An atomic op's happens-before effect. `acq`/`rel` are derived from
/// the user's `Ordering`; `rmw` distinguishes read-modify-writes
/// (which *continue* a release sequence even when relaxed) from plain
/// stores (`store`, which replace it, and when relaxed, break it).
#[derive(Clone, Copy)]
pub(crate) struct Hb {
    pub acq: bool,
    pub rel: bool,
    pub rmw: bool,
    pub store: bool,
}

/// One recorded scheduling decision (only points with >1 allowed
/// successor are recorded; singleton choices are forced).
#[derive(Clone)]
pub(crate) struct ChoiceRec {
    pub allowed: Vec<Tid>,
    pub index: usize,
}

impl ChoiceRec {
    pub(crate) fn chosen(&self) -> Tid {
        self.allowed[self.index]
    }
}

/// What an execution died of.
#[derive(Clone)]
pub(crate) enum Failure {
    /// Every live thread is blocked — includes lost condvar wakeups.
    Deadlock(Vec<(Tid, String)>),
    /// A `RaceCell` access with no happens-before edge to a prior
    /// conflicting access.
    Race(String),
    /// User code panicked (assertion failure and friends).
    Panicked(String),
    /// The per-execution step limit was exceeded.
    Livelock(usize),
}

impl Failure {
    pub(crate) fn headline(&self) -> String {
        match self {
            Failure::Deadlock(blocked) => {
                let mut s = String::from("deadlock: every live thread is blocked (lost wakeup?):");
                for (t, why) in blocked {
                    s.push_str(&format!(" thread {t} on {why};"));
                }
                s
            }
            Failure::Race(d) => format!("data race: {d}"),
            Failure::Panicked(m) => format!("thread panicked: {m}"),
            Failure::Livelock(n) => {
                format!("livelock: execution exceeded {n} schedule points without completing")
            }
        }
    }
}

#[derive(Default)]
struct MutexSt {
    holder: Option<Tid>,
    clock: VClock,
}

struct CellSt {
    w_tid: Tid,
    w_time: u32,
    reads: VClock,
}

pub(crate) struct Core {
    threads: Vec<Th>,
    active: Tid,
    /// Planned choice indices (DFS replay prefix); beyond it, default
    /// policy (stay on the current thread).
    plan: Vec<usize>,
    /// Choices recorded this execution (drives the next backtrack).
    pub(crate) choices: Vec<ChoiceRec>,
    /// Forced tid sequence from `TRIPOLL_MODEL_REPLAY`.
    replay: Option<Vec<Tid>>,
    /// Seeded xorshift state: random scheduling mode.
    rng: Option<u64>,
    bound: usize,
    preemptions: usize,
    steps: usize,
    max_steps: usize,
    pub(crate) trace: Vec<TraceEntry>,
    pub(crate) failure: Option<Failure>,
    aborted: bool,
    completed: bool,
    mutexes: HashMap<usize, MutexSt>,
    cv_clocks: HashMap<usize, VClock>,
    atomics: HashMap<usize, VClock>,
    cells: HashMap<usize, CellSt>,
    /// Address → small stable id, assigned in first-touch order (which
    /// is deterministic under serialization) so traces and reports
    /// never depend on allocation addresses.
    obj_ids: HashMap<usize, usize>,
}

impl Core {
    fn oid(&mut self, addr: usize) -> usize {
        if addr == 0 {
            return 0;
        }
        let next = self.obj_ids.len() + 1;
        *self.obj_ids.entry(addr).or_insert(next)
    }
}

/// One execution's shared scheduler state. All model threads of the
/// execution (plus the controller) rendezvous on `lk`/`cv`.
pub(crate) struct Exec {
    lk: StdMutex<Core>,
    cv: StdCondvar,
}

impl Exec {
    pub(crate) fn new(
        plan: Vec<usize>,
        replay: Option<Vec<Tid>>,
        rng: Option<u64>,
        bound: usize,
        max_steps: usize,
    ) -> Arc<Self> {
        let root = Th::new({
            let mut c = VClock::new();
            c.tick(0);
            c
        });
        Arc::new(Exec {
            lk: StdMutex::new(Core {
                threads: vec![root],
                active: 0,
                plan,
                choices: Vec::new(),
                replay,
                rng,
                bound,
                preemptions: 0,
                steps: 0,
                max_steps,
                trace: Vec::new(),
                failure: None,
                aborted: false,
                completed: false,
                mutexes: HashMap::new(),
                cv_clocks: HashMap::new(),
                atomics: HashMap::new(),
                cells: HashMap::new(),
                obj_ids: HashMap::new(),
            }),
            cv: StdCondvar::new(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, Core> {
        self.lk.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records `f` as this execution's failure (first failure wins) and
    /// aborts the execution; parked threads wake and tear down.
    fn record_failure(&self, g: &mut Core, f: Failure) {
        if g.failure.is_none() {
            g.failure = Some(f);
        }
        g.aborted = true;
        self.cv.notify_all();
    }

    fn abort_check(&self, g: &Core) {
        if g.aborted {
            panic_any(Teardown);
        }
    }

    /// The set of threads the scheduler may run next, in canonical
    /// order (current thread first when eligible), already filtered by
    /// the yield rule and the preemption budget.
    fn allowed_set(g: &mut Core, me: Tid, me_runnable: bool) -> Vec<Tid> {
        let runnable: Vec<Tid> = (0..g.threads.len())
            .filter(|&t| g.threads[t].status == Status::Runnable)
            .collect();
        // Yield rule: a thread that called yield_now is not eligible
        // while any non-yielded runnable thread exists; if everyone
        // runnable has yielded, the flags reset (no livelock by rule).
        let pool: Vec<Tid> = if runnable.iter().any(|&t| !g.threads[t].yielded) {
            runnable
                .iter()
                .copied()
                .filter(|&t| !g.threads[t].yielded)
                .collect()
        } else {
            for &t in &runnable {
                g.threads[t].yielded = false;
            }
            runnable
        };
        if me_runnable {
            debug_assert!(pool.contains(&me), "active thread missing from pool");
            let mut out = vec![me];
            if g.preemptions < g.bound {
                out.extend(pool.iter().copied().filter(|&t| t != me));
            }
            out
        } else {
            pool
        }
    }

    /// Picks the next thread at a schedule point. Returns the chosen
    /// tid; records the decision when more than one successor was
    /// allowed. Fails the execution with a deadlock when nothing is
    /// runnable (callers on a finishing path must check `aborted`).
    fn choose(&self, g: &mut Core, me: Tid, me_runnable: bool) -> Tid {
        let allowed = Self::allowed_set(g, me, me_runnable);
        if allowed.is_empty() {
            let reasons: Vec<(Tid, Block)> = g
                .threads
                .iter()
                .enumerate()
                .filter_map(|(t, th)| match th.status {
                    Status::Blocked(b) => Some((t, b)),
                    _ => None,
                })
                .collect();
            let blocked: Vec<(Tid, String)> = reasons
                .into_iter()
                .map(|(t, b)| (t, b.describe(g)))
                .collect();
            self.record_failure(g, Failure::Deadlock(blocked));
            return me; // caller observes `aborted`
        }
        // Singleton choices are forced and never recorded, so they
        // must not consume a plan/replay position either.
        if allowed.len() == 1 {
            return allowed[0];
        }
        let pos = g.choices.len();
        let index = if let Some(replay) = &g.replay {
            match replay.get(pos) {
                Some(&want) => allowed.iter().position(|&t| t == want).unwrap_or_else(|| {
                    panic!(
                        "TRIPOLL_MODEL_REPLAY diverged at choice {pos}: \
                         thread {want} not schedulable (allowed: {allowed:?})"
                    )
                }),
                None => 0,
            }
        } else if pos < g.plan.len() {
            let i = g.plan[pos];
            assert!(
                i < allowed.len(),
                "DFS plan index out of range (non-deterministic closure?): \
                 pos {pos}, plan {:?}, allowed {allowed:?}, me {me} (runnable: {me_runnable})",
                g.plan
            );
            i
        } else if let Some(s) = &mut g.rng {
            (xorshift(s) as usize) % allowed.len()
        } else {
            0
        };
        let chosen = allowed[index];
        g.choices.push(ChoiceRec { allowed, index });
        if me_runnable && chosen != me {
            g.preemptions += 1;
        }
        chosen
    }

    /// Hands the token to `chosen` and parks until this thread is both
    /// active and runnable again (or the execution aborts).
    fn handoff<'a>(
        &'a self,
        mut g: MutexGuard<'a, Core>,
        me: Tid,
        chosen: Tid,
    ) -> MutexGuard<'a, Core> {
        g.active = chosen;
        self.cv.notify_all();
        loop {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
            if g.aborted {
                drop(g);
                panic_any(Teardown);
            }
            if g.active == me && g.threads[me].status == Status::Runnable {
                break;
            }
        }
        g.threads[me].yielded = false;
        g
    }

    /// The universal schedule point: offers a preemption, then accounts
    /// one executed operation (step counter, trace entry, clock tick)
    /// and returns with the core locked so the caller can apply the
    /// operation's happens-before effects.
    pub(crate) fn point(&self, me: Tid, op: &'static str, obj: usize) -> MutexGuard<'_, Core> {
        let mut g = self.lock();
        self.abort_check(&g);
        debug_assert_eq!(g.active, me, "only the active thread may execute");
        let chosen = self.choose(&mut g, me, true);
        self.abort_check(&g);
        if chosen != me {
            g = self.handoff(g, me, chosen);
        }
        g.steps += 1;
        if g.steps > g.max_steps {
            let lim = g.max_steps;
            self.record_failure(&mut g, Failure::Livelock(lim));
            drop(g);
            panic_any(Teardown);
        }
        let oid = g.oid(obj);
        g.trace.push(TraceEntry {
            tid: me,
            op,
            obj: oid,
        });
        g.threads[me].clock.tick(me);
        g
    }

    /// Blocks the current thread with `reason` and parks until some
    /// other thread makes it runnable again. Called with the core
    /// locked (as returned by [`Exec::point`]); returns re-locked.
    fn block<'a>(
        &'a self,
        mut g: MutexGuard<'a, Core>,
        me: Tid,
        reason: Block,
    ) -> MutexGuard<'a, Core> {
        g.threads[me].status = Status::Blocked(reason);
        let chosen = self.choose(&mut g, me, false);
        if g.aborted {
            drop(g);
            panic_any(Teardown);
        }
        self.handoff(g, me, chosen)
    }

    // ---- primitive protocols -------------------------------------------

    /// Model-mutex acquire: blocks (and re-tries) while held elsewhere;
    /// joins the mutex's release clock on success.
    pub(crate) fn mutex_lock(&self, me: Tid, addr: usize) {
        let mut g = self.point(me, "Mutex::lock", addr);
        loop {
            let st = g.mutexes.entry(addr).or_default();
            if st.holder.is_none() {
                st.holder = Some(me);
                let mc = st.clock.clone();
                g.threads[me].clock.join(&mc);
                return;
            }
            g = self.block(g, me, Block::Mutex(addr));
        }
    }

    /// Model-mutex release: publishes this thread's clock to the mutex
    /// and wakes every thread blocked on it.
    pub(crate) fn mutex_unlock(&self, me: Tid, addr: usize) {
        let mut g = self.point(me, "Mutex::unlock", addr);
        let clock = g.threads[me].clock.clone();
        let st = g.mutexes.entry(addr).or_default();
        debug_assert_eq!(st.holder, Some(me), "unlock by non-holder");
        st.holder = None;
        st.clock.join(&clock);
        Self::wake_blocked(&mut g, Block::Mutex(addr));
    }

    fn wake_blocked(g: &mut Core, which: Block) {
        for th in g.threads.iter_mut() {
            if th.status == Status::Blocked(which) {
                th.status = Status::Runnable;
            }
        }
    }

    /// Condvar wait: atomically releases the mutex and parks on the
    /// condvar; on wakeup, re-acquires the mutex before returning.
    pub(crate) fn condvar_wait(&self, me: Tid, cv_addr: usize, mutex_addr: usize) {
        let mut g = self.point(me, "Condvar::wait", cv_addr);
        // Release the mutex exactly like mutex_unlock (same clock
        // publication), but without a second schedule point: the
        // release and the park are one atomic step, as in real
        // condvars — otherwise the model would invent a lost-wakeup
        // window no real implementation has.
        let clock = g.threads[me].clock.clone();
        let st = g.mutexes.entry(mutex_addr).or_default();
        debug_assert_eq!(st.holder, Some(me), "wait with mutex not held");
        st.holder = None;
        st.clock.join(&clock);
        Self::wake_blocked(&mut g, Block::Mutex(mutex_addr));
        g = self.block(g, me, Block::Condvar(cv_addr));
        // Woken: join the notifier's published clock, then re-acquire.
        let cvc = g.cv_clocks.entry(cv_addr).or_default().clone();
        g.threads[me].clock.join(&cvc);
        loop {
            let st = g.mutexes.entry(mutex_addr).or_default();
            if st.holder.is_none() {
                st.holder = Some(me);
                let mc = st.clock.clone();
                g.threads[me].clock.join(&mc);
                return;
            }
            g = self.block(g, me, Block::Mutex(mutex_addr));
        }
    }

    /// Wakes waiters on the condvar (`all` or the lowest-tid one),
    /// publishing the notifier's clock for them to join.
    pub(crate) fn condvar_notify(&self, me: Tid, cv_addr: usize, all: bool) {
        let mut g = self.point(
            me,
            if all {
                "Condvar::notify_all"
            } else {
                "Condvar::notify_one"
            },
            cv_addr,
        );
        let clock = g.threads[me].clock.clone();
        g.cv_clocks.entry(cv_addr).or_default().join(&clock);
        for t in 0..g.threads.len() {
            if g.threads[t].status == Status::Blocked(Block::Condvar(cv_addr)) {
                g.threads[t].status = Status::Runnable;
                if !all {
                    break;
                }
            }
        }
    }

    /// Atomic-op happens-before update; see [`Hb`] for the flag
    /// semantics.
    pub(crate) fn atomic_hb(&self, me: Tid, op: &'static str, addr: usize, hb: Hb) {
        let g = self.point(me, op, addr);
        Self::hb_update(g, me, addr, hb);
    }

    /// The schedule point for a `compare_exchange`, taken *before* the
    /// exchange is performed (the caller applies the happens-before
    /// effect afterwards with [`Exec::atomic_apply`], once the
    /// success/failure outcome — and thus the effective ordering — is
    /// known; no other thread can run in between).
    pub(crate) fn atomic_point(&self, me: Tid, op: &'static str, addr: usize) {
        drop(self.point(me, op, addr));
    }

    /// Applies an atomic op's happens-before effect without taking a
    /// schedule point (see [`Exec::atomic_point`]).
    pub(crate) fn atomic_apply(&self, me: Tid, addr: usize, hb: Hb) {
        let g = self.lock();
        Self::hb_update(g, me, addr, hb);
    }

    fn hb_update(mut g: MutexGuard<'_, Core>, me: Tid, addr: usize, hb: Hb) {
        let Hb {
            acq,
            rel,
            rmw,
            store,
        } = hb;
        if acq {
            let msg = g.atomics.entry(addr).or_default().clone();
            g.threads[me].clock.join(&msg);
        }
        if store || rmw {
            let clock = g.threads[me].clock.clone();
            let msg = g.atomics.entry(addr).or_default();
            if rel {
                if rmw {
                    msg.join(&clock);
                } else {
                    *msg = clock;
                }
            } else if !rmw {
                // Relaxed plain store: replaces the value without
                // carrying a clock — breaks the release chain.
                *msg = VClock::new();
            }
            // Relaxed RMW: leaves the chain intact (C11 release
            // sequences are continued by any RMW).
        }
    }

    /// `RaceCell` read: requires the last write to happen-before us.
    pub(crate) fn cell_read(&self, me: Tid, addr: usize, what: &'static str) {
        let mut g = self.point(me, what, addr);
        let clock = g.threads[me].clock.clone();
        let me_time = clock.get(me);
        let oid = g.oid(addr);
        if let Some(cell) = g.cells.get_mut(&addr) {
            if !clock.observed(cell.w_tid, cell.w_time) {
                let d = format!(
                    "{what} on cell #{oid} by thread {me} is unsynchronized with the write by thread {}",
                    cell.w_tid
                );
                self.record_failure(&mut g, Failure::Race(d));
                drop(g);
                panic_any(Teardown);
            }
            cell.reads.set(me, me_time);
        } else {
            g.cells.insert(
                addr,
                CellSt {
                    w_tid: me,
                    w_time: 0, // the implicit initial write: pre-history
                    reads: {
                        let mut r = VClock::new();
                        r.set(me, me_time);
                        r
                    },
                },
            );
        }
    }

    /// `RaceCell` write: requires every prior access (the last write
    /// and all reads since) to happen-before us.
    pub(crate) fn cell_write(&self, me: Tid, addr: usize, what: &'static str) {
        let mut g = self.point(me, what, addr);
        let clock = g.threads[me].clock.clone();
        let me_time = clock.get(me);
        let oid = g.oid(addr);
        let violation = match g.cells.get(&addr) {
            Some(cell) => {
                if !clock.observed(cell.w_tid, cell.w_time) {
                    Some(format!(
                        "{what} on cell #{oid} by thread {me} is unsynchronized with the write by thread {}",
                        cell.w_tid
                    ))
                } else if !clock.dominates(&cell.reads) {
                    Some(format!(
                        "{what} on cell #{oid} by thread {me} is unsynchronized with a prior read"
                    ))
                } else {
                    None
                }
            }
            None => None,
        };
        if let Some(d) = violation {
            self.record_failure(&mut g, Failure::Race(d));
            drop(g);
            panic_any(Teardown);
        }
        g.cells.insert(
            addr,
            CellSt {
                w_tid: me,
                w_time: me_time,
                reads: VClock::new(),
            },
        );
    }

    /// Yield: deprioritizes the caller (see the yield rule in
    /// [`Exec::allowed_set`]) and rotates deterministically — yield
    /// points are not DFS branch points, which is what keeps spin-wait
    /// loops from exploding the schedule space.
    pub(crate) fn yield_now(&self, me: Tid) {
        let mut g = self.lock();
        self.abort_check(&g);
        g.steps += 1;
        if g.steps > g.max_steps {
            let lim = g.max_steps;
            self.record_failure(&mut g, Failure::Livelock(lim));
            drop(g);
            panic_any(Teardown);
        }
        g.trace.push(TraceEntry {
            tid: me,
            op: "yield_now",
            obj: 0,
        });
        g.threads[me].clock.tick(me);
        g.threads[me].yielded = true;
        let pool: Vec<Tid> = (0..g.threads.len())
            .filter(|&t| g.threads[t].status == Status::Runnable && !g.threads[t].yielded)
            .collect();
        let chosen = if let Some(&c) = pool.first() {
            c
        } else {
            // Everyone runnable has yielded: reset flags, rotate to the
            // next runnable thread after us (cyclically).
            let runnable: Vec<Tid> = (0..g.threads.len())
                .filter(|&t| g.threads[t].status == Status::Runnable)
                .collect();
            for &t in &runnable {
                g.threads[t].yielded = false;
            }
            runnable
                .iter()
                .copied()
                .find(|&t| t > me)
                .or_else(|| runnable.first().copied())
                .unwrap_or(me)
        };
        if chosen != me {
            drop(self.handoff(g, me, chosen));
        }
    }

    /// Registers a new model thread (spawn is itself a schedule point
    /// at the call site, in `thread::spawn`). Returns its tid.
    pub(crate) fn register_thread(&self, parent: Tid) -> Tid {
        let mut g = self.lock();
        self.abort_check(&g);
        let tid = g.threads.len();
        let mut clock = g.threads[parent].clock.clone();
        clock.tick(tid);
        g.threads.push(Th::new(clock));
        tid
    }

    /// The start gate every model thread passes before running user
    /// code: parks until scheduled for the first time.
    pub(crate) fn start_gate(&self, me: Tid) -> bool {
        let mut g = self.lock();
        loop {
            if g.aborted {
                return false;
            }
            if g.active == me && g.threads[me].status == Status::Runnable {
                return true;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Normal completion of a model thread: publishes its final clock
    /// for joiners, wakes them, and hands the token onward (detecting
    /// deadlock / completion when nothing is runnable).
    pub(crate) fn finish(&self, me: Tid) {
        let mut g = self.lock();
        if g.aborted {
            return;
        }
        g.trace.push(TraceEntry {
            tid: me,
            op: "finish",
            obj: 0,
        });
        let clock = g.threads[me].clock.clone();
        g.threads[me].status = Status::Finished;
        g.threads[me].finished_clock = Some(clock);
        Self::wake_blocked(&mut g, Block::Join(me));
        if g.threads.iter().all(|t| t.status == Status::Finished) {
            g.completed = true;
            self.cv.notify_all();
            return;
        }
        let chosen = self.choose(&mut g, me, false);
        if g.aborted {
            return; // deadlock recorded; we exit normally
        }
        g.active = chosen;
        self.cv.notify_all();
    }

    /// Blocks until thread `target` finishes, then joins its final
    /// clock into the caller's (the join happens-before edge).
    pub(crate) fn join_thread(&self, me: Tid, target: Tid) {
        let mut g = self.point(me, "JoinHandle::join", target);
        loop {
            if g.threads[target].status == Status::Finished {
                let fc = g.threads[target]
                    .finished_clock
                    .clone()
                    .expect("finished thread has a final clock");
                g.threads[me].clock.join(&fc);
                return;
            }
            g = self.block(g, me, Block::Join(target));
        }
    }

    /// Records a user-code panic as the execution's failure.
    pub(crate) fn record_panic(&self, _me: Tid, msg: String) {
        let mut g = self.lock();
        self.record_failure(&mut g, Failure::Panicked(msg));
    }

    /// Controller side: waits for the execution to complete or abort,
    /// then harvests the outcome.
    pub(crate) fn wait_outcome(&self) -> Outcome {
        let mut g = self.lock();
        while !g.completed && !g.aborted {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        Outcome {
            choices: std::mem::take(&mut g.choices),
            trace: std::mem::take(&mut g.trace),
            failure: g.failure.clone(),
            steps: g.steps,
        }
    }
}

/// What one execution produced.
pub(crate) struct Outcome {
    pub choices: Vec<ChoiceRec>,
    pub trace: Vec<TraceEntry>,
    pub failure: Option<Failure>,
    pub steps: usize,
}

fn xorshift(s: &mut u64) -> u64 {
    let mut x = *s;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *s = x;
    x
}

// ---- thread-local execution context ------------------------------------

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Exec>, Tid)>> =
        const { std::cell::RefCell::new(None) };
}

/// The calling thread's model context, if it is a model thread of a
/// live execution. Returns `None` while the thread is unwinding so
/// that drop glue falls back to passthrough std behavior instead of
/// taking schedule points (which could double-panic during teardown).
pub(crate) fn ctx() -> Option<(Arc<Exec>, Tid)> {
    if std::thread::panicking() {
        return None;
    }
    CTX.with(|c| c.borrow().clone())
}

/// Runs `body` as model thread `tid` of `exec`: installs the context,
/// passes the start gate, catches teardown and user panics.
pub(crate) fn run_model_thread<T>(
    exec: Arc<Exec>,
    tid: Tid,
    body: impl FnOnce() -> T,
) -> Option<T> {
    CTX.with(|c| *c.borrow_mut() = Some((exec.clone(), tid)));
    let out = if exec.start_gate(tid) {
        match catch_unwind(AssertUnwindSafe(body)) {
            Ok(v) => {
                // `finish` may legitimately unwind with `Teardown` if a
                // concurrent failure lands between the body's last op
                // and here; swallow it like any teardown.
                let _ = catch_unwind(AssertUnwindSafe(|| exec.finish(tid)));
                Some(v)
            }
            Err(p) if p.is::<Teardown>() => None,
            Err(p) => {
                // `&*p`, not `&p`: coercing `&Box<dyn Any>` would make
                // the Box itself the `Any` and defeat the downcasts.
                exec.record_panic(tid, panic_message(&*p));
                None
            }
        }
    } else {
        None
    };
    CTX.with(|c| *c.borrow_mut() = None);
    out
}

pub(crate) fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
