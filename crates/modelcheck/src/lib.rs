//! `tripoll-modelcheck` — a vendored, std-only, bounded-exhaustive
//! concurrency model checker in the spirit of CHESS and loom.
//!
//! [`check`] runs a closure many times, once per explored thread
//! interleaving: model threads ([`thread::spawn`]) are real OS threads
//! serialized by a token-passing scheduler, every operation on an
//! instrumented primitive ([`sync`], [`cell`]) is a schedule point,
//! and the explorer performs a depth-first search over the scheduling
//! decisions with a configurable *preemption bound* (involuntary
//! context switches per execution), falling back to seeded random
//! schedules past [`Config::max_schedules`]. Detected failures —
//! deadlocks (including lost wakeups), vector-clock data races on
//! [`cell::RaceCell`] data, assertion panics, and livelocks — abort
//! the search and panic with a deterministic, replayable trace.
//!
//! ## Replaying a failure
//!
//! A failure report prints the decision sequence as a comma-separated
//! thread-id list. Re-run the single failing test with
//! `TRIPOLL_MODEL_REPLAY=<that list>` to execute exactly that
//! interleaving (e.g. under a debugger). `TRIPOLL_MODEL_SEED=<u64>`
//! pins the random-phase seed; exploration is fully deterministic
//! either way — the seed only matters past the DFS cap.
//!
//! ## Fidelity
//!
//! Values are sequentially consistent (execution is serialized), so a
//! too-weak `Ordering` cannot produce a stale value here. Instead,
//! `Ordering` arguments drive a vector-clock happens-before layer, and
//! [`cell::RaceCell`] accesses are checked against it — the idiomatic
//! way to model-check an ordering protocol is to wrap the *published
//! data* in a `RaceCell`. `docs/CONCURRENCY.md` in the repository root
//! discusses what this does and does not catch.

#![deny(missing_docs)]

pub mod cell;
mod clock;
mod sched;
pub mod sync;
pub mod thread;

use std::sync::Arc;

use sched::{ChoiceRec, Exec, Failure, Outcome, Tid, TraceEntry};

/// Exploration parameters for [`check`].
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum involuntary context switches per execution. Bound 2
    /// catches the vast majority of real concurrency bugs (CHESS);
    /// bound 0 explores only voluntary-switch schedules.
    pub preemption_bound: usize,
    /// Cap on DFS executions; when hit without exhausting the space,
    /// exploration continues with `random_schedules` seeded-random
    /// executions instead of failing.
    pub max_schedules: usize,
    /// Number of seeded random schedules to run if (and only if) the
    /// DFS cap was hit before exhaustion.
    pub random_schedules: usize,
    /// Seed for the random phase; `TRIPOLL_MODEL_SEED` overrides, and
    /// a fixed default applies otherwise, so runs are deterministic
    /// unless explicitly perturbed.
    pub seed: Option<u64>,
    /// Per-execution schedule-point limit; exceeding it is reported as
    /// a livelock.
    pub max_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: 2,
            max_schedules: 50_000,
            random_schedules: 0,
            seed: None,
            max_steps: 20_000,
        }
    }
}

impl Config {
    /// A config with the given preemption bound and defaults elsewhere.
    pub fn with_bound(preemption_bound: usize) -> Self {
        Config {
            preemption_bound,
            ..Config::default()
        }
    }
}

/// What an exploration did (informational; failures panic instead).
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Executions run (DFS plus any random phase).
    pub schedules: usize,
    /// Whether the DFS exhausted every schedule within the preemption
    /// bound (false when `max_schedules` was hit first, or in replay
    /// mode).
    pub exhausted: bool,
}

/// Explores `f` under the default [`Config`]. Panics with a replayable
/// report on the first failing interleaving.
pub fn model<F>(f: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    check(Config::default(), f)
}

/// Explores `f` under `cfg`. Panics with a replayable report on the
/// first failing interleaving; returns exploration stats otherwise.
pub fn check<F>(cfg: Config, f: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    assert!(
        sched::ctx().is_none(),
        "nested model executions are not supported"
    );
    let f = Arc::new(f);
    let seed = std::env::var("TRIPOLL_MODEL_SEED")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .or(cfg.seed)
        .unwrap_or(0x7219_0115_5eed);

    if let Ok(r) = std::env::var("TRIPOLL_MODEL_REPLAY") {
        let replay: Vec<Tid> = r
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.parse()
                    .expect("TRIPOLL_MODEL_REPLAY: comma-separated thread ids")
            })
            .collect();
        let out = run_one(&f, Vec::new(), Some(replay), None, &cfg);
        if let Some(fail) = &out.failure {
            panic!("{}", report(fail, &out, 1, seed, &cfg, "replay"));
        }
        return Stats {
            schedules: 1,
            exhausted: false,
        };
    }

    let mut plan: Vec<usize> = Vec::new();
    let mut schedules = 0usize;
    loop {
        let out = run_one(&f, plan.clone(), None, None, &cfg);
        schedules += 1;
        if let Some(fail) = &out.failure {
            panic!("{}", report(fail, &out, schedules, seed, &cfg, "dfs"));
        }
        if schedules >= cfg.max_schedules {
            break;
        }
        match next_plan(&out.choices) {
            Some(p) => plan = p,
            None => {
                return Stats {
                    schedules,
                    exhausted: true,
                }
            }
        }
    }

    // DFS cap hit: seeded random fallback.
    for i in 0..cfg.random_schedules {
        let s = (seed | 1).wrapping_add((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let out = run_one(&f, Vec::new(), None, Some(s), &cfg);
        schedules += 1;
        if let Some(fail) = &out.failure {
            panic!("{}", report(fail, &out, schedules, s, &cfg, "random"));
        }
    }
    Stats {
        schedules,
        exhausted: false,
    }
}

fn run_one<F>(
    f: &Arc<F>,
    plan: Vec<usize>,
    replay: Option<Vec<Tid>>,
    rng: Option<u64>,
    cfg: &Config,
) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    let exec = Exec::new(plan, replay, rng, cfg.preemption_bound, cfg.max_steps);
    let e2 = exec.clone();
    let f2 = f.clone();
    let root = std::thread::Builder::new()
        .name("model-0".into())
        .spawn(move || sched::run_model_thread(e2, 0, move || f2()))
        .expect("failed to spawn model root thread");
    let out = exec.wait_outcome();
    // The root OS thread exits promptly once the execution completed
    // or aborted (all park loops observe the abort flag). Spawned
    // model threads are detached and exit the same way.
    let _ = root.join();
    out
}

/// The DFS successor of the schedule that recorded `choices`: flips the
/// deepest decision with an unexplored alternative. Budget feasibility
/// is already encoded in each record's `allowed` set (it was filtered
/// by the preemption budget when recorded), so any alternative is
/// executable.
fn next_plan(choices: &[ChoiceRec]) -> Option<Vec<usize>> {
    for k in (0..choices.len()).rev() {
        if choices[k].index + 1 < choices[k].allowed.len() {
            let mut p: Vec<usize> = choices[..k].iter().map(|c| c.index).collect();
            p.push(choices[k].index + 1);
            return Some(p);
        }
    }
    None
}

fn report(
    fail: &Failure,
    out: &Outcome,
    schedules: usize,
    seed: u64,
    cfg: &Config,
    phase: &str,
) -> String {
    let decisions: Vec<String> = out.choices.iter().map(|c| c.chosen().to_string()).collect();
    let mut s = String::new();
    s.push_str(&format!("tripoll-modelcheck: {}\n", fail.headline()));
    s.push_str(&format!(
        "  schedule #{schedules} ({phase} phase, preemption bound {}, seed {seed})\n",
        cfg.preemption_bound
    ));
    s.push_str(&format!(
        "  replay this interleaving: TRIPOLL_MODEL_REPLAY={}\n",
        decisions.join(",")
    ));
    let total = out.trace.len();
    let shown = total.min(80);
    s.push_str(&format!(
        "  trace (last {shown} of {total} schedule points, {} steps total):\n",
        out.steps
    ));
    for (i, TraceEntry { tid, op, obj }) in out.trace.iter().enumerate().skip(total - shown) {
        if *obj == 0 {
            s.push_str(&format!("    {i:>5}  t{tid}  {op}\n"));
        } else {
            s.push_str(&format!("    {i:>5}  t{tid}  {op} #{obj}\n"));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::cell::RaceCell;
    use super::sync::{AtomicUsize, Condvar, Mutex};
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    fn failure_of(cfg: Config, f: impl Fn() + Send + Sync + 'static) -> String {
        let err = catch_unwind(AssertUnwindSafe(|| check(cfg, f)))
            .expect_err("expected the model to find a failure");
        sched::panic_message(&*err)
    }

    #[test]
    fn unsynchronized_counter_races() {
        let msg = failure_of(Config::with_bound(2), || {
            let c = Arc::new(RaceCell::new(0u32));
            let c2 = c.clone();
            let h = thread::spawn(move || c2.with_mut(|v| *v += 1));
            c.with_mut(|v| *v += 1);
            h.join().unwrap();
        });
        assert!(msg.contains("data race"), "got: {msg}");
        assert!(msg.contains("TRIPOLL_MODEL_REPLAY="), "got: {msg}");
    }

    #[test]
    fn mutexed_counter_is_clean() {
        let stats = check(Config::with_bound(2), || {
            let c = Arc::new(Mutex::new(0u32));
            let c2 = c.clone();
            let h = thread::spawn(move || *c2.lock().unwrap() += 1);
            *c.lock().unwrap() += 1;
            h.join().unwrap();
            assert_eq!(*c.lock().unwrap(), 2);
        });
        assert!(stats.exhausted, "DFS should exhaust this tiny space");
        // Both serializations of the two critical sections, plus
        // schedule-point permutations around them.
        assert!(
            stats.schedules >= 2,
            "explored {} schedules",
            stats.schedules
        );
    }

    #[test]
    fn release_acquire_publication_is_clean() {
        let stats = check(Config::with_bound(2), || {
            let data = Arc::new(RaceCell::new(0u32));
            let flag = Arc::new(AtomicUsize::new(0));
            let (d2, f2) = (data.clone(), flag.clone());
            let h = thread::spawn(move || {
                d2.set(42);
                f2.store(1, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.get(), 42);
            }
            h.join().unwrap();
        });
        assert!(stats.exhausted);
    }

    #[test]
    fn relaxed_publication_races() {
        let msg = failure_of(Config::with_bound(2), || {
            let data = Arc::new(RaceCell::new(0u32));
            let flag = Arc::new(AtomicUsize::new(0));
            let (d2, f2) = (data.clone(), flag.clone());
            let h = thread::spawn(move || {
                d2.set(42);
                f2.store(1, Ordering::Relaxed); // bug: no release edge
            });
            if flag.load(Ordering::Acquire) == 1 {
                let _ = data.get();
            }
            h.join().unwrap();
        });
        assert!(msg.contains("data race"), "got: {msg}");
    }

    #[test]
    fn lost_wakeup_is_a_deadlock() {
        // Classic missed-signal bug: the waiter checks the flag,
        // releases the lock, and waits WITHOUT re-checking after
        // re-acquisition — a notify landing in that window is lost and
        // the waiter sleeps forever.
        let msg = failure_of(Config::with_bound(2), || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = pair.clone();
            let h = thread::spawn(move || {
                *p2.0.lock().unwrap() = true;
                p2.1.notify_one();
            });
            let (lock, cv) = (&pair.0, &pair.1);
            let ready = *lock.lock().unwrap();
            if !ready {
                let g = lock.lock().unwrap();
                let _g = cv.wait(g).unwrap(); // BUG: no re-check under the lock
            }
            h.join().unwrap();
        });
        assert!(msg.contains("deadlock"), "got: {msg}");
    }

    #[test]
    fn failure_reports_are_deterministic() {
        let run = || {
            failure_of(Config::with_bound(2), || {
                let c = Arc::new(RaceCell::new(0u32));
                let c2 = c.clone();
                let h = thread::spawn(move || c2.set(1));
                let _ = c.get();
                h.join().unwrap();
            })
        };
        assert_eq!(run(), run(), "same closure must yield the same report");
    }

    #[test]
    fn assertion_failures_carry_the_message() {
        let msg = failure_of(Config::with_bound(1), || {
            let c = Arc::new(Mutex::new(0u32));
            let c2 = c.clone();
            let h = thread::spawn(move || *c2.lock().unwrap() += 1);
            let v = *c.lock().unwrap();
            h.join().unwrap();
            assert!(v == 0, "observed the increment before the join");
        });
        assert!(msg.contains("observed the increment"), "got: {msg}");
    }

    #[test]
    fn passthrough_outside_model() {
        // No model execution: everything must behave like std.
        let m = Mutex::new(5);
        *m.lock().unwrap() += 1;
        assert_eq!(*m.lock().unwrap(), 6);
        let a = AtomicUsize::new(1);
        assert_eq!(a.fetch_add(2, Ordering::AcqRel), 1);
        assert_eq!(a.load(Ordering::Acquire), 3);
        let h = thread::spawn(|| 7);
        assert_eq!(h.join().unwrap(), 7);
    }

    #[test]
    fn preemption_bound_zero_misses_the_lost_update_bound_two_finds_it() {
        // A lost update across two separately-locked critical sections
        // (read under one lock, write-back under another) is invisible
        // at preemption bound 0 — with only voluntary switches each
        // thread's read+write runs back to back — but a single
        // preemption between them interleaves the other thread's
        // update. This pins down that the bound is real.
        let body = || {
            let c = Arc::new(Mutex::new(0u32));
            let c2 = c.clone();
            let h = thread::spawn(move || {
                let v = *c2.lock().unwrap();
                *c2.lock().unwrap() = v + 1;
            });
            let v = *c.lock().unwrap();
            *c.lock().unwrap() = v + 1;
            h.join().unwrap();
            assert_eq!(*c.lock().unwrap(), 2, "lost update");
        };
        let stats = check(Config::with_bound(0), body);
        assert!(stats.exhausted);
        let msg = failure_of(Config::with_bound(2), body);
        assert!(msg.contains("lost update"), "got: {msg}");
    }
}
