//! [`RaceCell`]: plain (non-atomic) shared data whose accesses are
//! checked against the model's happens-before relation.
//!
//! This is the probe that turns ordering bugs into failures: because
//! the scheduler serializes execution, a too-weak `Ordering` never
//! yields a stale *value* in the model — what it loses is the
//! happens-before edge. Wrap the data a protocol is supposed to
//! publish (a work item, a buffer, a result slot) in a `RaceCell`, and
//! any access that is not ordered after the previous conflicting
//! access by the protocol's synchronization fails the execution with a
//! `data race` report.

use std::cell::UnsafeCell;

use crate::sched::ctx;

/// Shared mutable data with vector-clock race checking under a model
/// execution.
///
/// Outside a model execution there is **no protection at all** — the
/// cell is a plain `UnsafeCell` and concurrent access is undefined
/// behavior. It is intended exclusively for closures run under
/// [`crate::check`] (where the scheduler serializes all access and the
/// checker reports races before any unsynchronized access is
/// performed) and for single-threaded setup/teardown around them.
#[derive(Default)]
pub struct RaceCell<T> {
    inner: UnsafeCell<T>,
}

// SAFETY: model executions serialize all access (one active thread at
// a time), and the race detector aborts the execution before an
// unsynchronized access touches the data; outside a model the type's
// contract (see above) restricts it to single-threaded use.
unsafe impl<T: Send> Send for RaceCell<T> {}
// SAFETY: as above — shared references only ever dereference the cell
// under the scheduler's serialization.
unsafe impl<T: Send> Sync for RaceCell<T> {}

impl<T> RaceCell<T> {
    /// Creates a cell.
    pub const fn new(v: T) -> Self {
        RaceCell {
            inner: UnsafeCell::new(v),
        }
    }

    fn addr(&self) -> usize {
        self as *const Self as *const u8 as usize
    }

    /// Reads through a shared reference. A *read* access in the race
    /// model: must be ordered after the last write.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        if let Some((exec, me)) = ctx() {
            exec.cell_read(me, self.addr(), "RaceCell::read");
        }
        // SAFETY: under a model execution only the active thread runs
        // and the race check above panicked if this read races a
        // write; outside one, the type's single-threaded contract
        // guarantees exclusivity.
        f(unsafe { &*self.inner.get() })
    }

    /// Writes through a mutable reference. A *write* access in the
    /// race model: must be ordered after every previous access.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        if let Some((exec, me)) = ctx() {
            exec.cell_write(me, self.addr(), "RaceCell::write");
        }
        // SAFETY: as in `with`, plus the write check also covers
        // concurrent readers.
        f(unsafe { &mut *self.inner.get() })
    }

    /// Copies the value out (a read access).
    pub fn get(&self) -> T
    where
        T: Copy,
    {
        self.with(|v| *v)
    }

    /// Replaces the value (a write access).
    pub fn set(&self, v: T) {
        self.with_mut(|slot| *slot = v);
    }

    /// Consumes the cell, returning the value (exclusive, unchecked).
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}
