//! Streaming-ingest workloads: random edge lists pre-cut into batches.
//!
//! The incremental-ingest property tests need arbitrary *partitions* of
//! one edge list into ordered batches — including empty batches and
//! duplicate edges that straddle a batch boundary — to check that every
//! split converges to the same survey as one-shot ingest. The
//! [`edge_batches`] strategy generates exactly that, built from plain
//! vector strategies over primitives (edge pairs and cut points) so a
//! shrinking runner reduces failures toward short lists and few cuts:
//! the partition is *derived* in [`EdgeBatches::batches`] from raw cut
//! points (clamped, sorted, duplicates kept as empty batches) rather
//! than generated as nested vectors, which keeps every raw value valid
//! and independently shrinkable.

use proptest::collection::vec;
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;

/// A random edge list plus raw cut points partitioning it into ordered
/// batches; [`EdgeBatches::batches`] derives the actual split.
#[derive(Debug, Clone)]
pub struct EdgeBatches {
    /// The full edge list, in ingest order. A small vertex universe is
    /// used deliberately so duplicate edges and self-loops occur often.
    pub edges: Vec<(u64, u64)>,
    /// Raw batch boundaries: indices into `edges`, unordered and
    /// possibly out of range or duplicated (normalized when slicing).
    pub cuts: Vec<usize>,
}

impl EdgeBatches {
    /// The partition: `cuts.len() + 1` consecutive slices of `edges`
    /// covering it exactly, in order. Out-of-range cuts clamp to the
    /// end; duplicate or boundary cuts yield **empty batches** (a case
    /// ingest must tolerate).
    pub fn batches(&self) -> Vec<&[(u64, u64)]> {
        let mut cuts: Vec<usize> = self.cuts.iter().map(|&c| c.min(self.edges.len())).collect();
        cuts.sort_unstable();
        let mut out = Vec::with_capacity(cuts.len() + 1);
        let mut start = 0;
        for c in cuts {
            out.push(&self.edges[start..c]);
            start = c;
        }
        out.push(&self.edges[start..]);
        out
    }
}

/// Strategy for [`EdgeBatches`]: up to `max_edges` edges over vertices
/// `0..max_vertex`, split into at most `max_batches` batches.
#[derive(Debug, Clone)]
pub struct EdgeBatchesStrategy {
    max_vertex: u64,
    max_edges: usize,
    max_batches: usize,
}

/// Random edge lists over a small vertex universe (so duplicates,
/// reversed duplicates, and self-loops arise naturally), partitioned
/// into random batches. See the module docs for the shrinking story.
pub fn edge_batches(max_vertex: u64, max_edges: usize, max_batches: usize) -> EdgeBatchesStrategy {
    assert!(max_vertex > 0 && max_edges > 0 && max_batches > 0);
    EdgeBatchesStrategy {
        max_vertex,
        max_edges,
        max_batches,
    }
}

impl Strategy for EdgeBatchesStrategy {
    type Value = EdgeBatches;

    fn sample(&self, rng: &mut TestRng) -> EdgeBatches {
        let edges = vec((0..self.max_vertex, 0..self.max_vertex), 0..self.max_edges).sample(rng);
        // Cut points range over the *maximum* length, not the drawn
        // one: overshooting cuts clamp to the end, which is how empty
        // trailing batches get generated.
        let cuts = vec(0..self.max_edges + 1, 0..self.max_batches).sample(rng);
        EdgeBatches { edges, cuts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_cover_edges_in_order() {
        let eb = EdgeBatches {
            edges: (0..10u64).map(|i| (i, i + 1)).collect(),
            cuts: vec![7, 3, 99, 3],
        };
        let batches = eb.batches();
        assert_eq!(batches.len(), 5);
        assert!(batches[1].is_empty(), "duplicate cut yields empty batch");
        assert!(batches[4].is_empty(), "clamped cut yields empty batch");
        let recat: Vec<_> = batches.concat();
        assert_eq!(recat, eb.edges, "batches concatenate back to the list");
    }

    #[test]
    fn strategy_respects_bounds_and_produces_duplicates() {
        let s = edge_batches(6, 40, 5);
        let mut rng = TestRng::for_case("stream-bounds", 0);
        let mut saw_dup = false;
        for _ in 0..32 {
            let eb = s.sample(&mut rng);
            assert!(eb.edges.len() < 40);
            assert!(eb.cuts.len() < 5);
            for &(u, v) in &eb.edges {
                assert!(u < 6 && v < 6);
            }
            let mut seen = std::collections::HashSet::new();
            saw_dup |= eb
                .edges
                .iter()
                .any(|&(u, v)| !seen.insert((u.min(v), u.max(v))));
        }
        assert!(saw_dup, "small universe must generate duplicate edges");
    }
}
