//! Temporal Reddit-like comment-graph generator.
//!
//! Stand-in for the paper's Reddit dataset (§5.2): "authors as vertices
//! and comments between authors as undirected edges", timestamps as edge
//! metadata, chronologically-first comment kept between each author
//! pair. The generative process is tuned to reproduce the qualitative
//! shape of Fig. 6:
//!
//! * **Bursty activity** — comments arrive in sessions: most gaps are
//!   seconds-to-minutes, a minority are hours-to-days (heavy tail), so
//!   *wedges open quickly* (two comments touching a common author often
//!   land in the same session).
//! * **Slow triadic closure** — a friend-of-friend only occasionally
//!   replies across an open wedge, and typically in a *later* session,
//!   so *triangles are not systematically closed rapidly* — the paper's
//!   headline observation.
//!
//! Timestamps are Unix seconds starting in December 2005, the start of
//! the paper's crawl window.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tripoll_graph::EdgeList;
use tripoll_ygm::hash::hash64;

/// Unix timestamp of the paper's first Reddit comment month (Dec 2005).
pub const REDDIT_EPOCH: u64 = 1_133_420_000;

/// Reddit generator configuration.
#[derive(Debug, Clone)]
pub struct RedditConfig {
    /// Number of comment authors (vertices).
    pub users: u64,
    /// Raw comment records to generate (before the chronologically-first
    /// deduplication, which typically removes 20-40%).
    pub comments: u64,
    /// Probability a comment replies within the active session window
    /// (bursty wedge formation).
    pub reply_locality: f64,
    /// Probability a comment closes an open wedge (triadic closure).
    pub closure_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RedditConfig {
    fn default() -> Self {
        RedditConfig {
            users: 10_000,
            comments: 100_000,
            reply_locality: 0.12,
            closure_rate: 0.25,
            seed: 2005,
        }
    }
}

/// Generates the canonicalized temporal edge list: one edge per author
/// pair carrying the **chronologically-first** comment timestamp (the
/// paper's preparation), sorted and deduplicated.
pub fn reddit_edges(cfg: &RedditConfig) -> EdgeList<u64> {
    EdgeList::from_vec(reddit_comments(cfg)).canonicalize_by(|&t| t)
}

/// Generates the raw comment stream `(author_a, author_b, timestamp)` —
/// a temporal multigraph in nondecreasing time order.
pub fn reddit_comments(cfg: &RedditConfig) -> Vec<(u64, u64, u64)> {
    assert!(cfg.users > 2);
    let mut rng = StdRng::seed_from_u64(hash64(cfg.seed ^ 0x004e_dd17));
    let n = cfg.users;

    // Capped adjacency for triadic closure sampling.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
    const ADJ_CAP: usize = 48;
    let remember = |adj: &mut Vec<Vec<u32>>, a: u64, b: u64, rng: &mut StdRng| {
        for (x, y) in [(a, b), (b, a)] {
            let list = &mut adj[x as usize];
            if list.len() < ADJ_CAP {
                list.push(y as u32);
            } else {
                // Reservoir-ish replacement keeps recent contacts mixed in.
                let slot = rng.random_range(0..ADJ_CAP);
                list[slot] = y as u32;
            }
        }
    };

    // Sliding window of recently active users (the "session").
    const WINDOW: usize = 256;
    let mut recent: Vec<u32> = Vec::with_capacity(WINDOW);
    let mut recent_at = 0usize;
    let remember_active = |recent: &mut Vec<u32>, recent_at: &mut usize, u: u64| {
        if recent.len() < WINDOW {
            recent.push(u as u32);
        } else {
            recent[*recent_at] = u as u32;
            *recent_at = (*recent_at + 1) % WINDOW;
        }
    };

    // Mild per-user popularity (karma): most users are picked rarely
    // and meet each partner once; a small head stays active for years
    // and becomes the graph's hubs.
    let popularity = |u: u64| -> f64 {
        let rank = (hash64(u.wrapping_add(cfg.seed)) % n) + 1;
        (rank as f64).powf(-0.35)
    };
    // Rejection sampler for popularity-weighted users.
    let pick_user = |rng: &mut StdRng| -> u64 {
        loop {
            let u = rng.random_range(0..n);
            if rng.random::<f64>() < popularity(u) {
                return u;
            }
        }
    };

    let mut t = REDDIT_EPOCH;
    let mut out = Vec::with_capacity(cfg.comments as usize);
    let mut remaining = cfg.comments as i64;

    // Comment threads: an author opens a thread, a handful of
    // participants pile in over minutes, and comments fly between them.
    // *Wedges open fast* because one thread gives its participants
    // several nearly-simultaneous edges; *triangles close slowly*
    // because the closing edge typically comes from a later thread in
    // which two earlier co-participants (friends of the author) meet
    // again.
    while remaining > 0 {
        // Inter-thread gap: minutes to (rarely) days.
        let x: f64 = rng.random();
        t += if x < 0.70 {
            rng.random_range(60u64..3_600)
        } else if x < 0.95 {
            rng.random_range(3_600u64..43_200)
        } else {
            rng.random_range(43_200u64..259_200)
        };

        let author = if !recent.is_empty() && rng.random::<f64>() < cfg.reply_locality {
            u64::from(recent[rng.random_range(0..recent.len())])
        } else {
            pick_user(&mut rng)
        };

        // Assemble participants: the author's old friends re-engage
        // (closing old wedges), active users drop by, strangers wander in.
        let nparticipants = rng.random_range(2..=6usize);
        let mut participants: Vec<u64> = Vec::with_capacity(nparticipants);
        for _ in 0..nparticipants {
            let roll: f64 = rng.random();
            let friends = &adj[author as usize];
            let p = if roll < cfg.closure_rate && !friends.is_empty() {
                u64::from(friends[rng.random_range(0..friends.len())])
            } else if roll < cfg.closure_rate + cfg.reply_locality && !recent.is_empty() {
                u64::from(recent[rng.random_range(0..recent.len())])
            } else {
                pick_user(&mut rng)
            };
            if p != author && !participants.contains(&p) {
                participants.push(p);
            }
        }

        // The author replies to each participant...
        for &p in &participants {
            t += rng.random_range(5u64..240);
            out.push((author, p, t));
            remember(&mut adj, author, p, &mut rng);
            remember_active(&mut recent, &mut recent_at, p);
            remaining -= 1;
        }
        // ...and participants reply to each other within the thread.
        for i in 0..participants.len() {
            for j in (i + 1)..participants.len() {
                if rng.random::<f64>() < 0.35 {
                    t += rng.random_range(5u64..120);
                    out.push((participants[i], participants[j], t));
                    remember(&mut adj, participants[i], participants[j], &mut rng);
                    remaining -= 1;
                }
            }
        }
        remember_active(&mut recent, &mut recent_at, author);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = RedditConfig {
            users: 500,
            comments: 5_000,
            ..Default::default()
        };
        assert_eq!(reddit_comments(&cfg), reddit_comments(&cfg));
    }

    #[test]
    fn timestamps_nondecreasing_and_after_epoch() {
        let cfg = RedditConfig {
            users: 300,
            comments: 3_000,
            ..Default::default()
        };
        let comments = reddit_comments(&cfg);
        assert!(!comments.is_empty());
        let mut last = 0;
        for &(a, b, t) in &comments {
            assert!(t >= REDDIT_EPOCH);
            assert!(t >= last);
            assert_ne!(a, b);
            last = t;
        }
    }

    #[test]
    fn canonical_keeps_first_timestamp() {
        let cfg = RedditConfig {
            users: 100,
            comments: 5_000,
            ..Default::default()
        };
        let raw = reddit_comments(&cfg);
        let canon = reddit_edges(&cfg);
        assert!(canon.len() < raw.len(), "multigraph should deduplicate");
        // Every canonical edge carries the minimum timestamp among its
        // raw duplicates.
        for (u, v, t) in canon.as_slice() {
            let min_t = raw
                .iter()
                .filter(|&&(a, b, _)| (a.min(b), a.max(b)) == (*u, *v))
                .map(|&(_, _, t)| t)
                .min()
                .expect("canonical edge came from raw");
            assert_eq!(*t, min_t);
        }
    }

    #[test]
    fn graph_contains_triangles() {
        let cfg = RedditConfig {
            users: 400,
            comments: 20_000,
            ..Default::default()
        };
        let canon = reddit_edges(&cfg);
        let topo: Vec<(u64, u64)> = canon.as_slice().iter().map(|&(u, v, _)| (u, v)).collect();
        let t = tripoll_analysis::triangle_count(&tripoll_graph::Csr::from_edges(&topo));
        assert!(t > 100, "closure process should create triangles, got {t}");
    }

    #[test]
    fn wedges_open_faster_than_triangles_close() {
        // The Fig. 6 shape: median open time < median close time over
        // the actual triangles of the generated graph.
        use tripoll_analysis::enumerate_triangles;
        use tripoll_ygm::hash::FastMap;
        let cfg = RedditConfig {
            users: 300,
            comments: 15_000,
            ..Default::default()
        };
        let canon = reddit_edges(&cfg);
        let ts: FastMap<(u64, u64), u64> = canon
            .as_slice()
            .iter()
            .map(|&(u, v, t)| ((u, v), t))
            .collect();
        let topo: Vec<(u64, u64)> = canon.as_slice().iter().map(|&(u, v, _)| (u, v)).collect();
        let csr = tripoll_graph::Csr::from_edges(&topo);
        let mut opens = Vec::new();
        let mut closes = Vec::new();
        enumerate_triangles(&csr, |p, q, r| {
            let get = |a: u64, b: u64| ts[&(a.min(b), a.max(b))];
            let mut tt = [get(p, q), get(p, r), get(q, r)];
            tt.sort_unstable();
            opens.push(tt[1] - tt[0]);
            closes.push(tt[2] - tt[0]);
        });
        assert!(opens.len() > 50, "need triangles for the shape check");
        opens.sort_unstable();
        closes.sort_unstable();
        let med_open = opens[opens.len() / 2];
        let med_close = closes[closes.len() / 2];
        assert!(
            med_close >= 2 * med_open.max(1),
            "expected slow closure: open median {med_open}, close median {med_close}"
        );
    }
}
