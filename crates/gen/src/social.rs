//! Heavy-tail social-network generators.
//!
//! Stand-ins for the paper's social datasets (LiveJournal, Friendster,
//! Twitter — §5.2, Table 1). Two models:
//!
//! * [`chung_lu_edges`] — the Chung-Lu model: endpoints sampled
//!   proportionally to power-law weights. Controls the degree tail
//!   precisely (Twitter's `d_max ≈ |V|/14` extreme hubs vs Friendster's
//!   mild `d_max ≈ |V|/12600`), but produces few triangles.
//! * [`community_social_edges`] — power-law-sized communities with dense
//!   intra-community wiring plus Chung-Lu-style cross links. This is the
//!   triangle-rich variant used for dataset stand-ins, since the paper's
//!   evaluation depends on real graphs' abundant triangles.
//!
//! Both are deterministic in their seed.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tripoll_ygm::hash::hash64;

/// Chung-Lu configuration.
#[derive(Debug, Clone)]
pub struct ChungLuConfig {
    /// Number of vertices.
    pub vertices: u64,
    /// Number of edge records to draw.
    pub edges: u64,
    /// Power-law exponent γ of the target degree distribution
    /// (weights `w_i ∝ (i+1)^(-1/(γ-1))`); 2.1 gives extreme hubs,
    /// 3.0 a mild tail.
    pub exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Samples one endpoint index from the cumulative weight table.
#[inline]
fn sample(cum: &[f64], total: f64, rng: &mut StdRng) -> u64 {
    let x: f64 = rng.random::<f64>() * total;
    cum.partition_point(|&c| c < x) as u64
}

/// Generates Chung-Lu edge records (may contain duplicates/self-loops).
pub fn chung_lu_edges(cfg: &ChungLuConfig) -> Vec<(u64, u64)> {
    assert!(cfg.vertices > 1);
    assert!(cfg.exponent > 2.0, "exponent must exceed 2 for finite mean");
    let n = cfg.vertices as usize;
    let alpha = 1.0 / (cfg.exponent - 1.0);

    // Cumulative weights; vertex i (after hashing) gets rank-i weight.
    let mut cum = Vec::with_capacity(n);
    let mut total = 0.0;
    for i in 0..n {
        total += ((i + 1) as f64).powf(-alpha);
        cum.push(total);
    }

    let mut rng = StdRng::seed_from_u64(hash64(cfg.seed));
    let mask_shuffle = |i: u64| hash64(i.wrapping_add(cfg.seed)) % cfg.vertices;
    (0..cfg.edges)
        .map(|_| {
            let u = sample(&cum, total, &mut rng);
            let v = sample(&cum, total, &mut rng);
            // Scramble so weight rank and vertex id are uncorrelated.
            (mask_shuffle(u), mask_shuffle(v))
        })
        .collect()
}

/// How cross-community edges pick their endpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CrossModel {
    /// Chung-Lu power-law endpoints — produces global hub vertices
    /// (Twitter-like tails).
    ChungLu {
        /// Degree-tail exponent γ (must exceed 2).
        exponent: f64,
    },
    /// Uniform endpoints — no hubs beyond what communities create
    /// (Friendster-like mild tails, `d_max/|V| ≈ 8e-5` in the paper).
    Uniform,
}

/// Community-structured social graph configuration.
#[derive(Debug, Clone)]
pub struct CommunityConfig {
    /// Number of vertices.
    pub vertices: u64,
    /// Approximate number of edge records to draw.
    pub edges: u64,
    /// Mean community size (sizes are power-law with this mean-ish scale).
    pub mean_community: u64,
    /// Fraction of edges drawn inside communities (0..1); higher means
    /// more triangles.
    pub intra_fraction: f64,
    /// Endpoint model for the cross-community edges.
    pub cross: CrossModel,
    /// RNG seed.
    pub seed: u64,
}

/// Generates community-structured edge records.
pub fn community_social_edges(cfg: &CommunityConfig) -> Vec<(u64, u64)> {
    assert!(cfg.vertices > 2);
    assert!((0.0..=1.0).contains(&cfg.intra_fraction));
    let mut rng = StdRng::seed_from_u64(hash64(cfg.seed ^ 0xc0ffee));

    // Partition 0..n into communities with power-law-ish sizes.
    let mut boundaries = vec![0u64];
    let mut at = 0u64;
    while at < cfg.vertices {
        // Pareto-ish size: mean * (1/u)^(1/2) capped.
        let u: f64 = rng.random::<f64>().max(1e-9);
        let size = ((cfg.mean_community as f64) * u.powf(-0.5)).ceil() as u64;
        let size = size.clamp(2, cfg.vertices / 4 + 2);
        at = (at + size).min(cfg.vertices);
        boundaries.push(at);
    }
    let ncom = boundaries.len() - 1;

    let n_intra = (cfg.edges as f64 * cfg.intra_fraction) as u64;
    let n_cross = cfg.edges - n_intra;
    let mut edges = Vec::with_capacity(cfg.edges as usize);

    // Intra-community edges: communities chosen proportional to size²
    // (bigger communities host more pairs), endpoints uniform inside.
    let mut cum_sq = Vec::with_capacity(ncom);
    let mut total_sq = 0.0;
    for c in 0..ncom {
        let size = (boundaries[c + 1] - boundaries[c]) as f64;
        total_sq += size * size;
        cum_sq.push(total_sq);
    }
    for _ in 0..n_intra {
        let x: f64 = rng.random::<f64>() * total_sq;
        let c = cum_sq.partition_point(|&s| s < x);
        let lo = boundaries[c];
        let hi = boundaries[c + 1];
        let u = rng.random_range(lo..hi);
        let v = rng.random_range(lo..hi);
        edges.push((u, v));
    }

    // Cross-community edges: hub structure per the chosen model.
    match cfg.cross {
        CrossModel::ChungLu { exponent } => {
            let cl = ChungLuConfig {
                vertices: cfg.vertices,
                edges: n_cross,
                exponent,
                seed: cfg.seed ^ 0xdead_beef,
            };
            edges.extend(chung_lu_edges(&cl));
        }
        CrossModel::Uniform => {
            for _ in 0..n_cross {
                let u = rng.random_range(0..cfg.vertices);
                let v = rng.random_range(0..cfg.vertices);
                edges.push((u, v));
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use tripoll_graph::Csr;

    #[test]
    fn chung_lu_deterministic_and_sized() {
        let cfg = ChungLuConfig {
            vertices: 1000,
            edges: 5000,
            exponent: 2.5,
            seed: 11,
        };
        let a = chung_lu_edges(&cfg);
        let b = chung_lu_edges(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5000);
        for &(u, v) in &a {
            assert!(u < 1000 && v < 1000);
        }
    }

    #[test]
    fn lower_exponent_means_bigger_hubs() {
        let base = ChungLuConfig {
            vertices: 5000,
            edges: 40_000,
            exponent: 2.1,
            seed: 3,
        };
        let heavy = chung_lu_edges(&base);
        let light = chung_lu_edges(&ChungLuConfig {
            exponent: 2.9,
            ..base.clone()
        });
        let dmax = |edges: &[(u64, u64)]| {
            let mut deg = vec![0u64; 5000];
            for &(u, v) in edges {
                deg[u as usize] += 1;
                deg[v as usize] += 1;
            }
            *deg.iter().max().unwrap()
        };
        assert!(
            dmax(&heavy) > 2 * dmax(&light),
            "γ=2.1 dmax {} vs γ=2.9 dmax {}",
            dmax(&heavy),
            dmax(&light)
        );
    }

    #[test]
    fn community_graph_is_triangle_rich() {
        // At social-network sparsity (avg degree ~8) community structure
        // must yield far more triangles per edge than uniform wiring.
        let cfg = CommunityConfig {
            vertices: 6000,
            edges: 24_000,
            mean_community: 25,
            intra_fraction: 0.7,
            cross: CrossModel::Uniform,
            seed: 5,
        };
        let com = community_social_edges(&cfg);
        let uniform = community_social_edges(&CommunityConfig {
            intra_fraction: 0.0,
            ..cfg.clone()
        });
        let tri = |edges: &[(u64, u64)]| tripoll_analysis::triangle_count(&Csr::from_edges(edges));
        let t_com = tri(&com);
        let t_uni = tri(&uniform);
        assert!(
            t_com > 10 * t_uni.max(1),
            "community graph should be triangle-rich: {t_com} vs uniform {t_uni}"
        );
    }

    #[test]
    fn community_graph_deterministic() {
        let cfg = CommunityConfig {
            vertices: 500,
            edges: 3000,
            mean_community: 20,
            intra_fraction: 0.6,
            cross: CrossModel::ChungLu { exponent: 2.4 },
            seed: 9,
        };
        assert_eq!(community_social_edges(&cfg), community_social_edges(&cfg));
    }

    #[test]
    fn edge_counts_roughly_requested() {
        for cross in [CrossModel::ChungLu { exponent: 2.6 }, CrossModel::Uniform] {
            let cfg = CommunityConfig {
                vertices: 800,
                edges: 6400,
                mean_community: 25,
                intra_fraction: 0.5,
                cross,
                seed: 2,
            };
            let edges = community_social_edges(&cfg);
            assert_eq!(edges.len(), 6400);
        }
    }

    #[test]
    fn uniform_cross_model_has_mild_hubs() {
        let base = CommunityConfig {
            vertices: 4000,
            edges: 40_000,
            mean_community: 25,
            intra_fraction: 0.3,
            cross: CrossModel::Uniform,
            seed: 8,
        };
        let mild = community_social_edges(&base);
        let hubby = community_social_edges(&CommunityConfig {
            cross: CrossModel::ChungLu { exponent: 2.05 },
            ..base.clone()
        });
        let dmax = |edges: &[(u64, u64)]| Csr::from_edges(edges).max_degree();
        assert!(
            3 * dmax(&mild) < dmax(&hubby),
            "uniform dmax {} should be far below chung-lu dmax {}",
            dmax(&mild),
            dmax(&hubby)
        );
    }
}
