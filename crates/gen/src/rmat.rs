//! R-MAT graph generator (Chakrabarti, Zhan, Faloutsos 2004).
//!
//! The paper's weak-scaling studies (§5.5, §5.9) use R-MAT graphs "up to
//! scale 32", one scale-24 instance per compute node. This generator
//! produces the same family: `2^scale` vertices, `edge_factor · 2^scale`
//! undirected edges drawn by recursive quadrant descent with the
//! (a,b,c,d) probabilities, Graph500-style parameters by default, and
//! optional vertex scrambling so vertex id gives no locality hint.
//!
//! Generation is deterministic in `seed` and data-parallel (each chunk of
//! edges derives its own stream from the seed).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;
use tripoll_ygm::hash::hash64;

/// R-MAT parameters.
#[derive(Debug, Clone)]
pub struct RmatConfig {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Edges generated per vertex (Graph500 uses 16).
    pub edge_factor: u32,
    /// Quadrant probability `a` (top-left).
    pub a: f64,
    /// Quadrant probability `b` (top-right).
    pub b: f64,
    /// Quadrant probability `c` (bottom-left).
    pub c: f64,
    /// RNG seed; equal seeds give identical graphs.
    pub seed: u64,
    /// Permute vertex ids by a hash so degree correlates with nothing.
    pub scramble: bool,
}

impl RmatConfig {
    /// Graph500-flavored defaults: a=0.57, b=c=0.19, d=0.05, ef=16.
    pub fn graph500(scale: u32, seed: u64) -> Self {
        RmatConfig {
            scale,
            edge_factor: 16,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed,
            scramble: true,
        }
    }

    /// Number of vertices, `2^scale`.
    pub fn vertices(&self) -> u64 {
        1u64 << self.scale
    }

    /// Number of generated edge records.
    pub fn edge_records(&self) -> u64 {
        u64::from(self.edge_factor) << self.scale
    }
}

/// Generates the edge records of an R-MAT graph (undirected, may contain
/// duplicates and self-loops; canonicalize before building).
pub fn rmat_edges(cfg: &RmatConfig) -> Vec<(u64, u64)> {
    assert!(cfg.scale > 0 && cfg.scale < 40, "scale out of range");
    assert!(
        cfg.a > 0.0 && cfg.b >= 0.0 && cfg.c >= 0.0 && cfg.a + cfg.b + cfg.c < 1.0,
        "quadrant probabilities must leave d > 0"
    );
    let n_edges = cfg.edge_records() as usize;
    let mask = cfg.vertices() - 1;

    const CHUNK: usize = 1 << 14;
    let chunks = n_edges.div_ceil(CHUNK);
    (0..chunks)
        .into_par_iter()
        .flat_map_iter(|chunk| {
            let mut rng = StdRng::seed_from_u64(hash64(cfg.seed ^ (chunk as u64)));
            let count = CHUNK.min(n_edges - chunk * CHUNK);
            let cfg = cfg.clone();
            (0..count).map(move |_| {
                let (mut u, mut v) = (0u64, 0u64);
                for _level in 0..cfg.scale {
                    let x: f64 = rng.random();
                    let (du, dv) = if x < cfg.a {
                        (0, 0)
                    } else if x < cfg.a + cfg.b {
                        (0, 1)
                    } else if x < cfg.a + cfg.b + cfg.c {
                        (1, 0)
                    } else {
                        (1, 1)
                    };
                    u = (u << 1) | du;
                    v = (v << 1) | dv;
                }
                if cfg.scramble {
                    (hash64(u) & mask, hash64(v) & mask)
                } else {
                    (u, v)
                }
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let cfg = RmatConfig::graph500(8, 42);
        assert_eq!(rmat_edges(&cfg), rmat_edges(&cfg));
        let other = RmatConfig::graph500(8, 43);
        assert_ne!(rmat_edges(&cfg), rmat_edges(&other));
    }

    #[test]
    fn sizes_match_config() {
        let cfg = RmatConfig::graph500(10, 1);
        let edges = rmat_edges(&cfg);
        assert_eq!(edges.len() as u64, cfg.edge_records());
        let n = cfg.vertices();
        for &(u, v) in &edges {
            assert!(u < n && v < n);
        }
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // R-MAT graphs are scale-free-ish: the max degree must far exceed
        // the average degree (2 * edge_factor = 32).
        let cfg = RmatConfig::graph500(12, 7);
        let edges = rmat_edges(&cfg);
        let mut deg = vec![0u64; cfg.vertices() as usize];
        for &(u, v) in &edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let dmax = *deg.iter().max().unwrap();
        assert!(dmax > 200, "dmax={dmax}, expected heavy tail");
    }

    #[test]
    fn scramble_changes_ids_not_structure() {
        let mut cfg = RmatConfig::graph500(8, 5);
        cfg.scramble = false;
        let plain = rmat_edges(&cfg);
        cfg.scramble = true;
        let scrambled = rmat_edges(&cfg);
        assert_eq!(plain.len(), scrambled.len());
        assert_ne!(plain, scrambled);
        // Scrambling is a bijection of the id space: per-edge it maps
        // (u,v) -> (h(u)&m, h(v)&m)... the multiset of hashed plain edges
        // must equal the scrambled edges.
        let mask = cfg.vertices() - 1;
        let mut a: Vec<(u64, u64)> = plain
            .iter()
            .map(|&(u, v)| (hash64(u) & mask, hash64(v) & mask))
            .collect();
        let mut b = scrambled.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "quadrant probabilities")]
    fn rejects_bad_probabilities() {
        let mut cfg = RmatConfig::graph500(8, 1);
        cfg.a = 0.6;
        cfg.b = 0.3;
        cfg.c = 0.2;
        rmat_edges(&cfg);
    }

    #[test]
    fn triangles_exist_at_moderate_scale() {
        let cfg = RmatConfig::graph500(10, 3);
        let edges = rmat_edges(&cfg);
        let csr = tripoll_graph::Csr::from_edges(&edges);
        let t = tripoll_analysis::triangle_count(&csr);
        assert!(
            t > 1000,
            "R-MAT scale 10 should have many triangles, got {t}"
        );
    }
}
