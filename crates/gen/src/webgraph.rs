//! Domain-structured web-graph generator with FQDN string metadata.
//!
//! Stand-in for the paper's web corpora (uk-2007-05, web-cc12-hostgraph,
//! Web Data Commons 2012 — §5.2) and substrate of the FQDN survey
//! (§5.8, Fig. 8). The generator plants the structural properties the
//! evaluation depends on:
//!
//! * **Domain locality** — pages belong to domains; most links stay
//!   inside a domain and revolve around its index page, which makes the
//!   graphs extremely triangle-dense (WDC 2012: 9.65T triangles from
//!   224B edges) and gives Push-Pull its aggregation opportunities (many
//!   co-located sources pushing candidates at the same few targets —
//!   the regime where Table 4 shows >10x traffic reduction).
//! * **Hub pages** — cross-domain links target popular domains' index
//!   pages, producing the `d_max ≈ 3M` web hubs of Table 1.
//! * **A planted community story** — special domains reproduce Fig. 8's
//!   narrative: an `amazon.example` retail family, the competing
//!   bookseller `abebooks.example`, and an education/library community
//!   that co-links with booksellers.
//!
//! FQDNs are materialized as real `String`s (not interned labels), like
//! the paper, which stores C++ strings to exercise the serialization
//! layer's variable-length payloads.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tripoll_ygm::hash::hash64;

/// Names of the planted domains (index 0 is the Fig. 8 hub).
pub const PLANTED_DOMAINS: &[&str] = &[
    "amazon.example",
    "amazon.co.example",
    "amazon-media.example",
    "audible.example",
    "abebooks.example",
    "lib0.edu.example",
    "lib1.edu.example",
    "lib2.edu.example",
    "lib3.edu.example",
    "university.edu.example",
];

/// Web graph configuration.
#[derive(Debug, Clone)]
pub struct WebGraphConfig {
    /// Generic domains in addition to the planted ones.
    pub domains: u64,
    /// Mean pages per domain (sizes are heavy-tailed around this).
    pub pages_per_domain_mean: u64,
    /// Edge records to draw.
    pub edges: u64,
    /// Fraction of edges inside a single domain.
    pub intra_fraction: f64,
    /// Exponent applied to domain size when choosing cross-domain link
    /// targets: higher concentrates links on the top domains' index
    /// pages (bigger hubs, stronger Push-Pull aggregation).
    pub popularity_power: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Page-to-domain metadata shared by all ranks.
#[derive(Debug)]
struct WebMeta {
    /// Domain index of each page.
    domain_of_page: Vec<u32>,
    /// FQDN of each domain.
    domain_names: Vec<String>,
    /// First page (the "index page") of each domain.
    index_page: Vec<u64>,
}

/// A generated web graph: topology plus the page→FQDN mapping.
#[derive(Debug, Clone)]
pub struct WebGraph {
    /// Undirected edge records (may contain duplicates; canonicalize).
    pub edges: Vec<(u64, u64)>,
    meta: Arc<WebMeta>,
}

impl WebGraph {
    /// Number of pages (vertices).
    pub fn vertices(&self) -> u64 {
        self.meta.domain_of_page.len() as u64
    }

    /// Number of domains (planted + generic).
    pub fn num_domains(&self) -> usize {
        self.meta.domain_names.len()
    }

    /// FQDN of page `v`.
    pub fn fqdn(&self, v: u64) -> &str {
        &self.meta.domain_names[self.meta.domain_of_page[v as usize] as usize]
    }

    /// A cheap, clonable, thread-safe `v → FQDN` function for
    /// `build_dist_graph`'s `vm_fn`.
    pub fn fqdn_fn(&self) -> impl Fn(u64) -> String + Clone + Send + Sync + 'static {
        let meta = Arc::clone(&self.meta);
        move |v: u64| meta.domain_names[meta.domain_of_page[v as usize] as usize].clone()
    }

    /// The index page of a named domain, if the domain exists.
    pub fn index_page_of(&self, fqdn: &str) -> Option<u64> {
        self.meta
            .domain_names
            .iter()
            .position(|d| d == fqdn)
            .map(|d| self.meta.index_page[d])
    }
}

/// Generates a web graph.
pub fn web_graph(cfg: &WebGraphConfig) -> WebGraph {
    assert!(cfg.domains >= 4, "need a few generic domains");
    assert!((0.0..=1.0).contains(&cfg.intra_fraction));
    let mut rng = StdRng::seed_from_u64(hash64(cfg.seed ^ 0x5eb_c0de));

    // ---- Domains & pages ------------------------------------------------
    let planted = PLANTED_DOMAINS.len();
    let total_domains = planted + cfg.domains as usize;
    let mut domain_names: Vec<String> = PLANTED_DOMAINS.iter().map(|s| s.to_string()).collect();
    let tlds = ["example", "com.example", "org.example", "net.example"];
    for d in 0..cfg.domains {
        let tld = tlds[(hash64(d ^ cfg.seed) % tlds.len() as u64) as usize];
        domain_names.push(format!("site{d}.{tld}"));
    }

    // Heavy-tailed domain sizes; planted retail domains get large sizes
    // so they become hubs of the link distribution.
    let mut sizes: Vec<u64> = Vec::with_capacity(total_domains);
    for d in 0..total_domains {
        let boost = if d < planted { 4.0 } else { 1.0 };
        let u: f64 = rng.random::<f64>().max(1e-9);
        let size = (cfg.pages_per_domain_mean as f64 * boost * u.powf(-0.5)).ceil() as u64;
        sizes.push(size.clamp(2, cfg.pages_per_domain_mean * 50));
    }

    let mut domain_of_page = Vec::new();
    let mut index_page = Vec::with_capacity(total_domains);
    for (d, &size) in sizes.iter().enumerate() {
        index_page.push(domain_of_page.len() as u64);
        domain_of_page.extend(std::iter::repeat_n(d as u32, size as usize));
    }
    let n_pages = domain_of_page.len() as u64;
    let page_range = |d: usize| index_page[d]..index_page[d] + sizes[d];

    // Popularity for cross-domain targeting: size^1.5, planted boosted.
    let mut cum_pop = Vec::with_capacity(total_domains);
    let mut total_pop = 0.0;
    for (d, &size) in sizes.iter().enumerate() {
        let boost = if d < planted { 3.0 } else { 1.0 };
        total_pop += (size as f64).powf(cfg.popularity_power) * boost;
        cum_pop.push(total_pop);
    }
    let pick_domain = |rng: &mut StdRng| -> usize {
        let x: f64 = rng.random::<f64>() * total_pop;
        cum_pop.partition_point(|&c| c < x)
    };

    // ---- Edges ----------------------------------------------------------
    let mut edges: Vec<(u64, u64)> = Vec::with_capacity(cfg.edges as usize + 256);
    let n_intra = (cfg.edges as f64 * cfg.intra_fraction) as u64;

    // Intra-domain: half navigation links (index ↔ page), half page ↔
    // page — together every page-page link closes a triangle through the
    // index page.
    for _ in 0..n_intra {
        let d = pick_domain(&mut rng);
        let r = page_range(d);
        if rng.random::<f64>() < 0.5 {
            let p = rng.random_range(r.clone());
            edges.push((index_page[d], p));
        } else {
            let p = rng.random_range(r.clone());
            let q = rng.random_range(r);
            edges.push((p, q));
        }
    }

    // Cross-domain: source page anywhere, target the index page of a
    // popular domain (hub formation).
    for _ in 0..(cfg.edges - n_intra) {
        let s = rng.random_range(0..n_pages);
        let d = pick_domain(&mut rng);
        edges.push((s, index_page[d]));
    }

    // ---- Planted communities (Fig. 8 narrative) --------------------------
    let relate = |edges: &mut Vec<(u64, u64)>, rng: &mut StdRng, a: usize, b: usize, k: u64| {
        edges.push((index_page[a], index_page[b]));
        for _ in 0..k {
            let pa = rng.random_range(page_range(a));
            let pb = rng.random_range(page_range(b));
            edges.push((pa, pb));
        }
    };
    // Planted three-domain triangles: pages of three domains wired into
    // an actual triangle, so the FQDN tuple (A, B, C) appears in the
    // survey with weight `k` — the raw material of Fig. 8's communities.
    let plant_triangles =
        |edges: &mut Vec<(u64, u64)>, rng: &mut StdRng, a: usize, b: usize, c: usize, k: u64| {
            for _ in 0..k {
                let pa = rng.random_range(page_range(a));
                let pb = rng.random_range(page_range(b));
                let pc = rng.random_range(page_range(c));
                edges.push((pa, pb));
                edges.push((pb, pc));
                edges.push((pa, pc));
            }
        };
    // Amazon family cross-links + family triangles.
    for (a, b) in [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
        relate(&mut edges, &mut rng, a, b, 12);
    }
    for (a, b, c) in [(0, 1, 2), (0, 1, 3), (0, 2, 3), (1, 2, 3)] {
        plant_triangles(&mut edges, &mut rng, a, b, c, 10);
    }
    // Competitor co-linking: external pages link to both amazon and
    // abebooks (the "same product at the competing retailer" pattern).
    for _ in 0..48 {
        let s = rng.random_range(0..n_pages);
        edges.push((s, index_page[0]));
        edges.push((s, index_page[4]));
    }
    edges.push((index_page[0], index_page[4]));
    // Library/education community, tied to the bookseller: pairwise
    // links plus dense three-way triangles over {abebooks, libs, uni}.
    for a in 5..=9usize {
        relate(&mut edges, &mut rng, a, 4, 8);
        for b in (a + 1)..=9 {
            relate(&mut edges, &mut rng, a, b, 6);
        }
    }
    for a in 4..=9usize {
        for b in (a + 1)..=9 {
            for c in (b + 1)..=9 {
                plant_triangles(&mut edges, &mut rng, a, b, c, 8);
            }
        }
    }

    WebGraph {
        edges,
        meta: Arc::new(WebMeta {
            domain_of_page,
            domain_names,
            index_page,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tripoll_graph::Csr;

    fn small() -> WebGraphConfig {
        WebGraphConfig {
            domains: 40,
            pages_per_domain_mean: 12,
            edges: 12_000,
            intra_fraction: 0.6,
            popularity_power: 1.5,
            seed: 77,
        }
    }

    #[test]
    fn deterministic() {
        let a = web_graph(&small());
        let b = web_graph(&small());
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.vertices(), b.vertices());
    }

    #[test]
    fn fqdns_consistent_within_domain() {
        let g = web_graph(&small());
        assert_eq!(g.fqdn(0), "amazon.example");
        let f = g.fqdn_fn();
        for v in 0..g.vertices() {
            assert_eq!(f(v), g.fqdn(v));
        }
        assert_eq!(g.num_domains(), PLANTED_DOMAINS.len() + 40);
    }

    #[test]
    fn hub_pages_exist() {
        let g = web_graph(&small());
        let mut deg = vec![0u64; g.vertices() as usize];
        for &(u, v) in &g.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let dmax = *deg.iter().max().unwrap();
        let avg = 2 * g.edges.len() as u64 / g.vertices();
        assert!(
            dmax > 20 * avg.max(1),
            "web hubs missing: dmax={dmax}, avg={avg}"
        );
    }

    #[test]
    fn triangle_dense() {
        let g = web_graph(&small());
        let csr = Csr::from_edges(&g.edges);
        let t = tripoll_analysis::triangle_count(&csr);
        // Web corpora have |T| well above |E| proportionally; demand at
        // least |E|/2 triangles at this scale.
        assert!(
            t > g.edges.len() as u64 / 2,
            "expected triangle-dense graph, got {t} triangles for {} edges",
            g.edges.len()
        );
    }

    #[test]
    fn planted_domains_are_wired() {
        let g = web_graph(&small());
        let amazon = g.index_page_of("amazon.example").unwrap();
        let abebooks = g.index_page_of("abebooks.example").unwrap();
        assert!(g
            .edges
            .iter()
            .any(|&(u, v)| (u, v) == (amazon, abebooks) || (v, u) == (amazon, abebooks)));
        assert!(g.index_page_of("lib0.edu.example").is_some());
        assert!(g.index_page_of("nonexistent.example").is_none());
    }

    #[test]
    fn index_pages_have_domain_fqdn() {
        let g = web_graph(&small());
        for name in [
            "amazon.example",
            "abebooks.example",
            "university.edu.example",
        ] {
            let p = g.index_page_of(name).unwrap();
            assert_eq!(g.fqdn(p), name);
        }
    }
}
