//! Named dataset stand-ins for the paper's evaluation graphs.
//!
//! The real corpora of Table 1 range from 69M to 224B edges — far beyond
//! a development box (and several are multi-TB downloads). Each function
//! here produces a *scaled-down synthetic stand-in* that preserves the
//! structural property the paper's experiments exercise on that graph:
//!
//! | Paper graph          | Property preserved                           | Stand-in |
//! |----------------------|----------------------------------------------|----------|
//! | LiveJournal          | community-rich social, moderate hubs         | community model, γ=2.5 |
//! | Friendster           | social with *mild* hubs (`d_max/|V| ≈ 8e-5`) — the graph where Push-Pull barely wins (Tab. 4) | community model, γ=2.9 |
//! | Twitter              | extreme hubs (`d_max/|V| ≈ 0.07`)            | community model, γ=2.05, low intra |
//! | uk-2007-05           | domain-local web crawl, very triangle-dense  | web model, high intra |
//! | web-cc12-hostgraph   | host graph: dense, huge hubs — Push-Pull's best case (>10x traffic cut) | web model, dense + hub-heavy |
//! | Web Data Commons 2012| page-level web at largest scale + FQDN strings | web model, largest preset |
//! | Reddit               | temporal comment graph, bursty timestamps    | reddit model |
//!
//! Every stand-in is deterministic in its seed, so experiments are
//! reproducible run-to-run.

use tripoll_graph::EdgeList;

use crate::reddit::{reddit_edges, RedditConfig};
use crate::rmat::{rmat_edges, RmatConfig};
use crate::social::{community_social_edges, CommunityConfig, CrossModel};
use crate::webgraph::{web_graph, WebGraph, WebGraphConfig};

/// Scale presets for the stand-ins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetSize {
    /// ~1.5k vertices — unit/integration tests.
    Tiny,
    /// ~12k vertices — default benchmark size.
    Small,
    /// ~48k vertices — heavier benchmark runs.
    Medium,
}

impl DatasetSize {
    /// Base vertex count of the preset.
    pub fn vertices(&self) -> u64 {
        match self {
            DatasetSize::Tiny => 1_500,
            DatasetSize::Small => 12_000,
            DatasetSize::Medium => 48_000,
        }
    }

    /// Reads `TRIPOLL_BENCH_SIZE` (`tiny`/`small`/`medium`), defaulting
    /// to `Small`.
    pub fn from_env() -> Self {
        match std::env::var("TRIPOLL_BENCH_SIZE")
            .unwrap_or_default()
            .to_lowercase()
            .as_str()
        {
            "tiny" => DatasetSize::Tiny,
            "medium" => DatasetSize::Medium,
            _ => DatasetSize::Small,
        }
    }
}

/// Stats of the real dataset, quoted from Table 1 for side-by-side
/// reporting.
#[derive(Debug, Clone, Copy)]
pub struct PaperStats {
    /// `|V|` as printed in Table 1.
    pub vertices: &'static str,
    /// `|E|` (directed, post-symmetrization).
    pub edges: &'static str,
    /// `|T|` triangle count.
    pub triangles: &'static str,
    /// Maximum degree.
    pub dmax: &'static str,
    /// Maximum DODGr out-degree.
    pub dmax_plus: &'static str,
}

/// A topology-only dataset stand-in.
#[derive(Debug, Clone)]
pub struct TopoDataset {
    /// Stand-in name (matches the paper's dataset name).
    pub name: &'static str,
    /// Undirected edge records (not yet canonicalized).
    pub edges: Vec<(u64, u64)>,
    /// The real dataset's published statistics.
    pub paper: PaperStats,
}

impl TopoDataset {
    /// Canonical edge list with unit metadata.
    pub fn edge_list(&self) -> EdgeList<()> {
        EdgeList::from_vec(self.edges.iter().map(|&(u, v)| (u, v, ())).collect()).canonicalize()
    }
}

/// LiveJournal stand-in (paper: 4.85M vertices, 69M edges, 286M triangles).
pub fn livejournal_like(size: DatasetSize, seed: u64) -> TopoDataset {
    let v = size.vertices();
    TopoDataset {
        name: "LiveJournal",
        edges: community_social_edges(&CommunityConfig {
            vertices: v,
            edges: v * 8,
            mean_community: 25,
            intra_fraction: 0.65,
            cross: CrossModel::ChungLu { exponent: 2.5 },
            seed,
        }),
        paper: PaperStats {
            vertices: "4.85M",
            edges: "69.0M",
            triangles: "286M",
            dmax: "20333",
            dmax_plus: "686",
        },
    }
}

/// Friendster stand-in (66M vertices, 3.6B edges; mild hubs — the graph
/// where the Push-Pull dry-run does not pay for itself in Table 4).
pub fn friendster_like(size: DatasetSize, seed: u64) -> TopoDataset {
    let v = size.vertices();
    TopoDataset {
        name: "Friendster",
        edges: community_social_edges(&CommunityConfig {
            vertices: v,
            edges: v * 5,
            mean_community: 90,
            intra_fraction: 0.4,
            cross: CrossModel::Uniform,
            seed,
        }),
        paper: PaperStats {
            vertices: "66M",
            edges: "3.6B",
            triangles: "4.2B",
            dmax: "5214",
            dmax_plus: "868",
        },
    }
}

/// Twitter stand-in (42M vertices, 2.4B edges, d_max 3M — extreme hubs).
pub fn twitter_like(size: DatasetSize, seed: u64) -> TopoDataset {
    let v = size.vertices();
    TopoDataset {
        name: "Twitter",
        edges: community_social_edges(&CommunityConfig {
            vertices: v,
            edges: v * 10,
            mean_community: 30,
            intra_fraction: 0.2,
            cross: CrossModel::ChungLu { exponent: 2.2 },
            seed,
        }),
        paper: PaperStats {
            vertices: "42M",
            edges: "2.4B",
            triangles: "34.8B",
            dmax: "3.0M",
            dmax_plus: "4102",
        },
    }
}

/// uk-2007-05 stand-in (106M vertices, 6.6B edges, 286.7B triangles —
/// domain-local crawl).
pub fn uk2007_like(size: DatasetSize, seed: u64) -> WebGraph {
    let v = size.vertices();
    web_graph(&WebGraphConfig {
        domains: (v / 45).max(8),
        pages_per_domain_mean: 34,
        edges: v * 12,
        intra_fraction: 0.78,
        popularity_power: 1.4,
        seed,
    })
}

/// web-cc12-hostgraph stand-in (101M hosts, 3.8B edges, 415B triangles,
/// d_max 3.0M — the Push-Pull best case of Table 4).
pub fn webcc12_like(size: DatasetSize, seed: u64) -> WebGraph {
    let v = size.vertices();
    web_graph(&WebGraphConfig {
        domains: (v / 10).max(8),
        pages_per_domain_mean: 8,
        edges: v * 20,
        intra_fraction: 0.4,
        popularity_power: 2.4,
        seed,
    })
}

/// Web Data Commons 2012 stand-in (3.56B pages, 224.5B edges, 9.65T
/// triangles; FQDN strings on every vertex).
pub fn wdc_like(size: DatasetSize, seed: u64) -> WebGraph {
    let v = size.vertices();
    web_graph(&WebGraphConfig {
        domains: (v / 20).max(10),
        pages_per_domain_mean: 15,
        edges: v * 13,
        intra_fraction: 0.68,
        popularity_power: 1.6,
        seed,
    })
}

/// Reddit stand-in (835M authors, 9.4B deduplicated edges, timestamps).
pub fn reddit_like(size: DatasetSize, seed: u64) -> EdgeList<u64> {
    let v = size.vertices();
    reddit_edges(&RedditConfig {
        users: v,
        comments: v * 12,
        seed,
        ..Default::default()
    })
}

/// Paper stats for the Reddit graph (for Table 1 reporting).
pub fn reddit_paper_stats() -> PaperStats {
    PaperStats {
        vertices: "835M",
        edges: "9.4B",
        triangles: "88.1B",
        dmax: "1.70M",
        dmax_plus: "3301",
    }
}

/// R-MAT weak-scaling instance: one paper "scale-24 per node" unit,
/// shrunk to `base_scale` per rank.
pub fn rmat_weak_scaling(base_scale: u32, ranks: usize, seed: u64) -> Vec<(u64, u64)> {
    let scale = base_scale + (ranks as f64).log2().round() as u32;
    rmat_edges(&RmatConfig::graph500(scale, seed))
}

/// The four graphs of the paper's Table 2 comparison.
pub fn table2_suite(size: DatasetSize, seed: u64) -> Vec<TopoDataset> {
    vec![
        livejournal_like(size, seed),
        friendster_like(size, seed + 1),
        twitter_like(size, seed + 2),
        TopoDataset {
            name: "Web Data Commons",
            edges: wdc_like(size, seed + 3).edges,
            paper: PaperStats {
                vertices: "3.56B",
                edges: "224.5B",
                triangles: "9.65T",
                dmax: "95M",
                dmax_plus: "10683",
            },
        },
    ]
}

/// The four graphs of the paper's strong-scaling studies (Fig. 4, Tab. 4).
pub fn table4_suite(size: DatasetSize, seed: u64) -> Vec<TopoDataset> {
    vec![
        friendster_like(size, seed + 1),
        twitter_like(size, seed + 2),
        TopoDataset {
            name: "uk-2007-05",
            edges: uk2007_like(size, seed + 4).edges,
            paper: PaperStats {
                vertices: "106M",
                edges: "6.6B",
                triangles: "286.7B",
                dmax: "975K",
                dmax_plus: "5704",
            },
        },
        TopoDataset {
            name: "web-cc12-hostgraph",
            edges: webcc12_like(size, seed + 5).edges,
            paper: PaperStats {
                vertices: "101M",
                edges: "3.8B",
                triangles: "415B",
                dmax: "3.0M",
                dmax_plus: "10654",
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tripoll_graph::Csr;

    fn dmax_of(edges: &[(u64, u64)]) -> (u64, u64) {
        let csr = Csr::from_edges(edges);
        let dmax = csr.max_degree() as u64;
        (dmax, csr.num_vertices() as u64)
    }

    #[test]
    fn suites_have_expected_members() {
        let t2 = table2_suite(DatasetSize::Tiny, 1);
        assert_eq!(
            t2.iter().map(|d| d.name).collect::<Vec<_>>(),
            vec!["LiveJournal", "Friendster", "Twitter", "Web Data Commons"]
        );
        let t4 = table4_suite(DatasetSize::Tiny, 1);
        assert_eq!(
            t4.iter().map(|d| d.name).collect::<Vec<_>>(),
            vec!["Friendster", "Twitter", "uk-2007-05", "web-cc12-hostgraph"]
        );
    }

    #[test]
    fn twitter_hubs_dwarf_friendster_hubs() {
        // The defining contrast of the paper's dataset mix.
        let tw = twitter_like(DatasetSize::Tiny, 3);
        let fr = friendster_like(DatasetSize::Tiny, 3);
        let (tw_dmax, tw_n) = dmax_of(&tw.edges);
        let (fr_dmax, fr_n) = dmax_of(&fr.edges);
        let tw_ratio = tw_dmax as f64 / tw_n as f64;
        let fr_ratio = fr_dmax as f64 / fr_n as f64;
        assert!(
            tw_ratio > 3.0 * fr_ratio,
            "twitter dmax ratio {tw_ratio:.4} vs friendster {fr_ratio:.4}"
        );
    }

    #[test]
    fn all_standins_have_triangles() {
        for d in table2_suite(DatasetSize::Tiny, 7) {
            let t = tripoll_analysis::triangle_count(&Csr::from_edges(&d.edges));
            assert!(t > 50, "{} has only {t} triangles", d.name);
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let a = livejournal_like(DatasetSize::Tiny, 9);
        let b = livejournal_like(DatasetSize::Tiny, 9);
        assert_eq!(a.edges, b.edges);
        let c = livejournal_like(DatasetSize::Tiny, 10);
        assert_ne!(a.edges, c.edges);
    }

    #[test]
    fn rmat_weak_scaling_grows_with_ranks() {
        let one = rmat_weak_scaling(8, 1, 5);
        let four = rmat_weak_scaling(8, 4, 5);
        assert_eq!(four.len(), 4 * one.len());
    }

    #[test]
    fn size_from_env_defaults_small() {
        // Note: don't set the env var here (tests run in parallel); only
        // check the default path.
        if std::env::var("TRIPOLL_BENCH_SIZE").is_err() {
            assert_eq!(DatasetSize::from_env(), DatasetSize::Small);
        }
    }

    #[test]
    fn edge_list_canonicalizes() {
        let d = livejournal_like(DatasetSize::Tiny, 2);
        let list = d.edge_list();
        // No duplicates, no self-loops, canonical orientation.
        for w in list.as_slice().windows(2) {
            assert!((w[0].0, w[0].1) < (w[1].0, w[1].1));
        }
        for (u, v, _) in list.as_slice() {
            assert!(u < v);
        }
    }
}
