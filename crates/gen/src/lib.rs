//! # tripoll-gen — workload generators for the TriPoll experiments
//!
//! Deterministic synthetic graphs standing in for the paper's datasets
//! (§5.2, Table 1):
//!
//! * [`rmat`] — R-MAT graphs for the weak-scaling studies (§5.5, §5.9).
//! * [`social`] — heavy-tail social graphs (Chung-Lu and a triangle-rich
//!   community model) for the LiveJournal / Friendster / Twitter
//!   stand-ins.
//! * [`webgraph`] — domain-structured web graphs with FQDN string
//!   metadata for the uk-2007 / web-cc12 / Web Data Commons stand-ins
//!   and the Fig. 8 survey.
//! * [`reddit`] — a bursty temporal comment graph with timestamps for
//!   the closure-time survey (§5.7, Fig. 6).
//! * [`datasets`] — named, size-preset stand-ins plus the suites used by
//!   each table/figure of the evaluation.
//! * [`stream`] — random edge lists pre-cut into ingest batches for the
//!   incremental-survey property tests.

#![warn(missing_docs)]

pub mod datasets;
pub mod reddit;
pub mod rmat;
pub mod social;
pub mod stream;
pub mod webgraph;

pub use datasets::{
    friendster_like, livejournal_like, reddit_like, rmat_weak_scaling, table2_suite, table4_suite,
    twitter_like, uk2007_like, wdc_like, webcc12_like, DatasetSize, PaperStats, TopoDataset,
};
pub use reddit::{reddit_comments, reddit_edges, RedditConfig, REDDIT_EPOCH};
pub use rmat::{rmat_edges, RmatConfig};
pub use social::{
    chung_lu_edges, community_social_edges, ChungLuConfig, CommunityConfig, CrossModel,
};
pub use stream::{edge_batches, EdgeBatches, EdgeBatchesStrategy};
pub use webgraph::{web_graph, WebGraph, WebGraphConfig, PLANTED_DOMAINS};
