//! `tripoll-sync` — the synchronization facade the TriPoll runtime
//! crates import instead of `std::sync` / `std::thread`.
//!
//! In a normal build every item here is a re-export of the std item of
//! the same name, so the facade is zero-cost: call sites monomorphize
//! to exactly the code they had before. Under `--cfg tripoll_model`
//! (injected via `RUSTFLAGS` by the model-test CI job; see
//! `docs/CONCURRENCY.md`) the same paths resolve to the instrumented
//! types from `tripoll-modelcheck`, so the runtime's real mutexes,
//! condvars, atomics, and thread spawns become schedule points of the
//! bounded-exhaustive model checker — the code under test is the
//! shipping code, not a transliteration.
//!
//! Deliberately **not** switched: `Arc`, `OnceLock`, and
//! `available_parallelism` (no scheduling decisions worth exploring),
//! plus everything in crates that never runs inside a model closure.

#![deny(missing_docs)]

#[cfg(not(tripoll_model))]
pub use std::sync::{Condvar, Mutex, MutexGuard};

#[cfg(tripoll_model)]
pub use tripoll_modelcheck::sync::{Condvar, Mutex, MutexGuard};

/// Atomic types and `Ordering`: std's in normal builds, instrumented
/// under `--cfg tripoll_model`.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    #[cfg(not(tripoll_model))]
    pub use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize};

    #[cfg(tripoll_model)]
    pub use tripoll_modelcheck::sync::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize};
}

/// Thread spawning and yielding: std's in normal builds, the model
/// scheduler's under `--cfg tripoll_model`.
pub mod thread {
    #[cfg(not(tripoll_model))]
    pub use std::thread::{spawn, yield_now, Builder, JoinHandle};

    #[cfg(tripoll_model)]
    pub use tripoll_modelcheck::thread::{spawn, yield_now, Builder, JoinHandle};
}
