//! Offline stand-in for the subset of `rand` used by this workspace.
//!
//! The dataset generators only need a seedable, deterministic,
//! platform-independent PRNG with `random::<f64>()` and
//! `random_range(..)`. [`rngs::StdRng`] here is xoshiro256** seeded via
//! SplitMix64 — not the crates.io StdRng, but every generator in this
//! workspace is specified only as "deterministic in its seed", which
//! this satisfies bit-for-bit across platforms.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    /// Deterministic xoshiro256** generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        pub(crate) fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into four lanes, as the
        // xoshiro authors recommend; guarantees a non-zero state.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        rngs::StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Types that [`RngExt::random`] can produce.
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn draw(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn draw(rng: &mut rngs::StdRng) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn draw(rng: &mut rngs::StdRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn draw(rng: &mut rngs::StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn draw(rng: &mut rngs::StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn draw(rng: &mut rngs::StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`RngExt::random_range`] can sample from, producing `T`
/// (generic over the output type so integer literals in a range infer
/// from the use site, as with the real rand crate).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded draw (Lemire); bias is < 2^-64
                // per draw, irrelevant for dataset synthesis.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                if lo == 0 && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                // Span in u64 (hi - lo < type MAX after the full-range
                // special case, so +1 cannot overflow — including
                // ranges like 1..=MAX).
                let span = (hi - lo) as u64 + 1;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + draw as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i32 => u32, i64 => u64, isize => usize);

/// Convenience methods every generator exposes (the rand `Rng`-style
/// extension trait the workspace imports as `RngExt`).
pub trait RngExt {
    /// Draws a value of type `T` (uniform bits; floats in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T;
    /// Draws uniformly from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl RngExt for rngs::StdRng {
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = rngs::StdRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.random_range(3u64..7);
            assert!((3..7).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 6;
            let w = rng.random_range(2..=6usize);
            assert!((2..=6).contains(&w));
        }
        assert!(seen_lo && seen_hi, "both ends of the range reached");
    }

    #[test]
    fn inclusive_ranges_ending_at_max_do_not_overflow() {
        let mut rng = rngs::StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.random_range(1u8..=u8::MAX);
            assert!(v >= 1);
            let w = rng.random_range(0u64..=u64::MAX);
            let _ = w;
            let x = rng.random_range(u64::MAX - 1..=u64::MAX);
            assert!(x >= u64::MAX - 1);
        }
    }
}
