//! A small persistent work-stealing thread pool.
//!
//! Workers spawn once (lazily, on first use of [`global`]) and park on
//! a condvar between calls, so the per-invocation cost is pushing chunk
//! descriptors onto the deques and one wakeup — no thread spawns on the
//! hot path. Each worker owns a chunk deque: it pops its own deque from
//! the front and, when empty, steals from the back of a victim's deque,
//! so imbalanced chunks migrate to idle workers. The invoking thread
//! participates in its own batch instead of blocking, which also makes
//! nested invocations deadlock-free: a nested call from inside a worker
//! runs inline, a nested call from a participating caller just opens a
//! second batch on the same deques.
//!
//! A batch is one [`ThreadPool::run`] invocation. Its closure lives on
//! the caller's stack; jobs reference it through a type-erased pointer
//! that is sound because `run` does not return until every index has
//! executed (`remaining` reaches zero). Worker panics are caught,
//! stored, and re-thrown on the calling thread with their original
//! payload once the batch completes.

use std::any::Any;
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};
use std::thread;

// The pool's entire concurrency surface — worker spawns, the deque
// mutex, the park/wake condvar, completion counters, yields — goes
// through the `tripoll-sync` facade: plain std re-exports in normal
// builds, model-checker schedule points under `--cfg tripoll_model`
// (see docs/CONCURRENCY.md).
use tripoll_sync::atomic::{AtomicUsize, Ordering};
use tripoll_sync::thread::{yield_now, Builder, JoinHandle};
use tripoll_sync::{Condvar, Mutex};

thread_local! {
    /// True on pool worker threads: a nested `run` from a worker
    /// executes inline instead of re-entering the deques, so recursive
    /// parallelism cannot deadlock (the worker would otherwise wait on
    /// jobs only it could execute).
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Chunk granularity: each participating thread's share of a batch is
/// cut into this many jobs, so stealing has slack to rebalance without
/// per-index queue traffic.
const CHUNKS_PER_THREAD: usize = 4;

/// One `run` invocation: the type-erased index closure plus the
/// completion accounting shared by every chunk job cut from it.
struct Batch {
    call: unsafe fn(*const (), usize),
    ctx: *const (),
    remaining: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

// SAFETY: `ctx` points at a `Fn(usize) + Sync` closure on the invoking
// thread's stack. `run` keeps that frame alive until `remaining` hits
// zero (every job executed), and the closure is `Sync`, so calling it
// concurrently from worker threads is sound.
unsafe impl Send for Batch {}
// SAFETY: as for `Send` above — shared access from multiple workers is
// exactly the `Fn + Sync` contract `run` demands of the closure.
unsafe impl Sync for Batch {}

/// A contiguous index range of one batch.
struct Job {
    batch: Arc<Batch>,
    start: usize,
    end: usize,
}

struct State {
    /// One deque per worker. The worker pops its own from the front;
    /// thieves (other workers and participating callers) take from the
    /// back.
    queues: Vec<VecDeque<Job>>,
    /// Round-robin cursor for distributing a new batch's chunks.
    next: usize,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    work_ready: Condvar,
}

/// A persistent pool; see the module docs. Most callers want
/// [`global`], which sizes itself to the host once per process.
pub struct ThreadPool {
    inner: Arc<Inner>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `nworkers` parked worker threads. With zero workers every
    /// `run` executes inline on the caller.
    pub fn new(nworkers: usize) -> Self {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queues: (0..nworkers).map(|_| VecDeque::new()).collect(),
                next: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let handles = (0..nworkers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                Builder::new()
                    .name(format!("tripoll-pool-{i}"))
                    .spawn(move || worker_loop(&inner, i))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { inner, handles }
    }

    /// Number of worker threads (the caller adds one more executor).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Executes `f(0..n)` across the pool, each index exactly once, and
    /// returns when all have completed. The caller participates.
    /// Panics from any index are re-thrown here with their payload.
    pub fn run<F: Fn(usize) + Sync>(&self, n: usize, f: F) {
        if n == 0 {
            return;
        }
        if self.handles.is_empty() || n == 1 || IN_WORKER.with(|w| w.get()) {
            for i in 0..n {
                f(i);
            }
            return;
        }
        // SAFETY: caller contract — `ctx` must point at a live `F`; the
        // only caller is `exec`, through a `Batch` whose `ctx` is the
        // address of `f` below, kept alive until the batch completes.
        unsafe fn call_closure<F: Fn(usize)>(ctx: *const (), i: usize) {
            // SAFETY: `ctx` is the address of a live `F` per this
            // function's contract, and `F: Sync` makes the shared call
            // from any thread sound.
            unsafe { (*(ctx as *const F))(i) }
        }
        let batch = Arc::new(Batch {
            call: call_closure::<F>,
            ctx: (&raw const f).cast(),
            remaining: AtomicUsize::new(n),
            panic: Mutex::new(None),
        });
        let chunk = n.div_ceil((self.workers() + 1) * CHUNKS_PER_THREAD).max(1);
        {
            let mut st = self.inner.state.lock().unwrap();
            let nq = st.queues.len();
            let mut i = 0;
            while i < n {
                let end = (i + chunk).min(n);
                let qi = st.next % nq;
                st.next = st.next.wrapping_add(1);
                st.queues[qi].push_back(Job {
                    batch: Arc::clone(&batch),
                    start: i,
                    end,
                });
                i = end;
            }
            self.inner.work_ready.notify_all();
        }
        // Participate: steal this batch's jobs (other batches belong to
        // their own callers), then spin-yield for stragglers in flight
        // on workers.
        loop {
            let job = {
                let mut st = self.inner.state.lock().unwrap();
                take_matching(&mut st, &batch)
            };
            match job {
                Some(job) => exec(job),
                None => {
                    if batch.remaining.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    yield_now();
                }
            }
        }
        let payload = batch.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Applies `f` to every item of `items` across the pool, each item
    /// on exactly one thread, returning when all are done.
    pub fn run_mut<T: Send, F: Fn(&mut T) + Sync>(&self, items: &mut [T], f: F) {
        struct SendPtr<T>(*mut T);
        // SAFETY: the pointer is only dereferenced at distinct indices
        // (one per job, see `run`'s exactly-once dispatch), and
        // `T: Send` on `run_mut` covers handing each element to another
        // thread.
        unsafe impl<T> Send for SendPtr<T> {}
        // SAFETY: sharing the wrapper only shares the base address;
        // disjoint-index access is what makes the concurrent use sound.
        unsafe impl<T> Sync for SendPtr<T> {}
        impl<T> SendPtr<T> {
            // Accessor (rather than a field read in the closure) so
            // closure capture takes the Sync wrapper, not the raw
            // pointer field.
            fn at(&self, i: usize) -> *mut T {
                // SAFETY: `i < items.len()` (run is called with
                // `items.len()`), so the offset stays in the
                // allocation.
                unsafe { self.0.add(i) }
            }
        }
        let base = SendPtr(items.as_mut_ptr());
        self.run(items.len(), move |i| {
            // SAFETY: `run` dispatches each index to exactly one job,
            // so the `&mut` is exclusive; T: Send covers the move of
            // access across threads.
            f(unsafe { &mut *base.at(i) });
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock().unwrap();
            st.shutdown = true;
        }
        self.inner.work_ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Takes one job of `batch`, preferring the back of the fullest
/// position found first (plain scan — the deques are coarse-locked).
fn take_matching(st: &mut State, batch: &Arc<Batch>) -> Option<Job> {
    for q in st.queues.iter_mut() {
        if let Some(pos) = q.iter().rposition(|j| Arc::ptr_eq(&j.batch, batch)) {
            return q.remove(pos);
        }
    }
    None
}

/// Own deque front first, then steal from victims' backs.
fn take_any(st: &mut State, me: usize) -> Option<Job> {
    if let Some(j) = st.queues[me].pop_front() {
        return Some(j);
    }
    let n = st.queues.len();
    for off in 1..n {
        if let Some(j) = st.queues[(me + off) % n].pop_back() {
            return Some(j);
        }
    }
    None
}

fn exec(job: Job) {
    let Job { batch, start, end } = job;
    let result = catch_unwind(AssertUnwindSafe(|| {
        for i in start..end {
            // SAFETY: `batch.ctx` points at the invoking `run` frame's
            // closure, alive until `remaining` reaches zero — which
            // cannot happen before this job's decrement below.
            unsafe { (batch.call)(batch.ctx, i) };
        }
    }));
    if let Err(payload) = result {
        batch.panic.lock().unwrap().get_or_insert(payload);
    }
    // Whole-chunk decrement even after a panic: the skipped indices
    // will never run, and the caller re-throws the stored payload, so
    // completion must not hang on them.
    batch.remaining.fetch_sub(end - start, Ordering::AcqRel);
}

fn worker_loop(inner: &Inner, me: usize) {
    IN_WORKER.with(|w| w.set(true));
    let mut st = inner.state.lock().unwrap();
    loop {
        if let Some(job) = take_any(&mut st, me) {
            drop(st);
            exec(job);
            st = inner.state.lock().unwrap();
            continue;
        }
        if st.shutdown {
            return;
        }
        st = inner.work_ready.wait(st).unwrap();
    }
}

/// The process-wide pool, spawned on first use and reused by every
/// subsequent call (the adapters in this crate and the engine's
/// parallel merge seam all route here).
pub fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| ThreadPool::new(default_workers()))
}

fn default_workers() -> usize {
    // At least one worker even on a single-core box, so the
    // cross-thread machinery (stealing, Send boundaries, per-worker
    // stats isolation) genuinely executes everywhere; the caller
    // participates, so `cores - 1` workers saturate a larger host.
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .max(2)
        - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn run_covers_every_index_exactly_once() {
        let pool = ThreadPool::new(3);
        let counts: Vec<AtomicUsize> = (0..10_000).map(|_| AtomicUsize::new(0)).collect();
        pool.run(10_000, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_workers_runs_inline() {
        let pool = ThreadPool::new(0);
        let hits = AtomicUsize::new(0);
        pool.run(100, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn run_mut_gives_each_item_exclusive_access() {
        let pool = ThreadPool::new(2);
        let mut items: Vec<u64> = (0..50_000).collect();
        pool.run_mut(&mut items, |x| *x = x.wrapping_mul(3) + 1);
        assert!(items
            .iter()
            .enumerate()
            .all(|(i, &x)| x == (i as u64) * 3 + 1));
    }

    #[test]
    fn workers_actually_execute_jobs() {
        // Sleeping jobs force the caller off-CPU, so the parked worker
        // is scheduled and takes from the deques even on one core.
        use std::collections::HashSet;
        let pool = ThreadPool::new(1);
        let seen: Mutex<HashSet<thread::ThreadId>> = Mutex::new(HashSet::new());
        pool.run(8, |_| {
            thread::sleep(std::time::Duration::from_millis(5));
            seen.lock().unwrap().insert(thread::current().id());
        });
        assert!(
            seen.lock().unwrap().len() >= 2,
            "jobs never left the calling thread"
        );
    }

    #[test]
    fn nested_run_does_not_deadlock() {
        let pool = global();
        let acc = AtomicUsize::new(0);
        pool.run(4, |_| {
            pool.run(100, |_| {
                acc.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(acc.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn concurrent_batches_share_the_pool() {
        let results: Vec<u64> = thread::scope(|s| {
            (0..4u64)
                .map(|t| {
                    s.spawn(move || {
                        let acc = AtomicUsize::new(0);
                        global().run(1000, |i| {
                            acc.fetch_add(i + t as usize, Ordering::Relaxed);
                        });
                        acc.load(Ordering::Relaxed) as u64
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for (t, r) in results.into_iter().enumerate() {
            assert_eq!(r, 999 * 1000 / 2 + 1000 * t as u64);
        }
    }

    #[test]
    fn panic_payload_propagates_to_the_caller() {
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(5_000, |i| assert!(i != 4_321, "deliberate pool panic"));
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .expect("string payload");
        assert!(msg.contains("deliberate pool panic"));
    }
}
