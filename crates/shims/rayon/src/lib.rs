//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! The container has no crates.io access, so this shim provides the
//! rayon method names with **real parallelism** built on the
//! persistent work-stealing [`pool`] (spawned once per process, reused
//! by every call): `into_par_iter` pipelines execute their adapters
//! eagerly over contiguous chunks dispatched to the pool (results
//! concatenated in order), and `par_sort_unstable*` partitions on the
//! calling thread via `select_nth_unstable_by`, then sorts the
//! segments on the pool. Small inputs skip the dispatch machinery
//! entirely and run sequentially, so tiny call sites pay nothing.
//!
//! Closure and item bounds mirror real rayon (`Fn + Sync`, items
//! `Send`), so swapping the real crate back in is a one-line Cargo.toml
//! change. Two deliberate deviations, both safe for this workspace's
//! call sites: adapters are eager (each `map`/`filter` materializes a
//! `Vec`, costing memory proportional to the intermediate stage), and
//! the *stable* `par_sort` remains sequential.

use std::cmp::Ordering;

pub mod pool;

/// The rayon prelude: traits that add `par_*` methods.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

/// Inputs shorter than this run sequentially: even with the persistent
/// pool, dispatch costs a lock round-trip and a wakeup, so parallelism
/// only pays past a few thousand elements of per-item work.
const SEQ_CUTOFF: usize = 1024;

/// Sub-slices shorter than this sort sequentially.
const SORT_SEQ_CUTOFF: usize = 4096;

/// Splits `items` into contiguous chunks (one per pool thread), runs
/// `run` on each across the pool, and concatenates the results in
/// chunk order (so every adapter preserves input order). Worker panics
/// propagate with their original payload.
fn chunked<T: Send, B: Send>(items: Vec<T>, run: impl Fn(Vec<T>) -> Vec<B> + Sync) -> Vec<B> {
    let pool = pool::global();
    if pool.workers() == 0 || items.len() < SEQ_CUTOFF {
        return run(items);
    }
    let nchunks = pool.workers() + 1;
    let chunk_len = items.len().div_ceil(nchunks);
    let mut slots: Vec<(Vec<T>, Vec<B>)> = Vec::with_capacity(nchunks);
    let mut rest = items;
    while rest.len() > chunk_len {
        let tail = rest.split_off(chunk_len);
        slots.push((std::mem::replace(&mut rest, tail), Vec::new()));
    }
    slots.push((rest, Vec::new()));
    pool.run_mut(&mut slots, |slot| {
        slot.1 = run(std::mem::take(&mut slot.0));
    });
    let mut out = Vec::new();
    for (_, part) in slots {
        out.extend(part);
    }
    out
}

/// A materialized parallel iterator: adapters execute eagerly over
/// scoped-thread chunks, preserving element order.
pub struct Par<T>(Vec<T>);

impl<T: Send> Par<T> {
    /// Maps each item (in parallel past the cutoff).
    pub fn map<B, F>(self, f: F) -> Par<B>
    where
        B: Send,
        F: Fn(T) -> B + Sync,
    {
        Par(chunked(self.0, |chunk| chunk.into_iter().map(&f).collect()))
    }

    /// Filters items.
    pub fn filter<F>(self, f: F) -> Par<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        Par(chunked(self.0, |chunk| {
            chunk.into_iter().filter(&f).collect()
        }))
    }

    /// Flat-maps each item through a serial iterator (rayon's
    /// `flat_map_iter`): the produced iterators are consumed on the
    /// worker that ran the closure.
    pub fn flat_map_iter<U, F>(self, f: F) -> Par<U::Item>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(T) -> U + Sync,
    {
        Par(chunked(self.0, |chunk| {
            chunk.into_iter().flat_map(&f).collect()
        }))
    }

    /// Flat-maps each item (rayon's `flat_map`).
    pub fn flat_map<U, F>(self, f: F) -> Par<U::Item>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(T) -> U + Sync,
    {
        self.flat_map_iter(f)
    }

    /// Collects into a container.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.0.into_iter().collect()
    }

    /// Sums the items (chunk partials, then a fold of the partials —
    /// rayon's `Sum<T> + Sum<S>` shape).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T> + std::iter::Sum<S> + Send,
    {
        chunked(self.0, |chunk| vec![chunk.into_iter().sum::<S>()])
            .into_iter()
            .sum()
    }

    /// Counts the items.
    pub fn count(self) -> usize {
        self.0.len()
    }

    /// Runs `f` on each item.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        chunked(self.0, |chunk| {
            chunk.into_iter().for_each(&f);
            Vec::<()>::new()
        });
    }

    /// Folds chunks from `identity` and combines the partials (rayon's
    /// identity + associative-operator reduce).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T + Sync,
        OP: Fn(T, T) -> T + Sync,
    {
        chunked(self.0, |chunk| {
            vec![chunk.into_iter().fold(identity(), &op)]
        })
        .into_iter()
        .fold(identity(), &op)
    }

    /// Largest item.
    pub fn max(self) -> Option<T>
    where
        T: Ord,
    {
        chunked(self.0, |chunk| {
            chunk.into_iter().max().into_iter().collect()
        })
        .into_iter()
        .max()
    }

    /// Smallest item.
    pub fn min(self) -> Option<T>
    where
        T: Ord,
    {
        chunked(self.0, |chunk| {
            chunk.into_iter().min().into_iter().collect()
        })
        .into_iter()
        .min()
    }
}

/// Types convertible into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// Converts `self` (materializing the source).
    fn into_par_iter(self) -> Par<Self::Item>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Item = T::Item;
    fn into_par_iter(self) -> Par<T::Item> {
        Par(self.into_iter().collect())
    }
}

/// Parallel quicksort on the persistent pool: partition around median
/// elements with the standard library's `select_nth_unstable_by`
/// (O(n), in place, safe) on the calling thread until there are about
/// two segments per pool thread, then sort the disjoint segments
/// across the pool. Pivot elements land in their final position during
/// partitioning and are excluded from the segment sorts.
fn par_qsort<T, F>(v: &mut [T], cmp: &F)
where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let pool = pool::global();
    if v.len() <= SORT_SEQ_CUTOFF || pool.workers() == 0 {
        v.sort_unstable_by(|a, b| cmp(a, b));
        return;
    }
    let target = (pool.workers() + 1) * 2;
    let mut pending: Vec<&mut [T]> = vec![v];
    let mut segments: Vec<&mut [T]> = Vec::with_capacity(target);
    while let Some(s) = pending.pop() {
        if s.len() <= SORT_SEQ_CUTOFF || segments.len() + pending.len() + 2 > target {
            segments.push(s);
            continue;
        }
        let mid = s.len() / 2;
        let (lo, _pivot, hi) = s.select_nth_unstable_by(mid, |a, b| cmp(a, b));
        pending.push(lo);
        pending.push(hi);
    }
    pool.run_mut(&mut segments, |seg| seg.sort_unstable_by(|a, b| cmp(a, b)));
}

/// Slice sorting with rayon's `par_sort*` names.
pub trait ParallelSliceMut<T> {
    /// Unstable parallel sort.
    fn par_sort_unstable(&mut self)
    where
        T: Ord + Send;
    /// Unstable parallel sort by key.
    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        T: Send,
        K: Ord,
        F: Fn(&T) -> K + Sync;
    /// Unstable parallel sort by comparator.
    fn par_sort_unstable_by<F>(&mut self, f: F)
    where
        T: Send,
        F: Fn(&T, &T) -> Ordering + Sync;
    /// Stable sort (sequential in this shim).
    fn par_sort(&mut self)
    where
        T: Ord;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable(&mut self)
    where
        T: Ord + Send,
    {
        par_qsort(self, &|a: &T, b: &T| a.cmp(b));
    }
    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        T: Send,
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        par_qsort(self, &|a: &T, b: &T| f(a).cmp(&f(b)));
    }
    fn par_sort_unstable_by<F>(&mut self, f: F)
    where
        T: Send,
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        par_qsort(self, &f);
    }
    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.sort();
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_pipeline_matches_serial() {
        let out: Vec<u64> = (0..10u64)
            .into_par_iter()
            .flat_map_iter(|i| (0..i).map(move |j| i * 10 + j))
            .collect();
        let expect: Vec<u64> = (0..10u64)
            .flat_map(|i| (0..i).map(move |j| i * 10 + j))
            .collect();
        assert_eq!(out, expect);

        let mut v = vec![5, 3, 9, 1];
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 3, 5, 9]);

        let s: u64 = (0..100u64).into_par_iter().map(|x| x * 2).sum();
        assert_eq!(s, 9900);
    }

    #[test]
    fn large_pipeline_preserves_order_and_results() {
        // Large enough to cross SEQ_CUTOFF, so the chunked path runs.
        let n = 100_000u64;
        let out: Vec<u64> = (0..n)
            .into_par_iter()
            .map(|x| x.wrapping_mul(2654435761))
            .filter(|x| x % 3 != 0)
            .collect();
        let expect: Vec<u64> = (0..n)
            .map(|x| x.wrapping_mul(2654435761))
            .filter(|x| x % 3 != 0)
            .collect();
        assert_eq!(out, expect);
        let sum: u64 = (0..n).into_par_iter().map(|x| x % 97).sum();
        let expect_sum: u64 = (0..n).map(|x| x % 97).sum();
        assert_eq!(sum, expect_sum);
        assert_eq!((0..n).into_par_iter().max(), Some(n - 1));
        assert_eq!((0..n).into_par_iter().min(), Some(0));
        let reduced = (0..n)
            .into_par_iter()
            .reduce(|| 0u64, |a, b| a.wrapping_add(b));
        assert_eq!(reduced, (0..n).sum::<u64>());
    }

    #[test]
    fn large_sorts_match_std() {
        let mk =
            |n: u64| -> Vec<u64> { (0..n).map(|i| i.wrapping_mul(0x9e3779b97f4a7c15)).collect() };
        // Crosses SORT_SEQ_CUTOFF: the parallel quicksort path.
        let mut a = mk(200_000);
        let mut b = a.clone();
        a.par_sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);

        let mut a = mk(50_000);
        let mut b = a.clone();
        a.par_sort_unstable_by(|x, y| y.cmp(x));
        b.sort_unstable_by(|x, y| y.cmp(x));
        assert_eq!(a, b);

        let mut a = mk(50_000);
        let mut b = a.clone();
        a.par_sort_unstable_by_key(|x| x % 1000);
        b.sort_unstable_by_key(|x| x % 1000);
        // Unstable by-key: compare as multisets per key bucket.
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn work_actually_spreads_across_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        if pool::global().workers() < 2 {
            // On a 1-core box the caller can legitimately drain both
            // chunks before the lone worker is scheduled; the pool's
            // own sleep-based test covers cross-thread execution there.
            return;
        }
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        (0..10_000u64).into_par_iter().for_each(|_| {
            seen.lock().unwrap().insert(std::thread::current().id());
        });
        assert!(
            seen.lock().unwrap().len() >= 2,
            "chunked for_each ran on one thread"
        );
    }

    #[test]
    fn nested_parallel_calls_do_not_deadlock() {
        // A parallel pipeline whose per-item work itself calls
        // `par_sort_unstable` (both layers cross their cutoffs, so both
        // genuinely dispatch to the shared pool).
        let sums: Vec<u64> = (0..SEQ_CUTOFF as u64 * 2)
            .into_par_iter()
            .map(|i| {
                if i % 1024 == 0 {
                    let mut v: Vec<u64> = (0..(SORT_SEQ_CUTOFF as u64 * 2))
                        .map(|j| j.wrapping_mul(0x9e3779b97f4a7c15) ^ i)
                        .collect();
                    v.par_sort_unstable();
                    v[0]
                } else {
                    i
                }
            })
            .collect();
        assert_eq!(sums.len(), SEQ_CUTOFF * 2);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            (0..10_000u64).into_par_iter().for_each(|i| {
                assert!(i < 9_999, "deliberate worker panic");
            });
        });
        assert!(result.is_err());
    }
}
