//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! The container has no crates.io access, so this shim provides the
//! rayon method names with **real parallelism** built on
//! `std::thread::scope`: `into_par_iter` pipelines execute their
//! adapters eagerly over contiguous chunks (one scoped thread per
//! chunk, results concatenated in order), and `par_sort_unstable*` is a
//! parallel quicksort (median partition via `select_nth_unstable_by`,
//! halves sorted in sibling scoped threads). Small inputs skip the
//! thread machinery entirely and run sequentially, so tiny call sites
//! pay nothing.
//!
//! Closure and item bounds mirror real rayon (`Fn + Sync`, items
//! `Send`), so swapping the real crate back in is a one-line Cargo.toml
//! change. Two deliberate deviations, both safe for this workspace's
//! call sites: adapters are eager (each `map`/`filter` materializes a
//! `Vec`, costing memory proportional to the intermediate stage), and
//! the *stable* `par_sort` remains sequential.

use std::cmp::Ordering;
use std::num::NonZeroUsize;
use std::thread;

/// The rayon prelude: traits that add `par_*` methods.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

/// Inputs shorter than this run sequentially: a scoped thread costs
/// tens of microseconds, so parallelism only pays past a few thousand
/// elements of per-item work.
const SEQ_CUTOFF: usize = 1024;

/// Sub-slices shorter than this sort sequentially.
const SORT_SEQ_CUTOFF: usize = 4096;

fn workers() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits `items` into at most `workers()` contiguous chunks, runs
/// `run` on each in its own scoped thread, and concatenates the
/// results in chunk order (so every adapter preserves input order).
/// Worker panics propagate with their original payload.
fn chunked<T: Send, B: Send>(items: Vec<T>, run: impl Fn(Vec<T>) -> Vec<B> + Sync) -> Vec<B> {
    let nworkers = workers();
    if nworkers <= 1 || items.len() < SEQ_CUTOFF {
        return run(items);
    }
    let chunk_len = items.len().div_ceil(nworkers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(nworkers);
    let mut rest = items;
    while rest.len() > chunk_len {
        let tail = rest.split_off(chunk_len);
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    chunks.push(rest);
    let run = &run;
    thread::scope(|s| {
        // The calling thread works the last chunk itself instead of
        // idling at the join (same pattern as the sort's inline half).
        let last = chunks.pop().expect("at least one chunk");
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || run(chunk)))
            .collect();
        let tail = run(last);
        let mut out = Vec::new();
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out.extend(tail);
        out
    })
}

/// A materialized parallel iterator: adapters execute eagerly over
/// scoped-thread chunks, preserving element order.
pub struct Par<T>(Vec<T>);

impl<T: Send> Par<T> {
    /// Maps each item (in parallel past the cutoff).
    pub fn map<B, F>(self, f: F) -> Par<B>
    where
        B: Send,
        F: Fn(T) -> B + Sync,
    {
        Par(chunked(self.0, |chunk| chunk.into_iter().map(&f).collect()))
    }

    /// Filters items.
    pub fn filter<F>(self, f: F) -> Par<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        Par(chunked(self.0, |chunk| {
            chunk.into_iter().filter(&f).collect()
        }))
    }

    /// Flat-maps each item through a serial iterator (rayon's
    /// `flat_map_iter`): the produced iterators are consumed on the
    /// worker that ran the closure.
    pub fn flat_map_iter<U, F>(self, f: F) -> Par<U::Item>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(T) -> U + Sync,
    {
        Par(chunked(self.0, |chunk| {
            chunk.into_iter().flat_map(&f).collect()
        }))
    }

    /// Flat-maps each item (rayon's `flat_map`).
    pub fn flat_map<U, F>(self, f: F) -> Par<U::Item>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(T) -> U + Sync,
    {
        self.flat_map_iter(f)
    }

    /// Collects into a container.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.0.into_iter().collect()
    }

    /// Sums the items (chunk partials, then a fold of the partials —
    /// rayon's `Sum<T> + Sum<S>` shape).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T> + std::iter::Sum<S> + Send,
    {
        chunked(self.0, |chunk| vec![chunk.into_iter().sum::<S>()])
            .into_iter()
            .sum()
    }

    /// Counts the items.
    pub fn count(self) -> usize {
        self.0.len()
    }

    /// Runs `f` on each item.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        chunked(self.0, |chunk| {
            chunk.into_iter().for_each(&f);
            Vec::<()>::new()
        });
    }

    /// Folds chunks from `identity` and combines the partials (rayon's
    /// identity + associative-operator reduce).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T + Sync,
        OP: Fn(T, T) -> T + Sync,
    {
        chunked(self.0, |chunk| {
            vec![chunk.into_iter().fold(identity(), &op)]
        })
        .into_iter()
        .fold(identity(), &op)
    }

    /// Largest item.
    pub fn max(self) -> Option<T>
    where
        T: Ord,
    {
        chunked(self.0, |chunk| {
            chunk.into_iter().max().into_iter().collect()
        })
        .into_iter()
        .max()
    }

    /// Smallest item.
    pub fn min(self) -> Option<T>
    where
        T: Ord,
    {
        chunked(self.0, |chunk| {
            chunk.into_iter().min().into_iter().collect()
        })
        .into_iter()
        .min()
    }
}

/// Types convertible into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// Converts `self` (materializing the source).
    fn into_par_iter(self) -> Par<Self::Item>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Item = T::Item;
    fn into_par_iter(self) -> Par<T::Item> {
        Par(self.into_iter().collect())
    }
}

/// Parallel quicksort: partition around the median element with the
/// standard library's `select_nth_unstable_by` (O(n), in place, safe),
/// then sort the two halves in sibling scoped threads. `depth` bounds
/// thread fan-out near the core count.
fn par_qsort<T, F>(v: &mut [T], cmp: &F, depth: usize)
where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    if v.len() <= SORT_SEQ_CUTOFF || depth == 0 {
        v.sort_unstable_by(|a, b| cmp(a, b));
        return;
    }
    let mid = v.len() / 2;
    let (lo, _pivot, hi) = v.select_nth_unstable_by(mid, |a, b| cmp(a, b));
    thread::scope(|s| {
        s.spawn(|| par_qsort(lo, cmp, depth - 1));
        par_qsort(hi, cmp, depth - 1);
    });
}

fn sort_depth() -> usize {
    // log2(workers) splits yield ~workers leaves; a single-core box
    // gets depth 0, i.e. the plain sequential sort with no partition
    // or scope overhead.
    let w = workers();
    if w <= 1 {
        0
    } else {
        w.next_power_of_two().trailing_zeros() as usize + 1
    }
}

/// Slice sorting with rayon's `par_sort*` names.
pub trait ParallelSliceMut<T> {
    /// Unstable parallel sort.
    fn par_sort_unstable(&mut self)
    where
        T: Ord + Send;
    /// Unstable parallel sort by key.
    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        T: Send,
        K: Ord,
        F: Fn(&T) -> K + Sync;
    /// Unstable parallel sort by comparator.
    fn par_sort_unstable_by<F>(&mut self, f: F)
    where
        T: Send,
        F: Fn(&T, &T) -> Ordering + Sync;
    /// Stable sort (sequential in this shim).
    fn par_sort(&mut self)
    where
        T: Ord;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable(&mut self)
    where
        T: Ord + Send,
    {
        par_qsort(self, &|a: &T, b: &T| a.cmp(b), sort_depth());
    }
    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        T: Send,
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        par_qsort(self, &|a: &T, b: &T| f(a).cmp(&f(b)), sort_depth());
    }
    fn par_sort_unstable_by<F>(&mut self, f: F)
    where
        T: Send,
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        par_qsort(self, &f, sort_depth());
    }
    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.sort();
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_pipeline_matches_serial() {
        let out: Vec<u64> = (0..10u64)
            .into_par_iter()
            .flat_map_iter(|i| (0..i).map(move |j| i * 10 + j))
            .collect();
        let expect: Vec<u64> = (0..10u64)
            .flat_map(|i| (0..i).map(move |j| i * 10 + j))
            .collect();
        assert_eq!(out, expect);

        let mut v = vec![5, 3, 9, 1];
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 3, 5, 9]);

        let s: u64 = (0..100u64).into_par_iter().map(|x| x * 2).sum();
        assert_eq!(s, 9900);
    }

    #[test]
    fn large_pipeline_preserves_order_and_results() {
        // Large enough to cross SEQ_CUTOFF, so the chunked path runs.
        let n = 100_000u64;
        let out: Vec<u64> = (0..n)
            .into_par_iter()
            .map(|x| x.wrapping_mul(2654435761))
            .filter(|x| x % 3 != 0)
            .collect();
        let expect: Vec<u64> = (0..n)
            .map(|x| x.wrapping_mul(2654435761))
            .filter(|x| x % 3 != 0)
            .collect();
        assert_eq!(out, expect);
        let sum: u64 = (0..n).into_par_iter().map(|x| x % 97).sum();
        let expect_sum: u64 = (0..n).map(|x| x % 97).sum();
        assert_eq!(sum, expect_sum);
        assert_eq!((0..n).into_par_iter().max(), Some(n - 1));
        assert_eq!((0..n).into_par_iter().min(), Some(0));
        let reduced = (0..n)
            .into_par_iter()
            .reduce(|| 0u64, |a, b| a.wrapping_add(b));
        assert_eq!(reduced, (0..n).sum::<u64>());
    }

    #[test]
    fn large_sorts_match_std() {
        let mk =
            |n: u64| -> Vec<u64> { (0..n).map(|i| i.wrapping_mul(0x9e3779b97f4a7c15)).collect() };
        // Crosses SORT_SEQ_CUTOFF: the parallel quicksort path.
        let mut a = mk(200_000);
        let mut b = a.clone();
        a.par_sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);

        let mut a = mk(50_000);
        let mut b = a.clone();
        a.par_sort_unstable_by(|x, y| y.cmp(x));
        b.sort_unstable_by(|x, y| y.cmp(x));
        assert_eq!(a, b);

        let mut a = mk(50_000);
        let mut b = a.clone();
        a.par_sort_unstable_by_key(|x| x % 1000);
        b.sort_unstable_by_key(|x| x % 1000);
        // Unstable by-key: compare as multisets per key bucket.
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn work_actually_spreads_across_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        if workers() < 2 {
            return; // nothing to prove on a single-core box
        }
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        (0..10_000u64).into_par_iter().for_each(|_| {
            seen.lock().unwrap().insert(std::thread::current().id());
        });
        assert!(
            seen.lock().unwrap().len() >= 2,
            "chunked for_each ran on one thread"
        );
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            (0..10_000u64).into_par_iter().for_each(|i| {
                assert!(i < 9_999, "deliberate worker panic");
            });
        });
        assert!(result.is_err());
    }
}
