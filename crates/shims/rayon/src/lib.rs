//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! The container has no crates.io access, so `par_sort_unstable`,
//! `into_par_iter` and friends execute **sequentially** here with
//! identical results (all call sites are order-independent or sort
//! afterwards). The adapter type [`Par`] wraps a standard iterator and
//! forwards the rayon method names; swapping the real rayon back in is a
//! one-line Cargo.toml change.

/// The rayon prelude: traits that add `par_*` methods.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

/// Sequential stand-in for rayon's `ParallelIterator`.
pub struct Par<I>(I);

impl<I: Iterator> Par<I> {
    /// Maps each item.
    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> Par<std::iter::Map<I, F>> {
        Par(self.0.map(f))
    }

    /// Filters items.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> Par<std::iter::Filter<I, F>> {
        Par(self.0.filter(f))
    }

    /// Flat-maps each item through a serial iterator (rayon's
    /// `flat_map_iter`).
    pub fn flat_map_iter<U, F>(self, f: F) -> Par<std::iter::FlatMap<I, U, F>>
    where
        U: IntoIterator,
        F: FnMut(I::Item) -> U,
    {
        Par(self.0.flat_map(f))
    }

    /// Flat-maps each item (rayon's `flat_map`).
    pub fn flat_map<U, F>(self, f: F) -> Par<std::iter::FlatMap<I, U, F>>
    where
        U: IntoIterator,
        F: FnMut(I::Item) -> U,
    {
        Par(self.0.flat_map(f))
    }

    /// Collects into a container.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Counts the items.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Runs `f` on each item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Folds every item into one accumulator (sequential equivalent of
    /// rayon's identity + reduce).
    pub fn reduce<F>(self, identity: impl Fn() -> I::Item, f: F) -> I::Item
    where
        F: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), f)
    }

    /// Largest item.
    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    /// Smallest item.
    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }
}

/// Types convertible into a (sequentially executed) parallel iterator.
pub trait IntoParallelIterator {
    /// Underlying iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type.
    type Item;
    /// Converts `self`.
    fn into_par_iter(self) -> Par<Self::Iter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Iter = T::IntoIter;
    type Item = T::Item;
    fn into_par_iter(self) -> Par<T::IntoIter> {
        Par(self.into_iter())
    }
}

/// Slice sorting with rayon's `par_sort*` names.
pub trait ParallelSliceMut<T> {
    /// Unstable sort (sequential here).
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    /// Unstable sort by key (sequential here).
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F);
    /// Unstable sort by comparator (sequential here).
    fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, f: F);
    /// Stable sort (sequential here).
    fn par_sort(&mut self)
    where
        T: Ord;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F) {
        self.sort_unstable_by_key(f);
    }
    fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, f: F) {
        self.sort_unstable_by(f);
    }
    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.sort();
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_pipeline_matches_serial() {
        let out: Vec<u64> = (0..10u64)
            .into_par_iter()
            .flat_map_iter(|i| (0..i).map(move |j| i * 10 + j))
            .collect();
        let expect: Vec<u64> = (0..10u64)
            .flat_map(|i| (0..i).map(move |j| i * 10 + j))
            .collect();
        assert_eq!(out, expect);

        let mut v = vec![5, 3, 9, 1];
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 3, 5, 9]);

        let s: u64 = (0..100u64).into_par_iter().map(|x| x * 2).sum();
        assert_eq!(s, 9900);
    }
}
