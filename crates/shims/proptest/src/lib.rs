//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The container has no crates.io access, so this crate provides the
//! `proptest!` macro, `any::<T>()`, range / tuple / `collection::vec`
//! strategies and the `prop_assert*` macros with deterministic,
//! edge-biased value generation. No shrinking: a failing case panics
//! with the generated inputs printed via the normal assert message, and
//! the per-test RNG stream is a pure function of the test name and case
//! index, so every failure reproduces exactly.

/// Test-runner configuration and the deterministic RNG.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Real proptest defaults to 256; the heavier tests in this
            // workspace spawn a simulated MPI world per case, so the
            // default stays modest (tests that want more ask for it).
            Config { cases: 32 }
        }
    }

    /// Deterministic xoshiro256** stream, keyed by test name and case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// RNG for one `(test, case)` pair.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut x = h;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy returned by [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<fn() -> T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// A string pattern used as a strategy (`"..." in proptest`).
    ///
    /// Real proptest interprets the pattern as a regex; the only pattern
    /// this workspace uses is `".*"`, so the shim generates arbitrary
    /// short strings (mixed ASCII and multi-byte scalars) and ignores
    /// the pattern text.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let len = rng.below(24) as usize;
            let mut out = String::new();
            for _ in 0..len {
                let c = match rng.below(8) {
                    0 => char::from_u32(0x80 + rng.below(0x700) as u32).unwrap_or('ß'),
                    1 => char::from_u32(0x4e00 + rng.below(0x100) as u32).unwrap_or('字'),
                    2 => '\u{1F389}',
                    _ => (b' ' + rng.below(95) as u8) as char,
                };
                out.push(c);
            }
            out
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
}

/// `any::<T>()` and the types it can generate.
pub mod arbitrary {
    use crate::strategy::Any;
    use crate::test_runner::TestRng;

    /// Types with a canonical generation recipe.
    pub trait Arbitrary {
        /// Draws one edge-biased value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // 1-in-4 edge case keeps boundary bugs reachable
                    // without shrinking support.
                    match rng.below(16) {
                        0 => 0,
                        1 => 1,
                        2 => <$t>::MAX,
                        3 => <$t>::MAX - 1,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            match rng.below(16) {
                0 => 0.0,
                1 => -0.0,
                2 => f64::INFINITY,
                3 => f64::NEG_INFINITY,
                4 => f64::NAN,
                5 => f64::MIN_POSITIVE,
                _ => f64::from_bits(rng.next_u64()),
            }
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f64::arbitrary(rng) as f32
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from_u32(rng.below(0xD800) as u32).unwrap_or('a')
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for a `Vec` with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// A `Vec<S::Value>` of length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// The test-declaration macro. Parses an optional
/// `#![proptest_config(..)]` header followed by `#[test]` functions
/// whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            (<$crate::test_runner::Config as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
}

/// `prop_assert!`: plain `assert!` (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!`: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!`: plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_respected(v in 3u64..9, w in 1usize..4) {
            prop_assert!((3..9).contains(&v));
            prop_assert!((1..4).contains(&w));
        }

        #[test]
        fn tuples_and_vecs(pair in crate::collection::vec((0u64..10, any::<bool>()), 0..16)) {
            for (n, _b) in &pair {
                prop_assert!(*n < 10);
            }
            prop_assert!(pair.len() < 16);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..100, 1..20);
        let mut r1 = crate::test_runner::TestRng::for_case("x", 3);
        let mut r2 = crate::test_runner::TestRng::for_case("x", 3);
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }
}
