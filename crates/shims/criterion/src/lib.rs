//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Provides `Criterion`, benchmark groups, `iter`/`iter_batched`,
//! throughput annotations and the `criterion_group!`/`criterion_main!`
//! macros. Measurement is a straightforward warm-up + timed-batch loop
//! (no outlier analysis); results print one line per benchmark and are
//! recorded on the `Criterion` value so harnesses can post-process them
//! (e.g. emit machine-readable JSON).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work-per-iteration annotation, used to derive throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; ignored by the shim (setup is
/// always excluded from timing).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/name` identifier.
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations measured (after warm-up).
    pub iterations: u64,
    /// Throughput annotation in effect, if any.
    pub throughput: Option<Throughput>,
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// A fresh driver.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        let name = name.into();
        let result = run_bench(name, None, f);
        println!("{}", render(&result));
        self.results.push(result);
    }

    /// All measurements recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A named group sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the work-per-iteration annotation for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        let id = format!("{}/{}", self.name, name.into());
        let result = run_bench(id, self.throughput, f);
        println!("{}", render(&result));
        self.criterion.results.push(result);
    }

    /// Ends the group (accounting only; nothing to flush in the shim).
    pub fn finish(self) {}
}

/// Passed to the measured closure; collects timing.
pub struct Bencher {
    /// Total time spent in measured routines.
    elapsed: Duration,
    /// Measured iterations.
    iters: u64,
    /// Target iterations for this measurement pass.
    target: u64,
}

impl Bencher {
    /// Times `routine` run `target` times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.target {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = self.target;
    }

    /// Times `routine` with per-iteration inputs from `setup`; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<S, R, Setup, Routine>(
        &mut self,
        mut setup: Setup,
        mut routine: Routine,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        Routine: FnMut(S) -> R,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.target {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.iters = self.target;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: String,
    throughput: Option<Throughput>,
    mut f: F,
) -> BenchResult {
    // Calibration pass: find an iteration count that runs ~80ms.
    let mut target = 1u64;
    loop {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            target,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(20) || target >= 1 << 22 {
            let per_iter = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
            let measured = ((80e6 / per_iter.max(1.0)) as u64).clamp(1, 1 << 24);
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
                target: measured,
            };
            f(&mut b);
            return BenchResult {
                id,
                ns_per_iter: b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64,
                iterations: b.iters,
                throughput,
            };
        }
        target = target.saturating_mul(4);
    }
}

fn render(r: &BenchResult) -> String {
    let mut line = format!("{:<44} {:>12.1} ns/iter", r.id, r.ns_per_iter);
    match r.throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (r.ns_per_iter / 1e9);
            line.push_str(&format!("  {:>12.2} Melem/s", rate / 1e6));
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (r.ns_per_iter / 1e9);
            line.push_str(&format!("  {:>12.2} MiB/s", rate / (1024.0 * 1024.0)));
        }
        None => {}
    }
    line
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::new();
            $( $group(&mut c); )+
        }
    };
}
