//! Offline stand-in for the subset of `parking_lot` used by this
//! workspace: a `Mutex` whose `lock()` returns the guard directly
//! (poisoning is treated as a fatal error, matching parking_lot's
//! no-poisoning semantics closely enough for this runtime, which never
//! holds a lock across a panic site).

use std::sync::{Mutex as StdMutex, MutexGuard};

/// A mutex with parking_lot's `lock() -> guard` signature.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned")
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex poisoned")
    }
}
