//! Offline stand-in for the subset of `crossbeam` used by this workspace.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the tiny API surface it needs: an unbounded MPSC channel with the
//! `crossbeam::channel` names (`unbounded`, `Sender`, `Receiver`,
//! `try_recv`). Implemented over a mutex-guarded queue — adequate for the
//! simulated-rank message traffic of the YGM runtime, where receivers
//! poll with `try_recv` and never block.

/// Multi-producer multi-consumer unbounded channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Mutex};

    struct Queue<T> {
        items: Mutex<VecDeque<T>>,
    }

    /// Sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        q: Arc<Queue<T>>,
    }

    /// Receiving half of an unbounded channel. Cloneable.
    pub struct Receiver<T> {
        q: Arc<Queue<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { q: self.q.clone() }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver { q: self.q.clone() }
        }
    }

    /// Error returned by [`Sender::send`]; never produced by this shim
    /// (the queue lives as long as any endpoint), kept for API parity.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a closed channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`] when the queue is empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message was ready.
        Empty,
        /// All senders dropped and the queue is drained. Not produced by
        /// this shim (endpoints share one queue), kept for API parity.
        Disconnected,
    }

    /// Creates an unbounded channel, returning its two halves.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let q = Arc::new(Queue {
            items: Mutex::new(VecDeque::new()),
        });
        (Sender { q: q.clone() }, Receiver { q })
    }

    impl<T> Sender<T> {
        /// Appends a message to the queue. Infallible in this shim.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.q.items.lock().expect("channel lock").push_back(msg);
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Pops the oldest queued message, if any, without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.q
                .items
                .lock()
                .expect("channel lock")
                .pop_front()
                .ok_or(TryRecvError::Empty)
        }

        /// True when no message is queued right now.
        pub fn is_empty(&self) -> bool {
            self.q.items.lock().expect("channel lock").is_empty()
        }

        /// Number of messages queued right now.
        pub fn len(&self) -> usize {
            self.q.items.lock().expect("channel lock").len()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            std::thread::scope(|s| {
                s.spawn(move || {
                    for i in 0..100 {
                        tx2.send(i).unwrap();
                    }
                });
            });
            let mut got = Vec::new();
            while let Ok(v) = rx.try_recv() {
                got.push(v);
            }
            assert_eq!(got, (0..100).collect::<Vec<_>>());
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }
    }
}
