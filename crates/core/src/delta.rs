//! Delta surveys: triangles involving at least one edge of an
//! ingested batch.
//!
//! After [`tripoll_graph::ingest`] appends a batch to DODGr storage,
//! the surveys of the new graph differ from the old ones exactly by the
//! triangles with ≥ 1 batch edge. [`survey_delta_push`] enumerates
//! precisely those: for every apex `p` in the batch's
//! [`BatchDelta`] plan it generates
//!
//! * the **full suffix** wedge batch for each *new* out-entry of `p`
//!   (new edge × everything after it — the new×existing cross terms in
//!   one direction plus new×new within the batch), straight from the
//!   `Adjm+(p)` storage slice on the encode-once hot path, and
//! * a **gathered** candidate batch for each *old* out-entry `q`:
//!   the new entries past `q` (cross terms in the other direction)
//!   plus the old entries whose targets a batch edge newly joined
//!   (wedges the batch *closed* at `p` — their triangle's closing edge
//!   is the new edge itself, stored at `Rank(q)` by the `<+`
//!   orientation).
//!
//! Each wedge with ≥ 1 new edge is generated exactly once, and every
//! batch goes through the **same** wire encoding, registered handlers,
//! intersection kernels, and parallel dispatch as a full survey — a
//! delta survey is indistinguishable from a full one on the receiving
//! side, so callbacks, metadata colocation, and [`KernelStats`]
//! accounting all behave identically.
//!
//! Additive merging of the per-triangle results into running totals is
//! the [`crate::surveys::delta`] seam; the resident tier couples both
//! with an epoch guard in [`crate::service`].
//!
//! [`KernelStats`]: crate::engine::KernelStats

use std::rc::Rc;

use tripoll_graph::ingest::BatchDelta;
use tripoll_graph::{AdjEntry, DistGraph};
use tripoll_ygm::wire::{encode_seq, Wire};
use tripoll_ygm::Comm;

use crate::engine::{EngineMode, PhaseTimer, SurveyConfig, SurveyReport};
use crate::meta::SurveyCallback;
use crate::par::par_queue_for;
use crate::push_common::{
    encode_candidate, encode_candidate_columns, register_push_handler, DynCallback, PushHandler,
};

/// Runs a delta survey for one ingested batch: `callback` executes once
/// per triangle that involves at least one edge of the batch, on the
/// rank where the six metadata values are colocated — exactly the
/// triangles by which the new graph's full survey differs from the old
/// one.
///
/// Collective: every rank calls with the same post-ingest graph, the
/// same [`BatchDelta`], and an equivalent callback. The plan is
/// index-based and only valid against the storage state its ingest
/// produced; the resident tier enforces that with an epoch check
/// (`ResidentGraph::survey_delta`).
///
/// Deltas always push: the Push-Pull pull side is a bandwidth
/// optimization for *high-degree* full enumerations and has no
/// analogue for the sparse wedge sets of a batch, so the report's mode
/// is [`EngineMode::PushOnly`] regardless of which engine full surveys
/// use. Differential tests hold `full(G) + delta(G, B)` against
/// full surveys of `G ∪ B` from **both** engines.
pub fn survey_delta_push<VM, EM, F>(
    comm: &Comm,
    graph: &DistGraph<VM, EM>,
    plan: &BatchDelta,
    config: impl Into<SurveyConfig>,
    callback: F,
) -> SurveyReport
where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
    F: SurveyCallback<VM, EM>,
{
    let config = config.into();
    let cb: DynCallback<VM, EM> = Rc::new(callback);
    let queue = par_queue_for(graph, &cb, config);
    let handler = register_push_handler(comm, graph, cb, config, queue.clone());
    if let Some(q) = &queue {
        let q2 = q.clone();
        comm.set_drain_hook(move |c| q2.flush(c));
    }

    let timer = PhaseTimer::begin(comm, "delta-push");
    push_delta_wedges(comm, graph, plan, &handler);
    comm.barrier();
    let phase = timer.end();
    if queue.is_some() {
        comm.clear_drain_hook();
    }

    SurveyReport {
        mode: EngineMode::PushOnly,
        total_seconds: phase.seconds,
        phases: vec![phase],
        pulled_vertices: 0,
        pull_grants: 0,
    }
}

/// Generates exactly the wedges of this rank's shard that involve at
/// least one batch edge, per the apex plan. Full-suffix batches (new
/// source entry) serialize straight from storage like
/// `push_wedge_batches`; gathered batches (old source entry) merge the
/// new-tail and closing candidates — two disjoint ascending index
/// runs — into a reusable scratch slice so the columnar encoder still
/// sees one contiguous `<+`-sorted slice.
fn push_delta_wedges<VM, EM>(
    comm: &Comm,
    graph: &DistGraph<VM, EM>,
    plan: &BatchDelta,
    handler: &PushHandler<VM, EM>,
) where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
{
    let mut scratch: Vec<AdjEntry<VM, EM>> = Vec::new();
    for lv in graph.shard().vertices() {
        let Some(ap) = plan.apexes.get(&lv.id) else {
            continue;
        };
        // `closing` is sorted by (i, j); pairs for source index i form
        // a contiguous run found by a monotone cursor over i.
        let mut run = 0usize;
        for (i, e) in lv.adj.iter().enumerate() {
            let iu = i as u32;
            while run < ap.closing.len() && ap.closing[run].0 < iu {
                run += 1;
            }
            if i + 1 >= lv.adj.len() {
                break; // empty suffix: no wedges from the last entry
            }
            let dest = graph.owner(e.v);
            if ap.new_idx.binary_search(&iu).is_ok() {
                // New source edge: every wedge through it is new.
                let suffix = &lv.adj[i + 1..];
                match handler {
                    PushHandler::Interleaved(h) => comm.send_encoded(
                        dest,
                        h,
                        (
                            lv.id,
                            e.v,
                            &lv.meta,
                            &e.em,
                            encode_seq(suffix, |s, buf| encode_candidate(s, buf)),
                        ),
                    ),
                    PushHandler::Columnar(h) => comm.send_encoded(
                        dest,
                        h,
                        (
                            lv.id,
                            e.v,
                            &lv.meta,
                            &e.em,
                            encode_candidate_columns(suffix),
                        ),
                    ),
                }
                continue;
            }
            // Old source edge: gather the new entries past i and the
            // closing partners of i. Both runs ascend and are disjoint
            // (closing partners are old entries), so a linear merge
            // keeps the scratch slice `<+`-sorted.
            let news = &ap.new_idx[ap.new_idx.partition_point(|&n| n <= iu)..];
            let closers = {
                let end = ap.closing[run..]
                    .iter()
                    .take_while(|&&(s, _)| s == iu)
                    .count();
                &ap.closing[run..run + end]
            };
            if news.is_empty() && closers.is_empty() {
                continue;
            }
            scratch.clear();
            let (mut a, mut b) = (0usize, 0usize);
            while a < news.len() || b < closers.len() {
                let take_new = match (news.get(a), closers.get(b)) {
                    (Some(&n), Some(&(_, c))) => n < c,
                    (Some(_), None) => true,
                    _ => false,
                };
                let idx = if take_new {
                    a += 1;
                    news[a - 1]
                } else {
                    b += 1;
                    closers[b - 1].1
                };
                scratch.push(lv.adj[idx as usize].clone());
            }
            match handler {
                PushHandler::Interleaved(h) => comm.send_encoded(
                    dest,
                    h,
                    (
                        lv.id,
                        e.v,
                        &lv.meta,
                        &e.em,
                        encode_seq(&scratch, |s, buf| encode_candidate(s, buf)),
                    ),
                ),
                PushHandler::Columnar(h) => comm.send_encoded(
                    dest,
                    h,
                    (
                        lv.id,
                        e.v,
                        &lv.meta,
                        &e.em,
                        encode_candidate_columns(&scratch),
                    ),
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::push_only::survey_push_only_with;
    use std::cell::Cell;
    use std::sync::Arc;
    use tripoll_graph::ingest::{apply_edge_batch_with, ReverseIndex};
    use tripoll_graph::{DistGraph, LocalShard, LocalVertex, Partition};
    use tripoll_ygm::World;

    fn vm_of(v: u64) -> u64 {
        v * 31 + 7
    }

    fn em_of(u: u64, v: u64) -> u32 {
        ((u.min(v) as u32) << 8) | (u.max(v) as u32)
    }

    fn meta_edges(pairs: &[(u64, u64)]) -> Vec<(u64, u64, u32)> {
        pairs.iter().map(|&(u, v)| (u, v, em_of(u, v))).collect()
    }

    /// Global vertex list of `edges` built purely incrementally.
    fn storage(edges: &[(u64, u64, u32)]) -> Vec<LocalVertex<u64, u32>> {
        let mut vertices = Vec::new();
        let mut rev = ReverseIndex::default();
        apply_edge_batch_with(&mut vertices, &mut rev, edges, vm_of).unwrap();
        vertices
    }

    fn count_with(
        nranks: usize,
        vertices: &[LocalVertex<u64, u32>],
        f: impl Fn(&Comm, &DistGraph<u64, u32>) -> u64 + Sync,
    ) -> u64 {
        let vertices = vertices.to_vec();
        let out = World::new(nranks).run(move |comm| {
            let partition = Partition::Hashed;
            let mine: Vec<_> = vertices
                .iter()
                .filter(|lv| partition.owner(lv.id, comm.nranks()) == comm.rank())
                .cloned()
                .collect();
            let shard = Arc::new(LocalShard::from_vertices(mine));
            let g = DistGraph::from_parts(shard, partition, comm.nranks());
            let local = f(comm, &g);
            comm.all_reduce_sum(local)
        });
        let first = out[0];
        assert!(out.iter().all(|&c| c == first), "ranks disagree: {out:?}");
        first
    }

    /// full(G ∪ B) == full(G) + delta(G, B) for plain counts across
    /// world sizes, exercising both gathered and full-suffix paths.
    #[test]
    fn delta_count_completes_full_count() {
        let base: Vec<(u64, u64)> = (0..12u64)
            .flat_map(|i| [(i, (i + 1) % 12), (i, (i + 4) % 12)])
            .collect();
        let batch: Vec<(u64, u64)> = vec![(0, 6), (1, 7), (2, 5), (3, 11), (13, 0), (13, 1)];
        let base = meta_edges(&base);
        let batch = meta_edges(&batch);

        let old_vertices = storage(&base);
        let mut new_vertices = old_vertices.clone();
        let mut rev = ReverseIndex::build(&new_vertices);
        let plan = apply_edge_batch_with(&mut new_vertices, &mut rev, &batch, vm_of).unwrap();

        for nranks in [1usize, 2, 3, 5] {
            let full_old = count_with(nranks, &old_vertices, |comm, g| {
                let c = std::rc::Rc::new(Cell::new(0u64));
                let c2 = c.clone();
                survey_push_only_with(comm, g, SurveyConfig::default(), move |_, _| {
                    c2.set(c2.get() + 1)
                });
                c.get()
            });
            let full_new = count_with(nranks, &new_vertices, |comm, g| {
                let c = std::rc::Rc::new(Cell::new(0u64));
                let c2 = c.clone();
                survey_push_only_with(comm, g, SurveyConfig::default(), move |_, _| {
                    c2.set(c2.get() + 1)
                });
                c.get()
            });
            let plan2 = plan.clone();
            let delta = count_with(nranks, &new_vertices, move |comm, g| {
                let c = std::rc::Rc::new(Cell::new(0u64));
                let c2 = c.clone();
                let report =
                    survey_delta_push(comm, g, &plan2, SurveyConfig::default(), move |_, _| {
                        c2.set(c2.get() + 1)
                    });
                assert_eq!(report.mode, EngineMode::PushOnly);
                assert_eq!(report.phases.len(), 1);
                assert_eq!(report.phases[0].name, "delta-push");
                c.get()
            });
            assert!(full_new >= full_old);
            assert_eq!(
                full_old + delta,
                full_new,
                "delta mismatch at nranks={nranks}"
            );
        }
    }

    /// An empty plan generates nothing.
    #[test]
    fn empty_plan_is_a_no_op() {
        let vertices = storage(&meta_edges(&[(0, 1), (1, 2), (2, 0)]));
        let plan = BatchDelta::default();
        let delta = count_with(2, &vertices, move |comm, g| {
            let c = std::rc::Rc::new(Cell::new(0u64));
            let c2 = c.clone();
            survey_delta_push(comm, g, &plan, SurveyConfig::default(), move |_, _| {
                c2.set(c2.get() + 1)
            });
            c.get()
        });
        assert_eq!(delta, 0);
    }
}
