//! Vectorized lane compares underneath [`IntersectKernel::Simd`].
//!
//! The blocked merge (PR 4) staged key blocks in stack arrays precisely
//! so a wide compare loop could replace its element-wise scan; this
//! module is that loop. The primitive is `find_ge_lane`: given the
//! SoA key lanes of one decoded [`KeyBlock`] (degrees and tie-breaks in
//! two `u64` arrays) and a merge-frontier key, find the first lane
//! whose `(degree, tie)` key is `>=` the frontier — i.e. skip every
//! left-side candidate the frontier has already passed in packed
//! groups of [`SIMD_GROUP_LANES`] lanes instead of one at a time.
//!
//! Three backends implement the group compare, selected **at runtime**
//! ([`simd_backend`], cached after the first probe):
//!
//! * **AVX2** — one 256-bit compare per group: four biased
//!   `_mm256_cmpgt_epi64`/`_mm256_cmpeq_epi64` lanes folded into the
//!   lexicographic `(degree, tie)` predicate, `movemask` to a 4-bit
//!   lane mask.
//! * **SSE2** — the same predicate over two 128-bit halves, with the
//!   64-bit unsigned compares emulated from `_mm_cmpgt_epi32` /
//!   `_mm_cmpeq_epi32` half-word results (SSE2 has no 64-bit compare).
//! * **SWAR/portable** — branchless scalar compares packed into the
//!   same 4-bit mask; the fallback on any target and the reference
//!   the intrinsics are differentially tested against.
//!
//! Every backend examines the **same groups in the same order** and
//! produces the same mask, so the kernel's deterministic compare
//! counters (one compare per group examined — see
//! [`KernelStats`]) are bit-identical whether or not
//! AVX2/SSE2 is available; `tests/kernels.rs` pins this with a
//! forced-SWAR differential run ([`simd_force_swar`]).
//!
//! [`IntersectKernel::Simd`]: crate::engine::IntersectKernel::Simd
//! [`KernelStats`]: crate::engine::KernelStats
//! [`KeyBlock`]: tripoll_ygm::wire::KeyBlock

#[cfg(target_arch = "x86_64")]
use std::sync::atomic::AtomicU8;
use std::sync::atomic::{AtomicBool, Ordering};

use tripoll_graph::OrderKey;
use tripoll_ygm::wire::KEY_BLOCK_LEN;

/// Lanes examined per wide compare — the probe-group width shared by
/// every backend (AVX2 covers it in one 256-bit op, SSE2 in two
/// 128-bit halves, SWAR in four packed scalar compares), so compare
/// counters do not depend on which backend ran.
pub const SIMD_GROUP_LANES: usize = 4;

const _: () = assert!(
    KEY_BLOCK_LEN.is_multiple_of(SIMD_GROUP_LANES),
    "key blocks must tile into whole probe groups"
);

/// Which group-compare implementation the kernel's packed lane skip
/// (`find_ge_lane`) dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdBackend {
    /// 256-bit `core::arch::x86_64` intrinsics (runtime-detected).
    Avx2,
    /// 128-bit `core::arch::x86_64` intrinsics with emulated 64-bit
    /// compares (runtime-detected; the x86-64 baseline).
    Sse2,
    /// Portable branchless scalar compares — the fallback on any
    /// target and the differential reference for the intrinsics.
    Swar,
}

impl std::fmt::Display for SimdBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimdBackend::Avx2 => write!(f, "avx2"),
            SimdBackend::Sse2 => write!(f, "sse2"),
            SimdBackend::Swar => write!(f, "swar"),
        }
    }
}

/// When set, [`simd_backend`] reports [`SimdBackend::Swar`] regardless
/// of what the CPU supports.
static FORCE_SWAR: AtomicBool = AtomicBool::new(false);

/// Forces (or releases) the portable SWAR backend, process-wide — the
/// differential-test knob that exercises the no-AVX2/SSE2 path on
/// hardware that has both. Safe to flip at any time: backends differ
/// only in how a probe group is compared, never in which groups are
/// probed, so match sets and [`KernelStats`] counters are unaffected
/// mid-flight.
///
/// [`KernelStats`]: crate::engine::KernelStats
pub fn simd_force_swar(on: bool) {
    FORCE_SWAR.store(on, Ordering::SeqCst);
}

/// The backend [`IntersectKernel::Simd`] will dispatch to right now:
/// the forced override if set, else the best runtime-detected
/// instruction set (probed once, then cached).
///
/// [`IntersectKernel::Simd`]: crate::engine::IntersectKernel::Simd
pub fn simd_backend() -> SimdBackend {
    if FORCE_SWAR.load(Ordering::Relaxed) {
        return SimdBackend::Swar;
    }
    detected_backend()
}

#[cfg(target_arch = "x86_64")]
fn detected_backend() -> SimdBackend {
    // 0 = not probed yet; the probe is idempotent so racing stores are
    // benign.
    static CACHE: AtomicU8 = AtomicU8::new(0);
    match CACHE.load(Ordering::Relaxed) {
        1 => SimdBackend::Avx2,
        2 => SimdBackend::Sse2,
        3 => SimdBackend::Swar,
        _ => {
            let (code, backend) = if std::arch::is_x86_feature_detected!("avx2") {
                (1, SimdBackend::Avx2)
            } else if std::arch::is_x86_feature_detected!("sse2") {
                (2, SimdBackend::Sse2)
            } else {
                (3, SimdBackend::Swar)
            };
            CACHE.store(code, Ordering::Relaxed);
            backend
        }
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detected_backend() -> SimdBackend {
    // Non-x86 targets always take the portable path.
    SimdBackend::Swar
}

/// First lane in `from..len` whose `(degree, tie)` key is `>=`
/// `frontier`, or `len` when no lane is — the packed skip at the heart
/// of the SIMD kernel. Lanes are probed in groups of
/// [`SIMD_GROUP_LANES`], front to back; the backend's whole scan runs
/// behind **one** dispatch (the `#[target_feature]` boundary encloses
/// the group loop, so a long skip costs one call, not one per group).
///
/// Each group examined adds **one** to `compares`. The count is
/// derived from the returned lane index — every backend probes the
/// identical group sequence — which is what keeps the kernel counters
/// deterministic under [`simd_force_swar`].
///
/// `len` must not exceed [`KEY_BLOCK_LEN`]; lanes at `len..` are never
/// reported (their contents are stale, so their mask bits are clipped).
/// `from >= len` is answered as `len` with zero compares.
#[inline]
pub(crate) fn find_ge_lane(
    backend: SimdBackend,
    deg: &[u64; KEY_BLOCK_LEN],
    tie: &[u64; KEY_BLOCK_LEN],
    from: usize,
    len: usize,
    frontier: OrderKey,
    compares: &mut u64,
) -> usize {
    debug_assert!(len <= KEY_BLOCK_LEN);
    if from >= len {
        return len;
    }
    // First group inline, portably: in match-dense regions most skips
    // end within SIMD_GROUP_LANES lanes, and a branchless scalar mask
    // is cheaper than any out-of-line backend call there. The probe
    // sequence (and therefore the compare count) is the same whichever
    // code computes each group's mask.
    let base0 = from - (from % SIMD_GROUP_LANES);
    *compares += 1;
    let mask = clip_mask(swar_group_mask(deg, tie, base0, frontier), base0, from, len);
    if mask != 0 {
        return base0 + mask.trailing_zeros() as usize;
    }
    let next = base0 + SIMD_GROUP_LANES;
    if next >= len {
        return len;
    }
    // Longer skips amortize one backend dispatch over many packed
    // groups (the `#[target_feature]` boundary encloses the loop).
    let idx = match backend {
        // SAFETY: `backend` comes from the `simd_backend` runtime
        // probe, which only returns Avx2/Sse2 when the CPU has the
        // corresponding target feature.
        #[cfg(target_arch = "x86_64")]
        SimdBackend::Avx2 => unsafe { find_ge_avx2(deg, tie, next, len, frontier) },
        // SAFETY: as above — SSE2 is probe-guarded (and the x86-64
        // baseline besides).
        #[cfg(target_arch = "x86_64")]
        SimdBackend::Sse2 => unsafe { find_ge_sse2(deg, tie, next, len, frontier) },
        #[cfg(not(target_arch = "x86_64"))]
        SimdBackend::Avx2 | SimdBackend::Sse2 => find_ge_swar(deg, tie, next, len, frontier),
        SimdBackend::Swar => find_ge_swar(deg, tie, next, len, frontier),
    };
    // One compare per group examined: groups next/G ..= min(idx, len-1)/G
    // were probed, identically on every backend.
    let last_group = idx.min(len - 1) / SIMD_GROUP_LANES;
    *compares += (last_group - next / SIMD_GROUP_LANES + 1) as u64;
    idx
}

/// One group's `>=` lane mask, computed portably — shared by the SWAR
/// backend loop and [`find_ge_lane`]'s inline first-group probe.
#[inline]
fn swar_group_mask(
    deg: &[u64; KEY_BLOCK_LEN],
    tie: &[u64; KEY_BLOCK_LEN],
    base: usize,
    f: OrderKey,
) -> u32 {
    let mut mask = 0u32;
    for lane in 0..SIMD_GROUP_LANES {
        let (d, t) = (deg[base + lane], tie[base + lane]);
        let ge = (d > f.degree) | ((d == f.degree) & (t >= f.tie));
        mask |= u32::from(ge) << lane;
    }
    mask
}

/// Clips a group's 4-bit lane mask to the valid `from..len` window:
/// drops lanes below `from` (first group only) and at/after `len`
/// (last group only, where the array holds stale lanes).
#[inline]
fn clip_mask(mask: u32, base: usize, from: usize, len: usize) -> u32 {
    let lo_clip = from.saturating_sub(base);
    let hi_valid: u32 = if len - base >= SIMD_GROUP_LANES {
        (1 << SIMD_GROUP_LANES) - 1
    } else {
        (1 << (len - base)) - 1
    };
    mask & hi_valid & (((1u32 << SIMD_GROUP_LANES) - 1) << lo_clip)
}

/// Portable backend: branchless scalar `(degree, tie)` `>=` predicates
/// packed into the same lane mask the intrinsics' movemask produces —
/// the differential reference for both intrinsic paths.
fn find_ge_swar(
    deg: &[u64; KEY_BLOCK_LEN],
    tie: &[u64; KEY_BLOCK_LEN],
    from: usize,
    len: usize,
    f: OrderKey,
) -> usize {
    let mut base = from - (from % SIMD_GROUP_LANES);
    while base < len {
        let mask = clip_mask(swar_group_mask(deg, tie, base, f), base, from, len);
        if mask != 0 {
            return base + mask.trailing_zeros() as usize;
        }
        base += SIMD_GROUP_LANES;
    }
    len
}

/// AVX2 backend: four 64-bit lanes per array in one 256-bit compare
/// per group, frontier broadcasts hoisted out of the loop. Unsigned
/// order is recovered from the signed `cmpgt` by biasing both sides
/// with `i64::MIN`; the lexicographic `(degree, tie)` predicate is
/// `deg > f.deg  OR  (deg == f.deg AND NOT tie < f.tie)`.
///
/// # Safety
/// Requires AVX2, which the [`simd_backend`] runtime probe guarantees.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn find_ge_avx2(
    deg: &[u64; KEY_BLOCK_LEN],
    tie: &[u64; KEY_BLOCK_LEN],
    from: usize,
    len: usize,
    f: OrderKey,
) -> usize {
    use std::arch::x86_64::*;
    let bias = _mm256_set1_epi64x(i64::MIN);
    let fdv = _mm256_xor_si256(_mm256_set1_epi64x(f.degree as i64), bias);
    let ftv = _mm256_xor_si256(_mm256_set1_epi64x(f.tie as i64), bias);
    let mut base = from - (from % SIMD_GROUP_LANES);
    while base < len {
        let d = _mm256_xor_si256(
            _mm256_loadu_si256(deg[base..].as_ptr() as *const __m256i),
            bias,
        );
        let t = _mm256_xor_si256(
            _mm256_loadu_si256(tie[base..].as_ptr() as *const __m256i),
            bias,
        );
        let d_gt = _mm256_cmpgt_epi64(d, fdv);
        let d_eq = _mm256_cmpeq_epi64(d, fdv);
        let t_lt = _mm256_cmpgt_epi64(ftv, t);
        let ge = _mm256_or_si256(d_gt, _mm256_andnot_si256(t_lt, d_eq));
        let mask = _mm256_movemask_pd(_mm256_castsi256_pd(ge)) as u32;
        let mask = clip_mask(mask, base, from, len);
        if mask != 0 {
            return base + mask.trailing_zeros() as usize;
        }
        base += SIMD_GROUP_LANES;
    }
    len
}

/// SSE2 backend: each 4-lane group as two 128-bit halves. SSE2 has no
/// 64-bit compare, so `>` and `==` over each 64-bit lane are assembled
/// from biased 32-bit half-word compares (`hi> OR (hi== AND lo>)`).
///
/// # Safety
/// Requires SSE2 (the x86-64 baseline; still guarded by the probe).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn find_ge_sse2(
    deg: &[u64; KEY_BLOCK_LEN],
    tie: &[u64; KEY_BLOCK_LEN],
    from: usize,
    len: usize,
    f: OrderKey,
) -> usize {
    use std::arch::x86_64::*;

    /// Per-64-bit-lane unsigned `a > b` and `a == b` from 32-bit ops.
    ///
    /// # Safety
    /// Requires SSE2; only called from [`find_ge_sse2`], which already
    /// carries that contract.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn cmp_u64(a: __m128i, b: __m128i) -> (__m128i, __m128i) {
        let bias32 = _mm_set1_epi32(i32::MIN);
        let ab = _mm_xor_si128(a, bias32);
        let bb = _mm_xor_si128(b, bias32);
        let gt32 = _mm_cmpgt_epi32(ab, bb);
        let eq32 = _mm_cmpeq_epi32(a, b);
        // Broadcast each lane's hi/lo 32-bit results across its 64 bits.
        let gt_hi = _mm_shuffle_epi32::<0b11_11_01_01>(gt32);
        let gt_lo = _mm_shuffle_epi32::<0b10_10_00_00>(gt32);
        let eq_hi = _mm_shuffle_epi32::<0b11_11_01_01>(eq32);
        let eq_lo = _mm_shuffle_epi32::<0b10_10_00_00>(eq32);
        let gt64 = _mm_or_si128(gt_hi, _mm_and_si128(eq_hi, gt_lo));
        let eq64 = _mm_and_si128(eq_hi, eq_lo);
        (gt64, eq64)
    }

    /// 2-bit `>=` mask of one 128-bit half.
    ///
    /// # Safety
    /// Requires SSE2, and `deg`/`tie` must each point at two readable
    /// `u64`s; [`find_ge_sse2`] passes in-bounds block pointers.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn half(deg: *const u64, tie: *const u64, fdv: __m128i, ftv: __m128i) -> u32 {
        let d = _mm_loadu_si128(deg as *const __m128i);
        let t = _mm_loadu_si128(tie as *const __m128i);
        let (d_gt, d_eq) = cmp_u64(d, fdv);
        let (t_lt, _) = cmp_u64(ftv, t);
        let ge = _mm_or_si128(d_gt, _mm_andnot_si128(t_lt, d_eq));
        _mm_movemask_pd(_mm_castsi128_pd(ge)) as u32
    }

    let fdv = _mm_set1_epi64x(f.degree as i64);
    let ftv = _mm_set1_epi64x(f.tie as i64);
    let mut base = from - (from % SIMD_GROUP_LANES);
    while base < len {
        let dp = deg[base..].as_ptr();
        let tp = tie[base..].as_ptr();
        let mask = half(dp, tp, fdv, ftv) | (half(dp.add(2), tp.add(2), fdv, ftv) << 2);
        let mask = clip_mask(mask, base, from, len);
        if mask != 0 {
            return base + mask.trailing_zeros() as usize;
        }
        base += SIMD_GROUP_LANES;
    }
    len
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive-ish differential check of every available backend
    /// against the SWAR reference, over adversarial lane values (zero,
    /// max, sign-bit boundaries, equal degrees with tie splits).
    #[test]
    fn backends_agree_on_hostile_lanes() {
        let interesting = [
            0u64,
            1,
            7,
            i64::MAX as u64,
            1u64 << 63,
            (1u64 << 63) + 1,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut deg = [0u64; KEY_BLOCK_LEN];
        let mut tie = [0u64; KEY_BLOCK_LEN];
        let mut backends = vec![SimdBackend::Swar];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("sse2") {
                backends.push(SimdBackend::Sse2);
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                backends.push(SimdBackend::Avx2);
            }
        }
        for seed in 0..64usize {
            for lane in 0..KEY_BLOCK_LEN {
                deg[lane] = interesting[(seed + lane) % interesting.len()];
                tie[lane] = interesting[(seed * 3 + lane * 7) % interesting.len()];
            }
            for &fd in &interesting {
                for &ft in &interesting {
                    let frontier = OrderKey {
                        degree: fd,
                        tie: ft,
                    };
                    for from in [0usize, 1, 3, 4, 15, 31] {
                        let mut want_compares = 0u64;
                        let want = find_ge_lane(
                            SimdBackend::Swar,
                            &deg,
                            &tie,
                            from,
                            KEY_BLOCK_LEN,
                            frontier,
                            &mut want_compares,
                        );
                        for &b in &backends {
                            let mut compares = 0u64;
                            let got = find_ge_lane(
                                b,
                                &deg,
                                &tie,
                                from,
                                KEY_BLOCK_LEN,
                                frontier,
                                &mut compares,
                            );
                            assert_eq!(
                                (got, compares),
                                (want, want_compares),
                                "backend {b} from {from} frontier ({fd},{ft}) seed {seed}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// `find_ge_lane` must agree with a scalar reference on every
    /// (from, len) window, and count one compare per group examined.
    #[test]
    fn find_ge_lane_matches_scalar_reference() {
        let mut deg = [0u64; KEY_BLOCK_LEN];
        let mut tie = [0u64; KEY_BLOCK_LEN];
        for lane in 0..KEY_BLOCK_LEN {
            deg[lane] = (lane as u64 / 3) * 2; // runs of equal degrees
            tie[lane] = (lane as u64 % 3) * 1000;
        }
        let backend = simd_backend();
        for fd in 0..24u64 {
            for ft in [0u64, 500, 1000, 2500] {
                let frontier = OrderKey {
                    degree: fd,
                    tie: ft,
                };
                for len in [1usize, 3, 4, 5, 31, 32] {
                    for from in 0..len {
                        let want = (from..len)
                            .find(|&i| (deg[i], tie[i]) >= (frontier.degree, frontier.tie))
                            .unwrap_or(len);
                        let mut compares = 0u64;
                        let got =
                            find_ge_lane(backend, &deg, &tie, from, len, frontier, &mut compares);
                        assert_eq!(got, want, "from {from} len {len} f ({fd},{ft})");
                        // One compare per probed group, never more than
                        // the groups the window spans.
                        let first_group = from / SIMD_GROUP_LANES;
                        let groups_total = len.div_ceil(SIMD_GROUP_LANES) - first_group;
                        assert!(compares >= 1 && compares as usize <= groups_total);
                        // SWAR must count identically (determinism).
                        let mut swar_compares = 0u64;
                        let swar_got = find_ge_lane(
                            SimdBackend::Swar,
                            &deg,
                            &tie,
                            from,
                            len,
                            frontier,
                            &mut swar_compares,
                        );
                        assert_eq!((got, compares), (swar_got, swar_compares));
                    }
                }
            }
        }
    }
}
