//! Shared machinery of the survey engines.
//!
//! Both engines reduce triangle identification to the same kernel: a
//! *merge-path intersection* (paper §4.3) of two lists sorted by the
//! degree order `<+` — the suffix of `Adjm+(p)` past `q` (the candidate
//! `r` vertices) against `Adjm+(q)`. Because [`OrderKey`] equality
//! implies vertex equality, the intersection walks both lists with two
//! pointers and never hashes or binary-searches.

use std::time::Instant;

use tripoll_graph::OrderKey;
use tripoll_ygm::stats::CommStats;
use tripoll_ygm::Comm;

/// Which TriPoll algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// §4.3: every wedge batch is pushed to `Rank(q)`.
    PushOnly,
    /// §4.4: a dry-run pass decides per (source rank, target vertex)
    /// whether to push the wedge batches or pull `Adjm+(q)` once.
    PushPull,
}

impl std::fmt::Display for EngineMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineMode::PushOnly => write!(f, "Push-Only"),
            EngineMode::PushPull => write!(f, "Push-Pull"),
        }
    }
}

/// How the engines decode received wedge batches.
///
/// For a fixed [`BatchLayout`] both paths read the same bytes (senders
/// are identical) and emit identical surveys; they differ only in
/// receive-side cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecodePath {
    /// Cursor-decode candidate batches **in place** from the receive
    /// buffer: zero heap allocation per batch, candidate metadata
    /// materialized only on triangle matches. The production default.
    #[default]
    Cursor,
    /// Materialize an owned candidate batch before intersecting — the
    /// materializing reference path, kept for differential testing of
    /// the cursor decoders.
    Owned,
}

/// How wedge-candidate batches are laid out on the wire.
///
/// The layout is a collective contract exactly like [`DecodePath`]:
/// senders and the registered handlers must agree, so every rank runs a
/// survey with the same value. Layouts differ in bytes (so send-side
/// traffic fingerprints are only comparable within one layout) but the
/// surveys they produce are identical — differentially tested in
/// `tests/decode_paths.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchLayout {
    /// Structure-of-arrays: three packed columns (vertices, delta-coded
    /// degrees, metadata), so the merge-path walks only the key columns
    /// and the metadata column is decoded per element on triangle
    /// matches alone. Fewer bytes per candidate and the prerequisite
    /// for a SIMD/blocked merge-path. The production default.
    #[default]
    Columnar,
    /// Array-of-structures: candidates interleaved as
    /// `(vertex, degree, meta)` tuples — the original wire format,
    /// retained for differential testing (mirroring
    /// [`DecodePath::Owned`] on the decode axis).
    Interleaved,
}

impl std::fmt::Display for BatchLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchLayout::Columnar => write!(f, "Columnar"),
            BatchLayout::Interleaved => write!(f, "Interleaved"),
        }
    }
}

/// Per-survey engine configuration: the wire layout of candidate
/// batches and the receive decode path. Both axes are collective
/// contracts (same value on every rank). The default —
/// [`BatchLayout::Columnar`] decoded by [`DecodePath::Cursor`] — is the
/// production hot path; the other three combinations exist for
/// differential testing, and every combination yields an identical
/// survey.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SurveyConfig {
    /// Wire layout of wedge-candidate batches.
    pub layout: BatchLayout,
    /// Receive-side decode strategy.
    pub decode: DecodePath,
}

impl SurveyConfig {
    /// The production configuration (columnar batches, cursor decode).
    pub fn new() -> Self {
        SurveyConfig::default()
    }

    /// This configuration with the given batch layout.
    pub fn with_layout(mut self, layout: BatchLayout) -> Self {
        self.layout = layout;
        self
    }

    /// This configuration with the given decode path.
    pub fn with_decode(mut self, decode: DecodePath) -> Self {
        self.decode = decode;
        self
    }
}

/// A bare decode path selects that path under the default (columnar)
/// layout.
impl From<DecodePath> for SurveyConfig {
    fn from(decode: DecodePath) -> Self {
        SurveyConfig {
            decode,
            ..SurveyConfig::default()
        }
    }
}

/// A bare layout selects that layout under the default (cursor) decode.
impl From<BatchLayout> for SurveyConfig {
    fn from(layout: BatchLayout) -> Self {
        SurveyConfig {
            layout,
            ..SurveyConfig::default()
        }
    }
}

/// Timing and traffic of one engine phase, local to this rank.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Phase name (`"dry-run"`, `"push"`, `"pull"`).
    pub name: &'static str,
    /// Wall-clock seconds this rank spent in the phase (barrier
    /// inclusive, so ranks agree up to scheduling noise).
    pub seconds: f64,
    /// Communication-counter delta of this rank over the phase.
    pub stats: CommStats,
}

/// Per-rank outcome of a survey run.
#[derive(Debug, Clone)]
pub struct SurveyReport {
    /// Algorithm that produced this report.
    pub mode: EngineMode,
    /// Phase breakdown in execution order.
    pub phases: Vec<PhaseReport>,
    /// Total wall-clock seconds (sum of phases).
    pub total_seconds: f64,
    /// Adjacency lists this rank pulled (Table 3's "pulls per rank");
    /// zero under Push-Only.
    pub pulled_vertices: u64,
    /// Pull requests this rank granted (adjacency lists it served).
    pub pull_grants: u64,
}

impl SurveyReport {
    /// Communication totals over all phases (this rank).
    pub fn local_stats(&self) -> CommStats {
        CommStats::sum(self.phases.iter().map(|p| &p.stats))
    }

    /// Seconds spent in the named phase (0 if absent).
    pub fn phase_seconds(&self, name: &str) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.name == name)
            .map(|p| p.seconds)
            .sum()
    }
}

/// Tracks a phase: wraps timing and counter deltas around a closure.
pub(crate) struct PhaseTimer<'a> {
    comm: &'a Comm,
    start_stats: CommStats,
    start_time: Instant,
    name: &'static str,
}

impl<'a> PhaseTimer<'a> {
    pub(crate) fn begin(comm: &'a Comm, name: &'static str) -> Self {
        PhaseTimer {
            comm,
            start_stats: comm.stats(),
            start_time: Instant::now(),
            name,
        }
    }

    /// Ends the phase (caller must have completed its barrier).
    pub(crate) fn end(self) -> PhaseReport {
        PhaseReport {
            name: self.name,
            seconds: self.start_time.elapsed().as_secs_f64(),
            stats: self.comm.stats().delta(&self.start_stats),
        }
    }
}

/// Merge-path intersection of two `<+`-sorted lists.
///
/// Invokes `on_match(&l, &r)` for every pair with equal [`OrderKey`].
/// Both lists must be strictly increasing in key (adjacency lists and
/// their suffixes are, by construction).
#[inline]
pub fn merge_path<L, R>(
    left: &[L],
    right: &[R],
    key_l: impl Fn(&L) -> OrderKey,
    key_r: impl Fn(&R) -> OrderKey,
    mut on_match: impl FnMut(&L, &R),
) {
    let (mut a, mut b) = (0, 0);
    while a < left.len() && b < right.len() {
        match key_l(&left[a]).cmp(&key_r(&right[b])) {
            std::cmp::Ordering::Less => a += 1,
            std::cmp::Ordering::Greater => b += 1,
            std::cmp::Ordering::Equal => {
                on_match(&left[a], &right[b]);
                a += 1;
                b += 1;
            }
        }
    }
}

/// Streaming merge-path: intersects a cursor-produced left sequence
/// against a `<+`-sorted slice without materializing the left side.
///
/// `next` yields left elements in strictly increasing key order (a
/// [`tripoll_ygm::wire::SeqCursor`] or [`tripoll_ygm::wire::SeqWalk`]
/// over a sorted candidate list); `on_match` runs for every key-equal
/// pair and may fail (e.g. a lazy metadata decode). Returns early once
/// `right` is exhausted — when the left side is a [`SeqCursor`] sharing
/// a record-framing reader, the caller must then `skip_rest` so the
/// record boundary stays intact.
///
/// [`SeqCursor`]: tripoll_ygm::wire::SeqCursor
#[inline]
pub fn merge_path_stream<L, R, E>(
    mut next: impl FnMut() -> Option<Result<L, E>>,
    right: &[R],
    key_l: impl Fn(&L) -> OrderKey,
    key_r: impl Fn(&R) -> OrderKey,
    mut on_match: impl FnMut(L, &R) -> Result<(), E>,
) -> Result<(), E> {
    let mut b = 0;
    while b < right.len() {
        let Some(item) = next() else { break };
        let l = item?;
        let kl = key_l(&l);
        while b < right.len() && key_r(&right[b]) < kl {
            b += 1;
        }
        if b < right.len() && key_r(&right[b]) == kl {
            on_match(l, &right[b])?;
            b += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(ids: &[u64]) -> Vec<(u64, OrderKey)> {
        // Distinct degrees so order follows the given sequence.
        ids.iter()
            .enumerate()
            .map(|(i, &v)| (v, OrderKey::new(v, i as u64)))
            .collect()
    }

    #[test]
    fn merge_path_intersects() {
        // left = elements 0..6, right = evens; sorted by same key space.
        let all = keys(&[10, 11, 12, 13, 14, 15]);
        let left: Vec<_> = all.clone();
        let right: Vec<_> = all.iter().filter(|(v, _)| v % 2 == 0).cloned().collect();
        let mut matches = Vec::new();
        merge_path(
            &left,
            &right,
            |l| l.1,
            |r| r.1,
            |l, r| {
                assert_eq!(l.0, r.0);
                matches.push(l.0);
            },
        );
        assert_eq!(matches, vec![10, 12, 14]);
    }

    #[test]
    fn merge_path_empty_sides() {
        let some = keys(&[1, 2, 3]);
        let empty: Vec<(u64, OrderKey)> = Vec::new();
        let mut called = false;
        merge_path(&some, &empty, |l| l.1, |r| r.1, |_, _| called = true);
        merge_path(&empty, &some, |l| l.1, |r| r.1, |_, _| called = true);
        assert!(!called);
    }

    #[test]
    fn merge_path_disjoint() {
        let left = keys(&[1, 2]);
        let right: Vec<(u64, OrderKey)> =
            vec![(9, OrderKey::new(9, 100)), (8, OrderKey::new(8, 101))];
        let mut called = false;
        merge_path(&left, &right, |l| l.1, |r| r.1, |_, _| called = true);
        assert!(!called);
    }

    #[test]
    fn merge_path_stream_matches_merge_path() {
        // Same key spaces as merge_path_intersects, fed as a stream.
        let all = keys(&[10, 11, 12, 13, 14, 15]);
        let right: Vec<_> = all.iter().filter(|(v, _)| v % 2 == 0).cloned().collect();
        let mut expected = Vec::new();
        merge_path(&all, &right, |l| l.1, |r| r.1, |l, _| expected.push(l.0));
        let mut it = all.iter();
        let mut streamed = Vec::new();
        merge_path_stream(
            || it.next().map(|l| Ok::<_, ()>(*l)),
            &right,
            |l| l.1,
            |r| r.1,
            |l, r| {
                assert_eq!(l.0, r.0);
                streamed.push(l.0);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(streamed, expected);
        assert_eq!(streamed, vec![10, 12, 14]);
    }

    #[test]
    fn merge_path_stream_propagates_errors() {
        let all = keys(&[1, 2, 3]);
        let mut it = all.iter();
        let err = merge_path_stream(
            || it.next().map(|l| Ok::<_, &str>(*l)),
            &all,
            |l| l.1,
            |r| r.1,
            |_, _| Err("match failed"),
        );
        assert_eq!(err, Err("match failed"));
    }

    #[test]
    fn report_aggregation() {
        let mk = |name, secs, bytes| PhaseReport {
            name,
            seconds: secs,
            stats: CommStats {
                bytes_remote: bytes,
                ..Default::default()
            },
        };
        let report = SurveyReport {
            mode: EngineMode::PushPull,
            phases: vec![
                mk("dry-run", 1.0, 10),
                mk("push", 2.0, 100),
                mk("pull", 0.5, 30),
            ],
            total_seconds: 3.5,
            pulled_vertices: 4,
            pull_grants: 2,
        };
        assert_eq!(report.local_stats().bytes_remote, 140);
        assert!((report.phase_seconds("push") - 2.0).abs() < 1e-12);
        assert_eq!(report.phase_seconds("nope"), 0.0);
    }

    #[test]
    fn mode_display() {
        assert_eq!(EngineMode::PushOnly.to_string(), "Push-Only");
        assert_eq!(EngineMode::PushPull.to_string(), "Push-Pull");
        assert_eq!(BatchLayout::Columnar.to_string(), "Columnar");
        assert_eq!(BatchLayout::Interleaved.to_string(), "Interleaved");
    }

    #[test]
    fn survey_config_defaults_and_conversions() {
        // Production default: columnar batches decoded in place.
        let d = SurveyConfig::default();
        assert_eq!(d.layout, BatchLayout::Columnar);
        assert_eq!(d.decode, DecodePath::Cursor);
        assert_eq!(SurveyConfig::new(), d);
        // A bare axis value fixes that axis, leaving the other default.
        assert_eq!(
            SurveyConfig::from(DecodePath::Owned),
            d.with_decode(DecodePath::Owned)
        );
        assert_eq!(
            SurveyConfig::from(BatchLayout::Interleaved),
            d.with_layout(BatchLayout::Interleaved)
        );
        assert_eq!(
            SurveyConfig::default()
                .with_layout(BatchLayout::Interleaved)
                .with_decode(DecodePath::Owned),
            SurveyConfig {
                layout: BatchLayout::Interleaved,
                decode: DecodePath::Owned,
            }
        );
    }
}
