//! Shared machinery of the survey engines.
//!
//! Both engines reduce triangle identification to the same kernel: an
//! *intersection* (paper §4.3) of two lists sorted by the degree order
//! `<+` — the suffix of `Adjm+(p)` past `q` (the candidate `r`
//! vertices) against `Adjm+(q)`. Because [`OrderKey`] equality implies
//! vertex equality, the intersection compares keys and never hashes.
//!
//! # Intersection kernels
//!
//! *How* the two sorted sides are compared is the third engine
//! dimension, next to [`BatchLayout`] and [`DecodePath`]: the
//! [`IntersectKernel`] selected by [`SurveyConfig::kernel`]. All
//! kernels emit the **identical match sequence** (same pairs, same
//! callback order — differentially tested in `tests/kernels.rs`); they
//! differ only in compares and decode cost per candidate:
//!
//! * [`IntersectKernel::MergeScalar`] — the classic element-wise
//!   two-pointer merge ([`merge_path`] / [`merge_path_stream`]): one
//!   key compare per pointer step. The reference kernel and the
//!   differential oracle.
//! * [`IntersectKernel::Gallop`] — exponential (galloping) search:
//!   each key of the smaller side seeks its position in the larger
//!   side by doubling probes plus a binary search, `O(s·log(L/s))`
//!   compares instead of `O(L)`. Wins exactly when the sides are
//!   skewed (`|small|·K < |large|` — a low-degree candidate batch
//!   against a hub adjacency), loses slightly on balanced sides.
//! * [`IntersectKernel::BlockedMerge`] — decodes fixed-size key
//!   blocks ([`tripoll_ygm::wire::KeyBlock`], [`KEY_BLOCK_LEN`] keys)
//!   from the columnar key columns into stack arrays and intersects
//!   block-by-block: one *wide* compare (the block's last key against
//!   the merge frontier) skips a whole block of misses, and keys that
//!   do engage the merge are scanned with a tight advance loop over
//!   the cache-resident stack run. Separating the varint-decode loop
//!   from the compare loop is what the columnar wire layout (PR 3)
//!   exists to enable (Pashanasangi & Seshadhri, arXiv:2106.02762,
//!   make this locality argument).
//! * [`IntersectKernel::Simd`] — the blocked merge with its in-block
//!   scan vectorized: the decoded key lanes are compared against the
//!   merge frontier in packed groups of
//!   [`crate::simd::SIMD_GROUP_LANES`] (AVX2 or SSE2
//!   `core::arch::x86_64` intrinsics behind runtime detection, a
//!   portable branchless SWAR pass everywhere else — see
//!   [`crate::simd`]), so a frontier that has passed many left-side
//!   candidates skips them a group at a time instead of one compare
//!   each. On the columnar path the key blocks themselves are decoded
//!   by the SWAR varint cracker
//!   ([`tripoll_ygm::wire::WireReader::take_varints`]).
//! * [`IntersectKernel::Auto`] (production default) — per-batch
//!   size-ratio heuristic, shape-aware. Over random-access slices
//!   ([`IntersectKernel::select`]): gallop when either side is at
//!   least [`GALLOP_RATIO`]× the other (`min·K < max`), the scalar
//!   blocked merge otherwise. Over a streaming left side that must be
//!   decoded sequentially regardless
//!   ([`IntersectKernel::select_streaming`]): gallop only when the
//!   *right* side is the much larger one (`left·K < right`); a much
//!   larger left resolves to the blocked merge, whose bulk decode is
//!   the only win available when decode cost dominates. (The SIMD
//!   kernel's packed probes measure consistently *behind* the scalar
//!   blocked merge at the non-gallop shapes — skip runs there are
//!   about one lane, so every probe group pays setup for no skip —
//!   hence `Auto` no longer resolves to it; `Simd` remains an
//!   explicit choice.) Both lengths are known before any element is
//!   decoded (the batch count rides in the frame header, the local
//!   adjacency length is in storage), so selection is free and
//!   deterministic.
//!
//! Every kernel tallies deterministic counters ([`KernelStats`]:
//! compares, candidates, matches, per-kernel dispatch counts) into a
//! thread-local, read via [`kernel_stats`] / [`kernel_stats_take`] —
//! the bench harness gates compares-per-candidate on them and the
//! differential suite cross-checks match counts against the scalar
//! oracle.

use std::cell::Cell;
use std::time::Instant;

use tripoll_graph::OrderKey;
use tripoll_ygm::stats::CommStats;
use tripoll_ygm::wire::{ColKey, ColKeys, KeyBlock, WireError, KEY_BLOCK_LEN};
use tripoll_ygm::Comm;

/// Which TriPoll algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// §4.3: every wedge batch is pushed to `Rank(q)`.
    PushOnly,
    /// §4.4: a dry-run pass decides per (source rank, target vertex)
    /// whether to push the wedge batches or pull `Adjm+(q)` once.
    PushPull,
}

impl std::fmt::Display for EngineMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineMode::PushOnly => write!(f, "Push-Only"),
            EngineMode::PushPull => write!(f, "Push-Pull"),
        }
    }
}

/// How the engines decode received wedge batches.
///
/// For a fixed [`BatchLayout`] both paths read the same bytes (senders
/// are identical) and emit identical surveys; they differ only in
/// receive-side cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecodePath {
    /// Cursor-decode candidate batches **in place** from the receive
    /// buffer: zero heap allocation per batch, candidate metadata
    /// materialized only on triangle matches. The production default.
    #[default]
    Cursor,
    /// Materialize an owned candidate batch before intersecting — the
    /// materializing reference path, kept for differential testing of
    /// the cursor decoders.
    Owned,
}

/// How wedge-candidate batches are laid out on the wire.
///
/// The layout is a collective contract exactly like [`DecodePath`]:
/// senders and the registered handlers must agree, so every rank runs a
/// survey with the same value. Layouts differ in bytes (so send-side
/// traffic fingerprints are only comparable within one layout) but the
/// surveys they produce are identical — differentially tested in
/// `tests/decode_paths.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchLayout {
    /// Structure-of-arrays: three packed columns (vertices, delta-coded
    /// degrees, metadata), so the merge-path walks only the key columns
    /// and the metadata column is decoded per element on triangle
    /// matches alone. Fewer bytes per candidate and the prerequisite
    /// for a SIMD/blocked merge-path. The production default.
    #[default]
    Columnar,
    /// Array-of-structures: candidates interleaved as
    /// `(vertex, degree, meta)` tuples — the original wire format,
    /// retained for differential testing (mirroring
    /// [`DecodePath::Owned`] on the decode axis).
    Interleaved,
}

impl std::fmt::Display for BatchLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchLayout::Columnar => write!(f, "Columnar"),
            BatchLayout::Interleaved => write!(f, "Interleaved"),
        }
    }
}

/// Which intersection kernel compares the two sorted sides of every
/// wedge check (see the module docs for the full taxonomy). Purely a
/// local compute choice: unlike the other two [`SurveyConfig`] axes it
/// moves no bytes, so any rank could pick independently — it is still
/// carried in [`SurveyConfig`] so a survey names one reproducible
/// configuration.
///
/// All kernels emit the identical match sequence; [`Auto`] resolves
/// per intersection from the side lengths alone:
///
/// ```
/// use tripoll_core::{IntersectKernel, GALLOP_RATIO};
///
/// let auto = IntersectKernel::Auto;
/// // Balanced random-access sides: the scalar blocked merge.
/// assert_eq!(auto.select(1000, 1000), IntersectKernel::BlockedMerge);
/// // Heavy skew in either direction: gallop into the larger side.
/// assert_eq!(auto.select(10, 10 * GALLOP_RATIO + 1), IntersectKernel::Gallop);
/// assert_eq!(auto.select(10 * GALLOP_RATIO + 1, 10), IntersectKernel::Gallop);
/// // A streaming (decode-bound) left side only gallops into a much
/// // larger right; the reverse skew stays on the blocked merge.
/// assert_eq!(auto.select_streaming(1000, 10), IntersectKernel::BlockedMerge);
/// // Explicit kernels always resolve to themselves.
/// assert_eq!(IntersectKernel::Gallop.select(5, 5), IntersectKernel::Gallop);
/// ```
///
/// [`Auto`]: IntersectKernel::Auto
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntersectKernel {
    /// Per-batch size-ratio heuristic: [`IntersectKernel::Gallop`] at
    /// heavy skew, else [`IntersectKernel::BlockedMerge`] — see
    /// [`IntersectKernel::select`] / [`select_streaming`] for the
    /// exact (and deliberately asymmetric) contracts. The production
    /// default.
    ///
    /// [`select_streaming`]: IntersectKernel::select_streaming
    #[default]
    Auto,
    /// Element-wise two-pointer merge — the reference kernel and the
    /// differential oracle.
    MergeScalar,
    /// Exponential-search seek through the larger side.
    Gallop,
    /// Fixed-size key blocks decoded into stack arrays, intersected
    /// with branch-light wide compares — the scalar predecessor of
    /// [`IntersectKernel::Simd`], retained for differential testing
    /// and as the explicit no-intrinsics choice.
    BlockedMerge,
    /// The blocked merge with packed lane compares: key blocks are
    /// bulk-decoded (SWAR varint cracker) and scanned in
    /// [`crate::simd::SIMD_GROUP_LANES`]-wide groups with runtime-
    /// detected AVX2/SSE2 intrinsics or the portable SWAR fallback
    /// ([`crate::simd`]). Match sets and compare counters are
    /// backend-independent.
    Simd,
}

/// Skew ratio at which [`IntersectKernel::Auto`] switches to
/// galloping.
///
/// The contract is **shape-dependent** — the two dispatch functions
/// apply the ratio differently, and the asymmetry is deliberate, not
/// drift (it used to be documented as the symmetric rule only; the
/// dispatch-count tests below pin both contracts):
///
/// * **Random-access sides** ([`IntersectKernel::select`]):
///   *symmetric* — gallop when `min(|l|,|r|)·K < max(|l|,|r|)`,
///   because the gallop seeks into whichever side is larger.
/// * **Streaming left sides** ([`IntersectKernel::select_streaming`]):
///   *asymmetric* — gallop only when `|left|·K < |right|`. A streaming
///   left side (a wire cursor) must be decoded sequentially regardless
///   of kernel, so a much larger *left* gains nothing from seeking and
///   resolves to the blocked merge, whose bulk decode is the only
///   lever when decode cost dominates.
///
/// At ratio `K` the merge walks `max ≥ K·min` keys while galloping
/// costs about `min·(2·log₂(max/min)+2)` compares; `K = 8` is where
/// the gallop's per-seek overhead (probe + binary search ≈ 2·log₂ 8 +
/// 2 = 8 compares) breaks even with the walk it skips.
pub const GALLOP_RATIO: usize = 8;

impl IntersectKernel {
    /// Resolves [`IntersectKernel::Auto`] for one intersection over
    /// two *random-access* sides (slices); explicit kernels return
    /// themselves. **Symmetric** in the side lengths: a skew past
    /// [`GALLOP_RATIO`] in either direction picks the gallop (it can
    /// seek into whichever side is larger); anything milder resolves
    /// to [`IntersectKernel::BlockedMerge`], which measures ahead of
    /// the packed-lane [`IntersectKernel::Simd`] variant at balanced
    /// shapes (skip runs there are ~1 lane, so probe-group setup never
    /// pays for itself). Deterministic, and both lengths are known up
    /// front.
    #[inline]
    pub fn select(self, left_len: usize, right_len: usize) -> IntersectKernel {
        match self {
            IntersectKernel::Auto => {
                let (small, large) = if left_len <= right_len {
                    (left_len, right_len)
                } else {
                    (right_len, left_len)
                };
                if small.saturating_mul(GALLOP_RATIO) < large {
                    IntersectKernel::Gallop
                } else {
                    IntersectKernel::BlockedMerge
                }
            }
            k => k,
        }
    }

    /// Resolves [`IntersectKernel::Auto`] for a *streaming* left side
    /// (a wire cursor that must be decoded sequentially regardless of
    /// kernel). **Asymmetric**, unlike [`IntersectKernel::select`]:
    /// galloping only pays when it seeks into a much larger **right**
    /// side (`left·`[`GALLOP_RATIO`]` < right`), so a much larger
    /// *left* resolves to [`IntersectKernel::BlockedMerge`] instead —
    /// its bulk decode is the only lever when the decode itself
    /// dominates. See [`GALLOP_RATIO`] for the full two-shape
    /// contract.
    #[inline]
    pub fn select_streaming(self, left_len: usize, right_len: usize) -> IntersectKernel {
        match self {
            IntersectKernel::Auto => {
                if left_len.saturating_mul(GALLOP_RATIO) < right_len {
                    IntersectKernel::Gallop
                } else {
                    IntersectKernel::BlockedMerge
                }
            }
            k => k,
        }
    }
}

impl std::fmt::Display for IntersectKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntersectKernel::Auto => write!(f, "Auto"),
            IntersectKernel::MergeScalar => write!(f, "MergeScalar"),
            IntersectKernel::Gallop => write!(f, "Gallop"),
            IntersectKernel::BlockedMerge => write!(f, "BlockedMerge"),
            IntersectKernel::Simd => write!(f, "Simd"),
        }
    }
}

/// Intra-rank merge parallelism: how many threads a rank may use to
/// intersect received wedge batches (the engine's merge path). This is
/// a *local compute* axis like [`IntersectKernel`]: every setting
/// yields bit-identical survey counts, metadata checksums, and merged
/// [`KernelStats`], because parallel work items are reduced in batch
/// index order, not completion order (see `docs/ARCHITECTURE.md`,
/// threading model).
///
/// The worker threads come from the process-wide persistent
/// work-stealing pool (`rayon::pool::global()`); per-survey settings
/// only decide whether a rank *routes* merge work through it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Resolve the thread count from the `TRIPOLL_THREADS` environment
    /// variable at survey time (read once per process). Unset, empty,
    /// unparsable, `0`, or `1` all mean serial. The production default:
    /// CI forces the parallel path through every existing suite by
    /// exporting `TRIPOLL_THREADS=4`.
    #[default]
    Env,
    /// Always the serial merge path, regardless of environment.
    Serial,
    /// Use up to this many threads (the calling rank participates, so
    /// `Threads(4)` is the rank plus up to three pool workers).
    /// `Threads(0)` and `Threads(1)` are the serial path.
    Threads(u32),
}

impl Parallelism {
    /// The effective thread count: `1` means the serial path, `n > 1`
    /// routes merge batches through the shared pool with up to `n`
    /// lanes (capped by pool size at dispatch).
    pub fn resolved(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => (n as usize).max(1),
            Parallelism::Env => {
                static ENV: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
                *ENV.get_or_init(|| {
                    std::env::var("TRIPOLL_THREADS")
                        .ok()
                        .and_then(|v| v.trim().parse::<usize>().ok())
                        .unwrap_or(1)
                        .max(1)
                })
            }
        }
    }

    /// Whether this setting resolves to the parallel merge path.
    pub fn is_parallel(self) -> bool {
        self.resolved() > 1
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Parallelism::Env => write!(f, "Env({})", self.resolved()),
            Parallelism::Serial => write!(f, "Serial"),
            Parallelism::Threads(n) => write!(f, "Threads({n})"),
        }
    }
}

/// Per-survey engine configuration: the wire layout of candidate
/// batches, the receive decode path, the intersection kernel, and the
/// intra-rank merge parallelism. The first two axes are collective
/// contracts (same value on every rank); the kernel and thread count
/// are local compute choices carried alongside them for
/// reproducibility. The default — [`BatchLayout::Columnar`] decoded by
/// [`DecodePath::Cursor`], intersected by [`IntersectKernel::Auto`],
/// threaded per [`Parallelism::Env`] — is the production hot path;
/// every other combination yields an identical survey and exists for
/// differential testing.
///
/// Build one with the chainable `with_*` setters, or pass a bare axis
/// value anywhere `impl Into<SurveyConfig>` is accepted (the
/// `survey_*_with` entry points):
///
/// ```
/// use tripoll_core::{BatchLayout, DecodePath, IntersectKernel, SurveyConfig};
///
/// // The production configuration.
/// let prod = SurveyConfig::new();
/// assert_eq!(prod.layout, BatchLayout::Columnar);
/// assert_eq!(prod.decode, DecodePath::Cursor);
/// assert_eq!(prod.kernel, IntersectKernel::Auto);
///
/// // Fix one axis, keep the rest default.
/// let gallop_only = SurveyConfig::new().with_kernel(IntersectKernel::Gallop);
/// assert_eq!(gallop_only, SurveyConfig::from(IntersectKernel::Gallop));
///
/// // A full differential-test cell.
/// let cell = SurveyConfig::new()
///     .with_layout(BatchLayout::Interleaved)
///     .with_decode(DecodePath::Owned)
///     .with_kernel(IntersectKernel::MergeScalar);
/// assert_eq!(cell.layout, BatchLayout::Interleaved);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SurveyConfig {
    /// Wire layout of wedge-candidate batches.
    pub layout: BatchLayout,
    /// Receive-side decode strategy.
    pub decode: DecodePath,
    /// Intersection kernel for every wedge check.
    pub kernel: IntersectKernel,
    /// Intra-rank merge parallelism (serial at `threads.resolved() <= 1`).
    pub threads: Parallelism,
}

impl SurveyConfig {
    /// The production configuration (columnar batches, cursor decode,
    /// auto-selected kernel, environment-resolved parallelism).
    pub fn new() -> Self {
        SurveyConfig::default()
    }

    /// This configuration with the given batch layout.
    pub fn with_layout(mut self, layout: BatchLayout) -> Self {
        self.layout = layout;
        self
    }

    /// This configuration with the given decode path.
    pub fn with_decode(mut self, decode: DecodePath) -> Self {
        self.decode = decode;
        self
    }

    /// This configuration with the given intersection kernel.
    pub fn with_kernel(mut self, kernel: IntersectKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// This configuration with the given merge parallelism.
    pub fn with_threads(mut self, threads: Parallelism) -> Self {
        self.threads = threads;
        self
    }

    /// Resolves every environment-dependent axis into an explicit
    /// value: [`Parallelism::Env`] becomes
    /// `Parallelism::Threads(resolved)`. A resident service pins its
    /// default config once at startup, so later queries never consult
    /// (or race on) the process environment — each query carries fully
    /// explicit settings.
    pub fn pinned(mut self) -> Self {
        if let Parallelism::Env = self.threads {
            self.threads = Parallelism::Threads(self.threads.resolved() as u32);
        }
        self
    }
}

/// A bare decode path selects that path under the default (columnar)
/// layout.
impl From<DecodePath> for SurveyConfig {
    fn from(decode: DecodePath) -> Self {
        SurveyConfig {
            decode,
            ..SurveyConfig::default()
        }
    }
}

/// A bare layout selects that layout under the default (cursor) decode.
impl From<BatchLayout> for SurveyConfig {
    fn from(layout: BatchLayout) -> Self {
        SurveyConfig {
            layout,
            ..SurveyConfig::default()
        }
    }
}

/// A bare kernel selects that kernel under the default layout/decode.
impl From<IntersectKernel> for SurveyConfig {
    fn from(kernel: IntersectKernel) -> Self {
        SurveyConfig {
            kernel,
            ..SurveyConfig::default()
        }
    }
}

/// A bare parallelism setting selects that thread count under the
/// default layout/decode/kernel.
impl From<Parallelism> for SurveyConfig {
    fn from(threads: Parallelism) -> Self {
        SurveyConfig {
            threads,
            ..SurveyConfig::default()
        }
    }
}

/// Timing and traffic of one engine phase, local to this rank.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Phase name (`"dry-run"`, `"push"`, `"pull"`).
    pub name: &'static str,
    /// Wall-clock seconds this rank spent in the phase (barrier
    /// inclusive, so ranks agree up to scheduling noise).
    pub seconds: f64,
    /// Communication-counter delta of this rank over the phase.
    pub stats: CommStats,
}

/// Per-rank outcome of a survey run.
#[derive(Debug, Clone)]
pub struct SurveyReport {
    /// Algorithm that produced this report.
    pub mode: EngineMode,
    /// Phase breakdown in execution order.
    pub phases: Vec<PhaseReport>,
    /// Total wall-clock seconds (sum of phases).
    pub total_seconds: f64,
    /// Adjacency lists this rank pulled (Table 3's "pulls per rank");
    /// zero under Push-Only.
    pub pulled_vertices: u64,
    /// Pull requests this rank granted (adjacency lists it served).
    pub pull_grants: u64,
}

impl SurveyReport {
    /// Communication totals over all phases (this rank).
    pub fn local_stats(&self) -> CommStats {
        CommStats::sum(self.phases.iter().map(|p| &p.stats))
    }

    /// Seconds spent in the named phase (0 if absent).
    pub fn phase_seconds(&self, name: &str) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.name == name)
            .map(|p| p.seconds)
            .sum()
    }
}

/// Tracks a phase: wraps timing and counter deltas around a closure.
pub(crate) struct PhaseTimer<'a> {
    comm: &'a Comm,
    start_stats: CommStats,
    start_time: Instant,
    name: &'static str,
}

impl<'a> PhaseTimer<'a> {
    pub(crate) fn begin(comm: &'a Comm, name: &'static str) -> Self {
        PhaseTimer {
            comm,
            start_stats: comm.stats(),
            start_time: Instant::now(),
            name,
        }
    }

    /// Ends the phase (caller must have completed its barrier).
    pub(crate) fn end(self) -> PhaseReport {
        PhaseReport {
            name: self.name,
            seconds: self.start_time.elapsed().as_secs_f64(),
            stats: self.comm.stats().delta(&self.start_stats),
        }
    }
}

/// Merge-path intersection of two `<+`-sorted lists.
///
/// Invokes `on_match(&l, &r)` for every pair with equal [`OrderKey`].
/// Both lists must be strictly increasing in key (adjacency lists and
/// their suffixes are, by construction).
#[inline]
pub fn merge_path<L, R>(
    left: &[L],
    right: &[R],
    key_l: impl Fn(&L) -> OrderKey,
    key_r: impl Fn(&R) -> OrderKey,
    mut on_match: impl FnMut(&L, &R),
) {
    let (mut a, mut b) = (0, 0);
    while a < left.len() && b < right.len() {
        match key_l(&left[a]).cmp(&key_r(&right[b])) {
            std::cmp::Ordering::Less => a += 1,
            std::cmp::Ordering::Greater => b += 1,
            std::cmp::Ordering::Equal => {
                on_match(&left[a], &right[b]);
                a += 1;
                b += 1;
            }
        }
    }
}

/// Streaming merge-path: intersects a cursor-produced left sequence
/// against a `<+`-sorted slice without materializing the left side.
///
/// `next` yields left elements in strictly increasing key order (a
/// [`tripoll_ygm::wire::SeqCursor`] or [`tripoll_ygm::wire::SeqWalk`]
/// over a sorted candidate list); `on_match` runs for every key-equal
/// pair and may fail (e.g. a lazy metadata decode). Returns early once
/// `right` is exhausted — when the left side is a [`SeqCursor`] sharing
/// a record-framing reader, the caller must then `skip_rest` so the
/// record boundary stays intact.
///
/// [`SeqCursor`]: tripoll_ygm::wire::SeqCursor
#[inline]
pub fn merge_path_stream<L, R, E>(
    mut next: impl FnMut() -> Option<Result<L, E>>,
    right: &[R],
    key_l: impl Fn(&L) -> OrderKey,
    key_r: impl Fn(&R) -> OrderKey,
    mut on_match: impl FnMut(L, &R) -> Result<(), E>,
) -> Result<(), E> {
    let mut b = 0;
    while b < right.len() {
        let Some(item) = next() else { break };
        let l = item?;
        let kl = key_l(&l);
        while b < right.len() && key_r(&right[b]) < kl {
            b += 1;
        }
        if b < right.len() && key_r(&right[b]) == kl {
            on_match(l, &right[b])?;
            b += 1;
        }
    }
    Ok(())
}

// --------------------------------------------------------------------
// Intersection-kernel layer — see the module docs for the taxonomy.
// --------------------------------------------------------------------

/// Deterministic tallies of the kernel layer, accumulated per thread
/// (one simulated rank = one thread). Counter semantics:
///
/// * `compares` — key comparisons performed (three-way compares,
///   gallop probes and binary-search steps, block-skip checks and the
///   equality check after a gallop each count one);
/// * `candidates` — left-side elements decoded or visited (blocked
///   kernels decode whole blocks, so this may exceed what the scalar
///   kernel touches before an early exit);
/// * `matches` — key-equal pairs emitted, identical across kernels by
///   the differential contract;
/// * `*_runs` — intersections dispatched per resolved kernel (what
///   [`IntersectKernel::Auto`] actually picked).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelStats {
    /// Key comparisons performed.
    pub compares: u64,
    /// Left-side elements decoded or visited.
    pub candidates: u64,
    /// Key-equal pairs emitted.
    pub matches: u64,
    /// Intersections run by the scalar merge kernel.
    pub scalar_runs: u64,
    /// Intersections run by the galloping kernel.
    pub gallop_runs: u64,
    /// Intersections run by the blocked-merge kernel.
    pub blocked_runs: u64,
    /// Intersections run by the SIMD block-merge kernel. Its counters
    /// are backend-independent: a wide group probe counts one compare
    /// whether AVX2, SSE2 or the SWAR fallback executed it.
    pub simd_runs: u64,
}

impl KernelStats {
    const ZERO: KernelStats = KernelStats {
        compares: 0,
        candidates: 0,
        matches: 0,
        scalar_runs: 0,
        gallop_runs: 0,
        blocked_runs: 0,
        simd_runs: 0,
    };
}

impl std::ops::AddAssign for KernelStats {
    /// Field-wise sum — the counters are plain tallies, so stats from
    /// independent surveys (or a full survey and an incremental delta)
    /// merge additively.
    fn add_assign(&mut self, rhs: KernelStats) {
        self.compares += rhs.compares;
        self.candidates += rhs.candidates;
        self.matches += rhs.matches;
        self.scalar_runs += rhs.scalar_runs;
        self.gallop_runs += rhs.gallop_runs;
        self.blocked_runs += rhs.blocked_runs;
        self.simd_runs += rhs.simd_runs;
    }
}

thread_local! {
    static KERNEL_STATS: Cell<KernelStats> = const { Cell::new(KernelStats::ZERO) };
}

/// This thread's accumulated [`KernelStats`] since the last
/// [`kernel_stats_take`].
pub fn kernel_stats() -> KernelStats {
    KERNEL_STATS.with(Cell::get)
}

/// Reads and resets this thread's accumulated [`KernelStats`].
pub fn kernel_stats_take() -> KernelStats {
    KERNEL_STATS.with(|c| c.replace(KernelStats::ZERO))
}

/// Adds `delta` into this thread's accumulated [`KernelStats`]. The
/// parallel merge path uses this to fold per-work-item stats (taken on
/// the worker thread that ran the item) back into the owning rank's
/// counter in batch-index order, keeping the merged tallies
/// bit-identical to a serial run.
pub fn kernel_stats_add(delta: KernelStats) {
    KERNEL_STATS.with(|c| {
        let mut s = c.get();
        s += delta;
        c.set(s);
    });
}

/// Flushes one intersection's local tallies into the thread counter —
/// a single `Cell` write per intersection, so the hot loops count into
/// registers.
#[inline]
fn record_kernel(resolved: IntersectKernel, compares: u64, candidates: u64, matches: u64) {
    KERNEL_STATS.with(|c| {
        let mut s = c.get();
        s.compares += compares;
        s.candidates += candidates;
        s.matches += matches;
        match resolved {
            IntersectKernel::MergeScalar => s.scalar_runs += 1,
            IntersectKernel::Gallop => s.gallop_runs += 1,
            IntersectKernel::BlockedMerge => s.blocked_runs += 1,
            IntersectKernel::Simd => s.simd_runs += 1,
            IntersectKernel::Auto => unreachable!("Auto resolves before recording"),
        }
        c.set(s);
    });
}

/// First index in `right[from..]` whose key is `>= target`, found by
/// exponential probing (1, 2, 4, … steps) and a binary search of the
/// final window — `O(log distance)` compares regardless of how far the
/// seek lands.
#[inline]
fn gallop_seek<R>(
    right: &[R],
    key_r: &impl Fn(&R) -> OrderKey,
    from: usize,
    target: OrderKey,
    compares: &mut u64,
) -> usize {
    let n = right.len();
    if from >= n {
        return n;
    }
    *compares += 1;
    if key_r(&right[from]) >= target {
        return from;
    }
    // Invariant: key(right[lo]) < target; hi is n or has key >= target.
    let mut lo = from;
    let mut hi = n;
    let mut step = 1usize;
    while lo + step < n {
        *compares += 1;
        if key_r(&right[lo + step]) < target {
            lo += step;
            step <<= 1;
        } else {
            hi = lo + step;
            break;
        }
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        *compares += 1;
        if key_r(&right[mid]) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// One [`IntersectKernel::Simd`] pass over a decoded key block: the
/// block's `(degree, tie)` key lanes (SoA stack arrays) are merged
/// against `right[*b..]`, with left-side lanes the frontier has passed
/// skipped in packed groups ([`crate::simd::find_ge_lane`]) and the
/// right side advanced by the usual tight scalar loop (its keys live
/// inside heterogeneous elements, so there is nothing contiguous to
/// load wide). `emit(lane, b)` runs per key-equal pair, in increasing
/// key order; the caller has already performed (and counted) the
/// whole-block skip check against `bkeys[len - 1]`.
#[allow(clippy::too_many_arguments)]
#[inline]
fn simd_block_pass<R, E>(
    backend: crate::simd::SimdBackend,
    kdeg: &[u64; KEY_BLOCK_LEN],
    ktie: &[u64; KEY_BLOCK_LEN],
    len: usize,
    right: &[R],
    b: &mut usize,
    key_r: &impl Fn(&R) -> OrderKey,
    compares: &mut u64,
    matches: &mut u64,
    emit: &mut impl FnMut(usize, usize) -> Result<(), E>,
) -> Result<(), E> {
    let mut lane = 0;
    while lane < len && *b < right.len() {
        let kl = OrderKey {
            degree: kdeg[lane],
            tie: ktie[lane],
        };
        // Tight advance on a register-resident key, then one equality
        // check at the landing spot (as in the scalar blocked merge).
        while *b < right.len() {
            *compares += 1;
            if key_r(&right[*b]) < kl {
                *b += 1;
            } else {
                break;
            }
        }
        if *b >= right.len() {
            break;
        }
        *compares += 1;
        let frontier = key_r(&right[*b]);
        if frontier == kl {
            emit(lane, *b)?;
            *matches += 1;
            *b += 1;
            lane += 1;
        } else {
            // frontier > kl: no later right key can match any lane the
            // frontier has already passed. Peek one lane (skip runs of
            // length one dominate match-dense regions and need no
            // packed probe); longer runs are skipped in packed groups
            // — the scan the scalar blocked merge does lane-by-lane
            // (two compares per skipped lane) and the SIMD kernel
            // does SIMD_GROUP_LANES at a time.
            lane += 1;
            if lane < len {
                *compares += 1;
                if (kdeg[lane], ktie[lane]) < (frontier.degree, frontier.tie) {
                    lane = crate::simd::find_ge_lane(
                        backend,
                        kdeg,
                        ktie,
                        lane + 1,
                        len,
                        frontier,
                        compares,
                    );
                }
            }
        }
    }
    Ok(())
}

/// Intersects two `<+`-sorted slices with the selected kernel,
/// invoking `on_match` for every key-equal pair in increasing key
/// order — the kernel-dispatching generalization of [`merge_path`]
/// (which remains the scalar reference). Used by the materializing
/// (`Owned`) decode paths of both engines.
pub fn intersect_slices<L, R>(
    kernel: IntersectKernel,
    left: &[L],
    right: &[R],
    key_l: impl Fn(&L) -> OrderKey,
    key_r: impl Fn(&R) -> OrderKey,
    mut on_match: impl FnMut(&L, &R),
) {
    let resolved = kernel.select(left.len(), right.len());
    let (mut compares, mut matches) = (0u64, 0u64);
    match resolved {
        IntersectKernel::MergeScalar => {
            let (mut a, mut b) = (0, 0);
            while a < left.len() && b < right.len() {
                compares += 1;
                match key_l(&left[a]).cmp(&key_r(&right[b])) {
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        on_match(&left[a], &right[b]);
                        matches += 1;
                        a += 1;
                        b += 1;
                    }
                }
            }
        }
        IntersectKernel::Gallop => {
            if left.len() <= right.len() {
                let mut b = 0;
                for l in left {
                    if b >= right.len() {
                        break;
                    }
                    let kl = key_l(l);
                    b = gallop_seek(right, &key_r, b, kl, &mut compares);
                    if b < right.len() {
                        compares += 1;
                        if key_r(&right[b]) == kl {
                            on_match(l, &right[b]);
                            matches += 1;
                            b += 1;
                        }
                    }
                }
            } else {
                let mut a = 0;
                for r in right {
                    if a >= left.len() {
                        break;
                    }
                    let kr = key_r(r);
                    a = gallop_seek(left, &key_l, a, kr, &mut compares);
                    if a < left.len() {
                        compares += 1;
                        if key_l(&left[a]) == kr {
                            on_match(&left[a], r);
                            matches += 1;
                            a += 1;
                        }
                    }
                }
            }
        }
        IntersectKernel::BlockedMerge => {
            let (mut a, mut b) = (0, 0);
            while a < left.len() && b < right.len() {
                let end = (a + KEY_BLOCK_LEN).min(left.len());
                // One wide compare decides whether the whole block is
                // strictly below the merge frontier.
                compares += 1;
                if key_l(&left[end - 1]) < key_r(&right[b]) {
                    a = end;
                    continue;
                }
                while a < end && b < right.len() {
                    // Tight advance on a register-resident key, then
                    // one equality check at the landing spot.
                    let kl = key_l(&left[a]);
                    while b < right.len() {
                        compares += 1;
                        if key_r(&right[b]) < kl {
                            b += 1;
                        } else {
                            break;
                        }
                    }
                    if b < right.len() {
                        compares += 1;
                        if key_r(&right[b]) == kl {
                            on_match(&left[a], &right[b]);
                            matches += 1;
                            b += 1;
                        }
                    }
                    a += 1;
                }
            }
        }
        IntersectKernel::Simd => {
            let backend = crate::simd::simd_backend();
            let mut kdeg = [0u64; KEY_BLOCK_LEN];
            let mut ktie = [0u64; KEY_BLOCK_LEN];
            let (mut a, mut b) = (0, 0);
            while a < left.len() && b < right.len() {
                let len = (left.len() - a).min(KEY_BLOCK_LEN);
                for (i, l) in left[a..a + len].iter().enumerate() {
                    let k = key_l(l);
                    kdeg[i] = k.degree;
                    ktie[i] = k.tie;
                }
                // One wide compare decides whether the whole block is
                // strictly below the merge frontier.
                compares += 1;
                let last = OrderKey {
                    degree: kdeg[len - 1],
                    tie: ktie[len - 1],
                };
                if last >= key_r(&right[b]) {
                    let out: Result<(), std::convert::Infallible> = simd_block_pass(
                        backend,
                        &kdeg,
                        &ktie,
                        len,
                        right,
                        &mut b,
                        &key_r,
                        &mut compares,
                        &mut matches,
                        &mut |lane, rb| {
                            on_match(&left[a + lane], &right[rb]);
                            Ok(())
                        },
                    );
                    match out {
                        Ok(()) => {}
                    }
                }
                a += len;
            }
        }
        IntersectKernel::Auto => unreachable!("select never returns Auto"),
    }
    record_kernel(resolved, compares, left.len() as u64, matches);
}

/// Intersects the key columns of one columnar frame against a
/// `<+`-sorted slice with the selected kernel — the production
/// (columnar × cursor) hot path. `on_match` receives the matching
/// [`ColKey`] (whose `idx` indexes the frame's metadata column) and may
/// fail (a lazy metadata decode); key-decode errors from the frame
/// propagate the same way. Matches are emitted in increasing key
/// order, identically across kernels.
///
/// The blocked kernel is where the columnar layout pays: keys are
/// decoded [`KEY_BLOCK_LEN`] at a time into stack arrays
/// ([`KeyBlock`]) so the varint-decode loop and the branch-light
/// compare loop each run tight over contiguous memory.
pub fn intersect_col<R>(
    kernel: IntersectKernel,
    keys: &mut ColKeys<'_>,
    right: &[R],
    key_r: impl Fn(&R) -> OrderKey,
    mut on_match: impl FnMut(ColKey, &R) -> Result<(), WireError>,
) -> Result<(), WireError> {
    let resolved = kernel.select_streaming(keys.remaining(), right.len());
    let (mut compares, mut candidates, mut matches) = (0u64, 0u64, 0u64);
    let out = (|| {
        match resolved {
            IntersectKernel::MergeScalar => {
                let mut b = 0;
                while b < right.len() {
                    let Some(k) = keys.next_key() else { break };
                    let k = k?;
                    candidates += 1;
                    let kl = OrderKey::new(k.v, k.degree);
                    while b < right.len() {
                        compares += 1;
                        if key_r(&right[b]) < kl {
                            b += 1;
                        } else {
                            break;
                        }
                    }
                    if b < right.len() {
                        compares += 1;
                        if key_r(&right[b]) == kl {
                            on_match(k, &right[b])?;
                            matches += 1;
                            b += 1;
                        }
                    }
                }
            }
            IntersectKernel::Gallop => {
                let mut b = 0;
                while b < right.len() {
                    let Some(k) = keys.next_key() else { break };
                    let k = k?;
                    candidates += 1;
                    let kl = OrderKey::new(k.v, k.degree);
                    b = gallop_seek(right, &key_r, b, kl, &mut compares);
                    if b < right.len() {
                        compares += 1;
                        if key_r(&right[b]) == kl {
                            on_match(k, &right[b])?;
                            matches += 1;
                            b += 1;
                        }
                    }
                }
            }
            IntersectKernel::BlockedMerge => {
                let mut block = KeyBlock::new();
                let mut bkeys = [OrderKey { degree: 0, tie: 0 }; KEY_BLOCK_LEN];
                let mut b = 0;
                while b < right.len() {
                    let Some(res) = keys.next_block(&mut block) else {
                        break;
                    };
                    res?;
                    candidates += block.len as u64;
                    for ((k, &v), &d) in bkeys
                        .iter_mut()
                        .zip(&block.v)
                        .zip(&block.degree)
                        .take(block.len)
                    {
                        *k = OrderKey::new(v, d);
                    }
                    compares += 1;
                    if bkeys[block.len - 1] < key_r(&right[b]) {
                        continue;
                    }
                    for (i, &kl) in bkeys.iter().enumerate().take(block.len) {
                        if b >= right.len() {
                            break;
                        }
                        // Tight advance on a register-resident key,
                        // then one equality check at the landing spot.
                        while b < right.len() {
                            compares += 1;
                            if key_r(&right[b]) < kl {
                                b += 1;
                            } else {
                                break;
                            }
                        }
                        if b < right.len() {
                            compares += 1;
                            if key_r(&right[b]) == kl {
                                on_match(
                                    ColKey {
                                        idx: block.base + i,
                                        v: block.v[i],
                                        degree: block.degree[i],
                                    },
                                    &right[b],
                                )?;
                                matches += 1;
                                b += 1;
                            }
                        }
                    }
                }
            }
            IntersectKernel::Simd => {
                let backend = crate::simd::simd_backend();
                let mut block = KeyBlock::new();
                let mut kdeg = [0u64; KEY_BLOCK_LEN];
                let mut ktie = [0u64; KEY_BLOCK_LEN];
                let mut b = 0;
                while b < right.len() {
                    let Some(res) = keys.next_block(&mut block) else {
                        break;
                    };
                    res?;
                    candidates += block.len as u64;
                    for (i, (&v, &d)) in block
                        .v
                        .iter()
                        .zip(&block.degree)
                        .take(block.len)
                        .enumerate()
                    {
                        let k = OrderKey::new(v, d);
                        kdeg[i] = k.degree;
                        ktie[i] = k.tie;
                    }
                    compares += 1;
                    let last = OrderKey {
                        degree: kdeg[block.len - 1],
                        tie: ktie[block.len - 1],
                    };
                    if last < key_r(&right[b]) {
                        continue;
                    }
                    simd_block_pass(
                        backend,
                        &kdeg,
                        &ktie,
                        block.len,
                        right,
                        &mut b,
                        &key_r,
                        &mut compares,
                        &mut matches,
                        &mut |lane, rb| {
                            on_match(
                                ColKey {
                                    idx: block.base + lane,
                                    v: block.v[lane],
                                    degree: block.degree[lane],
                                },
                                &right[rb],
                            )
                        },
                    )?;
                }
            }
            IntersectKernel::Auto => unreachable!("select never returns Auto"),
        }
        Ok(())
    })();
    record_kernel(resolved, compares, candidates, matches);
    out
}

/// Intersects a cursor-produced left stream against a `<+`-sorted
/// slice with the selected kernel — the kernel-dispatching
/// generalization of [`merge_path_stream`], used by the interleaved
/// cursor decode paths. The same early-exit contract applies: once
/// `right` is exhausted no further left elements are pulled (beyond
/// the block the blocked kernel already buffered), so a [`SeqCursor`]
/// caller must still `skip_rest`.
///
/// `L: Copy` because the blocked kernel buffers up to [`KEY_BLOCK_LEN`]
/// decoded views in a stack array — views are borrowed byte ranges
/// plus eager scalars, so the bound is free for every wire view in
/// this workspace.
///
/// [`SeqCursor`]: tripoll_ygm::wire::SeqCursor
pub fn intersect_stream<L: Copy, R, E>(
    kernel: IntersectKernel,
    left_len: usize,
    mut next: impl FnMut() -> Option<Result<L, E>>,
    right: &[R],
    key_l: impl Fn(&L) -> OrderKey,
    key_r: impl Fn(&R) -> OrderKey,
    mut on_match: impl FnMut(L, &R) -> Result<(), E>,
) -> Result<(), E> {
    let resolved = kernel.select_streaming(left_len, right.len());
    let (mut compares, mut candidates, mut matches) = (0u64, 0u64, 0u64);
    let out = (|| {
        match resolved {
            IntersectKernel::MergeScalar => {
                let mut b = 0;
                while b < right.len() {
                    let Some(item) = next() else { break };
                    let l = item?;
                    candidates += 1;
                    let kl = key_l(&l);
                    while b < right.len() {
                        compares += 1;
                        if key_r(&right[b]) < kl {
                            b += 1;
                        } else {
                            break;
                        }
                    }
                    if b < right.len() {
                        compares += 1;
                        if key_r(&right[b]) == kl {
                            on_match(l, &right[b])?;
                            matches += 1;
                            b += 1;
                        }
                    }
                }
            }
            IntersectKernel::Gallop => {
                let mut b = 0;
                while b < right.len() {
                    let Some(item) = next() else { break };
                    let l = item?;
                    candidates += 1;
                    let kl = key_l(&l);
                    b = gallop_seek(right, &key_r, b, kl, &mut compares);
                    if b < right.len() {
                        compares += 1;
                        if key_r(&right[b]) == kl {
                            on_match(l, &right[b])?;
                            matches += 1;
                            b += 1;
                        }
                    }
                }
            }
            IntersectKernel::BlockedMerge => {
                let mut buf: [Option<L>; KEY_BLOCK_LEN] = [None; KEY_BLOCK_LEN];
                let mut bkeys = [OrderKey { degree: 0, tie: 0 }; KEY_BLOCK_LEN];
                let mut b = 0;
                while b < right.len() {
                    let mut len = 0;
                    while len < KEY_BLOCK_LEN {
                        let Some(item) = next() else { break };
                        let l = item?;
                        bkeys[len] = key_l(&l);
                        buf[len] = Some(l);
                        len += 1;
                    }
                    if len == 0 {
                        break;
                    }
                    candidates += len as u64;
                    compares += 1;
                    if bkeys[len - 1] < key_r(&right[b]) {
                        continue;
                    }
                    for (&kl, slot) in bkeys.iter().zip(buf.iter_mut()).take(len) {
                        if b >= right.len() {
                            break;
                        }
                        // Tight advance on a register-resident key,
                        // then one equality check at the landing spot.
                        while b < right.len() {
                            compares += 1;
                            if key_r(&right[b]) < kl {
                                b += 1;
                            } else {
                                break;
                            }
                        }
                        if b < right.len() {
                            compares += 1;
                            if key_r(&right[b]) == kl {
                                let l = slot.take().expect("buffered block element");
                                on_match(l, &right[b])?;
                                matches += 1;
                                b += 1;
                            }
                        }
                    }
                }
            }
            IntersectKernel::Simd => {
                let backend = crate::simd::simd_backend();
                let mut buf: [Option<L>; KEY_BLOCK_LEN] = [None; KEY_BLOCK_LEN];
                let mut kdeg = [0u64; KEY_BLOCK_LEN];
                let mut ktie = [0u64; KEY_BLOCK_LEN];
                let mut b = 0;
                while b < right.len() {
                    let mut len = 0;
                    while len < KEY_BLOCK_LEN {
                        let Some(item) = next() else { break };
                        let l = item?;
                        let k = key_l(&l);
                        kdeg[len] = k.degree;
                        ktie[len] = k.tie;
                        buf[len] = Some(l);
                        len += 1;
                    }
                    if len == 0 {
                        break;
                    }
                    candidates += len as u64;
                    compares += 1;
                    let last = OrderKey {
                        degree: kdeg[len - 1],
                        tie: ktie[len - 1],
                    };
                    if last < key_r(&right[b]) {
                        continue;
                    }
                    simd_block_pass(
                        backend,
                        &kdeg,
                        &ktie,
                        len,
                        right,
                        &mut b,
                        &key_r,
                        &mut compares,
                        &mut matches,
                        &mut |lane, rb| {
                            let l = buf[lane].take().expect("buffered block element");
                            on_match(l, &right[rb])
                        },
                    )?;
                }
            }
            IntersectKernel::Auto => unreachable!("select never returns Auto"),
        }
        Ok(())
    })();
    record_kernel(resolved, compares, candidates, matches);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(ids: &[u64]) -> Vec<(u64, OrderKey)> {
        // Distinct degrees so order follows the given sequence.
        ids.iter()
            .enumerate()
            .map(|(i, &v)| (v, OrderKey::new(v, i as u64)))
            .collect()
    }

    #[test]
    fn merge_path_intersects() {
        // left = elements 0..6, right = evens; sorted by same key space.
        let all = keys(&[10, 11, 12, 13, 14, 15]);
        let left: Vec<_> = all.clone();
        let right: Vec<_> = all.iter().filter(|(v, _)| v % 2 == 0).cloned().collect();
        let mut matches = Vec::new();
        merge_path(
            &left,
            &right,
            |l| l.1,
            |r| r.1,
            |l, r| {
                assert_eq!(l.0, r.0);
                matches.push(l.0);
            },
        );
        assert_eq!(matches, vec![10, 12, 14]);
    }

    #[test]
    fn merge_path_empty_sides() {
        let some = keys(&[1, 2, 3]);
        let empty: Vec<(u64, OrderKey)> = Vec::new();
        let mut called = false;
        merge_path(&some, &empty, |l| l.1, |r| r.1, |_, _| called = true);
        merge_path(&empty, &some, |l| l.1, |r| r.1, |_, _| called = true);
        assert!(!called);
    }

    #[test]
    fn merge_path_disjoint() {
        let left = keys(&[1, 2]);
        let right: Vec<(u64, OrderKey)> =
            vec![(9, OrderKey::new(9, 100)), (8, OrderKey::new(8, 101))];
        let mut called = false;
        merge_path(&left, &right, |l| l.1, |r| r.1, |_, _| called = true);
        assert!(!called);
    }

    #[test]
    fn merge_path_stream_matches_merge_path() {
        // Same key spaces as merge_path_intersects, fed as a stream.
        let all = keys(&[10, 11, 12, 13, 14, 15]);
        let right: Vec<_> = all.iter().filter(|(v, _)| v % 2 == 0).cloned().collect();
        let mut expected = Vec::new();
        merge_path(&all, &right, |l| l.1, |r| r.1, |l, _| expected.push(l.0));
        let mut it = all.iter();
        let mut streamed = Vec::new();
        merge_path_stream(
            || it.next().map(|l| Ok::<_, ()>(*l)),
            &right,
            |l| l.1,
            |r| r.1,
            |l, r| {
                assert_eq!(l.0, r.0);
                streamed.push(l.0);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(streamed, expected);
        assert_eq!(streamed, vec![10, 12, 14]);
    }

    #[test]
    fn merge_path_stream_propagates_errors() {
        let all = keys(&[1, 2, 3]);
        let mut it = all.iter();
        let err = merge_path_stream(
            || it.next().map(|l| Ok::<_, &str>(*l)),
            &all,
            |l| l.1,
            |r| r.1,
            |_, _| Err("match failed"),
        );
        assert_eq!(err, Err("match failed"));
    }

    #[test]
    fn report_aggregation() {
        let mk = |name, secs, bytes| PhaseReport {
            name,
            seconds: secs,
            stats: CommStats {
                bytes_remote: bytes,
                ..Default::default()
            },
        };
        let report = SurveyReport {
            mode: EngineMode::PushPull,
            phases: vec![
                mk("dry-run", 1.0, 10),
                mk("push", 2.0, 100),
                mk("pull", 0.5, 30),
            ],
            total_seconds: 3.5,
            pulled_vertices: 4,
            pull_grants: 2,
        };
        assert_eq!(report.local_stats().bytes_remote, 140);
        assert!((report.phase_seconds("push") - 2.0).abs() < 1e-12);
        assert_eq!(report.phase_seconds("nope"), 0.0);
    }

    #[test]
    fn mode_display() {
        assert_eq!(EngineMode::PushOnly.to_string(), "Push-Only");
        assert_eq!(EngineMode::PushPull.to_string(), "Push-Pull");
        assert_eq!(BatchLayout::Columnar.to_string(), "Columnar");
        assert_eq!(BatchLayout::Interleaved.to_string(), "Interleaved");
    }

    #[test]
    fn survey_config_defaults_and_conversions() {
        // Production default: columnar batches decoded in place,
        // auto-selected kernel.
        let d = SurveyConfig::default();
        assert_eq!(d.layout, BatchLayout::Columnar);
        assert_eq!(d.decode, DecodePath::Cursor);
        assert_eq!(d.kernel, IntersectKernel::Auto);
        assert_eq!(SurveyConfig::new(), d);
        // A bare axis value fixes that axis, leaving the others default.
        assert_eq!(
            SurveyConfig::from(DecodePath::Owned),
            d.with_decode(DecodePath::Owned)
        );
        assert_eq!(
            SurveyConfig::from(BatchLayout::Interleaved),
            d.with_layout(BatchLayout::Interleaved)
        );
        assert_eq!(
            SurveyConfig::from(IntersectKernel::Gallop),
            d.with_kernel(IntersectKernel::Gallop)
        );
        assert_eq!(
            SurveyConfig::from(Parallelism::Threads(4)),
            d.with_threads(Parallelism::Threads(4))
        );
        assert_eq!(
            SurveyConfig::default()
                .with_layout(BatchLayout::Interleaved)
                .with_decode(DecodePath::Owned)
                .with_kernel(IntersectKernel::MergeScalar),
            SurveyConfig {
                layout: BatchLayout::Interleaved,
                decode: DecodePath::Owned,
                kernel: IntersectKernel::MergeScalar,
                threads: Parallelism::Env,
            }
        );
    }

    #[test]
    fn parallelism_resolves_deterministically() {
        assert_eq!(Parallelism::Serial.resolved(), 1);
        assert!(!Parallelism::Serial.is_parallel());
        assert_eq!(Parallelism::Threads(0).resolved(), 1);
        assert_eq!(Parallelism::Threads(1).resolved(), 1);
        assert_eq!(Parallelism::Threads(4).resolved(), 4);
        assert!(Parallelism::Threads(4).is_parallel());
        // Env resolves to >= 1 whatever the environment says.
        assert!(Parallelism::Env.resolved() >= 1);
    }

    #[test]
    fn auto_kernel_selection_follows_the_skew_ratio() {
        let auto = IntersectKernel::Auto;
        // Balanced or mildly skewed sides: the scalar blocked merge
        // (the SIMD variant measures ~9% behind it at these shapes).
        assert_eq!(auto.select(100, 100), IntersectKernel::BlockedMerge);
        assert_eq!(auto.select(100, 799), IntersectKernel::BlockedMerge);
        assert_eq!(auto.select(799, 100), IntersectKernel::BlockedMerge);
        // Past GALLOP_RATIO in either direction: gallop.
        assert_eq!(auto.select(100, 801), IntersectKernel::Gallop);
        assert_eq!(auto.select(801, 100), IntersectKernel::Gallop);
        assert_eq!(auto.select(0, 1), IntersectKernel::Gallop);
        // Streaming left side: gallop only into a much larger right; a
        // much larger (decode-bound) left resolves to the blocked
        // merge.
        assert_eq!(auto.select_streaming(100, 801), IntersectKernel::Gallop);
        assert_eq!(
            auto.select_streaming(801, 100),
            IntersectKernel::BlockedMerge
        );
        assert_eq!(
            auto.select_streaming(100, 100),
            IntersectKernel::BlockedMerge
        );
        assert_eq!(
            IntersectKernel::MergeScalar.select_streaming(1, 1_000_000),
            IntersectKernel::MergeScalar
        );
        // Explicit kernels resolve to themselves at any skew.
        for k in [
            IntersectKernel::MergeScalar,
            IntersectKernel::Gallop,
            IntersectKernel::BlockedMerge,
            IntersectKernel::Simd,
        ] {
            assert_eq!(k.select(1, 1_000_000), k);
            assert_eq!(k.select(5, 5), k);
        }
    }

    /// Pins the dispatch-count counters for each shape class — the
    /// executable form of the [`GALLOP_RATIO`] two-shape contract
    /// (symmetric over slices, asymmetric over streams), so the docs
    /// and the code cannot drift apart again.
    #[test]
    fn auto_dispatch_counters_pin_the_shape_contract() {
        let mk = |n: usize| -> Vec<(u64, OrderKey)> {
            (0..n as u64).map(|v| (v, OrderKey::new(v, v))).collect()
        };
        let big = mk(900);
        let small = mk(100);
        // Slices, balanced: the scalar blocked merge.
        let runs_slices = |l: &[(u64, OrderKey)], r: &[(u64, OrderKey)]| {
            let _ = kernel_stats_take();
            intersect_slices(IntersectKernel::Auto, l, r, |e| e.1, |e| e.1, |_, _| {});
            let s = kernel_stats_take();
            (s.scalar_runs, s.gallop_runs, s.blocked_runs, s.simd_runs)
        };
        assert_eq!(runs_slices(&small, &small), (0, 0, 1, 0), "slices balanced");
        // Slices, heavy skew either way: gallop (symmetric contract).
        assert_eq!(
            runs_slices(&small, &big),
            (0, 1, 0, 0),
            "slices right-heavy"
        );
        assert_eq!(runs_slices(&big, &small), (0, 1, 0, 0), "slices left-heavy");
        // Streams: gallop only into a much larger right (asymmetric).
        let runs_stream = |l: &[(u64, OrderKey)], r: &[(u64, OrderKey)]| {
            let _ = kernel_stats_take();
            let mut it = l.iter();
            intersect_stream(
                IntersectKernel::Auto,
                l.len(),
                || it.next().map(|e| Ok::<_, ()>(*e)),
                r,
                |e| e.1,
                |e| e.1,
                |_, _| Ok(()),
            )
            .unwrap();
            let s = kernel_stats_take();
            (s.scalar_runs, s.gallop_runs, s.blocked_runs, s.simd_runs)
        };
        assert_eq!(runs_stream(&small, &small), (0, 0, 1, 0), "stream balanced");
        assert_eq!(
            runs_stream(&small, &big),
            (0, 1, 0, 0),
            "stream right-heavy"
        );
        assert_eq!(
            runs_stream(&big, &small),
            (0, 0, 1, 0),
            "stream left-heavy must NOT gallop (decode-bound left)"
        );
    }

    #[test]
    fn gallop_seek_finds_the_lower_bound() {
        let list: Vec<(u64, OrderKey)> = (0..200u64)
            .map(|i| (i * 2, OrderKey::new(i * 2, i * 2)))
            .collect();
        let key = |e: &(u64, OrderKey)| e.1;
        let mut compares = 0u64;
        for target_v in 0..420u64 {
            let target = OrderKey::new(target_v, target_v);
            for from in [0usize, 3, 150, 199, 200] {
                let got = gallop_seek(&list, &key, from, target, &mut compares);
                // Reference: first index >= from with key >= target.
                let mut reference = list.len();
                for (i, e) in list.iter().enumerate().skip(from) {
                    if key(e) >= target {
                        reference = i;
                        break;
                    }
                }
                assert_eq!(got, reference, "target {target_v} from {from}");
            }
        }
        assert!(compares > 0);
    }

    /// Every kernel must emit exactly the match sequence of
    /// `merge_path`, on slices, for assorted shapes.
    #[test]
    fn slice_kernels_agree_with_merge_path() {
        let mk = |vals: &[u64]| -> Vec<(u64, OrderKey)> {
            vals.iter().map(|&v| (v, OrderKey::new(v, v))).collect()
        };
        let cases: &[(Vec<u64>, Vec<u64>)] = &[
            (vec![], vec![]),
            (vec![1, 2, 3], vec![]),
            (vec![], vec![1, 2, 3]),
            (
                (0..200).map(|i| i * 2).collect(),
                (0..200).map(|i| i * 3).collect(),
            ),
            ((0..500).collect(), vec![250]),
            (vec![250], (0..500).collect()),
            (vec![7, 7, 7], vec![7, 7]),
        ];
        for (lv, rv) in cases {
            let left = mk(lv);
            let right = mk(rv);
            let mut oracle = Vec::new();
            merge_path(
                &left,
                &right,
                |l| l.1,
                |r| r.1,
                |l, r| oracle.push((l.0, r.0)),
            );
            for kernel in [
                IntersectKernel::Auto,
                IntersectKernel::MergeScalar,
                IntersectKernel::Gallop,
                IntersectKernel::BlockedMerge,
            ] {
                let mut got = Vec::new();
                intersect_slices(
                    kernel,
                    &left,
                    &right,
                    |l| l.1,
                    |r| r.1,
                    |l, r| got.push((l.0, r.0)),
                );
                assert_eq!(got, oracle, "kernel {kernel} on {lv:?} x {rv:?}");
            }
        }
    }

    #[test]
    fn kernel_stats_accumulate_and_reset() {
        let _ = kernel_stats_take();
        let left: Vec<(u64, OrderKey)> = (0..64u64).map(|v| (v, OrderKey::new(v, v))).collect();
        intersect_slices(
            IntersectKernel::MergeScalar,
            &left,
            &left,
            |l| l.1,
            |r| r.1,
            |_, _| {},
        );
        let s = kernel_stats();
        assert_eq!(s.matches, 64);
        assert_eq!(s.candidates, 64);
        assert_eq!(s.scalar_runs, 1);
        assert!(s.compares >= 64);
        // Auto at heavy skew dispatches the gallop kernel.
        let small = &left[..4];
        intersect_slices(
            IntersectKernel::Auto,
            small,
            &left,
            |l| l.1,
            |r| r.1,
            |_, _| {},
        );
        assert_eq!(kernel_stats().gallop_runs, 1);
        let taken = kernel_stats_take();
        assert_eq!(taken.matches, 68);
        assert_eq!(kernel_stats(), KernelStats::default());
    }
}
