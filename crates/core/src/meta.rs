//! Triangle metadata passed to survey callbacks.
//!
//! TriPoll's defining capability (paper §1, §4.5): when a triangle
//! `Δpqr` is identified, a *user-provided callback* runs with access to
//! all six pieces of metadata `meta(Δpqr)` — three vertex metadata values
//! and three edge metadata values — plus the vertex ids themselves. The
//! callback produces whatever side effects the survey needs (increment a
//! counter, feed a distributed counting set, write to a file); the survey
//! itself returns nothing.

use tripoll_ygm::Comm;

/// Everything a callback may inspect about one discovered triangle.
///
/// Vertices satisfy `p <+ q <+ r` in the degree order of §3, so `r` is
/// the (weakly) highest-degree corner. References point into rank-local
/// storage or the just-received message — no copies are made to invoke a
/// callback.
#[derive(Debug)]
pub struct TriangleMeta<'a, VM, EM> {
    /// Pivot vertex id (`p <+ q <+ r`).
    pub p: u64,
    /// Middle vertex id.
    pub q: u64,
    /// Highest vertex id in the `<+` order.
    pub r: u64,
    /// `meta(p)`.
    pub meta_p: &'a VM,
    /// `meta(q)`.
    pub meta_q: &'a VM,
    /// `meta(r)`.
    pub meta_r: &'a VM,
    /// `meta(p, q)`.
    pub meta_pq: &'a EM,
    /// `meta(p, r)`.
    pub meta_pr: &'a EM,
    /// `meta(q, r)`.
    pub meta_qr: &'a EM,
}

impl<'a, VM, EM> TriangleMeta<'a, VM, EM> {
    /// The three vertex metadata values in `(p, q, r)` order.
    pub fn vertex_meta(&self) -> [&'a VM; 3] {
        [self.meta_p, self.meta_q, self.meta_r]
    }

    /// The three edge metadata values in `(pq, pr, qr)` order.
    pub fn edge_meta(&self) -> [&'a EM; 3] {
        [self.meta_pq, self.meta_pr, self.meta_qr]
    }

    /// True when the three vertex metadata values are pairwise distinct
    /// (the filter used by Alg. 3 and the FQDN survey of §5.8).
    pub fn vertices_distinct(&self) -> bool
    where
        VM: PartialEq,
    {
        self.meta_p != self.meta_q && self.meta_q != self.meta_r && self.meta_p != self.meta_r
    }
}

/// The signature of a survey callback.
///
/// Runs on whichever rank holds all six metadata values at identification
/// time: `Rank(q)` for pushed wedges, `Rank(p)` for pulled ones. The
/// `&Comm` parameter lets callbacks send messages of their own (e.g.
/// distributed counting-set updates), which interleave freely with the
/// survey's traffic.
pub trait SurveyCallback<VM, EM>: Fn(&Comm, &TriangleMeta<'_, VM, EM>) + 'static {}
impl<T, VM, EM> SurveyCallback<VM, EM> for T where T: Fn(&Comm, &TriangleMeta<'_, VM, EM>) + 'static {}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta_fixture<'a>(vm: &'a [u32; 3], em: &'a [i64; 3]) -> TriangleMeta<'a, u32, i64> {
        TriangleMeta {
            p: 1,
            q: 2,
            r: 3,
            meta_p: &vm[0],
            meta_q: &vm[1],
            meta_r: &vm[2],
            meta_pq: &em[0],
            meta_pr: &em[1],
            meta_qr: &em[2],
        }
    }

    #[test]
    fn accessors() {
        let vm = [10, 20, 30];
        let em = [-1, -2, -3];
        let t = meta_fixture(&vm, &em);
        assert_eq!(t.vertex_meta(), [&10, &20, &30]);
        assert_eq!(t.edge_meta(), [&-1, &-2, &-3]);
    }

    #[test]
    fn distinctness() {
        let em = [0, 0, 0];
        assert!(meta_fixture(&[1, 2, 3], &em).vertices_distinct());
        assert!(!meta_fixture(&[1, 1, 3], &em).vertices_distinct());
        assert!(!meta_fixture(&[1, 2, 1], &em).vertices_distinct());
        assert!(!meta_fixture(&[1, 2, 2], &em).vertices_distinct());
    }
}
