//! # tripoll-core — TriPoll's triangle-survey engines
//!
//! The primary contribution of *"TriPoll: Computing Surveys of Triangles
//! in Massive-Scale Temporal Graphs with Metadata"* (SC'21,
//! arXiv:2107.12330): distributed identification of **every** triangle in
//! a metadata-decorated graph, executing a **user callback** on the six
//! metadata values of each triangle as it is discovered. The survey has
//! no return value of its own — callbacks produce the output, whether
//! that is a counter, a distributed counting set, or a file.
//!
//! Two engines implement the identification:
//!
//! * [`push_only::survey_push_only`] — Alg. 1: wedge batches are always
//!   pushed to the middle vertex's rank (§4.3).
//! * [`push_pull::survey_push_pull`] — §4.4: a dry-run pass lets each
//!   (source rank, target vertex) pair choose between pushing wedge
//!   batches and pulling the target's adjacency once, cutting
//!   communication by up to an order of magnitude on hub-heavy graphs.
//!
//! [`surveys`] packages the paper's published callbacks (counting,
//! max-edge-label, Reddit closure times, degree triples, FQDN tuples).
//!
//! ## Example
//!
//! ```
//! use tripoll_ygm::World;
//! use tripoll_graph::{build_dist_graph, EdgeList, Partition};
//! use tripoll_core::{surveys::count::triangle_count, EngineMode};
//!
//! let edges = EdgeList::from_vec(vec![
//!     (0u64, 1u64, ()), (1, 2, ()), (2, 0, ()), (2, 3, ()),
//! ]);
//! let counts = World::new(2).run(|comm| {
//!     let local = edges.stride_for_rank(comm.rank(), comm.nranks());
//!     let g = build_dist_graph(comm, local, |_| (), Partition::Hashed);
//!     triangle_count(comm, &g, EngineMode::PushPull).0
//! });
//! assert_eq!(counts, vec![1, 1]);
//! ```

#![deny(missing_docs)]

pub mod delta;
pub mod engine;
pub mod meta;
mod par;
mod push_common;
pub mod push_only;
pub mod push_pull;
pub mod service;
pub mod simd;
pub mod surveys;

pub use delta::survey_delta_push;
pub use engine::{
    intersect_col, intersect_slices, intersect_stream, kernel_stats, kernel_stats_add,
    kernel_stats_take, merge_path, merge_path_stream, BatchLayout, DecodePath, EngineMode,
    IntersectKernel, KernelStats, Parallelism, PhaseReport, SurveyConfig, SurveyReport,
    GALLOP_RATIO,
};
pub use meta::{SurveyCallback, TriangleMeta};
pub use push_only::{survey_push_only, survey_push_only_with};
pub use push_pull::{survey_push_pull, survey_push_pull_with};
pub use service::{IngestDelta, QueryOutcome, ResidentGraph, ResidentQuery, StaleDeltaError};
pub use simd::{simd_backend, simd_force_swar, SimdBackend, SIMD_GROUP_LANES};
pub use surveys::delta::{SurveyDelta, SurveyDeltaSink, TriangleSample};
pub use surveys::survey;
