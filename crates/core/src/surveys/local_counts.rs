//! Local triangle participation counts (paper §5.3).
//!
//! "Exceptions are distributed versions of computing truss
//! decompositions, where counts of triangles are desired at edges, and
//! computing clustering coefficient where local counts of triangles are
//! desired at vertices. Callbacks designed for these local participation
//! counts would merely increment local counters." — this module is those
//! callbacks:
//!
//! * [`vertex_triangle_counts`] — triangles incident on each vertex
//!   (the numerator of the local clustering coefficient),
//! * [`edge_triangle_counts`] — triangles supported by each edge (the
//!   support values a k-truss decomposition filters on),
//! * [`clustering_coefficients`] — per-vertex `2·T(v) / (d(v)·(d(v)−1))`.

use std::hash::Hash;

use tripoll_graph::DistGraph;
use tripoll_ygm::container::DistCountingSet;
use tripoll_ygm::wire::Wire;
use tripoll_ygm::Comm;

use crate::engine::{EngineMode, SurveyReport};
use crate::surveys::survey;

/// Gathered per-edge triangle support: `((min, max), triangles)`.
pub type EdgeSupport = Vec<((u64, u64), u64)>;

/// Counts, for every vertex, the triangles it participates in.
/// Collective; all ranks receive the gathered `(vertex, count)` pairs
/// (vertices participating in no triangle are absent).
pub fn vertex_triangle_counts<VM, EM>(
    comm: &Comm,
    graph: &DistGraph<VM, EM>,
    mode: EngineMode,
) -> (Vec<(u64, u64)>, SurveyReport)
where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
{
    let counters = DistCountingSet::<u64>::new(comm);
    let counters_cb = counters.clone();
    let report = survey(comm, graph, mode, move |c, tm| {
        c.add_work(3);
        counters_cb.increment(c, tm.p);
        counters_cb.increment(c, tm.q);
        counters_cb.increment(c, tm.r);
    });
    let gathered = counters.gather(comm);
    (gathered, report)
}

/// Counts, for every undirected edge `{min, max}`, the triangles it
/// supports (k-truss support). Collective.
pub fn edge_triangle_counts<VM, EM>(
    comm: &Comm,
    graph: &DistGraph<VM, EM>,
    mode: EngineMode,
) -> (EdgeSupport, SurveyReport)
where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
{
    let counters = DistCountingSet::<(u64, u64)>::new(comm);
    let counters_cb = counters.clone();
    let report = survey(comm, graph, mode, move |c, tm| {
        c.add_work(3);
        let e = |a: u64, b: u64| (a.min(b), a.max(b));
        counters_cb.increment(c, e(tm.p, tm.q));
        counters_cb.increment(c, e(tm.p, tm.r));
        counters_cb.increment(c, e(tm.q, tm.r));
    });
    let gathered = counters.gather(comm);
    (gathered, report)
}

/// Per-vertex local clustering coefficients,
/// `c(v) = 2·T(v) / (d(v)·(d(v)−1))` (0 for degree < 2). Collective;
/// returns `(vertex, coefficient)` sorted by vertex, covering every
/// vertex of the graph.
pub fn clustering_coefficients<VM, EM>(
    comm: &Comm,
    graph: &DistGraph<VM, EM>,
    mode: EngineMode,
) -> (Vec<(u64, f64)>, SurveyReport)
where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
{
    let (tri, report) = vertex_triangle_counts(comm, graph, mode);
    let tri: std::collections::HashMap<u64, u64> = tri.into_iter().collect();
    // Degrees live with the owners; gather (id, degree) pairs.
    let mine: Vec<(u64, u64)> = graph
        .shard()
        .vertices()
        .iter()
        .map(|v| (v.id, v.degree))
        .collect();
    let mut out: Vec<(u64, f64)> = comm
        .all_gather(&mine)
        .into_iter()
        .flatten()
        .map(|(v, d)| {
            let t = tri.get(&v).copied().unwrap_or(0) as f64;
            let pairs = (d * d.saturating_sub(1)) as f64 / 2.0;
            (v, if pairs > 0.0 { t / pairs } else { 0.0 })
        })
        .collect();
    out.sort_unstable_by_key(|a| a.0);
    (out, report)
}

/// Hash-map view of a gathered count list (test/analysis convenience).
pub fn as_map<K: Eq + Hash, V>(pairs: Vec<(K, V)>) -> std::collections::HashMap<K, V> {
    pairs.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tripoll_graph::{build_dist_graph, EdgeList, Partition};
    use tripoll_ygm::World;

    fn bowtie() -> EdgeList<()> {
        // Two triangles sharing vertex 2: {0,1,2} and {2,3,4}.
        EdgeList::from_vec(vec![
            (0u64, 1u64, ()),
            (1, 2, ()),
            (2, 0, ()),
            (2, 3, ()),
            (3, 4, ()),
            (4, 2, ()),
        ])
    }

    #[test]
    fn vertex_counts_on_bowtie() {
        for mode in [EngineMode::PushOnly, EngineMode::PushPull] {
            let out = World::new(3).run(|comm| {
                let local = bowtie().stride_for_rank(comm.rank(), comm.nranks());
                let g = build_dist_graph(comm, local, |_| (), Partition::Hashed);
                vertex_triangle_counts(comm, &g, mode).0
            });
            for gathered in out {
                let m = as_map(gathered);
                assert_eq!(m[&0], 1);
                assert_eq!(m[&1], 1);
                assert_eq!(m[&2], 2, "shared vertex belongs to both triangles");
                assert_eq!(m[&3], 1);
                assert_eq!(m[&4], 1);
            }
        }
    }

    #[test]
    fn edge_counts_on_k4() {
        // K4: every edge supports exactly 2 triangles.
        let mut edges = Vec::new();
        for u in 0..4u64 {
            for v in (u + 1)..4 {
                edges.push((u, v, ()));
            }
        }
        let list = EdgeList::from_vec(edges);
        let out = World::new(2).run(|comm| {
            let local = list.stride_for_rank(comm.rank(), comm.nranks());
            let g = build_dist_graph(comm, local, |_| (), Partition::Hashed);
            edge_triangle_counts(comm, &g, EngineMode::PushPull).0
        });
        for gathered in out {
            assert_eq!(gathered.len(), 6);
            for ((u, v), c) in gathered {
                assert!(u < v, "edge keys canonical");
                assert_eq!(c, 2, "edge ({u},{v})");
            }
        }
    }

    #[test]
    fn clustering_coefficients_on_known_graph() {
        // Triangle + pendant: c(0)=c(1)=1, c(2)=1/3 (d=3, one of three
        // pairs closed), c(3)=0.
        let list = EdgeList::from_vec(vec![(0u64, 1u64, ()), (1, 2, ()), (2, 0, ()), (2, 3, ())]);
        let out = World::new(2).run(|comm| {
            let local = list.stride_for_rank(comm.rank(), comm.nranks());
            let g = build_dist_graph(comm, local, |_| (), Partition::Hashed);
            clustering_coefficients(comm, &g, EngineMode::PushPull).0
        });
        for coeffs in out {
            let m: std::collections::HashMap<u64, f64> = coeffs.into_iter().collect();
            assert!((m[&0] - 1.0).abs() < 1e-12);
            assert!((m[&1] - 1.0).abs() < 1e-12);
            assert!((m[&2] - 1.0 / 3.0).abs() < 1e-12);
            assert_eq!(m[&3], 0.0);
        }
    }

    #[test]
    fn vertex_counts_sum_to_three_times_triangles() {
        let edges: Vec<(u64, u64, ())> = (0..30u64)
            .flat_map(|i| {
                [
                    (i, (i + 1) % 30, ()),
                    (i, (i + 2) % 30, ()),
                    (i, (i + 5) % 30, ()),
                ]
            })
            .collect();
        let list = EdgeList::from_vec(edges);
        let out = World::new(3).run(|comm| {
            let local = list.stride_for_rank(comm.rank(), comm.nranks());
            let g = build_dist_graph(comm, local, |_| (), Partition::Hashed);
            let (counts, _) = vertex_triangle_counts(comm, &g, EngineMode::PushOnly);
            let total: u64 = counts.iter().map(|(_, c)| c).sum();
            let (global, _) = crate::surveys::count::triangle_count(comm, &g, EngineMode::PushOnly);
            (total, global)
        });
        for (sum, count) in out {
            assert_eq!(sum, 3 * count);
            assert!(count > 0);
        }
    }
}
