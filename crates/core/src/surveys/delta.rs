//! Additive survey accumulators for incremental (delta) surveys.
//!
//! Full surveys and delta surveys fire the same per-triangle callback;
//! what makes incremental maintenance work is that every published
//! survey result is an **additive** fold over the triangle multiset:
//! the survey of `G ∪ B` equals the survey of `G` plus the survey of
//! the triangles `B` added. [`SurveyDelta`] packages that fold for the
//! four results the resident tier maintains incrementally — the global
//! `count`, per-vertex `local_counts`, the `degree_triples`
//! distribution, and the `closure_times` histogram — with a
//! [`SurveyDelta::merge`] that is exact (integer tallies, no floats),
//! so
//!
//! ```text
//! full(G ∪ B) == full(G) + delta(G, B)    // bit-for-bit
//! ```
//!
//! One wrinkle makes permutation-invariance load-bearing: the triangle
//! roles `(p, q, r)` are assigned by the `<+` degree order, and ingest
//! *grows* degrees — a triangle surveyed in `G` may have its roles
//! assigned differently than the same triangle surveyed after more
//! batches arrive. Every accumulator here therefore folds a quantity
//! that is invariant under role permutation: the degree-triple bucket
//! is **sorted** before tallying (a no-op in the paper's setup, where
//! `p <+ q <+ r` already orders the degree buckets ascending), the
//! closure-time buckets sort the three timestamps first (as the paper's
//! Alg. 4 does), and `count`/`local_counts` treat the triangle as a
//! vertex set.
//!
//! [`SurveyDeltaSink`] is the `Send + Sync` adapter for feeding a
//! [`SurveyDelta`] from survey callbacks across per-query world ranks.

use std::sync::{Arc, Mutex};

use tripoll_analysis::hist::ceil_log2;
use tripoll_ygm::hash::FastMap;

/// The permutation-invariant facts of one surveyed triangle, as fed to
/// [`SurveyDelta::record`]: vertex ids, undirected degrees, and the
/// three edge timestamps.
///
/// Build it inside a survey callback from the six colocated metadata
/// values ([`crate::meta::TriangleMeta`]); which field of the metadata
/// holds degrees or timestamps is the application's choice, exactly as
/// in the full-survey entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriangleSample {
    /// Vertex id of `p` (`<+`-minimum role).
    pub p: u64,
    /// Vertex id of `q`.
    pub q: u64,
    /// Vertex id of `r`.
    pub r: u64,
    /// Undirected degree of `p`.
    pub degree_p: u64,
    /// Undirected degree of `q`.
    pub degree_q: u64,
    /// Undirected degree of `r`.
    pub degree_r: u64,
    /// Timestamp of edge `(p, q)`.
    pub t_pq: u64,
    /// Timestamp of edge `(p, r)`.
    pub t_pr: u64,
    /// Timestamp of edge `(q, r)`.
    pub t_qr: u64,
}

/// Additive accumulators for the incrementally-maintained survey
/// results. `Default` is the zero of the merge monoid.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SurveyDelta {
    count: u64,
    local_counts: FastMap<u64, u64>,
    degree_triples: FastMap<[u32; 3], u64>,
    closure_times: FastMap<(u32, u32), u64>,
}

impl SurveyDelta {
    /// Folds one triangle into every accumulator.
    pub fn record(&mut self, s: TriangleSample) {
        self.count += 1;
        for v in [s.p, s.q, s.r] {
            *self.local_counts.entry(v).or_insert(0) += 1;
        }
        // Sorted log2-degree buckets: invariant under role assignment.
        let mut triple = [
            ceil_log2(s.degree_p),
            ceil_log2(s.degree_q),
            ceil_log2(s.degree_r),
        ];
        triple.sort_unstable();
        *self.degree_triples.entry(triple).or_insert(0) += 1;
        // Alg. 4 buckets: sort the timestamps, log2 the two gaps.
        let mut ts = [s.t_pq, s.t_pr, s.t_qr];
        ts.sort_unstable();
        let open_close = (ceil_log2(ts[1] - ts[0]), ceil_log2(ts[2] - ts[0]));
        *self.closure_times.entry(open_close).or_insert(0) += 1;
    }

    /// Adds `other`'s tallies into `self` — exact, order-independent
    /// integer sums, so merging per-batch deltas into a running total
    /// reproduces a from-scratch survey bit-for-bit.
    pub fn merge(&mut self, other: &SurveyDelta) {
        self.count += other.count;
        for (&v, &n) in &other.local_counts {
            *self.local_counts.entry(v).or_insert(0) += n;
        }
        for (&t, &n) in &other.degree_triples {
            *self.degree_triples.entry(t).or_insert(0) += n;
        }
        for (&b, &n) in &other.closure_times {
            *self.closure_times.entry(b).or_insert(0) += n;
        }
    }

    /// Global triangle count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Per-vertex triangle participation, sorted by vertex id.
    pub fn local_counts(&self) -> Vec<(u64, u64)> {
        let mut out: Vec<_> = self.local_counts.iter().map(|(&v, &n)| (v, n)).collect();
        out.sort_unstable();
        out
    }

    /// The sorted-log2-degree-triple distribution, sorted by bucket.
    pub fn degree_triples(&self) -> Vec<([u32; 3], u64)> {
        let mut out: Vec<_> = self.degree_triples.iter().map(|(&t, &n)| (t, n)).collect();
        out.sort_unstable();
        out
    }

    /// The `(log2 open, log2 close)` time histogram, sorted by bucket.
    pub fn closure_times(&self) -> Vec<((u32, u32), u64)> {
        let mut out: Vec<_> = self.closure_times.iter().map(|(&b, &n)| (b, n)).collect();
        out.sort_unstable();
        out
    }
}

/// A shareable, thread-safe recording endpoint for survey callbacks.
///
/// Survey callbacks must be `Send + Sync` (per-query worlds run ranks
/// on threads); the sink wraps a [`SurveyDelta`] in `Arc<Mutex>` so one
/// accumulator collects across all ranks of a query. Contention is a
/// non-issue at the tested scales — one short lock per triangle — and
/// the tally is order-independent, so thread interleaving cannot
/// perturb the result.
#[derive(Debug, Clone, Default)]
pub struct SurveyDeltaSink {
    inner: Arc<Mutex<SurveyDelta>>,
}

impl SurveyDeltaSink {
    /// A sink around a zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one triangle in (callback-side).
    pub fn record(&self, s: TriangleSample) {
        self.inner.lock().expect("delta sink poisoned").record(s);
    }

    /// Takes the accumulated delta, leaving the sink zeroed.
    pub fn take(&self) -> SurveyDelta {
        std::mem::take(&mut *self.inner.lock().expect("delta sink poisoned"))
    }

    /// A copy of the current accumulated delta.
    pub fn snapshot(&self) -> SurveyDelta {
        self.inner.lock().expect("delta sink poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: u64) -> TriangleSample {
        TriangleSample {
            p: seed % 7,
            q: seed % 7 + 1,
            r: seed % 7 + 2,
            degree_p: seed % 5 + 1,
            degree_q: seed % 9 + 1,
            degree_r: seed % 3 + 1,
            t_pq: seed * 13 % 101,
            t_pr: seed * 29 % 101,
            t_qr: seed * 43 % 101,
        }
    }

    #[test]
    fn split_merge_equals_one_shot() {
        let samples: Vec<_> = (0..200u64).map(sample).collect();
        let mut oneshot = SurveyDelta::default();
        for &s in &samples {
            oneshot.record(s);
        }
        for split in [1, 2, 7, 200] {
            let mut merged = SurveyDelta::default();
            for chunk in samples.chunks(samples.len().div_ceil(split)) {
                let mut part = SurveyDelta::default();
                for &s in chunk {
                    part.record(s);
                }
                merged.merge(&part);
            }
            assert_eq!(merged, oneshot, "split={split}");
            assert_eq!(merged.count(), 200);
            assert_eq!(merged.local_counts(), oneshot.local_counts());
            assert_eq!(merged.degree_triples(), oneshot.degree_triples());
            assert_eq!(merged.closure_times(), oneshot.closure_times());
        }
    }

    #[test]
    fn degree_buckets_are_role_invariant() {
        let mut a = SurveyDelta::default();
        let mut b = SurveyDelta::default();
        let s = sample(42);
        a.record(s);
        // The same triangle with roles rotated tallies identically.
        b.record(TriangleSample {
            p: s.q,
            q: s.r,
            r: s.p,
            degree_p: s.degree_q,
            degree_q: s.degree_r,
            degree_r: s.degree_p,
            t_pq: s.t_qr,
            t_pr: s.t_pq,
            t_qr: s.t_pr,
        });
        assert_eq!(a.degree_triples(), b.degree_triples());
        assert_eq!(a.closure_times(), b.closure_times());
        assert_eq!(a.count(), b.count());
    }

    #[test]
    fn sink_collects_across_clones() {
        let sink = SurveyDeltaSink::new();
        let other = sink.clone();
        sink.record(sample(1));
        other.record(sample(2));
        assert_eq!(sink.snapshot().count(), 2);
        let taken = sink.take();
        assert_eq!(taken.count(), 2);
        assert_eq!(other.snapshot().count(), 0, "take zeroes the shared sink");
    }
}
