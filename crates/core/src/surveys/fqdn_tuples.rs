//! FQDN 3-tuple survey (paper §5.8, Fig. 8).
//!
//! The Web Data Commons experiment attaches each page's fully qualified
//! domain name as string vertex metadata and, over all triangles whose
//! three FQDNs are pairwise distinct, counts the (unordered) 3-tuples of
//! FQDNs. Post-processing then slices the tuple counts around a hub
//! domain ("amazon.com" in the paper) into a 2-D co-occurrence
//! distribution, ordered by Louvain communities.

use tripoll_graph::DistGraph;
use tripoll_ygm::container::DistCountingSet;
use tripoll_ygm::wire::Wire;
use tripoll_ygm::Comm;

use crate::engine::{EngineMode, SurveyReport};
use crate::surveys::survey;

/// An unordered FQDN triple, stored sorted so each set counts once.
pub type FqdnTriple = (String, String, String);

/// Outcome of the FQDN survey.
#[derive(Debug, Clone)]
pub struct FqdnSurveyResult {
    /// Gathered `(triple, count)` pairs, sorted by triple.
    pub tuples: Vec<(FqdnTriple, u64)>,
    /// Triangles with three distinct FQDNs (the paper reports 248.7B).
    pub distinct_triangles: u64,
}

impl FqdnSurveyResult {
    /// Number of unique 3-tuples (the paper reports 39.2B).
    pub fn unique_tuples(&self) -> u64 {
        self.tuples.len() as u64
    }

    /// Pairs `(other1, other2, count)` from tuples containing `hub` —
    /// the 2-D distribution of Fig. 8.
    pub fn pairs_with(&self, hub: &str) -> Vec<(String, String, u64)> {
        let mut out = Vec::new();
        for ((a, b, c), count) in &self.tuples {
            let trio = [a, b, c];
            if trio.iter().any(|s| s.as_str() == hub) {
                let rest: Vec<&String> =
                    trio.iter().filter(|s| s.as_str() != hub).copied().collect();
                if rest.len() == 2 {
                    out.push((rest[0].clone(), rest[1].clone(), *count));
                }
            }
        }
        out.sort();
        out
    }
}

/// Runs the FQDN tuple survey. Vertex metadata must be the FQDN string.
/// Collective; all ranks receive the full result.
pub fn fqdn_tuple_survey<EM>(
    comm: &Comm,
    graph: &DistGraph<String, EM>,
    mode: EngineMode,
) -> (FqdnSurveyResult, SurveyReport)
where
    EM: Wire + Clone + 'static,
{
    let counters = DistCountingSet::<FqdnTriple>::new(comm);
    let counters_cb = counters.clone();
    let distinct = std::rc::Rc::new(std::cell::Cell::new(0u64));
    let distinct_cb = distinct.clone();
    let report = survey(comm, graph, mode, move |c, tm| {
        // String comparisons, a 3-way sort, three clones and a
        // string-keyed counting-set insert: the priciest callback here.
        c.add_work(16);
        if tm.vertices_distinct() {
            distinct_cb.set(distinct_cb.get() + 1);
            let mut trio = [tm.meta_p, tm.meta_q, tm.meta_r];
            trio.sort();
            counters_cb.increment(c, (trio[0].clone(), trio[1].clone(), trio[2].clone()));
        }
    });
    let tuples = counters.gather(comm);
    let distinct_triangles = comm.all_reduce_sum(distinct.get());
    (
        FqdnSurveyResult {
            tuples,
            distinct_triangles,
        },
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tripoll_graph::{build_dist_graph, EdgeList, Partition};
    use tripoll_ygm::World;

    /// Tiny web graph: three domains, one page each except the hub with
    /// two pages; inter-domain links create FQDN triangles.
    fn run(nranks: usize, mode: EngineMode) -> FqdnSurveyResult {
        // Vertices: 0,1 → hub.example ; 2 → shop.example ; 3 → lib.example
        let fqdn = |v: u64| -> String {
            match v {
                0 | 1 => "hub.example".into(),
                2 => "shop.example".into(),
                _ => "lib.example".into(),
            }
        };
        // Triangles: (0,2,3) distinct; (0,1,2) has duplicate hub FQDN.
        let edges: Vec<(u64, u64, ())> =
            vec![(0, 2, ()), (2, 3, ()), (3, 0, ()), (0, 1, ()), (1, 2, ())];
        let list = EdgeList::from_vec(edges);
        let out = World::new(nranks).run(move |comm| {
            let local = list.stride_for_rank(comm.rank(), comm.nranks());
            let g = build_dist_graph(comm, local, fqdn, Partition::Hashed);
            fqdn_tuple_survey(comm, &g, mode).0
        });
        out.into_iter().next().unwrap()
    }

    #[test]
    fn counts_distinct_fqdn_triangles_only() {
        for mode in [EngineMode::PushOnly, EngineMode::PushPull] {
            let result = run(2, mode);
            assert_eq!(result.distinct_triangles, 1, "{mode}");
            assert_eq!(result.unique_tuples(), 1);
            let ((a, b, c), count) = result.tuples[0].clone();
            assert_eq!(
                (a.as_str(), b.as_str(), c.as_str()),
                ("hub.example", "lib.example", "shop.example")
            );
            assert_eq!(count, 1);
        }
    }

    #[test]
    fn pairs_with_hub() {
        let result = run(3, EngineMode::PushPull);
        let pairs = result.pairs_with("hub.example");
        assert_eq!(
            pairs,
            vec![("lib.example".to_string(), "shop.example".to_string(), 1)]
        );
        assert!(result.pairs_with("unknown.example").is_empty());
    }

    #[test]
    fn tuple_keys_are_sorted() {
        let result = run(2, EngineMode::PushOnly);
        for ((a, b, c), _) in &result.tuples {
            assert!(a <= b && b <= c);
        }
    }
}
