//! Ready-made surveys (paper §4.5, §5).
//!
//! Each function wires a published callback into the engines and handles
//! the final reduction/gather, so applications get the paper's analyses
//! as one-liners:
//!
//! * [`count::triangle_count`] — Alg. 2, global triangle counting.
//! * [`max_edge_label::max_edge_label_distribution`] — Alg. 3.
//! * [`closure_times::closure_time_survey`] — Alg. 4 / §5.7 (Reddit).
//! * [`degree_triples::degree_triple_survey`] — the §5.9 metadata-impact
//!   callback.
//! * [`fqdn_tuples::fqdn_tuple_survey`] — the §5.8 Web Data Commons
//!   FQDN analysis.
//! * [`local_counts`] — per-vertex / per-edge triangle participation and
//!   clustering coefficients (the §5.3 local-counting callbacks).
//! * [`delta`] — additive accumulators for incremental surveys
//!   (`full(G ∪ B) == full(G) + delta(G, B)`, bit-for-bit).

pub mod closure_times;
pub mod count;
pub mod degree_triples;
pub mod delta;
pub mod fqdn_tuples;
pub mod local_counts;
pub mod max_edge_label;

use tripoll_graph::DistGraph;
use tripoll_ygm::wire::Wire;
use tripoll_ygm::Comm;

use crate::engine::{EngineMode, SurveyReport};
use crate::meta::SurveyCallback;

/// Runs a triangle survey with the selected engine (the paper's
/// `Triangle_Survey(G, user_callback, user_args)`, Alg. 1; user args are
/// whatever state the Rust closure captures).
pub fn survey<VM, EM, F>(
    comm: &Comm,
    graph: &DistGraph<VM, EM>,
    mode: EngineMode,
    callback: F,
) -> SurveyReport
where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
    F: SurveyCallback<VM, EM>,
{
    match mode {
        EngineMode::PushOnly => crate::push_only::survey_push_only(comm, graph, callback),
        EngineMode::PushPull => crate::push_pull::survey_push_pull(comm, graph, callback),
    }
}
