//! Degree-triple survey (paper §5.9).
//!
//! The metadata-impact experiment replaces dummy metadata with each
//! vertex's degree and counts occurrences of
//! `(⌈log2 d(p)⌉, ⌈log2 d(q)⌉, ⌈log2 d(r)⌉)` over all triangles — "a
//! simple example with a small amount of vertex metadata and a nontrivial
//! callback operation" used to measure the overhead metadata adds to the
//! survey pipeline.

use tripoll_analysis::hist::ceil_log2;
use tripoll_graph::DistGraph;
use tripoll_ygm::container::DistCountingSet;
use tripoll_ygm::wire::Wire;
use tripoll_ygm::Comm;

use crate::engine::{EngineMode, SurveyReport};
use crate::surveys::survey;

/// A gathered distribution of `(log2 d(p), log2 d(q), log2 d(r))` triples.
pub type DegreeTripleDistribution = Vec<((u32, u32, u32), u64)>;

/// Counts log2-degree triples across all triangles. Vertex metadata must
/// be the vertex's (undirected) degree, as in the paper's setup — use
/// `build_dist_graph` with a degree table for `vm_fn`.
///
/// Collective; all ranks receive the gathered, sorted distribution.
pub fn degree_triple_survey<EM>(
    comm: &Comm,
    graph: &DistGraph<u64, EM>,
    mode: EngineMode,
) -> (DegreeTripleDistribution, SurveyReport)
where
    EM: Wire + Clone + 'static,
{
    let counters = DistCountingSet::<(u32, u32, u32)>::new(comm);
    let counters_cb = counters.clone();
    let report = survey(comm, graph, mode, move |c, tm| {
        // "A simple hash and logarithm of the degrees" (§5.9): three
        // logs, a tuple hash and a counting-set insert.
        c.add_work(6);
        let triple = (
            ceil_log2(*tm.meta_p),
            ceil_log2(*tm.meta_q),
            ceil_log2(*tm.meta_r),
        );
        counters_cb.increment(c, triple);
    });
    let gathered = counters.gather(comm);
    (gathered, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tripoll_graph::{build_dist_graph, Csr, EdgeList, Partition};
    use tripoll_ygm::hash::FastMap;
    use tripoll_ygm::World;

    fn degree_table(edges: &[(u64, u64)]) -> FastMap<u64, u64> {
        let canon = EdgeList::from_vec(edges.iter().map(|&(u, v)| (u, v, ())).collect::<Vec<_>>())
            .canonicalize();
        let mut deg: FastMap<u64, u64> = FastMap::default();
        for (u, v, _) in canon.as_slice() {
            *deg.entry(*u).or_insert(0) += 1;
            *deg.entry(*v).or_insert(0) += 1;
        }
        deg
    }

    #[test]
    fn triples_match_serial_enumeration() {
        let mut edges = Vec::new();
        for u in 0..20u64 {
            for v in (u + 1)..20 {
                if (u * 13 + v * 7) % 3 == 0 {
                    edges.push((u, v));
                }
            }
        }
        let deg = degree_table(&edges);

        // Serial oracle: enumerate with the same <+ order, bucket degrees.
        let csr = Csr::from_edges(&edges);
        let mut expect: FastMap<(u32, u32, u32), u64> = FastMap::default();
        tripoll_analysis::enumerate_triangles(&csr, |p, q, r| {
            let t = (ceil_log2(deg[&p]), ceil_log2(deg[&q]), ceil_log2(deg[&r]));
            *expect.entry(t).or_insert(0) += 1;
        });
        assert!(!expect.is_empty());

        let list = EdgeList::from_vec(edges.iter().map(|&(u, v)| (u, v, ())).collect::<Vec<_>>());
        for mode in [EngineMode::PushOnly, EngineMode::PushPull] {
            let deg_for_world = deg.clone();
            let list = list.clone();
            let out = World::new(3).run(move |comm| {
                let local = list.stride_for_rank(comm.rank(), comm.nranks());
                let deg_inner = deg_for_world.clone();
                let g = build_dist_graph(comm, local, move |v| deg_inner[&v], Partition::Hashed);
                degree_triple_survey(comm, &g, mode).0
            });
            for dist in out {
                let got: FastMap<(u32, u32, u32), u64> = dist.into_iter().collect();
                assert_eq!(got, expect, "{mode}");
            }
        }
    }

    #[test]
    fn triple_components_ordered_by_degree() {
        // p <+ q <+ r orders by degree first, so bucket(p) <= bucket(q)
        // <= bucket(r) always holds.
        let mut edges = Vec::new();
        for u in 0..16u64 {
            for v in (u + 1)..16 {
                if (u + v) % 2 == 0 || v == 15 {
                    edges.push((u, v));
                }
            }
        }
        let deg = degree_table(&edges);
        let list = EdgeList::from_vec(edges.iter().map(|&(u, v)| (u, v, ())).collect::<Vec<_>>());
        let out = World::new(2).run(move |comm| {
            let local = list.stride_for_rank(comm.rank(), comm.nranks());
            let deg_inner = deg.clone();
            let g = build_dist_graph(comm, local, move |v| deg_inner[&v], Partition::Hashed);
            degree_triple_survey(comm, &g, EngineMode::PushPull).0
        });
        for dist in out {
            assert!(!dist.is_empty());
            for ((a, b, c), _) in dist {
                assert!(a <= b && b <= c, "({a},{b},{c}) not degree-ordered");
            }
        }
    }
}
