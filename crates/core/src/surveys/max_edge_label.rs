//! Maximum-edge-label distribution (paper §4.5, Alg. 3).
//!
//! "Suppose we wish to know the distribution of maximum edge labels seen
//! among all triangles in which all vertex labels are distinct": for each
//! such triangle the callback takes the maximum of the three edge labels
//! and increments that label's counter in a distributed counting set.

use std::hash::Hash;

use tripoll_graph::DistGraph;
use tripoll_ygm::container::DistCountingSet;
use tripoll_ygm::wire::Wire;
use tripoll_ygm::Comm;

use crate::engine::{EngineMode, SurveyReport};
use crate::surveys::survey;

/// Computes the distribution of `max(meta(pq), meta(pr), meta(qr))` over
/// triangles whose three vertex labels are pairwise distinct.
///
/// `label` extracts the comparable label from edge metadata (identity for
/// plain label graphs). Collective; all ranks receive the gathered,
/// sorted distribution.
pub fn max_edge_label_distribution<VM, EM, K, F>(
    comm: &Comm,
    graph: &DistGraph<VM, EM>,
    mode: EngineMode,
    label: F,
) -> (Vec<(K, u64)>, SurveyReport)
where
    VM: Wire + Clone + PartialEq + 'static,
    EM: Wire + Clone + 'static,
    K: Wire + Hash + Eq + Ord + Clone + 'static,
    F: Fn(&EM) -> K + 'static,
{
    let counters = DistCountingSet::<K>::new(comm);
    let counters_cb = counters.clone();
    let report = survey(comm, graph, mode, move |c, tm| {
        c.add_work(6);
        if tm.vertices_distinct() {
            let max_edge = tm
                .edge_meta()
                .into_iter()
                .map(&label)
                .max()
                .expect("three edges");
            counters_cb.increment(c, max_edge);
        }
    });
    let gathered = counters.gather(comm);
    (gathered, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tripoll_graph::{build_dist_graph, EdgeList, Partition};
    use tripoll_ygm::World;

    #[test]
    fn distribution_on_labeled_k4() {
        // K4 with distinct vertex labels; edge label = max endpoint id.
        let mut edges = Vec::new();
        for u in 0..4u64 {
            for v in (u + 1)..4 {
                edges.push((u, v, v)); // label = larger endpoint
            }
        }
        let list = EdgeList::from_vec(edges);
        let out = World::new(2).run(|comm| {
            let local = list.stride_for_rank(comm.rank(), comm.nranks());
            let g = build_dist_graph(comm, local, |v| v, Partition::Hashed);
            max_edge_label_distribution(comm, &g, EngineMode::PushPull, |em| *em).0
        });
        // Triangles of K4: {0,1,2}:max=2, {0,1,3}:max=3, {0,2,3}:max=3,
        // {1,2,3}:max=3.
        for dist in out {
            assert_eq!(dist, vec![(2u64, 1), (3u64, 3)]);
        }
    }

    #[test]
    fn indistinct_vertex_labels_filtered() {
        // Triangle where two vertices share a label: must not count.
        let list = EdgeList::from_vec(vec![(0u64, 1u64, 5u64), (1, 2, 6), (2, 0, 7)]);
        let out = World::new(2).run(|comm| {
            let local = list.stride_for_rank(comm.rank(), comm.nranks());
            // meta(v) = v % 2 → labels 0, 1, 0: vertices 0 and 2 collide.
            let g = build_dist_graph(comm, local, |v| v % 2, Partition::Hashed);
            max_edge_label_distribution(comm, &g, EngineMode::PushOnly, |em| *em).0
        });
        for dist in out {
            assert!(dist.is_empty(), "triangle with repeated labels counted");
        }
    }

    #[test]
    fn modes_agree() {
        let mut edges = Vec::new();
        for u in 0..12u64 {
            for v in (u + 1)..12 {
                if (u + v) % 3 != 0 {
                    edges.push((u, v, u * 100 + v));
                }
            }
        }
        let list = EdgeList::from_vec(edges);
        let out = World::new(3).run(|comm| {
            let local = list.stride_for_rank(comm.rank(), comm.nranks());
            let g = build_dist_graph(comm, local, |v| v, Partition::Hashed);
            let (a, _) = max_edge_label_distribution(comm, &g, EngineMode::PushOnly, |em| *em);
            let (b, _) = max_edge_label_distribution(comm, &g, EngineMode::PushPull, |em| *em);
            (a, b)
        });
        for (a, b) in out {
            assert_eq!(a, b);
            assert!(!a.is_empty());
        }
    }
}
