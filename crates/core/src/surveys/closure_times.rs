//! Triangle closure-time survey (paper §5.7, Alg. 4, Fig. 6).
//!
//! For a triangle whose three edges carry timestamps `t1 ≤ t2 ≤ t3`, the
//! *wedge opening time* is `Δt_open = t2 − t1` and the *triangle closing
//! time* is `Δt_close = t3 − t1`. The callback increments a distributed
//! counter for the pair `(⌈log2 Δt_open⌉, ⌈log2 Δt_close⌉)`, yielding the
//! joint distribution the Reddit experiment plots.
//!
//! (Alg. 4 as printed carries Alg. 3's distinct-vertex-label guard, but
//! §5.7 states the Reddit survey "does not make use of vertex
//! metadata"; we follow the text and apply no vertex filter.)

use tripoll_analysis::hist::{ceil_log2, JointHistogram};
use tripoll_graph::DistGraph;
use tripoll_ygm::container::DistCountingSet;
use tripoll_ygm::wire::Wire;
use tripoll_ygm::Comm;

use crate::engine::{EngineMode, SurveyReport};
use crate::surveys::survey;

/// Runs the closure-time survey. `time` extracts the timestamp from edge
/// metadata. Collective; all ranks receive the same joint histogram of
/// `(open, close)` log2 buckets.
pub fn closure_time_survey<VM, EM, F>(
    comm: &Comm,
    graph: &DistGraph<VM, EM>,
    mode: EngineMode,
    time: F,
) -> (JointHistogram, SurveyReport)
where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
    F: Fn(&EM) -> u64 + 'static,
{
    let counters = DistCountingSet::<(u32, u32)>::new(comm);
    let counters_cb = counters.clone();
    let report = survey(comm, graph, mode, move |c, tm| {
        // Sort of three timestamps, two log2 buckets, pair-key insert.
        c.add_work(8);
        let mut ts = [time(tm.meta_pq), time(tm.meta_pr), time(tm.meta_qr)];
        ts.sort_unstable();
        let [t1, t2, t3] = ts;
        let open = ceil_log2(t2 - t1);
        let close = ceil_log2(t3 - t1);
        counters_cb.increment(c, (open, close));
    });
    let gathered = counters.gather(comm);
    let hist = JointHistogram::from_pairs(gathered);
    (hist, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tripoll_graph::{build_dist_graph, Csr, EdgeList, Partition};
    use tripoll_ygm::hash::hash64;
    use tripoll_ygm::World;

    /// Serial oracle: enumerate triangles, bucket the same way.
    fn serial_joint(edges: &[(u64, u64, u64)]) -> JointHistogram {
        let topo: Vec<(u64, u64)> = edges.iter().map(|&(u, v, _)| (u, v)).collect();
        let canon = EdgeList::from_vec(edges.to_vec()).canonicalize();
        let ts_of = |u: u64, v: u64| {
            canon
                .as_slice()
                .iter()
                .find(|&&(a, b, _)| (a, b) == (u.min(v), u.max(v)))
                .map(|&(_, _, t)| t)
                .expect("edge exists")
        };
        let csr = Csr::from_edges(&topo);
        let mut hist = JointHistogram::new();
        tripoll_analysis::enumerate_triangles(&csr, |p, q, r| {
            let mut ts = [ts_of(p, q), ts_of(p, r), ts_of(q, r)];
            ts.sort_unstable();
            hist.add(ceil_log2(ts[1] - ts[0]), ceil_log2(ts[2] - ts[0]), 1);
        });
        hist
    }

    fn run_survey(edges: &[(u64, u64, u64)], nranks: usize, mode: EngineMode) -> JointHistogram {
        let list = EdgeList::from_vec(edges.to_vec());
        let out = World::new(nranks).run(|comm| {
            let local = list.stride_for_rank(comm.rank(), comm.nranks());
            let g = build_dist_graph(comm, local, |_| (), Partition::Hashed);
            closure_time_survey(comm, &g, mode, |t| *t).0
        });
        let first = out[0].clone();
        for h in &out {
            assert_eq!(*h, first, "ranks must agree");
        }
        first
    }

    #[test]
    fn single_triangle_buckets() {
        // Timestamps 100, 104, 164: open = 4 → bucket 2, close = 64 → 6.
        let edges = vec![(0u64, 1u64, 100u64), (1, 2, 104), (2, 0, 164)];
        let hist = run_survey(&edges, 2, EngineMode::PushPull);
        assert_eq!(hist.total(), 1);
        assert_eq!(hist.count(2, 6), 1);
    }

    #[test]
    fn simultaneous_edges() {
        // All timestamps equal: open = close = bucket 0.
        let edges = vec![(0u64, 1u64, 7u64), (1, 2, 7), (2, 0, 7)];
        let hist = run_survey(&edges, 2, EngineMode::PushOnly);
        assert_eq!(hist.count(0, 0), 1);
    }

    #[test]
    fn matches_serial_oracle_on_temporal_graph() {
        // Deterministic pseudo-random temporal graph.
        let mut edges = Vec::new();
        for u in 0..25u64 {
            for v in (u + 1)..25 {
                if (u * 31 + v * 17) % 4 == 0 {
                    edges.push((u, v, 1000 + hash64(u * 25 + v) % 100_000));
                }
            }
        }
        let expect = serial_joint(&edges);
        assert!(expect.total() > 0, "graph should have triangles");
        for mode in [EngineMode::PushOnly, EngineMode::PushPull] {
            for nranks in [1, 3] {
                assert_eq!(run_survey(&edges, nranks, mode), expect, "{mode}/{nranks}");
            }
        }
    }

    #[test]
    fn open_bucket_never_exceeds_close_bucket() {
        let mut edges = Vec::new();
        for u in 0..15u64 {
            for v in (u + 1)..15 {
                edges.push((u, v, hash64(u * 15 + v) % 1_000));
            }
        }
        let hist = run_survey(&edges, 2, EngineMode::PushPull);
        assert!(hist.total() > 0);
        for ((open, close), _) in hist.iter() {
            assert!(open <= close);
        }
    }
}
