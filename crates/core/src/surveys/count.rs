//! Global triangle counting (paper §4.5, Alg. 2; evaluated in §5.3-5.6).
//!
//! "The simplest example of a callback is incrementing a counter": the
//! callback ignores all six metadata values, each rank accumulates a
//! local count, and an `All_Reduce` combines them afterwards.

use std::cell::Cell;
use std::rc::Rc;

use tripoll_graph::DistGraph;
use tripoll_ygm::wire::Wire;
use tripoll_ygm::Comm;

use crate::engine::{EngineMode, SurveyReport};
use crate::surveys::survey;

/// Counts all triangles in the graph. Collective; every rank receives the
/// global count and its own [`SurveyReport`].
pub fn triangle_count<VM, EM>(
    comm: &Comm,
    graph: &DistGraph<VM, EM>,
    mode: EngineMode,
) -> (u64, SurveyReport)
where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
{
    let tc = Rc::new(Cell::new(0u64));
    let tc_cb = tc.clone();
    let report = survey(comm, graph, mode, move |c, _meta| {
        // One work unit: the counter increment is all this callback does.
        c.add_work(1);
        tc_cb.set(tc_cb.get() + 1);
    });
    let global = comm.all_reduce_sum(tc.get());
    (global, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tripoll_graph::{build_dist_graph, EdgeList, Partition};
    use tripoll_ygm::World;

    fn count_with(edges: &[(u64, u64)], nranks: usize, mode: EngineMode) -> u64 {
        let list = EdgeList::from_vec(
            edges
                .iter()
                .map(|&(u, v)| (u, v, false))
                .collect::<Vec<_>>(),
        );
        let out = World::new(nranks).run(|comm| {
            let local = list.stride_for_rank(comm.rank(), comm.nranks());
            // Dummy boolean metadata, as the paper affixes for plain
            // counting (§5.3).
            let g = build_dist_graph(comm, local, |_| false, Partition::Hashed);
            triangle_count(comm, &g, mode).0
        });
        let first = out[0];
        assert!(out.iter().all(|&c| c == first));
        first
    }

    #[test]
    fn both_modes_agree_on_small_graphs() {
        let cases: &[(&[(u64, u64)], u64)] = &[
            (&[(0, 1), (1, 2), (2, 0)], 1),
            (&[(0, 1), (1, 2), (2, 3)], 0),
            (&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)], 2),
        ];
        for (edges, expect) in cases {
            for nranks in [1, 2, 4] {
                assert_eq!(count_with(edges, nranks, EngineMode::PushOnly), *expect);
                assert_eq!(count_with(edges, nranks, EngineMode::PushPull), *expect);
            }
        }
    }

    #[test]
    fn matches_reference_on_pseudorandom_graph() {
        let mut edges = Vec::new();
        for u in 0..60u64 {
            for v in (u + 1)..60 {
                if (u * 2654435761 + v * 40503) % 11 == 0 {
                    edges.push((u, v));
                }
            }
        }
        let expect = tripoll_analysis::triangle_count(&tripoll_graph::Csr::from_edges(&edges));
        assert!(expect > 0);
        for mode in [EngineMode::PushOnly, EngineMode::PushPull] {
            for nranks in [1, 3] {
                assert_eq!(
                    count_with(&edges, nranks, mode),
                    expect,
                    "{mode} n={nranks}"
                );
            }
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]
            #[test]
            fn distributed_count_matches_oracle(
                edges in proptest::collection::vec((0u64..32, 0u64..32), 1..100),
                nranks in 1usize..4,
                push_pull in any::<bool>(),
            ) {
                let expect =
                    tripoll_analysis::triangle_count(&tripoll_graph::Csr::from_edges(&edges));
                let mode = if push_pull { EngineMode::PushPull } else { EngineMode::PushOnly };
                prop_assert_eq!(count_with(&edges, nranks, mode), expect);
            }
        }
    }
}
