//! The parallel intra-rank merge queue.
//!
//! When a survey runs with [`crate::engine::Parallelism`] resolving to
//! more than one thread (and the cursor decode path), the receive
//! handlers stop intersecting inline. Instead each arriving wedge-batch
//! envelope is split into per-batch work items — the candidate frame
//! bytes are copied once into a queue-owned arena, paired with a raw
//! view of the local adjacency slice they intersect against — and the
//! items are dispatched across the persistent work-stealing pool
//! ([`rayon::pool::global`]). Workers run exactly the serial kernels
//! ([`intersect_col`] / [`intersect_stream`]) over their item and record
//! the resulting `(left index, right index)` match pairs; the rank
//! thread then *replays* every item *in batch-index order*: it folds the
//! item's [`KernelStats`] into the rank counter, re-decodes the matched
//! metadata from the frame copy, and runs the survey callback. That
//! fixed reduction order — by enqueue index, never completion order —
//! is what makes counts, metadata checksums, and merged kernel tallies
//! bit-identical to the serial path.
//!
//! # Quiescence
//!
//! A queued item is work the barrier must not miss: enqueue counts it
//! via [`Comm::defer_work`] and the replay balances it with
//! [`Comm::deferred_done`]. The survey also installs
//! [`ParQueue::flush`] as the rank's barrier drain hook
//! ([`Comm::set_drain_hook`]), so a rank spinning in `barrier()` keeps
//! draining its own queue (and any items that callbacks' sends fan out
//! into) until the whole world is quiet.
//!
//! # Send/Sync boundary
//!
//! Only [`Task`]s cross threads, and they are raw views: the frame
//! bytes live in the queue's arena (stable for the whole flush — the
//! arena's inner buffers never move when the outer vector grows), and
//! the adjacency slice lives in the rank's immutable
//! [`LocalShard`]. Workers read candidate keys and `AdjEntry::key`
//! fields only; metadata (`VM`/`EM`, possibly non-`Send` types) is
//! never cloned, dropped, or even touched off the rank thread.
//! Callbacks, the `Rc`-based handler registry, and all `RefCell` state
//! stay on the rank thread.
//!
//! # Steady-state allocation
//!
//! Frame buffers and match vectors are recycled through spare pools
//! after each flush, so a steady-state survey performs zero allocations
//! per batch on this path, matching the serial handlers.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::rc::Rc;

use rayon::pool;
use tripoll_graph::{AdjEntry, DistGraph, LocalShard};
use tripoll_ygm::wire::{ColView, SeqView, Wire, WireError, WireReader};
use tripoll_ygm::Comm;

use crate::engine::{
    intersect_col, intersect_stream, kernel_stats_add, kernel_stats_take, DecodePath,
    IntersectKernel, KernelStats, SurveyConfig,
};
use crate::meta::TriangleMeta;
use crate::push_common::{decode_candidate_view, CandView, Candidate, DynCallback};

/// Queued items at which an enqueue triggers an inline flush, bounding
/// arena growth on ranks that receive faster than they barrier.
const FLUSH_TASKS: usize = 128;

/// The parallel queue for one survey, or `None` when the configuration
/// takes the serial path: parallelism applies to the cursor decode path
/// only (the `Owned` reference path stays serial for differential
/// testing), and only when the `threads` axis resolves past one.
pub(crate) fn par_queue_for<VM, EM>(
    graph: &DistGraph<VM, EM>,
    cb: &DynCallback<VM, EM>,
    config: SurveyConfig,
) -> Option<Rc<ParQueue<VM, EM>>>
where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
{
    if config.decode == DecodePath::Cursor && config.threads.is_parallel() {
        Some(ParQueue::new(
            graph.shard().clone(),
            cb.clone(),
            config.kernel,
        ))
    } else {
        None
    }
}

/// Which handler enqueued the item — selects the worker-side frame walk
/// and the rank-side metadata replay.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum TaskKind {
    /// Columnar push batch vs `Adjm+(q)`.
    PushCol,
    /// Interleaved push batch vs `Adjm+(q)`.
    PushSeq,
    /// Columnar pull delivery vs one resume suffix.
    PullCol,
    /// Interleaved pull delivery vs one resume suffix.
    PullSeq,
}

/// A borrowed byte range that may cross threads. Validity is a queue
/// invariant: the bytes live in the flush's arena (see module docs).
#[derive(Clone, Copy)]
pub(crate) struct RawBytes {
    ptr: *const u8,
    len: usize,
}

impl RawBytes {
    fn of(bytes: &[u8]) -> Self {
        RawBytes {
            ptr: bytes.as_ptr(),
            len: bytes.len(),
        }
    }

    /// # Safety
    ///
    /// The caller guarantees the arena buffer is alive and unmoved for
    /// the chosen `'a`.
    unsafe fn slice<'a>(&self) -> &'a [u8] {
        // SAFETY: `ptr`/`len` came from a live `&[u8]` in `of`, and the
        // caller upholds the fn contract above.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

/// A borrowed typed slice that may cross threads; points into the
/// rank's immutable shard storage.
struct RawSlice<T> {
    ptr: *const T,
    len: usize,
}

impl<T> RawSlice<T> {
    fn of(s: &[T]) -> Self {
        RawSlice {
            ptr: s.as_ptr(),
            len: s.len(),
        }
    }

    /// # Safety
    ///
    /// The caller guarantees the shard outlives the flush and is not
    /// mutated while workers read it.
    unsafe fn slice<'a>(&self) -> &'a [T] {
        // SAFETY: `ptr`/`len` came from a live `&[T]` in `of`, and the
        // caller upholds the fn contract above.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

/// One parallel work item: intersect the copied candidate frame against
/// an adjacency slice. Workers fill `matches`, `stats`, and `error`;
/// everything needed for the callback replay stays rank-side in the
/// paired [`Ctx`].
pub(crate) struct Task<VM, EM> {
    kind: TaskKind,
    kernel: IntersectKernel,
    frame: RawBytes,
    right: RawSlice<AdjEntry<VM, EM>>,
    /// `(left batch index, right slice index)` per match, in left-index
    /// order (the kernels emit matches in order).
    matches: Vec<(u32, u32)>,
    /// This item's kernel tallies, taken on whichever thread ran it.
    stats: KernelStats,
    /// First frame decode error, surfaced at replay on the rank thread.
    error: Option<WireError>,
}

// SAFETY: workers access only the raw views above — frame bytes owned
// by the queue's arena and `AdjEntry::key` fields of the immutable
// shard — and the item-local `matches`/`stats`/`error`. The `VM`/`EM`
// payloads behind `right` are never cloned, dropped, or mutated off the
// rank thread (see module docs).
unsafe impl<VM, EM> Send for Task<VM, EM> {}

impl<VM: Wire, EM: Wire> Task<VM, EM> {
    /// Runs the intersection kernel over this item (on whatever thread
    /// the pool dispatched it to) and harvests the thread-local kernel
    /// tallies it produced. Requires the executing thread's tallies to
    /// be zero on entry — the flush discipline in [`ParQueue::flush`]
    /// guarantees it.
    fn process(&mut self) {
        if let Err(e) = self.walk() {
            self.error = Some(e);
        }
        self.stats = kernel_stats_take();
    }

    fn walk(&mut self) -> Result<(), WireError> {
        // SAFETY: the frame arena and the adjacency shard are kept
        // alive and unmutated by the rank thread until `ParQueue::flush`
        // has joined every outstanding task (see module docs).
        let frame = unsafe { self.frame.slice() };
        // SAFETY: same flush discipline as `frame` above.
        let right = unsafe { self.right.slice() };
        let base = right.as_ptr();
        let matches = &mut self.matches;
        let mut r = WireReader::new(frame);
        match self.kind {
            TaskKind::PushCol | TaskKind::PullCol => {
                let view: ColView<'_, EM> = ColView::capture(&mut r)?;
                let mut cur = view.walk();
                intersect_col(
                    self.kernel,
                    &mut cur.keys,
                    right,
                    |e| e.key,
                    |k, e| {
                        // SAFETY: `e` is borrowed from the same `right`
                        // slice `base` points at, so both pointers are
                        // within one allocation.
                        let ri = unsafe { (e as *const AdjEntry<VM, EM>).offset_from(base) };
                        matches.push((k.idx as u32, ri as u32));
                        Ok(())
                    },
                )
            }
            TaskKind::PushSeq | TaskKind::PullSeq => {
                let view: SeqView<'_, Candidate<EM>> = SeqView::capture(&mut r)?;
                let mut walk = view.walk();
                let mut li = 0u32;
                intersect_stream(
                    self.kernel,
                    view.len(),
                    || {
                        walk.next_with(|rr| {
                            let c = decode_candidate_view::<EM>(rr)?;
                            let out = (li, c.key);
                            li += 1;
                            Ok(out)
                        })
                    },
                    right,
                    |&(_, key)| key,
                    |e| e.key,
                    |(i, _), e| {
                        // SAFETY: `e` is borrowed from the same `right`
                        // slice `base` points at, so both pointers are
                        // within one allocation.
                        let ri = unsafe { (e as *const AdjEntry<VM, EM>).offset_from(base) };
                        matches.push((i, ri as u32));
                        Ok(())
                    },
                )
            }
        }
    }
}

/// Rank-local replay context for one [`Task`] — everything the callback
/// needs that must not cross threads.
pub(crate) enum Ctx<VM, EM> {
    /// A pushed wedge batch: decoded header fields plus the slot of the
    /// target vertex `q` in the shard.
    Push {
        p: u64,
        q: u64,
        meta_p: VM,
        meta_pq: EM,
        slot: u32,
    },
    /// A pulled delivery resumed at one recorded pointer: `slot` is the
    /// source vertex `p`'s position in the shard, `idx` the index of
    /// `q` in `Adjm+(p)` (the task's right side is the suffix past it).
    Pull { slot: u32, idx: u32 },
}

/// The per-survey parallel merge queue; see the module docs.
pub(crate) struct ParQueue<VM, EM> {
    shard: std::sync::Arc<LocalShard<VM, EM>>,
    cb: DynCallback<VM, EM>,
    kernel: IntersectKernel,
    tasks: RefCell<Vec<Task<VM, EM>>>,
    ctxs: RefCell<Vec<Ctx<VM, EM>>>,
    /// Frame arena: one buffer per envelope, holding the copied wire
    /// bytes every task of that envelope points into. Growing the outer
    /// vector never moves the inner heap buffers, so the raw frame
    /// views stay valid.
    frames: RefCell<Vec<Vec<u8>>>,
    spare_frames: RefCell<Vec<Vec<u8>>>,
    spare_matches: RefCell<Vec<Vec<(u32, u32)>>>,
    _marker: PhantomData<fn() -> (VM, EM)>,
}

impl<VM, EM> ParQueue<VM, EM>
where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
{
    pub(crate) fn new(
        shard: std::sync::Arc<LocalShard<VM, EM>>,
        cb: DynCallback<VM, EM>,
        kernel: IntersectKernel,
    ) -> Rc<Self> {
        Rc::new(ParQueue {
            shard,
            cb,
            kernel,
            tasks: RefCell::new(Vec::new()),
            ctxs: RefCell::new(Vec::new()),
            frames: RefCell::new(Vec::new()),
            spare_frames: RefCell::new(Vec::new()),
            spare_matches: RefCell::new(Vec::new()),
            _marker: PhantomData,
        })
    }

    /// Copies one envelope's candidate frame into the arena and returns
    /// a raw view of the copy (valid until the next flush recycles it).
    pub(crate) fn alloc_frame(&self, bytes: &[u8]) -> RawBytes {
        let mut buf = self.spare_frames.borrow_mut().pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(bytes);
        let raw = RawBytes::of(&buf);
        self.frames.borrow_mut().push(buf);
        raw
    }

    /// Queues one work item and counts it against the quiescence
    /// barrier. `right` must be a slice of this queue's shard.
    pub(crate) fn push_task(
        &self,
        c: &Comm,
        kind: TaskKind,
        frame: RawBytes,
        right: &[AdjEntry<VM, EM>],
        ctx: Ctx<VM, EM>,
    ) {
        let matches = self.spare_matches.borrow_mut().pop().unwrap_or_default();
        self.tasks.borrow_mut().push(Task {
            kind,
            kernel: self.kernel,
            frame,
            right: RawSlice::of(right),
            matches,
            stats: KernelStats::default(),
            error: None,
        });
        self.ctxs.borrow_mut().push(ctx);
        c.defer_work();
    }

    /// Flushes inline when the queue has grown past the batching
    /// threshold — called by handlers after enqueueing an envelope.
    pub(crate) fn maybe_flush(&self, c: &Comm) {
        if self.tasks.borrow().len() >= FLUSH_TASKS {
            self.flush(c);
        }
    }

    /// Dispatches every queued item across the pool, then replays the
    /// results in batch-index order on this (rank) thread: merge the
    /// item's kernel tallies, decode matched metadata from the frame
    /// copy, run the survey callback per triangle, and balance the
    /// item's `defer_work`. Returns whether any work was done (the
    /// barrier drain-hook contract).
    pub(crate) fn flush(&self, c: &Comm) -> bool {
        if self.tasks.borrow().is_empty() {
            return false;
        }
        // Take everything out of the cells first: callbacks may send,
        // and a send can dispatch handlers that enqueue fresh items.
        let mut tasks = self.tasks.take();
        let ctxs = self.ctxs.take();
        let frames = self.frames.take();
        // Stats discipline: park the rank's accumulated tallies so
        // every executing thread (workers start empty; this thread
        // participates) harvests exactly one item's delta per
        // `process`, then fold the deltas back in batch-index order.
        let saved = kernel_stats_take();
        pool::global().run_mut(&mut tasks, |t| t.process());
        kernel_stats_add(saved);
        for (task, ctx) in tasks.iter().zip(ctxs.iter()) {
            kernel_stats_add(task.stats);
            self.replay(c, task, ctx);
            c.deferred_done();
        }
        self.spare_frames.borrow_mut().extend(frames);
        let mut spare = self.spare_matches.borrow_mut();
        for mut task in tasks {
            task.matches.clear();
            spare.push(std::mem::take(&mut task.matches));
        }
        true
    }

    /// Runs the survey callback for every match of one item, decoding
    /// the matched metadata from the frame copy. Mirrors the serial
    /// handlers' `TriangleMeta` construction field for field.
    fn replay(&self, c: &Comm, task: &Task<VM, EM>, ctx: &Ctx<VM, EM>) {
        if let Some(e) = &task.error {
            c.abort(format_args!(
                "parallel merge: queued frame failed to decode: {e}"
            ));
        }
        if task.matches.is_empty() {
            return;
        }
        // SAFETY: replay runs on the rank thread before the arena is
        // recycled, so the frame bytes are still alive and unmoved.
        let frame = unsafe { task.frame.slice() };
        let mut r = WireReader::new(frame);
        let decode_err =
            |c: &Comm, e: WireError| -> ! { c.abort(format_args!("parallel merge replay: {e}")) };
        match (task.kind, ctx) {
            (
                TaskKind::PushCol,
                Ctx::Push {
                    p,
                    q,
                    meta_p,
                    meta_pq,
                    slot,
                },
            ) => {
                let lv = &self.shard.vertices()[*slot as usize];
                let view: ColView<'_, EM> =
                    ColView::capture(&mut r).unwrap_or_else(|e| decode_err(c, e));
                let mut metas = view.walk().metas;
                for &(li, ri) in &task.matches {
                    let e = &lv.adj[ri as usize];
                    let meta_pr = metas.get(li as usize).unwrap_or_else(|e| decode_err(c, e));
                    let tm = TriangleMeta {
                        p: *p,
                        q: *q,
                        r: e.v,
                        meta_p,
                        meta_q: &lv.meta,
                        meta_r: &e.vm,
                        meta_pq,
                        meta_pr: &meta_pr,
                        meta_qr: &e.em,
                    };
                    (self.cb)(c, &tm);
                }
            }
            (
                TaskKind::PushSeq,
                Ctx::Push {
                    p,
                    q,
                    meta_p,
                    meta_pq,
                    slot,
                },
            ) => {
                let lv = &self.shard.vertices()[*slot as usize];
                let view: SeqView<'_, Candidate<EM>> =
                    SeqView::capture(&mut r).unwrap_or_else(|e| decode_err(c, e));
                let mut walk = view.walk();
                let mut cand: Option<CandView<'_, EM>> = None;
                let mut decoded = 0u32;
                for &(li, ri) in &task.matches {
                    while decoded <= li {
                        cand = Some(
                            walk.next_with(decode_candidate_view::<EM>)
                                .expect("match index within captured sequence")
                                .unwrap_or_else(|e| decode_err(c, e)),
                        );
                        decoded += 1;
                    }
                    let cv = cand.expect("at least one candidate decoded");
                    let meta_pr = cv.em.get().unwrap_or_else(|e| decode_err(c, e));
                    let e = &lv.adj[ri as usize];
                    let tm = TriangleMeta {
                        p: *p,
                        q: *q,
                        r: e.v,
                        meta_p,
                        meta_q: &lv.meta,
                        meta_r: &e.vm,
                        meta_pq,
                        meta_pr: &meta_pr,
                        meta_qr: &e.em,
                    };
                    (self.cb)(c, &tm);
                }
            }
            (TaskKind::PullCol, Ctx::Pull { slot, idx }) => {
                let lv = &self.shard.vertices()[*slot as usize];
                let eq = &lv.adj[*idx as usize];
                let suffix = &lv.adj[*idx as usize + 1..];
                let view: ColView<'_, EM> =
                    ColView::capture(&mut r).unwrap_or_else(|e| decode_err(c, e));
                let mut metas = view.walk().metas;
                for &(li, ri) in &task.matches {
                    let s_entry = &suffix[ri as usize];
                    let meta_qr = metas.get(li as usize).unwrap_or_else(|e| decode_err(c, e));
                    let tm = TriangleMeta {
                        p: lv.id,
                        q: eq.v,
                        r: s_entry.v,
                        meta_p: &lv.meta,
                        meta_q: &eq.vm,
                        meta_r: &s_entry.vm,
                        meta_pq: &eq.em,
                        meta_pr: &s_entry.em,
                        meta_qr: &meta_qr,
                    };
                    (self.cb)(c, &tm);
                }
            }
            (TaskKind::PullSeq, Ctx::Pull { slot, idx }) => {
                let lv = &self.shard.vertices()[*slot as usize];
                let eq = &lv.adj[*idx as usize];
                let suffix = &lv.adj[*idx as usize + 1..];
                let view: SeqView<'_, Candidate<EM>> =
                    SeqView::capture(&mut r).unwrap_or_else(|e| decode_err(c, e));
                let mut walk = view.walk();
                let mut cand: Option<CandView<'_, EM>> = None;
                let mut decoded = 0u32;
                for &(li, ri) in &task.matches {
                    while decoded <= li {
                        cand = Some(
                            walk.next_with(decode_candidate_view::<EM>)
                                .expect("match index within captured sequence")
                                .unwrap_or_else(|e| decode_err(c, e)),
                        );
                        decoded += 1;
                    }
                    let cv = cand.expect("at least one candidate decoded");
                    let meta_qr = cv.em.get().unwrap_or_else(|e| decode_err(c, e));
                    let s_entry = &suffix[ri as usize];
                    let tm = TriangleMeta {
                        p: lv.id,
                        q: eq.v,
                        r: s_entry.v,
                        meta_p: &lv.meta,
                        meta_q: &eq.vm,
                        meta_r: &s_entry.vm,
                        meta_pq: &eq.em,
                        meta_pr: &s_entry.em,
                        meta_qr: &meta_qr,
                    };
                    (self.cb)(c, &tm);
                }
            }
            // Task kinds and contexts are enqueued in lockstep.
            _ => unreachable!("task kind / replay context mismatch"),
        }
    }
}
