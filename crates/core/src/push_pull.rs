//! The Push-Pull survey engine (paper §4.4).
//!
//! Distributed triangle identification generates `O(d+(p)²)` wedge checks
//! per vertex; the Push-Pull optimization reduces the traffic they cost
//! by letting each (source rank, target vertex) pair choose the cheaper
//! direction:
//!
//! 1. **Dry-run** — a communication-free pass records, per target vertex
//!    `q`, resume pointers `(p, index of q in Adjm+(p))` for the pull
//!    case (`ResumePlan`: one sorted vector with run-length grouping,
//!    not a hash map per target). One `(q, count)` record per target —
//!    the count of candidate edges this rank would push, derived from
//!    the grouped pointers — goes to `Rank(q)`, which grants a pull when
//!    `|Adjm+(q)| < count` — i.e. shipping `q`'s adjacency once is
//!    cheaper than receiving `count` candidates — and otherwise replies
//!    with a push veto.
//! 2. **Push phase** — wedge batches for vetoed targets are pushed
//!    exactly as in Push-Only.
//! 3. **Pull phase** — each owner ships `Adjm+(q)` once to every granted
//!    rank (coalesced across that rank's sources); the puller resumes its
//!    recorded pointers and intersects locally, running callbacks on
//!    `Rank(p)` (where, by the storage design of §4.2, all six metadata
//!    values are already resident).
//!
//! Like the push path, the pull delivery is layout-generic
//! ([`crate::engine::BatchLayout`]): columnar deliveries are captured
//! once as a [`ColView`] (three bounded takes) and re-walked per resume
//! suffix with metadata decoded only on matches; interleaved deliveries
//! use the [`SeqView`] skip-walk capture.

use std::cell::RefCell;
use std::rc::Rc;

use tripoll_graph::{DistGraph, OrderKey};
use tripoll_ygm::hash::{FastMap, FastSet};
use tripoll_ygm::wire::{encode_seq, ColBatch, ColCursor, ColView, SeqView, Wire};
use tripoll_ygm::{Comm, Handler};

use crate::engine::{
    intersect_col, intersect_slices, intersect_stream, BatchLayout, DecodePath, EngineMode,
    PhaseTimer, SurveyConfig, SurveyReport,
};
use crate::meta::{SurveyCallback, TriangleMeta};
use crate::par::{par_queue_for, Ctx, ParQueue, TaskKind};
use crate::push_common::{
    decode_candidate_view, encode_candidate, encode_candidate_columns, push_wedge_batches,
    register_push_handler, Candidate, DynCallback,
};

/// Dry-run record: `(q, planned candidate count, source rank)`.
type DryRunMsg = (u64, u64, u32);
/// Interleaved pull delivery: `(q, Adjm+(q) projected to (r, d(r), meta(q,r)))`.
type PullMsg<EM> = (u64, Vec<Candidate<EM>>);
/// Columnar pull delivery: same projection as three packed columns.
type PullMsgCol<EM> = (u64, ColBatch<EM>);

/// The registered pull handler, keyed by the delivery's batch layout
/// (mirror of [`crate::push_common::PushHandler`]).
enum PullHandler<EM> {
    Interleaved(Handler<PullMsg<EM>>),
    Columnar(Handler<PullMsgCol<EM>>),
}

/// Dry-run resume pointers, grouped by wedge target.
///
/// The paper's "pointers to efficiently iterate over source vertices
/// stored locally" (§4.4). Stored as **one** `(q, slot, index)` vector
/// sorted by `q` — runs of equal `q` are contiguous — instead of the
/// former pair of hash maps (`planned` counts plus per-target pointer
/// vectors): building it is a push per wedge target plus one sort with
/// no per-target allocation, the planned candidate count is derived
/// from a run when the dry-run record is sent (so no second map), a
/// target's pointers are found by binary search, and the post-dry-run
/// veto filtering is an in-place `retain`.
#[derive(Default)]
struct ResumePlan {
    /// `(q, vertex slot, adjacency index)`, sorted by `q` after
    /// [`ResumePlan::seal`].
    entries: Vec<(u64, u32, u32)>,
}

impl ResumePlan {
    /// Records one resume pointer (pre-seal, vertex-major order).
    #[inline]
    fn push(&mut self, q: u64, slot: u32, idx: u32) {
        self.entries.push((q, slot, idx));
    }

    /// Sorts the pointers by target so equal-`q` runs are contiguous.
    fn seal(&mut self) {
        self.entries.sort_unstable();
    }

    /// The contiguous runs, one per distinct target (requires a sealed
    /// plan).
    fn runs(&self) -> impl Iterator<Item = (u64, &[(u64, u32, u32)])> {
        self.entries
            .chunk_by(|a, b| a.0 == b.0)
            .map(|run| (run[0].0, run))
    }

    /// The resume pointers recorded for `q` (empty if none). Binary
    /// search over the sealed vector — the lookup the former hash map
    /// provided, without its per-target allocations.
    fn get(&self, q: u64) -> &[(u64, u32, u32)] {
        let start = self.entries.partition_point(|e| e.0 < q);
        let end = start + self.entries[start..].partition_point(|e| e.0 == q);
        &self.entries[start..end]
    }

    /// Drops every pointer whose target fails `keep`, in place.
    fn retain_targets(&mut self, mut keep: impl FnMut(u64) -> bool) {
        self.entries.retain(|&(q, _, _)| keep(q));
    }
}

/// A captured dry-run outcome, reusable across queries.
///
/// The dry-run is a pure function of the graph content, the partition,
/// and the rank count — it does not depend on any [`SurveyConfig`]
/// axis. A resident graph therefore captures the plan on the first
/// Push-Pull query at a given rank count and replays it (zero dry-run
/// traffic) for every later query at that count, with bit-identical
/// results: the replay prefills exactly the veto set, pull list, and
/// post-veto resume pointers the fresh dry-run would have produced.
///
/// Plans are per-rank: rank `r`'s plan is only valid on rank `r` of a
/// world with the same rank count over the same shards.
///
/// "Same shards" is enforced by lifetime, not by checksum: captured
/// plans live inside the resident tier's per-world-size cache, and
/// `ResidentGraph::ingest_batch` drops that cache wholesale when a
/// batch changes the storage — degrees, `d+`, and pull decisions may
/// all shift, so the first Push-Pull query after an ingest runs a
/// fresh dry-run and re-captures.
#[derive(Debug, Clone, Default)]
pub(crate) struct DryRunPlan {
    /// Post-veto resume pointers (sealed order).
    entries: Vec<(u64, u32, u32)>,
    /// Targets whose owner vetoed the pull, sorted.
    veto: Vec<u64>,
    /// Locally-owned vertices `q` → sorted ranks granted a pull.
    pull_list: Vec<(u64, Vec<u32>)>,
    /// Pull requests this rank granted.
    grants: u64,
}

/// How [`survey_push_pull_planned`] treats the dry-run phase.
pub(crate) enum PlanMode<'a> {
    /// Run the dry-run and discard its plan (the classic path).
    Fresh,
    /// Run the dry-run and store the captured plan for later replay.
    Capture(&'a mut Option<DryRunPlan>),
    /// Skip the dry-run traffic; prefill its outcome from the plan.
    Replay(&'a DryRunPlan),
}

#[derive(Default)]
struct PpState {
    /// Resume pointers per wedge target (also yields the dry-run
    /// planned counts; see [`ResumePlan`]).
    resume: ResumePlan,
    /// Targets whose owner vetoed the pull (push instead).
    veto: FastSet<u64>,
    /// Local vertices q → ranks that will pull `Adjm+(q)`.
    pull_list: FastMap<u64, Vec<u32>>,
    /// Adjacency lists this rank pulled (received).
    pulled: u64,
    /// Pull requests this rank granted.
    grants: u64,
}

/// Runs a Push-Pull triangle survey; `callback` executes once per
/// triangle, on `Rank(q)` for pushed wedges and on `Rank(p)` for pulled
/// ones. Collective. Returns this rank's [`SurveyReport`]. Runs the
/// production [`SurveyConfig`] (columnar batches, cursor decode); see
/// [`survey_push_pull_with`] to select the configuration explicitly.
pub fn survey_push_pull<VM, EM, F>(
    comm: &Comm,
    graph: &DistGraph<VM, EM>,
    callback: F,
) -> SurveyReport
where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
    F: SurveyCallback<VM, EM>,
{
    survey_push_pull_with(comm, graph, SurveyConfig::default(), callback)
}

/// [`survey_push_pull`] with an explicit [`SurveyConfig`] (or a bare
/// [`BatchLayout`] / [`DecodePath`], via `Into`) — the configuration is
/// part of the collective contract (same value on every rank). The
/// non-default combinations exist for differential testing.
pub fn survey_push_pull_with<VM, EM, F>(
    comm: &Comm,
    graph: &DistGraph<VM, EM>,
    config: impl Into<SurveyConfig>,
    callback: F,
) -> SurveyReport
where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
    F: SurveyCallback<VM, EM>,
{
    survey_push_pull_planned(comm, graph, config.into(), PlanMode::Fresh, callback)
}

/// [`survey_push_pull_with`] with explicit dry-run plan handling — the
/// resident-graph entry point (see [`crate::service::ResidentGraph`]).
/// Collective; all four handlers are registered in every [`PlanMode`],
/// so handler ids and registration order are identical whether the
/// dry-run runs fresh, is captured, or is replayed.
pub(crate) fn survey_push_pull_planned<VM, EM, F>(
    comm: &Comm,
    graph: &DistGraph<VM, EM>,
    config: SurveyConfig,
    mode: PlanMode<'_>,
    callback: F,
) -> SurveyReport
where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
    F: SurveyCallback<VM, EM>,
{
    let cb: DynCallback<VM, EM> = Rc::new(callback);
    let st = Rc::new(RefCell::new(PpState::default()));
    let queue = par_queue_for(graph, &cb, config);

    // Handler registration order is part of the SPMD contract: all four
    // registrations below happen on every rank in this exact order.
    let push_handler = register_push_handler(comm, graph, cb.clone(), config, queue.clone());

    let st_veto = st.clone();
    let veto_handler = comm.register::<u64, _>(move |_c, q| {
        st_veto.borrow_mut().veto.insert(q);
    });

    let st_dry = st.clone();
    let g_dry = graph.clone();
    let dry_handler = comm.register::<DryRunMsg, _>(move |c, (q, count, src)| {
        let dplus_q = g_dry.shard().get(q).map_or(0, |lv| lv.dplus());
        if dplus_q < count {
            let mut s = st_dry.borrow_mut();
            s.pull_list.entry(q).or_default().push(src);
            s.grants += 1;
        } else {
            c.send(src as usize, &veto_handler, &q);
        }
    });

    let pull_handler = register_pull_handler(comm, graph, st.clone(), cb.clone(), config, &queue);
    if let Some(q) = &queue {
        // Queued merge work is drained inside every quiescence barrier:
        // the hook flushes pending batches to the pool, and the deferred
        // work counter keeps the barrier from completing early.
        let q2 = q.clone();
        comm.set_drain_hook(move |c| q2.flush(c));
    }

    // --- Phase 1: Push vs Pull Dry-Run -------------------------------
    let timer = PhaseTimer::begin(comm, "dry-run");
    if let PlanMode::Replay(plan) = &mode {
        // The dry-run is a pure function of (graph, partition, rank
        // count); a replayed plan prefills its entire outcome with
        // zero traffic. The phase barrier below still runs, keeping
        // the collective structure identical across modes.
        let mut s = st.borrow_mut();
        s.resume.entries = plan.entries.clone();
        s.veto = plan.veto.iter().copied().collect();
        for (q, ranks) in &plan.pull_list {
            s.pull_list.insert(*q, ranks.clone());
        }
        s.grants = plan.grants;
    } else {
        {
            let mut s = st.borrow_mut();
            for (slot, lv) in graph.shard().vertices().iter().enumerate() {
                for (i, e) in lv.adj.iter().enumerate() {
                    let suffix_len = lv.adj.len() - i - 1;
                    if suffix_len == 0 {
                        break;
                    }
                    s.resume.push(e.v, slot as u32, i as u32);
                }
            }
            s.resume.seal();
        }
        // One dry-run record per run; the planned candidate count is
        // recomputed from the run's pointers (suffix lengths), which is
        // exactly what the retired `planned` hash map used to store.
        let s = st.borrow();
        let shard = graph.shard();
        let my_rank = comm.rank() as u32;
        for (q, run) in s.resume.runs() {
            let count: u64 = run
                .iter()
                .map(|&(_, slot, i)| {
                    (shard.vertices()[slot as usize].adj.len() - i as usize - 1) as u64
                })
                .sum();
            comm.send(graph.owner(q), &dry_handler, &(q, count, my_rank));
        }
    }
    comm.barrier();
    let dry_phase = timer.end();

    // The dry-run's bookkeeping is O(wedge targets); release what the
    // remaining phases will never read so the push phase doesn't carry
    // it at peak: resume pointers of vetoed targets will be satisfied
    // by pushes, not pulls (the veto set is final once the dry-run
    // barrier completes). A replayed plan arrives already filtered.
    if !matches!(mode, PlanMode::Replay(_)) {
        let mut s = st.borrow_mut();
        let veto = std::mem::take(&mut s.veto);
        s.resume.retain_targets(|q| !veto.contains(&q));
        s.veto = veto;
    }
    if let PlanMode::Capture(out) = mode {
        // Snapshot the post-veto dry-run outcome. Rank vectors and the
        // pull list arrive in message order, which is scheduling
        // dependent; sort them so a captured plan is deterministic.
        let s = st.borrow();
        let mut veto: Vec<u64> = s.veto.iter().copied().collect();
        veto.sort_unstable();
        let mut pull_list: Vec<(u64, Vec<u32>)> = s
            .pull_list
            .iter()
            .map(|(&q, ranks)| {
                let mut r = ranks.clone();
                r.sort_unstable();
                (q, r)
            })
            .collect();
        pull_list.sort_unstable_by_key(|&(q, _)| q);
        *out = Some(DryRunPlan {
            entries: s.resume.entries.clone(),
            veto,
            pull_list,
            grants: s.grants,
        });
    }

    // --- Phase 2: Push ------------------------------------------------
    let timer = PhaseTimer::begin(comm, "push");
    {
        let s = st.borrow();
        push_wedge_batches(comm, graph, &push_handler, |q| !s.veto.contains(&q));
    }
    comm.barrier();
    let push_phase = timer.end();

    // --- Phase 3: Pull --------------------------------------------------
    let timer = PhaseTimer::begin(comm, "pull");
    {
        let s = st.borrow();
        let shard = graph.shard();
        for (&q, ranks) in &s.pull_list {
            let lv = shard
                .get(q)
                .expect("pull-granted vertex must be locally owned");
            // Encode-once fan-out: the `Adjm+(q)` projection serializes
            // straight from graph storage exactly once (in the survey's
            // batch layout), and the encoded record is memcpy'd to
            // every granted rank. Under node aggregation the comm layer
            // tightens this further: granted ranks sharing a remote node
            // receive one multicast section — the adjacency crosses the
            // wire once per *node* and the gateway fans it out.
            let dests = ranks.iter().map(|&src| src as usize);
            match &pull_handler {
                PullHandler::Interleaved(h) => comm.send_to_many(
                    dests,
                    h,
                    (q, encode_seq(&lv.adj, |e, buf| encode_candidate(e, buf))),
                ),
                PullHandler::Columnar(h) => {
                    comm.send_to_many(dests, h, (q, encode_candidate_columns(&lv.adj)))
                }
            }
        }
    }
    comm.barrier();
    let pull_phase = timer.end();
    if queue.is_some() {
        comm.clear_drain_hook();
    }

    let s = st.borrow();
    SurveyReport {
        mode: EngineMode::PushPull,
        total_seconds: dry_phase.seconds + push_phase.seconds + pull_phase.seconds,
        phases: vec![dry_phase, push_phase, pull_phase],
        pulled_vertices: s.pulled,
        pull_grants: s.grants,
    }
}

/// Registers the pull-delivery handler for the configured layout and
/// decode path. Collective (same `config` on every rank).
///
/// One arriving `Adjm+(q)` projection is intersected against **every**
/// resume suffix recorded for `q`. The columnar cursor path captures
/// the frame's column extents once ([`ColView`], three bounded takes)
/// and re-walks the key columns per suffix, decoding `meta(q,r)` only
/// for triangle matches; the interleaved cursor path does the same
/// through a [`SeqView`] (one skip-walk capture, [`tripoll_ygm::wire::Lazy`]
/// per-candidate metadata). The owned paths materialize the projection
/// and are the differential-testing references.
///
/// With a `queue` (parallel merge path, cursor decode only) the handler
/// copies the delivered frame once and enqueues one work item per
/// resume suffix — empty suffixes included, so the per-suffix kernel
/// accounting matches the serial path exactly — instead of
/// intersecting inline.
fn register_pull_handler<VM, EM>(
    comm: &Comm,
    graph: &DistGraph<VM, EM>,
    st: Rc<RefCell<PpState>>,
    cb: DynCallback<VM, EM>,
    config: SurveyConfig,
    queue: &Option<Rc<ParQueue<VM, EM>>>,
) -> PullHandler<EM>
where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
{
    let kernel = config.kernel;
    match (config.layout, config.decode, queue.clone()) {
        (BatchLayout::Columnar, DecodePath::Cursor, Some(pq)) => {
            let g = graph.clone();
            PullHandler::Columnar(comm.register_borrowed::<PullMsgCol<EM>, _>(move |c, r| {
                let q = u64::decode(r)?;
                let start = r.position();
                let view: ColView<'_, EM> = ColView::capture(r)?;
                let frame = r.since(start);
                st.borrow_mut().pulled += 1;
                let s = st.borrow();
                let shard = g.shard();
                let entries = s.resume.get(q);
                if !entries.is_empty() {
                    // One frame copy shared by every resume suffix.
                    let raw = pq.alloc_frame(frame);
                    for &(_, slot, idx) in entries {
                        let lv = &shard.vertices()[slot as usize];
                        debug_assert_eq!(lv.adj[idx as usize].v, q);
                        let suffix = &lv.adj[idx as usize + 1..];
                        c.add_work((suffix.len() + view.len()) as u64);
                        pq.push_task(c, TaskKind::PullCol, raw, suffix, Ctx::Pull { slot, idx });
                    }
                }
                drop(s);
                pq.maybe_flush(c);
                Ok(())
            }))
        }
        (BatchLayout::Interleaved, DecodePath::Cursor, Some(pq)) => {
            let g = graph.clone();
            PullHandler::Interleaved(comm.register_borrowed::<PullMsg<EM>, _>(move |c, r| {
                let q = u64::decode(r)?;
                let start = r.position();
                let view: SeqView<'_, Candidate<EM>> = SeqView::capture(r)?;
                let frame = r.since(start);
                st.borrow_mut().pulled += 1;
                let s = st.borrow();
                let shard = g.shard();
                let entries = s.resume.get(q);
                if !entries.is_empty() {
                    let raw = pq.alloc_frame(frame);
                    for &(_, slot, idx) in entries {
                        let lv = &shard.vertices()[slot as usize];
                        debug_assert_eq!(lv.adj[idx as usize].v, q);
                        let suffix = &lv.adj[idx as usize + 1..];
                        c.add_work((suffix.len() + view.len()) as u64);
                        pq.push_task(c, TaskKind::PullSeq, raw, suffix, Ctx::Pull { slot, idx });
                    }
                }
                drop(s);
                pq.maybe_flush(c);
                Ok(())
            }))
        }
        (BatchLayout::Columnar, DecodePath::Cursor, None) => {
            let g = graph.clone();
            PullHandler::Columnar(comm.register_borrowed::<PullMsgCol<EM>, _>(move |c, r| {
                let q = u64::decode(r)?;
                let view: ColView<'_, EM> = ColView::capture(r)?;
                st.borrow_mut().pulled += 1;
                let s = st.borrow();
                let shard = g.shard();
                for &(_, slot, idx) in s.resume.get(q) {
                    let lv = &shard.vertices()[slot as usize];
                    let eq = &lv.adj[idx as usize];
                    debug_assert_eq!(eq.v, q);
                    let suffix = &lv.adj[idx as usize + 1..];
                    c.add_work((suffix.len() + view.len()) as u64);
                    let ColCursor {
                        mut keys,
                        mut metas,
                    } = view.walk();
                    intersect_col(
                        kernel,
                        &mut keys,
                        suffix,
                        |s_entry| s_entry.key,
                        |k, s_entry| {
                            debug_assert_eq!(
                                k.v, s_entry.v,
                                "OrderKey equality implies vertex equality"
                            );
                            let meta_qr = metas.get(k.idx)?;
                            let tm = TriangleMeta {
                                p: lv.id,
                                q,
                                r: s_entry.v,
                                meta_p: &lv.meta,
                                meta_q: &eq.vm,
                                meta_r: &s_entry.vm,
                                meta_pq: &eq.em,
                                meta_pr: &s_entry.em,
                                meta_qr: &meta_qr,
                            };
                            cb(c, &tm);
                            Ok(())
                        },
                    )?;
                }
                Ok(())
            }))
        }
        (BatchLayout::Columnar, DecodePath::Owned, _) => {
            let g = graph.clone();
            PullHandler::Columnar(comm.register::<PullMsgCol<EM>, _>(move |c, (q, batch)| {
                st.borrow_mut().pulled += 1;
                let s = st.borrow();
                let shard = g.shard();
                for &(_, slot, idx) in s.resume.get(q) {
                    let lv = &shard.vertices()[slot as usize];
                    let eq = &lv.adj[idx as usize];
                    debug_assert_eq!(eq.v, q);
                    let suffix = &lv.adj[idx as usize + 1..];
                    c.add_work((suffix.len() + batch.0.len()) as u64);
                    intersect_slices(
                        kernel,
                        suffix,
                        &batch.0,
                        |s| s.key,
                        |pe| OrderKey::new(pe.0, pe.1),
                        |s_entry, pe| {
                            let tm = TriangleMeta {
                                p: lv.id,
                                q,
                                r: s_entry.v,
                                meta_p: &lv.meta,
                                meta_q: &eq.vm,
                                meta_r: &s_entry.vm,
                                meta_pq: &eq.em,
                                meta_pr: &s_entry.em,
                                meta_qr: &pe.2,
                            };
                            cb(c, &tm);
                        },
                    );
                }
            }))
        }
        (BatchLayout::Interleaved, DecodePath::Cursor, None) => {
            let g = graph.clone();
            PullHandler::Interleaved(comm.register_borrowed::<PullMsg<EM>, _>(move |c, r| {
                let q = u64::decode(r)?;
                let view: SeqView<'_, Candidate<EM>> = SeqView::capture(r)?;
                st.borrow_mut().pulled += 1;
                let s = st.borrow();
                let shard = g.shard();
                for &(_, slot, idx) in s.resume.get(q) {
                    let lv = &shard.vertices()[slot as usize];
                    let eq = &lv.adj[idx as usize];
                    debug_assert_eq!(eq.v, q);
                    let suffix = &lv.adj[idx as usize + 1..];
                    c.add_work((suffix.len() + view.len()) as u64);
                    let mut walk = view.walk();
                    intersect_stream(
                        kernel,
                        view.len(),
                        || walk.next_with(decode_candidate_view::<EM>),
                        suffix,
                        |pe| pe.key,
                        |s_entry| s_entry.key,
                        |pe, s_entry| {
                            debug_assert_eq!(
                                pe.v, s_entry.v,
                                "OrderKey equality implies vertex equality"
                            );
                            let meta_qr = pe.em.get()?;
                            let tm = TriangleMeta {
                                p: lv.id,
                                q,
                                r: s_entry.v,
                                meta_p: &lv.meta,
                                meta_q: &eq.vm,
                                meta_r: &s_entry.vm,
                                meta_pq: &eq.em,
                                meta_pr: &s_entry.em,
                                meta_qr: &meta_qr,
                            };
                            cb(c, &tm);
                            Ok(())
                        },
                    )?;
                }
                Ok(())
            }))
        }
        (BatchLayout::Interleaved, DecodePath::Owned, _) => {
            let g = graph.clone();
            PullHandler::Interleaved(comm.register::<PullMsg<EM>, _>(move |c, (q, pulled_adj)| {
                st.borrow_mut().pulled += 1;
                let s = st.borrow();
                let shard = g.shard();
                for &(_, slot, idx) in s.resume.get(q) {
                    let lv = &shard.vertices()[slot as usize];
                    let eq = &lv.adj[idx as usize];
                    debug_assert_eq!(eq.v, q);
                    let suffix = &lv.adj[idx as usize + 1..];
                    c.add_work((suffix.len() + pulled_adj.len()) as u64);
                    intersect_slices(
                        kernel,
                        suffix,
                        &pulled_adj,
                        |s| s.key,
                        |pe| OrderKey::new(pe.0, pe.1),
                        |s_entry, pe| {
                            let tm = TriangleMeta {
                                p: lv.id,
                                q,
                                r: s_entry.v,
                                meta_p: &lv.meta,
                                meta_q: &eq.vm,
                                meta_r: &s_entry.vm,
                                meta_pq: &eq.em,
                                meta_pr: &s_entry.em,
                                meta_qr: &pe.2,
                            };
                            cb(c, &tm);
                        },
                    );
                }
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use tripoll_graph::{build_dist_graph, EdgeList, Partition};
    use tripoll_ygm::World;

    #[test]
    fn resume_plan_groups_sorts_and_retains() {
        let mut plan = ResumePlan::default();
        // Vertex-major insertion order, targets deliberately shuffled.
        plan.push(9, 0, 0);
        plan.push(2, 0, 1);
        plan.push(9, 1, 0);
        plan.push(5, 1, 1);
        plan.push(2, 2, 0);
        plan.seal();
        let runs: Vec<(u64, usize)> = plan.runs().map(|(q, run)| (q, run.len())).collect();
        assert_eq!(runs, vec![(2, 2), (5, 1), (9, 2)]);
        assert_eq!(plan.get(9), &[(9, 0, 0), (9, 1, 0)]);
        assert_eq!(plan.get(5), &[(5, 1, 1)]);
        assert!(plan.get(7).is_empty());
        plan.retain_targets(|q| q != 9);
        assert!(plan.get(9).is_empty());
        assert_eq!(plan.get(2), &[(2, 0, 1), (2, 2, 0)]);
        let runs: Vec<u64> = plan.runs().map(|(q, _)| q).collect();
        assert_eq!(runs, vec![2, 5]);
    }

    fn run_count(edges: &[(u64, u64)], nranks: usize) -> (u64, Vec<SurveyReport>) {
        let list = EdgeList::from_vec(edges.iter().map(|&(u, v)| (u, v, ())).collect::<Vec<_>>());
        let out = World::new(nranks).run(|comm| {
            let local = list.stride_for_rank(comm.rank(), comm.nranks());
            let g = build_dist_graph(comm, local, |_| (), Partition::Hashed);
            let count = Rc::new(Cell::new(0u64));
            let count2 = count.clone();
            let report = survey_push_pull(comm, &g, move |_c, _tm| {
                count2.set(count2.get() + 1);
            });
            (comm.all_reduce_sum(count.get()), report)
        });
        let total = out[0].0;
        for (t, _) in &out {
            assert_eq!(*t, total);
        }
        (total, out.into_iter().map(|(_, r)| r).collect())
    }

    #[test]
    fn triangle() {
        let (count, reports) = run_count(&[(0, 1), (1, 2), (2, 0)], 2);
        assert_eq!(count, 1);
        for r in &reports {
            assert_eq!(r.mode, EngineMode::PushPull);
            assert_eq!(r.phases.len(), 3);
            assert_eq!(r.phases[0].name, "dry-run");
            assert_eq!(r.phases[1].name, "push");
            assert_eq!(r.phases[2].name, "pull");
        }
    }

    #[test]
    fn k6_various_ranks() {
        let mut edges = Vec::new();
        for u in 0..6u64 {
            for v in (u + 1)..6 {
                edges.push((u, v));
            }
        }
        for nranks in [1, 2, 3, 5] {
            let (count, _) = run_count(&edges, nranks);
            assert_eq!(count, 20, "K6 has C(6,3)=20 triangles, nranks={nranks}");
        }
    }

    #[test]
    fn pull_happens_on_shared_hub_targets() {
        // Many low-degree sources on each rank share two high-degree hubs
        // whose adjacency is short relative to the candidates aimed at
        // them — the Fig. 3 scenario, which must trigger pulls.
        //
        // Construction: k "source" vertices each adjacent to hubs h1, h2;
        // plus the edge (h1, h2) closing k triangles. Source degree 2 <
        // hub degree k+1, so each source points at both hubs and pushes a
        // single candidate per wedge — unless pulling wins.
        let k = 24u64;
        let h1 = 1000;
        let h2 = 1001;
        let mut edges = vec![(h1, h2)];
        for sv in 0..k {
            edges.push((sv, h1));
            edges.push((sv, h2));
        }
        let (count, reports) = run_count(&edges, 2);
        assert_eq!(count, k, "one triangle per source vertex");
        let pulled: u64 = reports.iter().map(|r| r.pulled_vertices).sum();
        let grants: u64 = reports.iter().map(|r| r.pull_grants).sum();
        assert!(pulled > 0, "expected pulls on hub-shared topology");
        assert_eq!(pulled, grants, "every grant results in one delivery");
    }

    #[test]
    fn star_has_no_wedges_no_pulls_no_pushes() {
        // Every leaf's Adj+ is just the hub (empty suffix): no wedge
        // batches exist, so the dry-run plans nothing and nothing moves.
        let edges: Vec<(u64, u64)> = (1..=20u64).map(|v| (0, v)).collect();
        let (count, reports) = run_count(&edges, 3);
        assert_eq!(count, 0);
        for r in &reports {
            assert_eq!(r.pulled_vertices, 0);
            assert_eq!(r.pull_grants, 0);
            assert_eq!(r.phases[1].stats.records_total(), 0, "no pushes");
        }
    }

    #[test]
    fn single_triangle_vetoes_the_pull() {
        // K3: the one wedge pushes one candidate to q, and |Adj+(q)| = 1
        // is not < 1, so the owner vetoes and the wedge is pushed.
        let (count, reports) = run_count(&[(0, 1), (1, 2), (2, 0)], 1);
        assert_eq!(count, 1);
        for r in &reports {
            assert_eq!(r.pulled_vertices, 0, "K3 must not pull");
        }
    }

    #[test]
    fn empty_adjacency_targets_are_pulled_cheaply() {
        // In a cycle, hash tie-breaks give some vertices d+ = 0; pulling
        // their empty adjacency beats pushing even one candidate, so the
        // paper's rule (|Adj+(q)| < count) grants those pulls. Counts are
        // unaffected.
        let n = 40u64;
        let edges: Vec<(u64, u64)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let (count, reports) = run_count(&edges, 3);
        assert_eq!(count, 0);
        let pulled: u64 = reports.iter().map(|r| r.pulled_vertices).sum();
        let grants: u64 = reports.iter().map(|r| r.pull_grants).sum();
        assert_eq!(pulled, grants);
    }

    #[test]
    fn metadata_correct_in_pull_path() {
        // Same hub construction as above so the pull path executes, with
        // content-addressed metadata validated inside the callback —
        // once per layout, so both the ColView and SeqView re-walks are
        // covered.
        for layout in [BatchLayout::Columnar, BatchLayout::Interleaved] {
            let k = 16u64;
            let h1 = 500;
            let h2 = 501;
            let mut edges = vec![(h1, h2)];
            for sv in 0..k {
                edges.push((sv, h1));
                edges.push((sv, h2));
            }
            let em_of = |u: u64, v: u64| (u.min(v) << 20) | u.max(v);
            let list = EdgeList::from_vec(
                edges
                    .iter()
                    .map(|&(u, v)| (u, v, em_of(u, v)))
                    .collect::<Vec<_>>(),
            );
            let out = World::new(2).run(|comm| {
                let local = list.stride_for_rank(comm.rank(), comm.nranks());
                let g = build_dist_graph(comm, local, |v| v * 31 + 7, Partition::Hashed);
                let seen = Rc::new(Cell::new(0u64));
                let seen2 = seen.clone();
                let report = survey_push_pull_with(comm, &g, layout, move |_c, tm| {
                    assert_eq!(*tm.meta_p, tm.p * 31 + 7);
                    assert_eq!(*tm.meta_q, tm.q * 31 + 7);
                    assert_eq!(*tm.meta_r, tm.r * 31 + 7);
                    assert_eq!(*tm.meta_pq, em_of(tm.p, tm.q));
                    assert_eq!(*tm.meta_pr, em_of(tm.p, tm.r));
                    assert_eq!(*tm.meta_qr, em_of(tm.q, tm.r));
                    seen2.set(seen2.get() + 1);
                });
                (comm.all_reduce_sum(seen.get()), report.pulled_vertices)
            });
            assert_eq!(out[0].0, k, "layout {layout}");
            let pulled: u64 = out.iter().map(|(_, p)| p).sum();
            assert!(pulled > 0, "test must exercise the pull path ({layout})");
        }
    }

    #[test]
    fn agrees_with_push_only_on_dense_graph() {
        use crate::push_only::survey_push_only;
        // Random-ish deterministic graph.
        let mut edges = Vec::new();
        for u in 0..30u64 {
            for v in (u + 1)..30 {
                if (u * 7919 + v * 104729) % 5 == 0 {
                    edges.push((u, v));
                }
            }
        }
        let list = EdgeList::from_vec(edges.iter().map(|&(u, v)| (u, v, ())).collect::<Vec<_>>());
        let out = World::new(3).run(|comm| {
            let local = list.stride_for_rank(comm.rank(), comm.nranks());
            let g = build_dist_graph(comm, local, |_| (), Partition::Hashed);
            let c1 = Rc::new(Cell::new(0u64));
            let c1b = c1.clone();
            survey_push_only(comm, &g, move |_c, _tm| c1b.set(c1b.get() + 1));
            let c2 = Rc::new(Cell::new(0u64));
            let c2b = c2.clone();
            survey_push_pull(comm, &g, move |_c, _tm| c2b.set(c2b.get() + 1));
            (comm.all_reduce_sum(c1.get()), comm.all_reduce_sum(c2.get()))
        });
        for (push_only, push_pull) in out {
            assert_eq!(push_only, push_pull);
            assert!(push_only > 0, "graph should contain triangles");
        }
    }
}
