//! The Push-Only survey engine (paper §4.3, Alg. 1).
//!
//! The simplest TriPoll algorithm: every vertex `p` walks its
//! `<+`-sorted out-adjacency, and for each out-neighbor `q` pushes the
//! remaining suffix (the candidate `r` vertices) to `Rank(q)`, where a
//! merge-path intersection against `Adjm+(q)` identifies triangles and
//! runs the user callback. One quiescence barrier ends the survey.

use std::rc::Rc;

use tripoll_graph::DistGraph;
use tripoll_ygm::wire::Wire;
use tripoll_ygm::Comm;

use crate::engine::{EngineMode, PhaseTimer, SurveyConfig, SurveyReport};
use crate::meta::SurveyCallback;
use crate::par::par_queue_for;
use crate::push_common::{push_wedge_batches, register_push_handler, DynCallback};

/// Runs a Push-Only triangle survey; `callback` executes once per
/// triangle on the rank where the metadata is colocated (`Rank(q)`).
///
/// Collective: every rank calls with the same graph and an equivalent
/// callback. Returns this rank's [`SurveyReport`]. Runs the production
/// [`SurveyConfig`] (columnar batches, cursor decode); see
/// [`survey_push_only_with`] to select the configuration explicitly.
pub fn survey_push_only<VM, EM, F>(
    comm: &Comm,
    graph: &DistGraph<VM, EM>,
    callback: F,
) -> SurveyReport
where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
    F: SurveyCallback<VM, EM>,
{
    survey_push_only_with(comm, graph, SurveyConfig::default(), callback)
}

/// [`survey_push_only`] with an explicit [`SurveyConfig`] (or a bare
/// [`crate::engine::BatchLayout`] / [`crate::engine::DecodePath`] /
/// [`crate::engine::IntersectKernel`], via `Into`) — the layout and
/// decode axes are part of the collective contract (same value on
/// every rank); the kernel is a local compute choice. The non-default
/// combinations exist for differential testing.
pub fn survey_push_only_with<VM, EM, F>(
    comm: &Comm,
    graph: &DistGraph<VM, EM>,
    config: impl Into<SurveyConfig>,
    callback: F,
) -> SurveyReport
where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
    F: SurveyCallback<VM, EM>,
{
    let config = config.into();
    let cb: DynCallback<VM, EM> = Rc::new(callback);
    let queue = par_queue_for(graph, &cb, config);
    let handler = register_push_handler(comm, graph, cb, config, queue.clone());
    if let Some(q) = &queue {
        let q2 = q.clone();
        comm.set_drain_hook(move |c| q2.flush(c));
    }

    let timer = PhaseTimer::begin(comm, "push");
    push_wedge_batches(comm, graph, &handler, |_| false);
    comm.barrier();
    let phase = timer.end();
    if queue.is_some() {
        comm.clear_drain_hook();
    }

    SurveyReport {
        mode: EngineMode::PushOnly,
        total_seconds: phase.seconds,
        phases: vec![phase],
        pulled_vertices: 0,
        pull_grants: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use tripoll_graph::{build_dist_graph, EdgeList, Partition};
    use tripoll_ygm::World;

    fn count_triangles(edges: &[(u64, u64)], nranks: usize) -> u64 {
        let list = EdgeList::from_vec(edges.iter().map(|&(u, v)| (u, v, ())).collect::<Vec<_>>());
        let out = World::new(nranks).run(|comm| {
            let local = list.stride_for_rank(comm.rank(), comm.nranks());
            let g = build_dist_graph(comm, local, |_| (), Partition::Hashed);
            let count = Rc::new(Cell::new(0u64));
            let count2 = count.clone();
            let report = survey_push_only(comm, &g, move |_c, _tm| {
                count2.set(count2.get() + 1);
            });
            assert_eq!(report.mode, EngineMode::PushOnly);
            assert_eq!(report.phases.len(), 1);
            assert_eq!(report.pulled_vertices, 0);
            comm.all_reduce_sum(count.get())
        });
        let first = out[0];
        assert!(out.iter().all(|&c| c == first), "ranks disagree: {out:?}");
        first
    }

    #[test]
    fn triangle() {
        assert_eq!(count_triangles(&[(0, 1), (1, 2), (2, 0)], 2), 1);
    }

    #[test]
    fn k5_various_ranks() {
        let mut edges = Vec::new();
        for u in 0..5u64 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        for nranks in [1, 2, 3, 4] {
            assert_eq!(count_triangles(&edges, nranks), 10, "nranks={nranks}");
        }
    }

    #[test]
    fn triangle_free() {
        assert_eq!(count_triangles(&[(0, 1), (1, 2), (2, 3), (3, 0)], 3), 0);
    }

    #[test]
    fn callback_sees_correct_metadata() {
        // Content-addressed metadata: meta(v) = v*31+7, meta(u,v) = canonical
        // pair encoding. The callback cross-checks every field.
        let edges: Vec<(u64, u64)> = vec![(0, 1), (1, 2), (2, 0), (2, 3), (3, 0), (1, 3)];
        let em_of = |u: u64, v: u64| (u.min(v) << 20) | u.max(v);
        let list = EdgeList::from_vec(
            edges
                .iter()
                .map(|&(u, v)| (u, v, em_of(u, v)))
                .collect::<Vec<_>>(),
        );
        let out = World::new(3).run(|comm| {
            let local = list.stride_for_rank(comm.rank(), comm.nranks());
            let g = build_dist_graph(comm, local, |v| v * 31 + 7, Partition::Hashed);
            let seen = Rc::new(Cell::new(0u64));
            let seen2 = seen.clone();
            survey_push_only(comm, &g, move |_c, tm| {
                assert_eq!(*tm.meta_p, tm.p * 31 + 7);
                assert_eq!(*tm.meta_q, tm.q * 31 + 7);
                assert_eq!(*tm.meta_r, tm.r * 31 + 7);
                assert_eq!(*tm.meta_pq, em_of(tm.p, tm.q));
                assert_eq!(*tm.meta_pr, em_of(tm.p, tm.r));
                assert_eq!(*tm.meta_qr, em_of(tm.q, tm.r));
                assert!(tm.p != tm.q && tm.q != tm.r && tm.p != tm.r);
                seen2.set(seen2.get() + 1);
            });
            comm.all_reduce_sum(seen.get())
        });
        // K4 on {0,1,2,3} has 4 triangles.
        assert_eq!(out, vec![4, 4, 4]);
    }

    fn misrouted_push(config: SurveyConfig) {
        use crate::push_common::{register_push_handler, PushHandler};
        use tripoll_ygm::wire::ColBatch;
        // A push handler is registered normally, then one wedge batch is
        // deliberately sent to the rank that does NOT own its target:
        // the survey must abort with a structured error naming the
        // sending rank, not a bare unwrap panic.
        let edges = [(0u64, 1u64), (1, 2), (2, 0)];
        let list = EdgeList::from_vec(edges.iter().map(|&(u, v)| (u, v, ())).collect::<Vec<_>>());
        World::new(2).run(|comm| {
            let local = list.stride_for_rank(comm.rank(), comm.nranks());
            let g = build_dist_graph(comm, local, |_| (), Partition::Hashed);
            let cb: crate::push_common::DynCallback<(), ()> = Rc::new(|_c, _tm| {});
            let h = register_push_handler(comm, &g, cb, config, None);
            if comm.rank() == 0 {
                let q = 0u64;
                let wrong = (g.owner(q) + 1) % comm.nranks();
                match &h {
                    PushHandler::Interleaved(h) => {
                        comm.send(wrong, h, &(1u64, q, (), (), Vec::<(u64, u64, ())>::new()));
                    }
                    PushHandler::Columnar(h) => {
                        comm.send(wrong, h, &(1u64, q, (), (), ColBatch::<()>::default()));
                    }
                }
            }
            comm.barrier();
        });
    }

    #[test]
    #[should_panic(expected = "vertex ownership disagrees across ranks")]
    fn misrouted_push_aborts_cleanly_cursor() {
        misrouted_push(SurveyConfig::default());
    }

    #[test]
    #[should_panic(expected = "vertex ownership disagrees across ranks")]
    fn misrouted_push_aborts_cleanly_owned() {
        misrouted_push(SurveyConfig::from(crate::engine::DecodePath::Owned));
    }

    #[test]
    #[should_panic(expected = "vertex ownership disagrees across ranks")]
    fn misrouted_push_aborts_cleanly_interleaved() {
        misrouted_push(SurveyConfig::from(crate::engine::BatchLayout::Interleaved));
    }

    #[test]
    fn explicit_kernels_count_like_the_default() {
        use crate::engine::IntersectKernel;
        // K5 on 2 ranks under every explicit kernel: same 10 triangles
        // as the default (Auto) configuration.
        let mut edges = Vec::new();
        for u in 0..5u64 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        let list = EdgeList::from_vec(edges.iter().map(|&(u, v)| (u, v, ())).collect::<Vec<_>>());
        for kernel in [
            IntersectKernel::MergeScalar,
            IntersectKernel::Gallop,
            IntersectKernel::BlockedMerge,
        ] {
            let out = World::new(2).run(|comm| {
                let local = list.stride_for_rank(comm.rank(), comm.nranks());
                let g = build_dist_graph(comm, local, |_| (), Partition::Hashed);
                let count = Rc::new(Cell::new(0u64));
                let count2 = count.clone();
                survey_push_only_with(comm, &g, kernel, move |_c, _tm| {
                    count2.set(count2.get() + 1);
                });
                comm.all_reduce_sum(count.get())
            });
            assert_eq!(out, vec![10, 10], "kernel {kernel}");
        }
    }

    #[test]
    fn string_metadata_survives_the_wire() {
        let edges = [(0u64, 1u64), (1, 2), (2, 0)];
        let list = EdgeList::from_vec(
            edges
                .iter()
                .map(|&(u, v)| (u, v, format!("e{}-{}", u.min(v), u.max(v))))
                .collect::<Vec<_>>(),
        );
        let out = World::new(2).run(|comm| {
            let local = list.stride_for_rank(comm.rank(), comm.nranks());
            let g = build_dist_graph(comm, local, |v| format!("v{v}"), Partition::Hashed);
            let ok = Rc::new(Cell::new(false));
            let ok2 = ok.clone();
            survey_push_only(comm, &g, move |_c, tm| {
                assert_eq!(*tm.meta_p, format!("v{}", tm.p));
                assert_eq!(
                    *tm.meta_qr,
                    format!("e{}-{}", tm.q.min(tm.r), tm.q.max(tm.r))
                );
                ok2.set(true);
            });
            comm.barrier();
            ok.get()
        });
        assert!(out.iter().any(|&b| b), "some rank saw the triangle");
    }
}
