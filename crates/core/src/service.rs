//! Resident survey service: graph lifetime separated from survey
//! lifetime.
//!
//! TriPoll's value is surveying the *same* massive graph many times
//! with different metadata folds (paper §5 runs several survey types
//! over one ingested graph), yet the classic entry points pay graph
//! build + dry-run from scratch on every call. A [`ResidentGraph`]
//! inverts that: the partitioned DODGr storage is built **once** and
//! held behind [`Arc`] as immutable shared state, and every query
//! spins up a fresh per-query comm world — its own simulated ranks,
//! its own [`CommConfig`] — against the shared storage. Concurrent
//! queries with different layout × decode × kernel × threads settings
//! run against one resident graph with bit-identical results to the
//! from-scratch path.
//!
//! Three mechanisms make the "load once, serve many" shape real:
//!
//! * **Re-shardable storage** — DODGr content (degrees, `<+` keys,
//!   oriented adjacency, `d+`) is independent of the rank count, so the
//!   resident graph keeps one global vertex list and derives the
//!   per-rank shards for any requested world size by the partition map
//!   alone, with no communication. Shards are cached per rank count.
//! * **Dry-run plan caching** — the Push-Pull dry-run is a pure
//!   function of (graph, partition, rank count); the first Push-Pull
//!   query at a given world size captures its plan and every later one
//!   replays it with zero dry-run traffic
//!   (see [`crate::push_pull`]'s `DryRunPlan`).
//! * **Snapshots** — [`ResidentGraph::save_snapshot`] /
//!   [`ResidentGraph::load_snapshot`] persist the storage in the
//!   versioned binary format of [`tripoll_graph::snapshot`], so a
//!   restart is O(read) instead of re-ingest + three build rounds.
//!
//! # Incremental ingestion
//!
//! [`ResidentGraph::ingest_batch`] appends an edge batch through
//! [`tripoll_graph::ingest`], leaving the storage bit-identical to a
//! from-scratch build of the concatenated input. Ingest invalidates the
//! cached world state — per-rank shards *and* captured Push-Pull
//! dry-run plans — and bumps the graph **epoch**. The returned
//! [`IngestDelta`] carries that epoch plus the batch's delta-wedge
//! plan; [`ResidentGraph::survey_delta`] surveys exactly the triangles
//! the batch added ([`crate::delta`]), rejecting a stale delta (one
//! from a superseded epoch) with a structured [`StaleDeltaError`].
//!
//! Concurrent queries racing an ingest are safe by snapshotting: a
//! query holds an `Arc` of the world state it started with, so it sees
//! either the pre-ingest or the post-ingest graph in its entirety,
//! never a torn mix. The epoch atomic is an advisory staleness check —
//! actual publication of mutated storage happens under the state lock
//! (see `docs/CONCURRENCY.md`, "ingest-epoch handoff").
//!
//! Environment-dependent defaults (`TRIPOLL_THREADS`, `TRIPOLL_RPN`,
//! `TRIPOLL_OVERLAP`) are **pinned** when a [`ResidentQuery`] is
//! constructed: each query carries fully explicit settings, so two
//! concurrent queries with different thread counts never share (or
//! race on) a process-global default.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use tripoll_graph::ingest::{apply_edge_batch, apply_edge_batch_with, BatchDelta, ReverseIndex};
use tripoll_graph::snapshot::{decode_snapshot, encode_snapshot, load_snapshot, SnapshotError};
use tripoll_graph::{DistGraph, EdgeList, GraphError, LocalShard, LocalVertex, Partition};
use tripoll_ygm::wire::Wire;
use tripoll_ygm::{Comm, CommConfig, World, WorldOutput};

use crate::delta::survey_delta_push;
use crate::engine::{
    kernel_stats_take, EngineMode, KernelStats, Parallelism, SurveyConfig, SurveyReport,
};
use crate::meta::TriangleMeta;
use crate::push_only::survey_push_only_with;
use crate::push_pull::{survey_push_pull_planned, DryRunPlan, PlanMode};

/// One query against a [`ResidentGraph`]: the world size plus fully
/// explicit engine and communicator settings.
///
/// [`ResidentQuery::new`] resolves every environment-dependent default
/// up front ([`SurveyConfig::pinned`], [`CommConfig::pinned`]), so a
/// query's behavior is a function of its fields alone — the resident
/// service only falls back to the (cached, once-per-process)
/// environment read through those pinned defaults.
#[derive(Debug, Clone)]
pub struct ResidentQuery {
    /// Simulated ranks of the per-query world.
    pub nranks: usize,
    /// Engine configuration (layout × decode × kernel × threads).
    pub config: SurveyConfig,
    /// Communicator configuration of the per-query world.
    pub comm: CommConfig,
    /// Which survey engine runs the query.
    pub mode: EngineMode,
}

impl ResidentQuery {
    /// A query over `nranks` simulated ranks with pinned defaults:
    /// Push-Pull engine, production [`SurveyConfig`] with the thread
    /// count resolved to an explicit value, default [`CommConfig`]
    /// with the overlap setting resolved likewise.
    pub fn new(nranks: usize) -> Self {
        ResidentQuery {
            nranks,
            config: SurveyConfig::new().pinned(),
            comm: CommConfig::default().pinned(),
            mode: EngineMode::PushPull,
        }
    }

    /// This query with the given engine.
    pub fn with_mode(mut self, mode: EngineMode) -> Self {
        self.mode = mode;
        self
    }

    /// This query with the given engine configuration.
    pub fn with_config(mut self, config: SurveyConfig) -> Self {
        self.config = config;
        self
    }

    /// This query with the given communicator configuration.
    pub fn with_comm(mut self, comm: CommConfig) -> Self {
        self.comm = comm;
        self
    }

    /// This query with the given merge parallelism.
    pub fn with_threads(mut self, threads: Parallelism) -> Self {
        self.config = self.config.with_threads(threads);
        self
    }
}

/// One rank's result of a resident survey query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The rank's phase/traffic report.
    pub report: SurveyReport,
    /// Intersection-kernel counters accumulated by this rank during
    /// the query (worker-thread contributions already folded in).
    pub kernel: KernelStats,
}

/// Cached per-world-size state: the re-sharded storage and, for
/// Push-Pull, the captured dry-run plans.
struct WorldState<VM, EM> {
    /// `shards[r]` is rank `r`'s shard at this world size.
    shards: Vec<Arc<LocalShard<VM, EM>>>,
    /// Per-rank dry-run plans, captured by the first Push-Pull query.
    plans: OnceLock<Arc<Vec<DryRunPlan>>>,
}

/// The mutable resident state: storage plus everything derived from
/// it. One lock guards all three so an ingest replaces storage and
/// invalidates the derived caches atomically with respect to queries.
struct ResidentState<VM, EM> {
    /// The global vertex list (every rank's vertices), sorted by id.
    vertices: Arc<Vec<LocalVertex<VM, EM>>>,
    /// Shards + plans per requested world size.
    worlds: HashMap<usize, Arc<WorldState<VM, EM>>>,
    /// Reverse adjacency for incremental ingestion, built lazily on
    /// the first [`ResidentGraph::ingest_batch`] and maintained across
    /// batches.
    rev: Option<ReverseIndex>,
}

/// The proof of one ingested batch: the graph epoch it produced and
/// the delta-wedge plan for surveying exactly the triangles the batch
/// added.
///
/// Pass it to [`ResidentGraph::survey_delta`] *before* the next
/// ingest; the plan is index-based against the storage state its
/// ingest produced, so a later epoch makes it stale (a structured
/// [`StaleDeltaError`], never a wrong answer).
#[derive(Debug, Clone)]
pub struct IngestDelta {
    epoch: u64,
    plan: Arc<BatchDelta>,
}

impl IngestDelta {
    /// The graph epoch this ingest produced.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The canonicalized `(min, max)` pairs of the genuinely-new edges
    /// (self-loops, duplicates within the batch, and edges already
    /// stored are dropped).
    pub fn new_edges(&self) -> &[(u64, u64)] {
        &self.plan.new_edges
    }

    /// True when the batch changed nothing: a delta survey of it
    /// visits zero triangles.
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// The underlying delta-wedge plan (for direct use with
    /// [`crate::delta::survey_delta_push`]).
    pub fn plan(&self) -> &Arc<BatchDelta> {
        &self.plan
    }
}

/// A delta survey was requested against a graph that has ingested
/// further batches since the delta was produced: the plan's entry
/// indices no longer describe the storage.
///
/// Re-derive by surveying the newest [`IngestDelta`]s (each batch's
/// delta remains valid until the *next* ingest) or fall back to a full
/// [`ResidentGraph::survey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleDeltaError {
    /// The epoch the delta was produced at.
    pub delta_epoch: u64,
    /// The graph's current epoch.
    pub graph_epoch: u64,
}

impl std::fmt::Display for StaleDeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stale ingest delta: produced at epoch {}, graph is at epoch {}",
            self.delta_epoch, self.graph_epoch
        )
    }
}

impl std::error::Error for StaleDeltaError {}

/// A graph resident in memory, shared across queries.
///
/// Build it once ([`ResidentGraph::build`], or O(read) from a snapshot
/// via [`ResidentGraph::load_snapshot`]), then call
/// [`ResidentGraph::survey`] as many times as needed — including
/// concurrently from several threads, each query with its own world
/// size, engine, and configuration. Between queries,
/// [`ResidentGraph::ingest_batch`] appends edge batches incrementally;
/// queries in flight keep surveying the snapshot they started with.
pub struct ResidentGraph<VM, EM> {
    state: Mutex<ResidentState<VM, EM>>,
    /// Monotone ingest counter; see the module docs ("ingest-epoch
    /// handoff" in `docs/CONCURRENCY.md`).
    epoch: AtomicU64,
    partition: Partition,
}

impl<VM, EM> ResidentGraph<VM, EM>
where
    VM: Wire + Clone + Send + Sync + 'static,
    EM: Wire + Clone + Send + Sync + 'static,
{
    /// Ingests an edge list into resident DODGr storage. The build
    /// itself runs a private single-rank world (DODGr content is
    /// independent of the rank count, so building at one rank and
    /// re-sharding per query loses nothing); `vm_fn` must be
    /// deterministic, exactly as for
    /// [`tripoll_graph::build_dist_graph`].
    pub fn build<F>(list: &EdgeList<EM>, vm_fn: F, partition: Partition) -> Self
    where
        F: Fn(u64) -> VM + Sync,
    {
        let mut out = World::new(1).run(|comm| {
            let g =
                tripoll_graph::build_dist_graph(comm, list.as_slice().to_vec(), &vm_fn, partition);
            g.shard().vertices().to_vec()
        });
        Self::from_vertices(out.pop().expect("single-rank world"), partition)
    }

    /// Wraps an already-materialized global vertex list (sorted or
    /// not) as resident storage.
    pub fn from_vertices(mut vertices: Vec<LocalVertex<VM, EM>>, partition: Partition) -> Self {
        vertices.sort_by_key(|v| v.id);
        ResidentGraph {
            state: Mutex::new(ResidentState {
                vertices: Arc::new(vertices),
                worlds: HashMap::new(),
                rev: None,
            }),
            epoch: AtomicU64::new(0),
            partition,
        }
    }

    /// Reconstitutes a resident graph from snapshot bytes. Hostile
    /// input returns a structured [`SnapshotError`]; it cannot panic.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let (vertices, partition) = decode_snapshot(bytes)?;
        Ok(Self::from_vertices(vertices, partition))
    }

    /// Reconstitutes a resident graph from a snapshot file — the
    /// O(read) restart path.
    pub fn load_snapshot<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        let (vertices, partition) = load_snapshot(path)?;
        Ok(Self::from_vertices(vertices, partition))
    }

    /// Serializes the resident storage into snapshot bytes with
    /// `nsections` partition sections. Snapshots taken after an ingest
    /// capture the appended state — a restart resumes from the newest
    /// batch.
    pub fn snapshot_bytes(&self, nsections: usize) -> Vec<u8> {
        let vertices = self.vertices();
        encode_snapshot(&vertices, self.partition, nsections)
    }

    /// Writes a snapshot file with `nsections` partition sections.
    pub fn save_snapshot<P: AsRef<Path>>(
        &self,
        path: P,
        nsections: usize,
    ) -> Result<(), SnapshotError> {
        let vertices = self.vertices();
        tripoll_graph::snapshot::save_snapshot(path, &vertices, self.partition, nsections)
    }

    /// The partition map the storage was built with.
    pub fn partition(&self) -> Partition {
        self.partition
    }

    /// Number of resident vertices (with at least one incident edge).
    pub fn num_vertices(&self) -> usize {
        self.state().vertices.len()
    }

    /// The current graph epoch: 0 at build/load, +1 per
    /// [`ResidentGraph::ingest_batch`] (even a no-op batch).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn state(&self) -> std::sync::MutexGuard<'_, ResidentState<VM, EM>> {
        self.state.lock().expect("resident state poisoned")
    }

    /// A shared handle to the current storage.
    fn vertices(&self) -> Arc<Vec<LocalVertex<VM, EM>>> {
        self.state().vertices.clone()
    }

    /// The cached per-world-size state, sharding the resident storage
    /// on first use of a given rank count.
    fn world_state(&self, nranks: usize) -> Arc<WorldState<VM, EM>> {
        Self::world_state_locked(&mut self.state(), self.partition, nranks)
    }

    fn world_state_locked(
        state: &mut ResidentState<VM, EM>,
        partition: Partition,
        nranks: usize,
    ) -> Arc<WorldState<VM, EM>> {
        let vertices = &state.vertices;
        state
            .worlds
            .entry(nranks)
            .or_insert_with(|| {
                let mut per_rank: Vec<Vec<LocalVertex<VM, EM>>> =
                    (0..nranks).map(|_| Vec::new()).collect();
                for v in vertices.iter() {
                    per_rank[partition.owner(v.id, nranks)].push(v.clone());
                }
                Arc::new(WorldState {
                    shards: per_rank
                        .into_iter()
                        .map(|vs| Arc::new(LocalShard::from_vertices(vs)))
                        .collect(),
                    plans: OnceLock::new(),
                })
            })
            .clone()
    }

    /// Appends an edge batch to the resident storage, **strict** on
    /// vertices: every endpoint must already be resident, otherwise
    /// the batch is rejected with [`GraphError::UnknownVertex`] and
    /// the graph is unchanged (the epoch does not advance). See
    /// [`ResidentGraph::ingest_batch_with`] to admit new vertices.
    ///
    /// On success the storage is bit-identical to a from-scratch build
    /// of the concatenated input; cached shards and captured Push-Pull
    /// dry-run plans are invalidated (queries in flight finish on the
    /// snapshot they started with), and the returned [`IngestDelta`]
    /// drives [`ResidentGraph::survey_delta`].
    pub fn ingest_batch(&self, batch: &[(u64, u64, EM)]) -> Result<IngestDelta, GraphError> {
        let mut state = self.state();
        let ResidentState {
            vertices,
            worlds,
            rev,
        } = &mut *state;
        let rev = rev.get_or_insert_with(|| ReverseIndex::build(vertices));
        let plan = apply_edge_batch(Arc::make_mut(vertices), rev, batch)?;
        if !plan.is_empty() {
            worlds.clear();
        }
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        Ok(IngestDelta {
            epoch,
            plan: Arc::new(plan),
        })
    }

    /// [`ResidentGraph::ingest_batch`] that admits previously-unknown
    /// vertices, creating their records with metadata from `vm_fn` —
    /// which must be the same deterministic function of the vertex id
    /// the resident storage was built with (it is consulted only for
    /// new vertices; existing metadata is immutable under ingest).
    pub fn ingest_batch_with<F>(
        &self,
        batch: &[(u64, u64, EM)],
        vm_fn: F,
    ) -> Result<IngestDelta, GraphError>
    where
        F: Fn(u64) -> VM,
    {
        let mut state = self.state();
        let ResidentState {
            vertices,
            worlds,
            rev,
        } = &mut *state;
        let rev = rev.get_or_insert_with(|| ReverseIndex::build(vertices));
        let plan = apply_edge_batch_with(Arc::make_mut(vertices), rev, batch, vm_fn)?;
        if !plan.is_empty() {
            worlds.clear();
        }
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        Ok(IngestDelta {
            epoch,
            plan: Arc::new(plan),
        })
    }

    /// Runs an arbitrary collective `f` in a fresh per-query world
    /// against the resident storage; returns each rank's result. The
    /// graph handle every rank receives shares the resident shards —
    /// nothing is rebuilt.
    pub fn run<R, F>(&self, query: &ResidentQuery, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Comm, &DistGraph<VM, EM>) -> R + Sync,
    {
        let ws = self.world_state(query.nranks);
        self.run_in_world(&ws, query, f)
    }

    /// [`ResidentGraph::run`] that also returns each rank's final
    /// communication counters (bytes, records, flushes) — the
    /// per-query world's [`WorldOutput`].
    pub fn run_with_stats<R, F>(&self, query: &ResidentQuery, f: F) -> WorldOutput<R>
    where
        R: Send,
        F: Fn(&Comm, &DistGraph<VM, EM>) -> R + Sync,
    {
        let ws = self.world_state(query.nranks);
        World::new(query.nranks)
            .with_config(query.comm.clone())
            .run_with_stats(|comm| {
                let g = DistGraph::from_parts(
                    ws.shards[comm.rank()].clone(),
                    self.partition,
                    query.nranks,
                );
                f(comm, &g)
            })
    }

    /// Runs `f` against an already-fetched world state (a storage
    /// snapshot): later ingests cannot affect this world.
    fn run_in_world<R, F>(&self, ws: &WorldState<VM, EM>, query: &ResidentQuery, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Comm, &DistGraph<VM, EM>) -> R + Sync,
    {
        World::new(query.nranks)
            .with_config(query.comm.clone())
            .run(|comm| {
                let g = DistGraph::from_parts(
                    ws.shards[comm.rank()].clone(),
                    self.partition,
                    query.nranks,
                );
                f(comm, &g)
            })
    }

    /// Runs a triangle survey in a fresh per-query world against the
    /// resident storage. The callback executes once per triangle with
    /// all six metadata values, exactly as in the from-scratch
    /// `survey_*_with` entry points, and the results are bit-identical
    /// to them. Returns each rank's [`QueryOutcome`].
    ///
    /// For [`EngineMode::PushPull`], the first query at a given world
    /// size captures the dry-run plan; later queries at that size
    /// replay it (any [`SurveyConfig`] — the plan does not depend on
    /// the engine configuration).
    pub fn survey<F>(&self, query: &ResidentQuery, callback: F) -> Vec<QueryOutcome>
    where
        F: Fn(&Comm, &TriangleMeta<'_, VM, EM>) + Send + Sync + 'static,
    {
        let ws = self.world_state(query.nranks);
        let cb = Arc::new(callback);
        match query.mode {
            EngineMode::PushOnly => self.run(query, |comm, g| {
                let cb = cb.clone();
                let _ = kernel_stats_take();
                let report =
                    survey_push_only_with(comm, g, query.config, move |c: &Comm, tm| cb(c, tm));
                QueryOutcome {
                    report,
                    kernel: kernel_stats_take(),
                }
            }),
            EngineMode::PushPull => {
                if let Some(plans) = ws.plans.get().cloned() {
                    self.run(query, |comm, g| {
                        let cb = cb.clone();
                        let _ = kernel_stats_take();
                        let report = survey_push_pull_planned(
                            comm,
                            g,
                            query.config,
                            PlanMode::Replay(&plans[comm.rank()]),
                            move |c: &Comm, tm| cb(c, tm),
                        );
                        QueryOutcome {
                            report,
                            kernel: kernel_stats_take(),
                        }
                    })
                } else {
                    let results = self.run(query, |comm, g| {
                        let cb = cb.clone();
                        let _ = kernel_stats_take();
                        let mut plan = None;
                        let report = survey_push_pull_planned(
                            comm,
                            g,
                            query.config,
                            PlanMode::Capture(&mut plan),
                            move |c: &Comm, tm| cb(c, tm),
                        );
                        let outcome = QueryOutcome {
                            report,
                            kernel: kernel_stats_take(),
                        };
                        (outcome, plan.expect("capture mode fills the plan"))
                    });
                    let (outcomes, plans): (Vec<_>, Vec<_>) = results.into_iter().unzip();
                    // Two queries can race to be first; the loser's
                    // identical plan is simply discarded.
                    let _ = ws.plans.set(Arc::new(plans));
                    outcomes
                }
            }
        }
    }

    /// Surveys exactly the triangles `delta`'s batch added: the
    /// callback executes once per triangle involving at least one
    /// batch edge, with all six metadata values colocated — the
    /// difference between full surveys of the post- and pre-ingest
    /// graphs, generated without recounting anything old
    /// ([`crate::delta`]).
    ///
    /// Accumulated additively (e.g. into
    /// [`crate::surveys::delta::SurveyDelta`]), the results satisfy
    /// `full(G ∪ B) == full(G) + delta(G, B)` bit-for-bit.
    ///
    /// The delta must be from the **current** epoch: if other batches
    /// were ingested since, the plan no longer describes the storage
    /// and a [`StaleDeltaError`] is returned. The epoch check and the
    /// world-state fetch happen under one state lock, so the surveyed
    /// snapshot is exactly the one `delta`'s ingest produced.
    pub fn survey_delta<F>(
        &self,
        delta: &IngestDelta,
        query: &ResidentQuery,
        callback: F,
    ) -> Result<Vec<QueryOutcome>, StaleDeltaError>
    where
        F: Fn(&Comm, &TriangleMeta<'_, VM, EM>) + Send + Sync + 'static,
    {
        let ws = {
            let mut state = self.state();
            let graph_epoch = self.epoch.load(Ordering::Acquire);
            if delta.epoch != graph_epoch {
                return Err(StaleDeltaError {
                    delta_epoch: delta.epoch,
                    graph_epoch,
                });
            }
            Self::world_state_locked(&mut state, self.partition, query.nranks)
        };
        let cb = Arc::new(callback);
        let plan = delta.plan.clone();
        Ok(self.run_in_world(&ws, query, |comm, g| {
            let cb = cb.clone();
            let _ = kernel_stats_take();
            let report =
                survey_delta_push(comm, g, &plan, query.config, move |c: &Comm, tm| cb(c, tm));
            QueryOutcome {
                report,
                kernel: kernel_stats_take(),
            }
        }))
    }

    /// Convenience: the global triangle count of one query.
    pub fn triangle_count(&self, query: &ResidentQuery) -> u64 {
        let total = Arc::new(AtomicU64::new(0));
        let t = total.clone();
        self.survey(query, move |_c, _tm| {
            t.fetch_add(1, Ordering::Relaxed);
        });
        total.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{BatchLayout, DecodePath, IntersectKernel};

    fn triangle_list() -> EdgeList<u32> {
        EdgeList::from_vec(vec![
            (0u64, 1u64, 1u32),
            (1, 2, 2),
            (2, 0, 3),
            (2, 3, 4),
            (3, 0, 5),
        ])
    }

    #[test]
    fn counts_across_world_sizes_and_engines() {
        let resident = ResidentGraph::build(&triangle_list(), |v| v * 2, Partition::Hashed);
        for nranks in [1, 2, 4, 7] {
            for mode in [EngineMode::PushOnly, EngineMode::PushPull] {
                let q = ResidentQuery::new(nranks).with_mode(mode);
                assert_eq!(resident.triangle_count(&q), 2, "{mode} at {nranks} ranks");
            }
        }
    }

    #[test]
    fn push_pull_plan_replay_is_identical() {
        let resident = ResidentGraph::build(&triangle_list(), |v| v, Partition::Hashed);
        let q = ResidentQuery::new(3);
        let first = resident.survey(&q, |_c, _tm| {});
        assert!(
            resident.world_state(3).plans.get().is_some(),
            "plan captured"
        );
        let second = resident.survey(&q, |_c, _tm| {});
        // Replay must reproduce pulls, grants, and kernel counters
        // exactly; its dry-run phase moves zero records.
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.report.pulled_vertices, b.report.pulled_vertices);
            assert_eq!(a.report.pull_grants, b.report.pull_grants);
            assert_eq!(a.kernel, b.kernel);
            assert_eq!(b.report.phases[0].name, "dry-run");
            assert_eq!(b.report.phases[0].stats.records_total(), 0);
        }
        assert_eq!(resident.triangle_count(&q), 2);
    }

    #[test]
    fn queries_carry_explicit_settings() {
        let q = ResidentQuery::new(2);
        assert!(
            !matches!(q.config.threads, Parallelism::Env),
            "pinned query must not depend on the environment"
        );
        assert!(q.comm.overlap_flush.is_some(), "overlap pinned");
        let q = q
            .with_threads(Parallelism::Threads(3))
            .with_config(
                SurveyConfig::new()
                    .with_layout(BatchLayout::Interleaved)
                    .with_decode(DecodePath::Owned)
                    .with_kernel(IntersectKernel::Gallop),
            )
            .with_mode(EngineMode::PushOnly);
        assert_eq!(q.config.layout, BatchLayout::Interleaved);
        assert_eq!(q.mode, EngineMode::PushOnly);
    }

    #[test]
    fn ingest_batch_matches_rebuilt_graph() {
        // Build from the first three edges, ingest the last two; counts
        // and Push-Pull plan recapture must match a from-scratch build.
        let all = triangle_list().into_vec();
        let resident = ResidentGraph::build(
            &EdgeList::from_vec(all[..3].to_vec()),
            |v| v * 2,
            Partition::Hashed,
        );
        let full = ResidentGraph::build(&triangle_list(), |v| v * 2, Partition::Hashed);
        assert_eq!(resident.epoch(), 0);
        let q = ResidentQuery::new(3);
        assert_eq!(resident.triangle_count(&q), 1, "prefix graph");
        // (2,3)/(3,0) introduce vertex 3: admit it with the same vm_fn.
        let delta = resident.ingest_batch_with(&all[3..], |v| v * 2).unwrap();
        assert_eq!(resident.epoch(), 1);
        assert_eq!(delta.epoch(), 1);
        assert_eq!(delta.new_edges().len(), 2);
        for nranks in [1, 2, 4] {
            for mode in [EngineMode::PushOnly, EngineMode::PushPull] {
                let q = ResidentQuery::new(nranks).with_mode(mode);
                assert_eq!(resident.triangle_count(&q), full.triangle_count(&q));
            }
        }
        // The delta survey sees exactly the one added triangle.
        let found = Arc::new(AtomicU64::new(0));
        let f = found.clone();
        let outcomes = resident
            .survey_delta(&delta, &ResidentQuery::new(2), move |_c, _tm| {
                f.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        assert_eq!(outcomes.len(), 2);
        assert_eq!(found.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stale_delta_is_a_structured_error() {
        let resident = ResidentGraph::build(&triangle_list(), |v| v, Partition::Hashed);
        let d1 = resident.ingest_batch_with(&[(0, 4, 9u32)], |v| v).unwrap();
        let d2 = resident.ingest_batch_with(&[(1, 4, 9u32)], |v| v).unwrap();
        let err = resident
            .survey_delta(&d1, &ResidentQuery::new(2), |_c, _tm| {})
            .unwrap_err();
        assert_eq!(
            err,
            StaleDeltaError {
                delta_epoch: 1,
                graph_epoch: 2
            }
        );
        assert!(err.to_string().contains("epoch 1"));
        assert!(resident
            .survey_delta(&d2, &ResidentQuery::new(2), |_c, _tm| {})
            .is_ok());
    }

    #[test]
    fn ingest_strict_rejects_unknown_vertex_and_keeps_graph() {
        let resident = ResidentGraph::build(&triangle_list(), |v| v, Partition::Hashed);
        let err = resident.ingest_batch(&[(0, 99, 7u32)]).unwrap_err();
        assert_eq!(err, GraphError::UnknownVertex { vertex: 99 });
        assert_eq!(resident.epoch(), 0, "failed ingest leaves the epoch");
        assert_eq!(resident.triangle_count(&ResidentQuery::new(2)), 2);
    }

    #[test]
    fn noop_batch_bumps_epoch_but_keeps_worlds() {
        let resident = ResidentGraph::build(&triangle_list(), |v| v, Partition::Hashed);
        let q = ResidentQuery::new(3);
        let _ = resident.survey(&q, |_c, _tm| {});
        assert!(resident.world_state(3).plans.get().is_some());
        // Duplicate edge: no storage change, worlds survive, epoch
        // still advances (the delta is provably empty).
        let delta = resident.ingest_batch(&[(0, 1, 77u32)]).unwrap();
        assert!(delta.is_empty());
        assert_eq!(resident.epoch(), 1);
        assert!(
            resident.world_state(3).plans.get().is_some(),
            "no-op ingest keeps cached worlds and plans"
        );
    }

    #[test]
    fn ingest_invalidates_cached_plans() {
        let resident = ResidentGraph::build(&triangle_list(), |v| v, Partition::Hashed);
        let q = ResidentQuery::new(3);
        let _ = resident.survey(&q, |_c, _tm| {});
        assert!(resident.world_state(3).plans.get().is_some());
        let delta = resident
            .ingest_batch_with(&[(0, 4, 9u32), (1, 4, 9u32)], |v| v)
            .unwrap();
        assert!(!delta.is_empty());
        {
            let state = resident.state();
            assert!(state.worlds.is_empty(), "worlds dropped on real ingest");
        }
        // Recapture happens transparently on the next Push-Pull query.
        assert_eq!(resident.triangle_count(&q), 3);
        assert!(resident.world_state(3).plans.get().is_some());
    }

    #[test]
    fn snapshot_after_ingest_restarts_appended_state() {
        let resident = ResidentGraph::build(&triangle_list(), |v| v * 3, Partition::Hashed);
        resident
            .ingest_batch_with(&[(0, 4, 9u32), (1, 4, 10u32)], |v| v * 3)
            .unwrap();
        let restored =
            ResidentGraph::<u64, u32>::from_snapshot_bytes(&resident.snapshot_bytes(2)).unwrap();
        assert_eq!(restored.num_vertices(), resident.num_vertices());
        for nranks in [1, 2, 4] {
            let q = ResidentQuery::new(nranks);
            assert_eq!(resident.triangle_count(&q), restored.triangle_count(&q));
        }
        // A restored graph ingests further batches from epoch 0.
        assert_eq!(restored.epoch(), 0);
        let d = restored
            .ingest_batch_with(&[(3, 4, 11u32)], |v| v * 3)
            .unwrap();
        assert_eq!(d.epoch(), 1);
        assert_eq!(d.new_edges(), &[(3, 4)]);
    }

    #[test]
    fn snapshot_roundtrip_preserves_counts() {
        let resident = ResidentGraph::build(&triangle_list(), |v| v * 3, Partition::Cyclic);
        let bytes = resident.snapshot_bytes(4);
        let restored = ResidentGraph::<u64, u32>::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(restored.partition(), Partition::Cyclic);
        assert_eq!(restored.num_vertices(), resident.num_vertices());
        for nranks in [1, 2, 4] {
            let q = ResidentQuery::new(nranks);
            assert_eq!(resident.triangle_count(&q), restored.triangle_count(&q));
        }
    }
}
