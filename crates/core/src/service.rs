//! Resident survey service: graph lifetime separated from survey
//! lifetime.
//!
//! TriPoll's value is surveying the *same* massive graph many times
//! with different metadata folds (paper §5 runs several survey types
//! over one ingested graph), yet the classic entry points pay graph
//! build + dry-run from scratch on every call. A [`ResidentGraph`]
//! inverts that: the partitioned DODGr storage is built **once** and
//! held behind [`Arc`] as immutable shared state, and every query
//! spins up a fresh per-query comm world — its own simulated ranks,
//! its own [`CommConfig`] — against the shared storage. Concurrent
//! queries with different layout × decode × kernel × threads settings
//! run against one resident graph with bit-identical results to the
//! from-scratch path.
//!
//! Three mechanisms make the "load once, serve many" shape real:
//!
//! * **Re-shardable storage** — DODGr content (degrees, `<+` keys,
//!   oriented adjacency, `d+`) is independent of the rank count, so the
//!   resident graph keeps one global vertex list and derives the
//!   per-rank shards for any requested world size by the partition map
//!   alone, with no communication. Shards are cached per rank count.
//! * **Dry-run plan caching** — the Push-Pull dry-run is a pure
//!   function of (graph, partition, rank count); the first Push-Pull
//!   query at a given world size captures its plan and every later one
//!   replays it with zero dry-run traffic
//!   (see [`crate::push_pull`]'s `DryRunPlan`).
//! * **Snapshots** — [`ResidentGraph::save_snapshot`] /
//!   [`ResidentGraph::load_snapshot`] persist the storage in the
//!   versioned binary format of [`tripoll_graph::snapshot`], so a
//!   restart is O(read) instead of re-ingest + three build rounds.
//!
//! Environment-dependent defaults (`TRIPOLL_THREADS`, `TRIPOLL_RPN`,
//! `TRIPOLL_OVERLAP`) are **pinned** when a [`ResidentQuery`] is
//! constructed: each query carries fully explicit settings, so two
//! concurrent queries with different thread counts never share (or
//! race on) a process-global default.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use tripoll_graph::snapshot::{decode_snapshot, encode_snapshot, load_snapshot, SnapshotError};
use tripoll_graph::{DistGraph, EdgeList, LocalShard, LocalVertex, Partition};
use tripoll_ygm::wire::Wire;
use tripoll_ygm::{Comm, CommConfig, World};

use crate::engine::{
    kernel_stats_take, EngineMode, KernelStats, Parallelism, SurveyConfig, SurveyReport,
};
use crate::meta::TriangleMeta;
use crate::push_only::survey_push_only_with;
use crate::push_pull::{survey_push_pull_planned, DryRunPlan, PlanMode};

/// One query against a [`ResidentGraph`]: the world size plus fully
/// explicit engine and communicator settings.
///
/// [`ResidentQuery::new`] resolves every environment-dependent default
/// up front ([`SurveyConfig::pinned`], [`CommConfig::pinned`]), so a
/// query's behavior is a function of its fields alone — the resident
/// service only falls back to the (cached, once-per-process)
/// environment read through those pinned defaults.
#[derive(Debug, Clone)]
pub struct ResidentQuery {
    /// Simulated ranks of the per-query world.
    pub nranks: usize,
    /// Engine configuration (layout × decode × kernel × threads).
    pub config: SurveyConfig,
    /// Communicator configuration of the per-query world.
    pub comm: CommConfig,
    /// Which survey engine runs the query.
    pub mode: EngineMode,
}

impl ResidentQuery {
    /// A query over `nranks` simulated ranks with pinned defaults:
    /// Push-Pull engine, production [`SurveyConfig`] with the thread
    /// count resolved to an explicit value, default [`CommConfig`]
    /// with the overlap setting resolved likewise.
    pub fn new(nranks: usize) -> Self {
        ResidentQuery {
            nranks,
            config: SurveyConfig::new().pinned(),
            comm: CommConfig::default().pinned(),
            mode: EngineMode::PushPull,
        }
    }

    /// This query with the given engine.
    pub fn with_mode(mut self, mode: EngineMode) -> Self {
        self.mode = mode;
        self
    }

    /// This query with the given engine configuration.
    pub fn with_config(mut self, config: SurveyConfig) -> Self {
        self.config = config;
        self
    }

    /// This query with the given communicator configuration.
    pub fn with_comm(mut self, comm: CommConfig) -> Self {
        self.comm = comm;
        self
    }

    /// This query with the given merge parallelism.
    pub fn with_threads(mut self, threads: Parallelism) -> Self {
        self.config = self.config.with_threads(threads);
        self
    }
}

/// One rank's result of a resident survey query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The rank's phase/traffic report.
    pub report: SurveyReport,
    /// Intersection-kernel counters accumulated by this rank during
    /// the query (worker-thread contributions already folded in).
    pub kernel: KernelStats,
}

/// Cached per-world-size state: the re-sharded storage and, for
/// Push-Pull, the captured dry-run plans.
struct WorldState<VM, EM> {
    /// `shards[r]` is rank `r`'s shard at this world size.
    shards: Vec<Arc<LocalShard<VM, EM>>>,
    /// Per-rank dry-run plans, captured by the first Push-Pull query.
    plans: OnceLock<Arc<Vec<DryRunPlan>>>,
}

/// A graph resident in memory, shared immutably across queries.
///
/// Build it once ([`ResidentGraph::build`], or O(read) from a snapshot
/// via [`ResidentGraph::load_snapshot`]), then call
/// [`ResidentGraph::survey`] as many times as needed — including
/// concurrently from several threads, each query with its own world
/// size, engine, and configuration.
pub struct ResidentGraph<VM, EM> {
    /// The global vertex list (every rank's vertices), sorted by id.
    vertices: Arc<Vec<LocalVertex<VM, EM>>>,
    partition: Partition,
    /// Shards + plans per requested world size.
    worlds: Mutex<HashMap<usize, Arc<WorldState<VM, EM>>>>,
}

impl<VM, EM> ResidentGraph<VM, EM>
where
    VM: Wire + Clone + Send + Sync + 'static,
    EM: Wire + Clone + Send + Sync + 'static,
{
    /// Ingests an edge list into resident DODGr storage. The build
    /// itself runs a private single-rank world (DODGr content is
    /// independent of the rank count, so building at one rank and
    /// re-sharding per query loses nothing); `vm_fn` must be
    /// deterministic, exactly as for
    /// [`tripoll_graph::build_dist_graph`].
    pub fn build<F>(list: &EdgeList<EM>, vm_fn: F, partition: Partition) -> Self
    where
        F: Fn(u64) -> VM + Sync,
    {
        let mut out = World::new(1).run(|comm| {
            let g =
                tripoll_graph::build_dist_graph(comm, list.as_slice().to_vec(), &vm_fn, partition);
            g.shard().vertices().to_vec()
        });
        Self::from_vertices(out.pop().expect("single-rank world"), partition)
    }

    /// Wraps an already-materialized global vertex list (sorted or
    /// not) as resident storage.
    pub fn from_vertices(mut vertices: Vec<LocalVertex<VM, EM>>, partition: Partition) -> Self {
        vertices.sort_by_key(|v| v.id);
        ResidentGraph {
            vertices: Arc::new(vertices),
            partition,
            worlds: Mutex::new(HashMap::new()),
        }
    }

    /// Reconstitutes a resident graph from snapshot bytes. Hostile
    /// input returns a structured [`SnapshotError`]; it cannot panic.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let (vertices, partition) = decode_snapshot(bytes)?;
        Ok(Self::from_vertices(vertices, partition))
    }

    /// Reconstitutes a resident graph from a snapshot file — the
    /// O(read) restart path.
    pub fn load_snapshot<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        let (vertices, partition) = load_snapshot(path)?;
        Ok(Self::from_vertices(vertices, partition))
    }

    /// Serializes the resident storage into snapshot bytes with
    /// `nsections` partition sections.
    pub fn snapshot_bytes(&self, nsections: usize) -> Vec<u8> {
        encode_snapshot(&self.vertices, self.partition, nsections)
    }

    /// Writes a snapshot file with `nsections` partition sections.
    pub fn save_snapshot<P: AsRef<Path>>(
        &self,
        path: P,
        nsections: usize,
    ) -> Result<(), SnapshotError> {
        tripoll_graph::snapshot::save_snapshot(path, &self.vertices, self.partition, nsections)
    }

    /// The partition map the storage was built with.
    pub fn partition(&self) -> Partition {
        self.partition
    }

    /// Number of resident vertices (with at least one incident edge).
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// The cached per-world-size state, sharding the resident storage
    /// on first use of a given rank count.
    fn world_state(&self, nranks: usize) -> Arc<WorldState<VM, EM>> {
        let mut worlds = self.worlds.lock().expect("resident world cache poisoned");
        worlds
            .entry(nranks)
            .or_insert_with(|| {
                let mut per_rank: Vec<Vec<LocalVertex<VM, EM>>> =
                    (0..nranks).map(|_| Vec::new()).collect();
                for v in self.vertices.iter() {
                    per_rank[self.partition.owner(v.id, nranks)].push(v.clone());
                }
                Arc::new(WorldState {
                    shards: per_rank
                        .into_iter()
                        .map(|vs| Arc::new(LocalShard::from_vertices(vs)))
                        .collect(),
                    plans: OnceLock::new(),
                })
            })
            .clone()
    }

    /// Runs an arbitrary collective `f` in a fresh per-query world
    /// against the resident storage; returns each rank's result. The
    /// graph handle every rank receives shares the resident shards —
    /// nothing is rebuilt.
    pub fn run<R, F>(&self, query: &ResidentQuery, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Comm, &DistGraph<VM, EM>) -> R + Sync,
    {
        let ws = self.world_state(query.nranks);
        World::new(query.nranks)
            .with_config(query.comm.clone())
            .run(|comm| {
                let g = DistGraph::from_parts(
                    ws.shards[comm.rank()].clone(),
                    self.partition,
                    query.nranks,
                );
                f(comm, &g)
            })
    }

    /// Runs a triangle survey in a fresh per-query world against the
    /// resident storage. The callback executes once per triangle with
    /// all six metadata values, exactly as in the from-scratch
    /// `survey_*_with` entry points, and the results are bit-identical
    /// to them. Returns each rank's [`QueryOutcome`].
    ///
    /// For [`EngineMode::PushPull`], the first query at a given world
    /// size captures the dry-run plan; later queries at that size
    /// replay it (any [`SurveyConfig`] — the plan does not depend on
    /// the engine configuration).
    pub fn survey<F>(&self, query: &ResidentQuery, callback: F) -> Vec<QueryOutcome>
    where
        F: Fn(&Comm, &TriangleMeta<'_, VM, EM>) + Send + Sync + 'static,
    {
        let ws = self.world_state(query.nranks);
        let cb = Arc::new(callback);
        match query.mode {
            EngineMode::PushOnly => self.run(query, |comm, g| {
                let cb = cb.clone();
                let _ = kernel_stats_take();
                let report =
                    survey_push_only_with(comm, g, query.config, move |c: &Comm, tm| cb(c, tm));
                QueryOutcome {
                    report,
                    kernel: kernel_stats_take(),
                }
            }),
            EngineMode::PushPull => {
                if let Some(plans) = ws.plans.get().cloned() {
                    self.run(query, |comm, g| {
                        let cb = cb.clone();
                        let _ = kernel_stats_take();
                        let report = survey_push_pull_planned(
                            comm,
                            g,
                            query.config,
                            PlanMode::Replay(&plans[comm.rank()]),
                            move |c: &Comm, tm| cb(c, tm),
                        );
                        QueryOutcome {
                            report,
                            kernel: kernel_stats_take(),
                        }
                    })
                } else {
                    let results = self.run(query, |comm, g| {
                        let cb = cb.clone();
                        let _ = kernel_stats_take();
                        let mut plan = None;
                        let report = survey_push_pull_planned(
                            comm,
                            g,
                            query.config,
                            PlanMode::Capture(&mut plan),
                            move |c: &Comm, tm| cb(c, tm),
                        );
                        let outcome = QueryOutcome {
                            report,
                            kernel: kernel_stats_take(),
                        };
                        (outcome, plan.expect("capture mode fills the plan"))
                    });
                    let (outcomes, plans): (Vec<_>, Vec<_>) = results.into_iter().unzip();
                    // Two queries can race to be first; the loser's
                    // identical plan is simply discarded.
                    let _ = ws.plans.set(Arc::new(plans));
                    outcomes
                }
            }
        }
    }

    /// Convenience: the global triangle count of one query.
    pub fn triangle_count(&self, query: &ResidentQuery) -> u64 {
        let total = Arc::new(AtomicU64::new(0));
        let t = total.clone();
        self.survey(query, move |_c, _tm| {
            t.fetch_add(1, Ordering::Relaxed);
        });
        total.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{BatchLayout, DecodePath, IntersectKernel};

    fn triangle_list() -> EdgeList<u32> {
        EdgeList::from_vec(vec![
            (0u64, 1u64, 1u32),
            (1, 2, 2),
            (2, 0, 3),
            (2, 3, 4),
            (3, 0, 5),
        ])
    }

    #[test]
    fn counts_across_world_sizes_and_engines() {
        let resident = ResidentGraph::build(&triangle_list(), |v| v * 2, Partition::Hashed);
        for nranks in [1, 2, 4, 7] {
            for mode in [EngineMode::PushOnly, EngineMode::PushPull] {
                let q = ResidentQuery::new(nranks).with_mode(mode);
                assert_eq!(resident.triangle_count(&q), 2, "{mode} at {nranks} ranks");
            }
        }
    }

    #[test]
    fn push_pull_plan_replay_is_identical() {
        let resident = ResidentGraph::build(&triangle_list(), |v| v, Partition::Hashed);
        let q = ResidentQuery::new(3);
        let first = resident.survey(&q, |_c, _tm| {});
        assert!(
            resident.world_state(3).plans.get().is_some(),
            "plan captured"
        );
        let second = resident.survey(&q, |_c, _tm| {});
        // Replay must reproduce pulls, grants, and kernel counters
        // exactly; its dry-run phase moves zero records.
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.report.pulled_vertices, b.report.pulled_vertices);
            assert_eq!(a.report.pull_grants, b.report.pull_grants);
            assert_eq!(a.kernel, b.kernel);
            assert_eq!(b.report.phases[0].name, "dry-run");
            assert_eq!(b.report.phases[0].stats.records_total(), 0);
        }
        assert_eq!(resident.triangle_count(&q), 2);
    }

    #[test]
    fn queries_carry_explicit_settings() {
        let q = ResidentQuery::new(2);
        assert!(
            !matches!(q.config.threads, Parallelism::Env),
            "pinned query must not depend on the environment"
        );
        assert!(q.comm.overlap_flush.is_some(), "overlap pinned");
        let q = q
            .with_threads(Parallelism::Threads(3))
            .with_config(
                SurveyConfig::new()
                    .with_layout(BatchLayout::Interleaved)
                    .with_decode(DecodePath::Owned)
                    .with_kernel(IntersectKernel::Gallop),
            )
            .with_mode(EngineMode::PushOnly);
        assert_eq!(q.config.layout, BatchLayout::Interleaved);
        assert_eq!(q.mode, EngineMode::PushOnly);
    }

    #[test]
    fn snapshot_roundtrip_preserves_counts() {
        let resident = ResidentGraph::build(&triangle_list(), |v| v * 3, Partition::Cyclic);
        let bytes = resident.snapshot_bytes(4);
        let restored = ResidentGraph::<u64, u32>::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(restored.partition(), Partition::Cyclic);
        assert_eq!(restored.num_vertices(), resident.num_vertices());
        for nranks in [1, 2, 4] {
            let q = ResidentQuery::new(nranks);
            assert_eq!(resident.triangle_count(&q), restored.triangle_count(&q));
        }
    }
}
