//! Wedge-batch push machinery shared by both engines.
//!
//! A *push* (paper §4.3, Fig. 2 right) takes the suffix of `Adjm+(p)`
//! past an out-neighbor `q` and ships it to `Rank(q)` together with
//! `meta(p)` and `meta(p,q)`. The receiving rank intersects the candidate
//! list against `Adjm+(q)`; every match is a triangle `Δpqr`, and — as
//! the paper argues — all six metadata values are colocated at that
//! moment: `meta(p)`, `meta(pq)`, `meta(pr)` arrived with the message,
//! `meta(q)` and `meta(q,r)` are stored at `Rank(q)`, and `meta(r)` is
//! already in `Adjm+(q)`'s entry for `r` (it is deliberately *not*
//! transmitted).

use std::rc::Rc;

use tripoll_graph::{AdjEntry, DistGraph, OrderKey};
use tripoll_ygm::wire::{encode_seq, Wire};
use tripoll_ygm::{Comm, Handler};

use crate::engine::merge_path;
use crate::meta::TriangleMeta;

/// Type-erased survey callback held by engine handlers.
pub(crate) type DynCallback<VM, EM> = Rc<dyn Fn(&Comm, &TriangleMeta<'_, VM, EM>)>;

/// One candidate `r` vertex inside a push: `(r, d(r), meta(p, r))`.
///
/// `d(r)` rides along so the receiver can reconstruct `r`'s [`OrderKey`]
/// without a lookup; `meta(r)` is intentionally absent (see module docs).
pub(crate) type Candidate<EM> = (u64, u64, EM);

/// A pushed wedge batch: `(p, q, meta(p), meta(p,q), candidates)`.
pub(crate) type PushMsg<VM, EM> = (u64, u64, VM, EM, Vec<Candidate<EM>>);

/// Registers the push handler: intersect candidates with `Adjm+(q)` and
/// run the callback on every triangle. Collective (handler registration).
pub(crate) fn register_push_handler<VM, EM>(
    comm: &Comm,
    graph: &DistGraph<VM, EM>,
    cb: DynCallback<VM, EM>,
) -> Handler<PushMsg<VM, EM>>
where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
{
    let g = graph.clone();
    comm.register::<PushMsg<VM, EM>, _>(move |c, (p, q, meta_p, meta_pq, candidates)| {
        let lv = g.shard().get(q).unwrap_or_else(|| {
            panic!(
                "push for vertex {q} arrived on rank {} which does not own it",
                c.rank()
            )
        });
        // Merge-path walks both lists once: that is the wedge-check work.
        c.add_work((candidates.len() + lv.adj.len()) as u64);
        merge_path(
            &candidates,
            &lv.adj,
            |cand| OrderKey::new(cand.0, cand.1),
            |e| e.key,
            |cand, e| {
                let tm = TriangleMeta {
                    p,
                    q,
                    r: e.v,
                    meta_p: &meta_p,
                    meta_q: &lv.meta,
                    meta_r: &e.vm,
                    meta_pq: &meta_pq,
                    meta_pr: &cand.2,
                    meta_qr: &e.em,
                };
                cb(c, &tm);
            },
        );
    })
}

/// Appends one candidate's wire image — byte-identical to the
/// [`Candidate`] tuple `(s.v, s.key.degree, s.em)` that the receiving
/// handler decodes. Must stay in lockstep with the [`Candidate`] type.
#[inline]
pub(crate) fn encode_candidate<VM, EM: Wire>(s: &AdjEntry<VM, EM>, buf: &mut Vec<u8>) {
    s.v.encode(buf);
    s.key.degree.encode(buf);
    s.em.encode(buf);
}

/// Iterates this rank's vertices and pushes every wedge batch whose
/// target is not excluded by `skip` (Push-Only passes `|_| false`;
/// Push-Pull skips targets that will be pulled instead).
///
/// Encode-once hot path: the candidate suffix serializes **directly**
/// from the `Adjm+(p)` storage slice, and `meta(p)` / `meta(p,q)` are
/// encoded by reference — no `Vec<Candidate>` materialization and no
/// metadata clones per batch (the old path paid O(d²) heap allocations
/// per vertex for exactly the data that already sat in sorted arrays).
pub(crate) fn push_wedge_batches<VM, EM>(
    comm: &Comm,
    graph: &DistGraph<VM, EM>,
    handler: &Handler<PushMsg<VM, EM>>,
    mut skip: impl FnMut(u64) -> bool,
) where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
{
    for lv in graph.shard().vertices() {
        for (i, e) in lv.adj.iter().enumerate() {
            // The last out-neighbor has an empty suffix: no wedges.
            if i + 1 >= lv.adj.len() {
                break;
            }
            if skip(e.v) {
                continue;
            }
            comm.send_encoded(
                graph.owner(e.v),
                handler,
                (
                    lv.id,
                    e.v,
                    &lv.meta,
                    &e.em,
                    encode_seq(&lv.adj[i + 1..], |s, buf| encode_candidate(s, buf)),
                ),
            );
        }
    }
}
