//! Wedge-batch push machinery shared by both engines.
//!
//! A *push* (paper §4.3, Fig. 2 right) takes the suffix of `Adjm+(p)`
//! past an out-neighbor `q` and ships it to `Rank(q)` together with
//! `meta(p)` and `meta(p,q)`. The receiving rank intersects the candidate
//! list against `Adjm+(q)`; every match is a triangle `Δpqr`, and — as
//! the paper argues — all six metadata values are colocated at that
//! moment: `meta(p)`, `meta(pq)`, `meta(pr)` arrived with the message,
//! `meta(q)` and `meta(q,r)` are stored at `Rank(q)`, and `meta(r)` is
//! already in `Adjm+(q)`'s entry for `r` (it is deliberately *not*
//! transmitted).
//!
//! # Zero-copy on both ends of the wire
//!
//! The hot path never materializes a candidate list on either side:
//!
//! * **Send** ([`push_wedge_batches`]): the suffix serializes directly
//!   from `Adjm+(p)` storage via [`encode_seq`], metadata by reference —
//!   no `Vec<Candidate>`, no metadata clones.
//! * **Receive** (the [`DecodePath::Cursor`] handler): candidates arrive
//!   sorted by `<+` (they are a suffix of a sorted adjacency), so the
//!   merge-path intersection consumes them **straight off the receive
//!   buffer** through a [`SeqCursor`] — zero heap allocations per batch.
//!   Per-candidate `meta(p,r)` is captured as a [`Lazy`] byte range and
//!   decoded only when the candidate actually closes a triangle; after
//!   `Adjm+(q)` is exhausted, the cursor skip-walks the remaining
//!   candidates to keep the envelope's record framing intact.
//!
//! The owned decode path ([`DecodePath::Owned`]) — decode a full
//! [`PushMsg`], then intersect — is retained as the differential-testing
//! reference; both paths read the same bytes and emit identical surveys.
//!
//! A push that arrives for a vertex its receiving rank does not own can
//! only mean ownership disagreement between ranks (a partition bug, not
//! a data race); the handler raises a structured [`Comm::abort`] naming
//! the sending rank instead of unwinding mid-dispatch with a bare panic.

use std::rc::Rc;

use tripoll_graph::{AdjEntry, DistGraph, OrderKey};
use tripoll_ygm::wire::{encode_seq, Lazy, SeqCursor, Wire, WireError, WireReader};
use tripoll_ygm::{Comm, Handler};

use crate::engine::{merge_path, merge_path_stream, DecodePath};
use crate::meta::TriangleMeta;

/// Type-erased survey callback held by engine handlers.
pub(crate) type DynCallback<VM, EM> = Rc<dyn Fn(&Comm, &TriangleMeta<'_, VM, EM>)>;

/// One candidate `r` vertex inside a push: `(r, d(r), meta(p, r))`.
///
/// `d(r)` rides along so the receiver can reconstruct `r`'s [`OrderKey`]
/// without a lookup; `meta(r)` is intentionally absent (see module docs).
pub(crate) type Candidate<EM> = (u64, u64, EM);

/// A pushed wedge batch: `(p, q, meta(p), meta(p,q), candidates)`.
pub(crate) type PushMsg<VM, EM> = (u64, u64, VM, EM, Vec<Candidate<EM>>);

/// A [`Candidate`] decoded in place: eager identity and sort key, lazy
/// metadata (materialized only for triangle matches).
pub(crate) struct CandView<'a, EM> {
    /// Candidate vertex `r`.
    pub v: u64,
    /// `r`'s position in the `<+` order.
    pub key: OrderKey,
    /// Captured-but-undecoded `meta(p, r)`.
    pub em: Lazy<'a, EM>,
}

/// Decodes one [`Candidate`]'s wire bytes as a [`CandView`] — the
/// borrowed mirror of [`encode_candidate`]; must stay in lockstep with
/// the [`Candidate`] type.
#[inline]
pub(crate) fn decode_candidate_view<'a, EM: Wire>(
    r: &mut WireReader<'a>,
) -> Result<CandView<'a, EM>, WireError> {
    let v = u64::decode(r)?;
    let degree = u64::decode(r)?;
    let em = Lazy::capture(r)?;
    Ok(CandView {
        v,
        key: OrderKey::new(v, degree),
        em,
    })
}

/// Raises the structured partition-disagreement abort for a push whose
/// target vertex is not owned by the receiving rank. The sender of a
/// wedge batch is the owner of its source vertex `p` — but ownership
/// is computed from *this* rank's partition map, which is exactly what
/// is in question when the abort fires, so it is reported as presumed.
fn abort_unowned_push<VM, EM>(c: &Comm, g: &DistGraph<VM, EM>, p: u64, q: u64) -> ! {
    c.abort(format_args!(
        "push for vertex {q} (wedge source p={p}, presumed sender rank {sender} = owner of p \
         under this rank's partition map) arrived on a rank that does not own {q} — vertex \
         ownership disagrees across ranks; aborting survey",
        sender = g.owner(p)
    ))
}

/// Registers the push handler: intersect candidates with `Adjm+(q)` and
/// run the callback on every triangle. Collective (handler registration,
/// so every rank must pass the same `decode`).
pub(crate) fn register_push_handler<VM, EM>(
    comm: &Comm,
    graph: &DistGraph<VM, EM>,
    cb: DynCallback<VM, EM>,
    decode: DecodePath,
) -> Handler<PushMsg<VM, EM>>
where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
{
    match decode {
        DecodePath::Cursor => register_push_handler_cursor(comm, graph, cb),
        DecodePath::Owned => register_push_handler_owned(comm, graph, cb),
    }
}

/// The zero-copy receive handler: merge-path directly over the wire
/// bytes (see module docs).
fn register_push_handler_cursor<VM, EM>(
    comm: &Comm,
    graph: &DistGraph<VM, EM>,
    cb: DynCallback<VM, EM>,
) -> Handler<PushMsg<VM, EM>>
where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
{
    let g = graph.clone();
    comm.register_borrowed::<PushMsg<VM, EM>, _>(move |c, r| {
        let p = u64::decode(r)?;
        let q = u64::decode(r)?;
        let meta_p = VM::decode(r)?;
        let meta_pq = EM::decode(r)?;
        let mut cands = SeqCursor::begin_typed::<Candidate<EM>>(r)?;
        let Some(lv) = g.shard().get(q) else {
            abort_unowned_push(c, &g, p, q);
        };
        // Merge-path walks both lists once: that is the wedge-check work.
        c.add_work((cands.len() + lv.adj.len()) as u64);
        merge_path_stream(
            || cands.next_with(decode_candidate_view::<EM>),
            &lv.adj,
            |cand| cand.key,
            |e| e.key,
            |cand, e| {
                debug_assert_eq!(cand.v, e.v, "OrderKey equality implies vertex equality");
                let meta_pr = cand.em.get()?;
                let tm = TriangleMeta {
                    p,
                    q,
                    r: e.v,
                    meta_p: &meta_p,
                    meta_q: &lv.meta,
                    meta_r: &e.vm,
                    meta_pq: &meta_pq,
                    meta_pr: &meta_pr,
                    meta_qr: &e.em,
                };
                cb(c, &tm);
                Ok(())
            },
        )?;
        // Adjm+(q) exhausted before the batch: restore record framing.
        cands.skip_rest::<Candidate<EM>>()
    })
}

/// The materializing reference handler (pre-zero-copy receive), kept
/// for differential testing against the cursor path.
fn register_push_handler_owned<VM, EM>(
    comm: &Comm,
    graph: &DistGraph<VM, EM>,
    cb: DynCallback<VM, EM>,
) -> Handler<PushMsg<VM, EM>>
where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
{
    let g = graph.clone();
    comm.register::<PushMsg<VM, EM>, _>(move |c, (p, q, meta_p, meta_pq, candidates)| {
        let Some(lv) = g.shard().get(q) else {
            abort_unowned_push(c, &g, p, q);
        };
        c.add_work((candidates.len() + lv.adj.len()) as u64);
        merge_path(
            &candidates,
            &lv.adj,
            |cand| OrderKey::new(cand.0, cand.1),
            |e| e.key,
            |cand, e| {
                let tm = TriangleMeta {
                    p,
                    q,
                    r: e.v,
                    meta_p: &meta_p,
                    meta_q: &lv.meta,
                    meta_r: &e.vm,
                    meta_pq: &meta_pq,
                    meta_pr: &cand.2,
                    meta_qr: &e.em,
                };
                cb(c, &tm);
            },
        );
    })
}

/// Appends one candidate's wire image — byte-identical to the
/// [`Candidate`] tuple `(s.v, s.key.degree, s.em)` that the receiving
/// handler decodes. Must stay in lockstep with the [`Candidate`] type.
#[inline]
pub(crate) fn encode_candidate<VM, EM: Wire>(s: &AdjEntry<VM, EM>, buf: &mut Vec<u8>) {
    s.v.encode(buf);
    s.key.degree.encode(buf);
    s.em.encode(buf);
}

/// Iterates this rank's vertices and pushes every wedge batch whose
/// target is not excluded by `skip` (Push-Only passes `|_| false`;
/// Push-Pull skips targets that will be pulled instead).
///
/// Encode-once hot path: the candidate suffix serializes **directly**
/// from the `Adjm+(p)` storage slice, and `meta(p)` / `meta(p,q)` are
/// encoded by reference — no `Vec<Candidate>` materialization and no
/// metadata clones per batch (the old path paid O(d²) heap allocations
/// per vertex for exactly the data that already sat in sorted arrays).
pub(crate) fn push_wedge_batches<VM, EM>(
    comm: &Comm,
    graph: &DistGraph<VM, EM>,
    handler: &Handler<PushMsg<VM, EM>>,
    mut skip: impl FnMut(u64) -> bool,
) where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
{
    for lv in graph.shard().vertices() {
        for (i, e) in lv.adj.iter().enumerate() {
            // The last out-neighbor has an empty suffix: no wedges.
            if i + 1 >= lv.adj.len() {
                break;
            }
            if skip(e.v) {
                continue;
            }
            comm.send_encoded(
                graph.owner(e.v),
                handler,
                (
                    lv.id,
                    e.v,
                    &lv.meta,
                    &e.em,
                    encode_seq(&lv.adj[i + 1..], |s, buf| encode_candidate(s, buf)),
                ),
            );
        }
    }
}
