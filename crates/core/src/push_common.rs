//! Wedge-batch push machinery shared by both engines.
//!
//! A *push* (paper §4.3, Fig. 2 right) takes the suffix of `Adjm+(p)`
//! past an out-neighbor `q` and ships it to `Rank(q)` together with
//! `meta(p)` and `meta(p,q)`. The receiving rank intersects the candidate
//! list against `Adjm+(q)`; every match is a triangle `Δpqr`, and — as
//! the paper argues — all six metadata values are colocated at that
//! moment: `meta(p)`, `meta(pq)`, `meta(pr)` arrived with the message,
//! `meta(q)` and `meta(q,r)` are stored at `Rank(q)`, and `meta(r)` is
//! already in `Adjm+(q)`'s entry for `r` (it is deliberately *not*
//! transmitted).
//!
//! # Layout-generic, zero-copy on both ends of the wire
//!
//! The candidate batch crosses the wire in one of two [`BatchLayout`]s,
//! and the machinery here is generic over that axis:
//!
//! * **Columnar** (production default): the suffix serializes as three
//!   packed columns straight from `Adjm+(p)` storage
//!   ([`encode_candidate_columns`]); the receiving handler intersects
//!   by walking only the two key columns ([`ColCursor`]), and the
//!   metadata column is decoded per element exclusively on triangle
//!   matches — the [`tripoll_ygm::wire::Lazy`] decode-on-match idea
//!   promoted from per-record to per-column. The frame is fully
//!   consumed at capture, so early exits leave no record-framing debt.
//! * **Interleaved**: candidates as `(r, d(r), meta)` tuples via
//!   [`encode_seq`], received through a [`SeqCursor`] with per-record
//!   [`Lazy`] metadata — the original layout, retained for
//!   differential testing.
//!
//! On the orthogonal [`DecodePath`] axis, each layout also has a
//! materializing `Owned` reference handler; all four combinations emit
//! identical surveys. The intersection itself dispatches through the
//! configured [`IntersectKernel`] (scalar merge, galloping search,
//! blocked branch-light merge, or the SIMD block merge with
//! runtime-detected packed compares — see [`crate::engine`] and
//! [`crate::simd`]), a third axis that every handler threads through
//! to the kernel layer.
//!
//! A push that arrives for a vertex its receiving rank does not own can
//! only mean ownership disagreement between ranks (a partition bug, not
//! a data race); the handler raises a structured [`Comm::abort`] naming
//! the sending rank instead of unwinding mid-dispatch with a bare panic.

use std::rc::Rc;

use tripoll_graph::{AdjEntry, DistGraph, OrderKey};
use tripoll_ygm::wire::{
    encode_columns, encode_seq, ColBatch, ColCursor, ColView, Lazy, SeqCursor, SeqView, Wire,
    WireEncode, WireError, WireReader,
};
use tripoll_ygm::{Comm, Handler};

use crate::engine::{
    intersect_col, intersect_slices, intersect_stream, BatchLayout, DecodePath, IntersectKernel,
    SurveyConfig,
};
use crate::meta::TriangleMeta;
use crate::par::{Ctx, ParQueue, TaskKind};

/// Type-erased survey callback held by engine handlers.
pub(crate) type DynCallback<VM, EM> = Rc<dyn Fn(&Comm, &TriangleMeta<'_, VM, EM>)>;

/// One candidate `r` vertex inside a push: `(r, d(r), meta(p, r))`.
///
/// `d(r)` rides along so the receiver can reconstruct `r`'s [`OrderKey`]
/// without a lookup; `meta(r)` is intentionally absent (see module docs).
pub(crate) type Candidate<EM> = (u64, u64, EM);

/// An interleaved wedge batch: `(p, q, meta(p), meta(p,q), candidates)`.
pub(crate) type PushMsg<VM, EM> = (u64, u64, VM, EM, Vec<Candidate<EM>>);

/// A columnar wedge batch: same fields, candidates as a [`ColBatch`]
/// (vertex column, delta-coded degree column, metadata column).
pub(crate) type PushMsgCol<VM, EM> = (u64, u64, VM, EM, ColBatch<EM>);

/// The registered push handler, keyed by the batch layout its wire type
/// encodes. Senders must route through the matching arm — the enum
/// makes mixing layouts a compile-time impossibility rather than a
/// decode error on a remote rank.
pub(crate) enum PushHandler<VM, EM> {
    /// Handler for [`PushMsg`] (interleaved candidates).
    Interleaved(Handler<PushMsg<VM, EM>>),
    /// Handler for [`PushMsgCol`] (columnar candidates).
    Columnar(Handler<PushMsgCol<VM, EM>>),
}

/// A [`Candidate`] decoded in place: eager identity and sort key, lazy
/// metadata (materialized only for triangle matches).
pub(crate) struct CandView<'a, EM> {
    /// Candidate vertex `r`.
    pub v: u64,
    /// `r`'s position in the `<+` order.
    pub key: OrderKey,
    /// Captured-but-undecoded `meta(p, r)`.
    pub em: Lazy<'a, EM>,
}

// Manual impls (a derive would bound `EM`): the view is two scalars
// plus a borrowed byte range, freely copyable — which is what lets the
// blocked intersection kernel buffer views in a stack array.
impl<EM> Clone for CandView<'_, EM> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<EM> Copy for CandView<'_, EM> {}

/// Decodes one [`Candidate`]'s wire bytes as a [`CandView`] — the
/// borrowed mirror of [`encode_candidate`]; must stay in lockstep with
/// the [`Candidate`] type.
#[inline]
pub(crate) fn decode_candidate_view<'a, EM: Wire>(
    r: &mut WireReader<'a>,
) -> Result<CandView<'a, EM>, WireError> {
    let v = u64::decode(r)?;
    let degree = u64::decode(r)?;
    let em = Lazy::capture(r)?;
    Ok(CandView {
        v,
        key: OrderKey::new(v, degree),
        em,
    })
}

/// Raises the structured partition-disagreement abort for a push whose
/// target vertex is not owned by the receiving rank. The sender of a
/// wedge batch is the owner of its source vertex `p` — but ownership
/// is computed from *this* rank's partition map, which is exactly what
/// is in question when the abort fires, so it is reported as presumed.
fn abort_unowned_push<VM, EM>(c: &Comm, g: &DistGraph<VM, EM>, p: u64, q: u64) -> ! {
    c.abort(format_args!(
        "push for vertex {q} (wedge source p={p}, presumed sender rank {sender} = owner of p \
         under this rank's partition map) arrived on a rank that does not own {q} — vertex \
         ownership disagrees across ranks; aborting survey",
        sender = g.owner(p)
    ))
}

/// Registers the push handler for the configured layout and decode
/// path: intersect candidates with `Adjm+(q)` and run the callback on
/// every triangle. Collective (handler registration, so every rank must
/// pass the same layout/decode `config`; the `threads` axis behind
/// `queue` is a local choice — it changes the handler body, not the
/// wire contract, so ranks may mix serial and parallel merge paths).
///
/// With a `queue` (the parallel merge path, cursor decode only) the
/// handlers validate and copy the candidate frame, then enqueue a work
/// item instead of intersecting inline — see [`crate::par`].
pub(crate) fn register_push_handler<VM, EM>(
    comm: &Comm,
    graph: &DistGraph<VM, EM>,
    cb: DynCallback<VM, EM>,
    config: SurveyConfig,
    queue: Option<Rc<ParQueue<VM, EM>>>,
) -> PushHandler<VM, EM>
where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
{
    match (config.layout, config.decode, queue) {
        (BatchLayout::Columnar, DecodePath::Cursor, Some(pq)) => {
            PushHandler::Columnar(register_push_handler_columnar_cursor_par(comm, graph, pq))
        }
        (BatchLayout::Interleaved, DecodePath::Cursor, Some(pq)) => {
            PushHandler::Interleaved(register_push_handler_cursor_par(comm, graph, pq))
        }
        (BatchLayout::Columnar, DecodePath::Cursor, None) => PushHandler::Columnar(
            register_push_handler_columnar_cursor(comm, graph, cb, config.kernel),
        ),
        (BatchLayout::Columnar, DecodePath::Owned, _) => PushHandler::Columnar(
            register_push_handler_columnar_owned(comm, graph, cb, config.kernel),
        ),
        (BatchLayout::Interleaved, DecodePath::Cursor, None) => {
            PushHandler::Interleaved(register_push_handler_cursor(comm, graph, cb, config.kernel))
        }
        (BatchLayout::Interleaved, DecodePath::Owned, _) => {
            PushHandler::Interleaved(register_push_handler_owned(comm, graph, cb, config.kernel))
        }
    }
}

/// The target vertex's slot in the shard (its index in the sorted
/// vertex vector) — the compact rank-local handle the parallel replay
/// context carries instead of a borrow into the shard.
#[inline]
fn slot_of<VM, EM>(g: &DistGraph<VM, EM>, q: u64) -> Option<usize> {
    g.shard().vertices().binary_search_by_key(&q, |v| v.id).ok()
}

/// Parallel twin of [`register_push_handler_columnar_cursor`]: decode
/// the header, capture and copy the candidate columns, enqueue one work
/// item for the pool instead of intersecting inline.
fn register_push_handler_columnar_cursor_par<VM, EM>(
    comm: &Comm,
    graph: &DistGraph<VM, EM>,
    queue: Rc<ParQueue<VM, EM>>,
) -> Handler<PushMsgCol<VM, EM>>
where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
{
    let g = graph.clone();
    comm.register_borrowed::<PushMsgCol<VM, EM>, _>(move |c, r| {
        let p = u64::decode(r)?;
        let q = u64::decode(r)?;
        let meta_p = VM::decode(r)?;
        let meta_pq = EM::decode(r)?;
        // Structure-validate and fully consume the frame (bounded
        // column takes), exactly like the serial capture, then copy the
        // consumed bytes into the queue's arena.
        let start = r.position();
        let view: ColView<'_, EM> = ColView::capture(r)?;
        let frame = r.since(start);
        let Some(slot) = slot_of(&g, q) else {
            abort_unowned_push(c, &g, p, q);
        };
        let lv = &g.shard().vertices()[slot];
        c.add_work((view.len() + lv.adj.len()) as u64);
        let raw = queue.alloc_frame(frame);
        queue.push_task(
            c,
            TaskKind::PushCol,
            raw,
            &lv.adj,
            Ctx::Push {
                p,
                q,
                meta_p,
                meta_pq,
                slot: slot as u32,
            },
        );
        queue.maybe_flush(c);
        Ok(())
    })
}

/// Parallel twin of [`register_push_handler_cursor`] (interleaved
/// layout): capture the candidate sequence's extent, copy it, enqueue.
fn register_push_handler_cursor_par<VM, EM>(
    comm: &Comm,
    graph: &DistGraph<VM, EM>,
    queue: Rc<ParQueue<VM, EM>>,
) -> Handler<PushMsg<VM, EM>>
where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
{
    let g = graph.clone();
    comm.register_borrowed::<PushMsg<VM, EM>, _>(move |c, r| {
        let p = u64::decode(r)?;
        let q = u64::decode(r)?;
        let meta_p = VM::decode(r)?;
        let meta_pq = EM::decode(r)?;
        // The skip-walk capture consumes the whole sequence, so record
        // framing is intact and `since` covers prefix plus elements.
        let start = r.position();
        let view: SeqView<'_, Candidate<EM>> = SeqView::capture(r)?;
        let frame = r.since(start);
        let Some(slot) = slot_of(&g, q) else {
            abort_unowned_push(c, &g, p, q);
        };
        let lv = &g.shard().vertices()[slot];
        c.add_work((view.len() + lv.adj.len()) as u64);
        let raw = queue.alloc_frame(frame);
        queue.push_task(
            c,
            TaskKind::PushSeq,
            raw,
            &lv.adj,
            Ctx::Push {
                p,
                q,
                meta_p,
                meta_pq,
                slot: slot as u32,
            },
        );
        queue.maybe_flush(c);
        Ok(())
    })
}

/// The production receive handler: capture the columnar frame, run the
/// configured intersection kernel over the key columns, decode
/// metadata on match only.
fn register_push_handler_columnar_cursor<VM, EM>(
    comm: &Comm,
    graph: &DistGraph<VM, EM>,
    cb: DynCallback<VM, EM>,
    kernel: IntersectKernel,
) -> Handler<PushMsgCol<VM, EM>>
where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
{
    let g = graph.clone();
    comm.register_borrowed::<PushMsgCol<VM, EM>, _>(move |c, r| {
        let p = u64::decode(r)?;
        let q = u64::decode(r)?;
        let meta_p = VM::decode(r)?;
        let meta_pq = EM::decode(r)?;
        // The frame is fully consumed here (bounded column takes), so
        // record framing is intact no matter where the merge stops.
        let cur: ColCursor<'_, EM> = ColCursor::begin(r)?;
        let Some(lv) = g.shard().get(q) else {
            abort_unowned_push(c, &g, p, q);
        };
        // The intersection visits both lists once: that is the
        // wedge-check work (kernel-independent by design).
        c.add_work((cur.len() + lv.adj.len()) as u64);
        let ColCursor {
            mut keys,
            mut metas,
        } = cur;
        intersect_col(
            kernel,
            &mut keys,
            &lv.adj,
            |e| e.key,
            |k, e| {
                debug_assert_eq!(k.v, e.v, "OrderKey equality implies vertex equality");
                let meta_pr = metas.get(k.idx)?;
                let tm = TriangleMeta {
                    p,
                    q,
                    r: e.v,
                    meta_p: &meta_p,
                    meta_q: &lv.meta,
                    meta_r: &e.vm,
                    meta_pq: &meta_pq,
                    meta_pr: &meta_pr,
                    meta_qr: &e.em,
                };
                cb(c, &tm);
                Ok(())
            },
        )
    })
}

/// Materializing reference handler for the columnar layout: decode the
/// owned [`ColBatch`], then intersect — differential-testing mirror of
/// the column cursors.
fn register_push_handler_columnar_owned<VM, EM>(
    comm: &Comm,
    graph: &DistGraph<VM, EM>,
    cb: DynCallback<VM, EM>,
    kernel: IntersectKernel,
) -> Handler<PushMsgCol<VM, EM>>
where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
{
    let g = graph.clone();
    comm.register::<PushMsgCol<VM, EM>, _>(move |c, (p, q, meta_p, meta_pq, batch)| {
        let Some(lv) = g.shard().get(q) else {
            abort_unowned_push(c, &g, p, q);
        };
        c.add_work((batch.0.len() + lv.adj.len()) as u64);
        intersect_slices(
            kernel,
            &batch.0,
            &lv.adj,
            |cand| OrderKey::new(cand.0, cand.1),
            |e| e.key,
            |cand, e| {
                let tm = TriangleMeta {
                    p,
                    q,
                    r: e.v,
                    meta_p: &meta_p,
                    meta_q: &lv.meta,
                    meta_r: &e.vm,
                    meta_pq: &meta_pq,
                    meta_pr: &cand.2,
                    meta_qr: &e.em,
                };
                cb(c, &tm);
            },
        );
    })
}

/// The interleaved zero-copy receive handler: the configured kernel
/// runs directly over the wire bytes through a [`SeqCursor`] (see
/// module docs).
fn register_push_handler_cursor<VM, EM>(
    comm: &Comm,
    graph: &DistGraph<VM, EM>,
    cb: DynCallback<VM, EM>,
    kernel: IntersectKernel,
) -> Handler<PushMsg<VM, EM>>
where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
{
    let g = graph.clone();
    comm.register_borrowed::<PushMsg<VM, EM>, _>(move |c, r| {
        let p = u64::decode(r)?;
        let q = u64::decode(r)?;
        let meta_p = VM::decode(r)?;
        let meta_pq = EM::decode(r)?;
        let mut cands = SeqCursor::begin_typed::<Candidate<EM>>(r)?;
        let Some(lv) = g.shard().get(q) else {
            abort_unowned_push(c, &g, p, q);
        };
        // The intersection visits both lists once: that is the
        // wedge-check work (kernel-independent by design).
        c.add_work((cands.len() + lv.adj.len()) as u64);
        intersect_stream(
            kernel,
            cands.len(),
            || cands.next_with(decode_candidate_view::<EM>),
            &lv.adj,
            |cand| cand.key,
            |e| e.key,
            |cand, e| {
                debug_assert_eq!(cand.v, e.v, "OrderKey equality implies vertex equality");
                let meta_pr = cand.em.get()?;
                let tm = TriangleMeta {
                    p,
                    q,
                    r: e.v,
                    meta_p: &meta_p,
                    meta_q: &lv.meta,
                    meta_r: &e.vm,
                    meta_pq: &meta_pq,
                    meta_pr: &meta_pr,
                    meta_qr: &e.em,
                };
                cb(c, &tm);
                Ok(())
            },
        )?;
        // Adjm+(q) exhausted before the batch: restore record framing.
        cands.skip_rest::<Candidate<EM>>()
    })
}

/// The materializing reference handler for the interleaved layout,
/// kept for differential testing against the cursor path.
fn register_push_handler_owned<VM, EM>(
    comm: &Comm,
    graph: &DistGraph<VM, EM>,
    cb: DynCallback<VM, EM>,
    kernel: IntersectKernel,
) -> Handler<PushMsg<VM, EM>>
where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
{
    let g = graph.clone();
    comm.register::<PushMsg<VM, EM>, _>(move |c, (p, q, meta_p, meta_pq, candidates)| {
        let Some(lv) = g.shard().get(q) else {
            abort_unowned_push(c, &g, p, q);
        };
        c.add_work((candidates.len() + lv.adj.len()) as u64);
        intersect_slices(
            kernel,
            &candidates,
            &lv.adj,
            |cand| OrderKey::new(cand.0, cand.1),
            |e| e.key,
            |cand, e| {
                let tm = TriangleMeta {
                    p,
                    q,
                    r: e.v,
                    meta_p: &meta_p,
                    meta_q: &lv.meta,
                    meta_r: &e.vm,
                    meta_pq: &meta_pq,
                    meta_pr: &cand.2,
                    meta_qr: &e.em,
                };
                cb(c, &tm);
            },
        );
    })
}

/// Appends one candidate's interleaved wire image — byte-identical to
/// the [`Candidate`] tuple `(s.v, s.key.degree, s.em)` that the
/// receiving handler decodes. Must stay in lockstep with the
/// [`Candidate`] type.
#[inline]
pub(crate) fn encode_candidate<VM, EM: Wire>(s: &AdjEntry<VM, EM>, buf: &mut Vec<u8>) {
    s.v.encode(buf);
    s.key.degree.encode(buf);
    s.em.encode(buf);
}

/// The columnar projection of an adjacency slice: serializes the
/// candidate batch as three packed columns straight from `Adjm+`
/// storage, byte-identical to the [`ColBatch`] the receiving handler
/// is keyed on. The degree column delta-codes for free here because
/// the slice is `<+`-sorted, so degrees are monotone non-decreasing.
#[inline]
pub(crate) fn encode_candidate_columns<VM, EM: Wire>(
    adj: &[AdjEntry<VM, EM>],
) -> impl WireEncode + '_ {
    encode_columns(adj, |s| s.v, |s| s.key.degree, |s, buf| s.em.encode(buf))
}

/// Iterates this rank's vertices and pushes every wedge batch whose
/// target is not excluded by `skip` (Push-Only passes `|_| false`;
/// Push-Pull skips targets that will be pulled instead).
///
/// Encode-once hot path for either layout: the candidate suffix
/// serializes **directly** from the `Adjm+(p)` storage slice, and
/// `meta(p)` / `meta(p,q)` are encoded by reference — no candidate
/// materialization and no metadata clones per batch.
pub(crate) fn push_wedge_batches<VM, EM>(
    comm: &Comm,
    graph: &DistGraph<VM, EM>,
    handler: &PushHandler<VM, EM>,
    mut skip: impl FnMut(u64) -> bool,
) where
    VM: Wire + Clone + 'static,
    EM: Wire + Clone + 'static,
{
    for lv in graph.shard().vertices() {
        for (i, e) in lv.adj.iter().enumerate() {
            // The last out-neighbor has an empty suffix: no wedges.
            if i + 1 >= lv.adj.len() {
                break;
            }
            if skip(e.v) {
                continue;
            }
            let dest = graph.owner(e.v);
            let suffix = &lv.adj[i + 1..];
            match handler {
                PushHandler::Interleaved(h) => comm.send_encoded(
                    dest,
                    h,
                    (
                        lv.id,
                        e.v,
                        &lv.meta,
                        &e.em,
                        encode_seq(suffix, |s, buf| encode_candidate(s, buf)),
                    ),
                ),
                PushHandler::Columnar(h) => comm.send_encoded(
                    dest,
                    h,
                    (
                        lv.id,
                        e.v,
                        &lv.meta,
                        &e.em,
                        encode_candidate_columns(suffix),
                    ),
                ),
            }
        }
    }
}
