//! Model-checked concurrency tests for the shipping protocols: the
//! work-stealing pool's dispatch/completion discipline, the quiescence
//! barrier's deferred-work seam, and the overlapped transport stage's
//! staging/drain/shutdown protocol.
//!
//! These compile only under `RUSTFLAGS="--cfg tripoll_model"`, where
//! the `tripoll-sync` facade swaps std primitives for the instrumented
//! ones in `tripoll-modelcheck` and every lock/atomic/spawn becomes a
//! schedule point. Run them with:
//!
//! ```text
//! RUSTFLAGS="--cfg tripoll_model" cargo test -p tripoll-core --test model
//! ```
//!
//! A failing interleaving panics with a deterministic trace and a
//! `TRIPOLL_MODEL_REPLAY=` line that re-executes exactly that schedule.
#![cfg(tripoll_model)]

use std::sync::Arc;

use rayon::pool::ThreadPool;
use tripoll_modelcheck::cell::RaceCell;
use tripoll_modelcheck::thread;
use tripoll_modelcheck::{check, Config};
use tripoll_ygm::overlap::DrainStage;
use tripoll_ygm::quiesce::Quiescence;

/// The steal-half deque: every index of a batch executes exactly once,
/// and the caller's post-`run` reads are ordered after every worker's
/// writes. A duplicated index shows up as a `RaceCell` race (two
/// unsynchronized `with_mut`s) or a count of 2; a lost index as a count
/// of 0; a broken completion edge (the `remaining` Acquire) as a race
/// between a worker's write and the caller's read.
#[test]
fn pool_runs_each_index_exactly_once() {
    let stats = check(Config::with_bound(2), || {
        let counts: Vec<RaceCell<u32>> = (0..2).map(|_| RaceCell::new(0)).collect();
        let pool = ThreadPool::new(1);
        pool.run(2, |i| counts[i].with_mut(|v| *v += 1));
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.get(), 1, "index {i} did not run exactly once");
        }
        drop(pool); // shutdown/join protocol is part of the execution
    });
    assert!(
        stats.exhausted,
        "DFS must exhaust the deque space at this bound ({} schedules)",
        stats.schedules
    );
}

/// The `ParQueue` recycling discipline, replicated on the pool seam it
/// runs through: the same buffers are handed to `run_mut` twice (one
/// "flush" per round, buffers recycled in between). If `run`'s
/// completion protocol failed to synchronize the caller with every
/// worker, round 2's writes would race round 1's.
#[test]
fn pool_recycles_buffers_across_batches_without_racing() {
    let stats = check(Config::with_bound(2), || {
        let pool = ThreadPool::new(1);
        let mut bufs: Vec<RaceCell<u32>> = (0..2).map(|_| RaceCell::new(0)).collect();
        pool.run_mut(&mut bufs, |b| b.with_mut(|v| *v += 1));
        // Recycle: the engine clears and reuses its frame/match buffers
        // between flushes; reuse is sound only if the first batch fully
        // happened-before this point.
        pool.run_mut(&mut bufs, |b| b.with_mut(|v| *v += 1));
        for b in &bufs {
            assert_eq!(b.get(), 2, "a recycled buffer lost a round");
        }
    });
    assert!(
        stats.exhausted,
        "DFS must exhaust the recycling space at this bound ({} schedules)",
        stats.schedules
    );
}

/// The quiescence invariant: a barrier never releases while deferred
/// work is outstanding, under both spin loops (last-arrival driver and
/// generation waiter — both arrival orders are explored). The deferred
/// unit's effect is a `RaceCell` write; if the barrier could release
/// early, the post-barrier read would race it (and the assert would see
/// a stale value).
#[test]
fn quiescence_barrier_waits_for_deferred_work() {
    let stats = check(Config::with_bound(2), || {
        let q = Arc::new(Quiescence::new());
        let data = Arc::new(RaceCell::new(0u32));
        q.record_sent(); // defer_work: registered before anyone enters
        let (q2, d2) = (q.clone(), data.clone());
        let h = thread::spawn(move || {
            d2.with_mut(|v| *v = 42); // the deferred work itself
            q2.record_done(); // deferred_done: Release publishes it
            q2.barrier(2, || false);
        });
        q.barrier(2, || false);
        assert_eq!(
            data.get(),
            42,
            "barrier released before deferred work completed"
        );
        h.join().unwrap();
    });
    assert!(
        stats.exhausted,
        "DFS must exhaust the barrier space at this bound ({} schedules)",
        stats.schedules
    );
}

/// The drain-hook seam: the deferred unit completes *inside* the
/// barrier's progress callback (exactly how the engine's `ParQueue`
/// drain hook retires deferred flushes), interleaved against both spin
/// loops. The peer's post-barrier read proves the generation release
/// carries the hook's effects.
#[test]
fn drain_hook_inside_barrier_reaches_quiescence() {
    let stats = check(Config::with_bound(2), || {
        let q = Arc::new(Quiescence::new());
        let data = Arc::new(RaceCell::new(0u32));
        q.record_sent(); // the engine defers a flush before the barrier
        let (q2, d2) = (q.clone(), data.clone());
        let h = thread::spawn(move || {
            q2.barrier(2, || false);
            d2.with(|v| assert_eq!(*v, 7, "peer released before the drain hook ran"));
        });
        let mut drained = false;
        q.barrier(2, || {
            if drained {
                return false;
            }
            drained = true;
            data.with_mut(|v| *v = 7); // the hook drains the deferred unit
            q.record_done();
            true
        });
        data.with(|v| assert_eq!(*v, 7));
        h.join().unwrap();
    });
    assert!(
        stats.exhausted,
        "DFS must exhaust the drain-hook space at this bound ({} schedules)",
        stats.schedules
    );
}

/// The overlapped-transport seam: an envelope staged in the [`DrainStage`]
/// while a quiescence barrier is in progress. The send-side counted the
/// record (`record_sent`) *before* staging — exactly the comm layer's
/// order — so the barrier must not release until the transport worker
/// has delivered the envelope and the receive side retired it
/// (`record_done`). The post-barrier read of the delivery's effect
/// races if any interleaving lets the barrier overtake the in-flight
/// envelope.
#[test]
fn quiescence_holds_through_in_flight_transport() {
    let stats = check(Config::with_bound(2), || {
        let q = Arc::new(Quiescence::new());
        let stage = Arc::new(DrainStage::<u32>::new());
        let data = Arc::new(RaceCell::new(0u32));
        // Send side: count the record, then stage its envelope for the
        // transport worker (record_sent strictly before visibility).
        q.record_sent();
        stage.push(42);
        let (s2, q2, d2) = (stage.clone(), q.clone(), data.clone());
        let worker = thread::spawn(move || {
            s2.worker_loop(|v| {
                // "Delivery": the receive side runs the handler and
                // retires the record.
                d2.with_mut(|slot| *slot = v);
                q2.record_done();
            });
        });
        q.barrier(1, || false);
        assert_eq!(
            data.get(),
            42,
            "barrier released while the envelope was still in transport"
        );
        stage.shutdown();
        worker.join().unwrap();
        assert!(stage.is_idle(), "worker exited with in-flight items");
    });
    assert!(
        stats.exhausted,
        "DFS must exhaust the transport space at this bound ({} schedules)",
        stats.schedules
    );
}

/// Teardown of the overlapped transport: items staged before shutdown
/// are delivered, never dropped, across every shutdown/worker
/// interleaving — the invariant `Comm::drop` relies on when it joins
/// the transport worker while envelopes may still be queued.
#[test]
fn transport_shutdown_never_drops_staged_items() {
    let stats = check(Config::with_bound(2), || {
        let stage = Arc::new(DrainStage::<u32>::new());
        let count = Arc::new(RaceCell::new(0u32));
        stage.push(1);
        stage.push(2);
        let (s2, c2) = (stage.clone(), count.clone());
        let worker = thread::spawn(move || {
            s2.worker_loop(|_| c2.with_mut(|v| *v += 1));
        });
        stage.shutdown();
        worker.join().unwrap();
        assert_eq!(count.get(), 2, "shutdown dropped a staged envelope");
        assert!(stage.is_idle());
    });
    assert!(
        stats.exhausted,
        "DFS must exhaust the shutdown space at this bound ({} schedules)",
        stats.schedules
    );
}

/// Regression: the AcqRel on `record_done` is load-bearing. The only
/// edge from a waiter's drain hook to the driver's release is the
/// pending decrement's Release half — the waiter already passed the
/// (SeqCst) arrival counter *before* its hook ran, so that edge cannot
/// carry the hook's effects. Downgrading the decrement to Relaxed
/// severs it, and the checker reports the driver's post-barrier read
/// as a data race. (If someone "optimizes" the ordering, this test
/// fails by not panicking.)
#[test]
#[should_panic(expected = "data race")]
fn quiescence_relaxed_decrement_races() {
    check(Config::with_bound(2), || {
        let q = Arc::new(Quiescence::new());
        let data = Arc::new(RaceCell::new(0u32));
        q.record_sent();
        let (q2, d2) = (q.clone(), data.clone());
        let h = thread::spawn(move || {
            let mut drained = false;
            q2.barrier(2, || {
                if drained {
                    return false;
                }
                drained = true;
                d2.with_mut(|v| *v = 7);
                q2.record_done_relaxed(); // BUG under test: no Release half
                true
            });
        });
        q.barrier(2, || false);
        let _ = data.get();
        h.join().unwrap();
    });
}
