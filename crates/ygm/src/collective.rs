//! Blocking collectives over the quiescence barrier.
//!
//! TriPoll's callbacks leave per-rank partial results (triangle counters,
//! histogram shards) that are combined with "an `All_Reduce`-type
//! operation" (Alg. 2, line 4). These collectives provide that: each rank
//! deposits its serialized contribution in a shared slot, a barrier
//! separates the write and read sides, and every rank folds the
//! contributions in rank order so all ranks compute bit-identical results.
//!
//! All collectives are *synchronizing*: they begin with a quiescence
//! barrier, so any fire-and-forget traffic still in flight is drained
//! before values are combined — calling `all_reduce` right after a survey
//! is always safe.

use crate::comm::Comm;
use crate::wire::{from_bytes, to_bytes, Wire};

impl Comm {
    /// Gathers one value from every rank; all ranks receive the full
    /// vector, indexed by rank.
    pub fn all_gather<T: Wire>(&self, value: &T) -> Vec<T> {
        // Drain in-flight traffic and synchronize entry.
        self.barrier();
        *self.shared().slots[self.rank()].lock() = to_bytes(value);
        // Everyone has written their slot.
        self.barrier();
        let out: Vec<T> = (0..self.nranks())
            .map(|r| {
                let bytes = self.shared().slots[r].lock();
                from_bytes(&bytes).expect("collective slot decodes")
            })
            .collect();
        // Everyone has read; slots may now be reused by the next collective.
        self.barrier();
        out
    }

    /// Reduces one value per rank with `op`, folding in rank order; every
    /// rank receives the same result.
    pub fn all_reduce<T: Wire, F: Fn(T, T) -> T>(&self, value: T, op: F) -> T {
        let mut parts = self.all_gather(&value).into_iter();
        let first = parts.next().expect("at least one rank");
        parts.fold(first, op)
    }

    /// Sum-reduction shorthand for counters.
    pub fn all_reduce_sum(&self, value: u64) -> u64 {
        self.all_reduce(value, |a, b| a + b)
    }

    /// Max-reduction shorthand.
    pub fn all_reduce_max(&self, value: u64) -> u64 {
        self.all_reduce(value, std::cmp::max)
    }

    /// Min-reduction shorthand.
    pub fn all_reduce_min(&self, value: u64) -> u64 {
        self.all_reduce(value, std::cmp::min)
    }

    /// Broadcasts `value` from `root` to every rank. Non-root ranks pass
    /// their (ignored) local value to keep the call shape SPMD-uniform.
    pub fn broadcast<T: Wire>(&self, value: &T, root: usize) -> T {
        assert!(root < self.nranks(), "broadcast root {root} out of range");
        self.barrier();
        if self.rank() == root {
            *self.shared().slots[root].lock() = to_bytes(value);
        }
        self.barrier();
        let out = {
            let bytes = self.shared().slots[root].lock();
            from_bytes(&bytes).expect("broadcast slot decodes")
        };
        self.barrier();
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::world::World;

    #[test]
    fn all_gather_orders_by_rank() {
        let out = World::new(4).run(|comm| comm.all_gather(&(comm.rank() as u64 * 3)));
        for ranks in out {
            assert_eq!(ranks, vec![0, 3, 6, 9]);
        }
    }

    #[test]
    fn all_reduce_sum_matches_serial() {
        let out = World::new(5).run(|comm| comm.all_reduce_sum(comm.rank() as u64 + 1));
        assert_eq!(out, vec![15; 5]);
    }

    #[test]
    fn all_reduce_min_max() {
        let out = World::new(3).run(|comm| {
            let v = (comm.rank() as u64 + 7) * 11;
            (comm.all_reduce_min(v), comm.all_reduce_max(v))
        });
        assert_eq!(out, vec![(77, 99); 3]);
    }

    #[test]
    fn all_reduce_nontrivial_type() {
        // Reduce vectors by element-wise sum.
        let out = World::new(3).run(|comm| {
            let mine = vec![comm.rank() as u64, 1];
            comm.all_reduce(mine, |a, b| {
                a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
            })
        });
        assert_eq!(out, vec![vec![3, 3]; 3]);
    }

    #[test]
    fn broadcast_from_each_root() {
        for root in 0..3 {
            let out = World::new(3).run(|comm| {
                let mine = format!("from-{}", comm.rank());
                comm.broadcast(&mine, root)
            });
            assert_eq!(out, vec![format!("from-{root}"); 3]);
        }
    }

    #[test]
    fn collective_after_async_traffic() {
        let out = World::new(4).run(|comm| {
            use std::cell::Cell;
            use std::rc::Rc;
            let local = Rc::new(Cell::new(0u64));
            let local2 = local.clone();
            let h = comm.register::<u64, _>(move |_c, v| {
                local2.set(local2.get() + v);
            });
            for dest in 0..comm.nranks() {
                comm.send(dest, &h, &1u64);
            }
            // Drain the fire-and-forget traffic, then combine. (The value
            // passed to all_reduce is evaluated before its entry barrier,
            // so the explicit barrier here is required — same discipline
            // as the paper's Alg. 2 which reduces only after the survey.)
            comm.barrier();
            comm.all_reduce_sum(local.get())
        });
        assert_eq!(out, vec![16; 4]);
    }

    #[test]
    fn repeated_collectives_do_not_cross_talk() {
        let out = World::new(3).run(|comm| {
            let a = comm.all_reduce_sum(1);
            let b = comm.all_reduce_sum(10);
            let c = comm.all_reduce_sum(100);
            (a, b, c)
        });
        assert_eq!(out, vec![(3, 30, 300); 3]);
    }
}
