//! Per-destination send buffers.
//!
//! YGM's central scalability trick (§4.1.1 of the paper) is that it never
//! ships an application record on its own: records destined for the same
//! rank are appended to a growing byte buffer and the buffer is handed to
//! the transport only when it crosses a size threshold or the application
//! flushes (e.g. on entering a barrier). One flush == one MPI message, so
//! the per-message overhead of headers and handshakes is amortized over
//! hundreds of records.
//!
//! [`SendBuffer`] is that accumulation buffer. It stores the concatenated
//! `(handler_id, payload)` records plus the record count, and reports when
//! the flush policy says it should be shipped.

use crate::wire::{put_varint, Wire};

/// Accumulates serialized records bound for a single destination rank.
#[derive(Debug, Default)]
pub struct SendBuffer {
    data: Vec<u8>,
    records: u64,
}

impl SendBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        SendBuffer::default()
    }

    /// Appends one `(handler_id, payload)` record.
    ///
    /// Returns the number of bytes the record occupies on the wire.
    #[inline]
    pub fn push_record<M: Wire>(&mut self, handler_id: u32, msg: &M) -> usize {
        let before = self.data.len();
        put_varint(&mut self.data, u64::from(handler_id));
        msg.encode(&mut self.data);
        self.records += 1;
        self.data.len() - before
    }

    /// Bytes currently buffered.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing is buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Records currently buffered.
    #[inline]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// True when the buffer has reached the flush threshold.
    #[inline]
    pub fn should_flush(&self, threshold: usize) -> bool {
        self.data.len() >= threshold
    }

    /// Removes and returns the buffered payload and record count, leaving
    /// the buffer empty (its allocation is surrendered with the payload —
    /// the receiving rank frees it, mirroring an MPI send buffer handoff).
    #[inline]
    pub fn drain(&mut self) -> (Vec<u8>, u64) {
        let records = self.records;
        self.records = 0;
        (std::mem::take(&mut self.data), records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{WireReader, WireError};

    #[test]
    fn push_and_drain() {
        let mut b = SendBuffer::new();
        assert!(b.is_empty());
        let n1 = b.push_record(3, &(7u64, 9u64));
        let n2 = b.push_record(4, &"hi".to_string());
        assert_eq!(b.records(), 2);
        assert_eq!(b.len(), n1 + n2);

        let (data, records) = b.drain();
        assert_eq!(records, 2);
        assert_eq!(data.len(), n1 + n2);
        assert!(b.is_empty());
        assert_eq!(b.records(), 0);

        // The drained bytes decode back into the records we pushed.
        let mut r = WireReader::new(&data);
        assert_eq!(r.take_varint().unwrap(), 3);
        let pair = <(u64, u64)>::decode(&mut r).unwrap();
        assert_eq!(pair, (7, 9));
        assert_eq!(r.take_varint().unwrap(), 4);
        assert_eq!(String::decode(&mut r).unwrap(), "hi");
        assert!(r.is_empty());
    }

    #[test]
    fn flush_threshold() {
        let mut b = SendBuffer::new();
        assert!(!b.should_flush(16));
        // Zero threshold flushes on any content.
        b.push_record(0, &1u8);
        assert!(b.should_flush(0));
        assert!(b.should_flush(1));
        assert!(!b.should_flush(1024));
        while b.len() < 1024 {
            b.push_record(0, &0xffff_ffff_ffffu64);
        }
        assert!(b.should_flush(1024));
    }

    #[test]
    fn record_overhead_is_small() {
        // A (u32 vertex, u32 vertex) record with a one-byte handler id must
        // cost single-digit bytes — this is the communication-volume story.
        let mut b = SendBuffer::new();
        let n = b.push_record(2, &(17u32, 103u32));
        assert!(n <= 3 + 1, "record cost {n} bytes");
    }

    #[test]
    fn decode_error_type_is_exported() {
        // Compile-time check that wire errors surface through the buffer's
        // public decode path.
        fn assert_err_ty(_e: WireError) {}
        let _ = assert_err_ty;
    }
}
