//! Per-destination send buffers.
//!
//! YGM's central scalability trick (§4.1.1 of the paper) is that it never
//! ships an application record on its own: records destined for the same
//! rank are appended to a growing byte buffer and the buffer is handed to
//! the transport only when it crosses a size threshold or the application
//! flushes (e.g. on entering a barrier). One flush == one MPI message, so
//! the per-message overhead of headers and handshakes is amortized over
//! hundreds of records.
//!
//! [`SendBuffer`] is that accumulation buffer. It stores the concatenated
//! `(handler_id, payload)` records plus the record count, and reports when
//! the flush policy says it should be shipped.

use crate::wire::{put_varint, Wire};

/// Recycles drained send-buffer allocations.
///
/// Every buffer flush used to surrender its `Vec<u8>` to the receiving
/// rank, so each subsequent send re-grew a fresh allocation from zero —
/// O(envelopes) heap churn per phase. The pool closes the loop: a rank
/// returns the payload vectors of envelopes it has finished dispatching,
/// and its own `SendBuffer`s restart from those already-grown vectors.
/// In steady state (a rank receives about as many envelopes as it
/// sends), sends allocate nothing.
///
/// Capacity is bounded on both axes: at most `max_buffers` vectors are
/// retained, and a vector whose capacity exceeds `max_buffer_bytes` is
/// dropped rather than pooled (a single oversized envelope — e.g. one
/// hub vertex's multi-MB adjacency projection — must not stay resident
/// for the pool's lifetime). Pooled memory is therefore capped at
/// `max_buffers × max_buffer_bytes`.
#[derive(Debug)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    max_buffers: usize,
    max_buffer_bytes: usize,
    reuses: u64,
}

impl BufferPool {
    /// A pool retaining at most `max_buffers` drained vectors of up to
    /// `max_buffer_bytes` capacity each.
    pub fn new(max_buffers: usize, max_buffer_bytes: usize) -> Self {
        BufferPool {
            free: Vec::new(),
            max_buffers,
            max_buffer_bytes,
            reuses: 0,
        }
    }

    /// Takes a recycled vector (empty, capacity intact), or a fresh one.
    #[inline]
    pub fn take(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(v) => {
                self.reuses += 1;
                v
            }
            None => Vec::new(),
        }
    }

    /// Returns a vector to the pool; dropped if the pool is full or the
    /// vector is empty or oversized.
    #[inline]
    pub fn put(&mut self, mut v: Vec<u8>) {
        if self.free.len() < self.max_buffers
            && v.capacity() > 0
            && v.capacity() <= self.max_buffer_bytes
        {
            v.clear();
            self.free.push(v);
        }
    }

    /// Vectors currently pooled.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Times [`BufferPool::take`] was served from the pool.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }
}

/// Accumulates serialized records bound for a single destination rank.
#[derive(Debug, Default)]
pub struct SendBuffer {
    data: Vec<u8>,
    records: u64,
}

impl SendBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        SendBuffer::default()
    }

    /// Appends one `(handler_id, payload)` record.
    ///
    /// Returns the number of bytes the record occupies on the wire.
    #[inline]
    pub fn push_record<M: Wire>(&mut self, handler_id: u32, msg: &M) -> usize {
        self.push_record_with(handler_id, |buf| msg.encode(buf))
    }

    /// Appends one record whose payload is written directly into the
    /// buffer by `write` — the encode-once path: no intermediate owned
    /// message, no scratch allocation.
    ///
    /// Returns the number of bytes the record occupies on the wire.
    #[inline]
    pub fn push_record_with(&mut self, handler_id: u32, write: impl FnOnce(&mut Vec<u8>)) -> usize {
        let before = self.data.len();
        put_varint(&mut self.data, u64::from(handler_id));
        write(&mut self.data);
        self.records += 1;
        self.data.len() - before
    }

    /// Appends one pre-encoded record (handler id already included) by
    /// memcpy — the fan-out path of `send_to_many`, where one encoded
    /// record is appended to several destination buffers.
    ///
    /// Returns the number of bytes appended (always `bytes.len()`).
    #[inline]
    pub fn push_raw(&mut self, bytes: &[u8]) -> usize {
        self.data.extend_from_slice(bytes);
        self.records += 1;
        bytes.len()
    }

    /// Appends one multicast record: a pre-encoded record (handler id
    /// included) prefixed by its destination set, framed as
    /// `[ndests][offset]*ndests [len][record bytes]` (all varints). The
    /// offsets are node-local rank offsets and must be strictly
    /// increasing — the gateway validates that before expanding.
    ///
    /// Counts `offsets.len()` records (one delivery per destination),
    /// and returns the bytes appended — the whole point is that this is
    /// far less than `offsets.len() * record.len()`.
    #[inline]
    pub fn push_multicast(&mut self, offsets: &[u32], record: &[u8]) -> usize {
        debug_assert!(offsets.len() >= 2, "multicast needs at least two dests");
        debug_assert!(
            offsets.windows(2).all(|w| w[0] < w[1]),
            "multicast offsets must be strictly increasing"
        );
        let before = self.data.len();
        put_varint(&mut self.data, offsets.len() as u64);
        for &off in offsets {
            put_varint(&mut self.data, u64::from(off));
        }
        put_varint(&mut self.data, record.len() as u64);
        self.data.extend_from_slice(record);
        self.records += offsets.len() as u64;
        self.data.len() - before
    }

    /// Bytes currently buffered.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing is buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Records currently buffered.
    #[inline]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// True when the buffer has reached the flush threshold.
    #[inline]
    pub fn should_flush(&self, threshold: usize) -> bool {
        self.data.len() >= threshold
    }

    /// Removes and returns the buffered payload and record count, leaving
    /// the buffer empty (its allocation is surrendered with the payload —
    /// the receiving rank frees it, mirroring an MPI send buffer handoff).
    #[inline]
    pub fn drain(&mut self) -> (Vec<u8>, u64) {
        let records = self.records;
        self.records = 0;
        (std::mem::take(&mut self.data), records)
    }

    /// Like [`SendBuffer::drain`], but restarts the buffer from a
    /// recycled allocation out of `pool` instead of an empty `Vec`, so
    /// subsequent records append into already-grown storage.
    #[inline]
    pub fn drain_pooled(&mut self, pool: &mut BufferPool) -> (Vec<u8>, u64) {
        let records = self.records;
        self.records = 0;
        (std::mem::replace(&mut self.data, pool.take()), records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{WireError, WireReader};

    #[test]
    fn push_and_drain() {
        let mut b = SendBuffer::new();
        assert!(b.is_empty());
        let n1 = b.push_record(3, &(7u64, 9u64));
        let n2 = b.push_record(4, &"hi".to_string());
        assert_eq!(b.records(), 2);
        assert_eq!(b.len(), n1 + n2);

        let (data, records) = b.drain();
        assert_eq!(records, 2);
        assert_eq!(data.len(), n1 + n2);
        assert!(b.is_empty());
        assert_eq!(b.records(), 0);

        // The drained bytes decode back into the records we pushed.
        let mut r = WireReader::new(&data);
        assert_eq!(r.take_varint().unwrap(), 3);
        let pair = <(u64, u64)>::decode(&mut r).unwrap();
        assert_eq!(pair, (7, 9));
        assert_eq!(r.take_varint().unwrap(), 4);
        assert_eq!(String::decode(&mut r).unwrap(), "hi");
        assert!(r.is_empty());
    }

    #[test]
    fn flush_threshold() {
        let mut b = SendBuffer::new();
        assert!(!b.should_flush(16));
        // Zero threshold flushes on any content.
        b.push_record(0, &1u8);
        assert!(b.should_flush(0));
        assert!(b.should_flush(1));
        assert!(!b.should_flush(1024));
        while b.len() < 1024 {
            b.push_record(0, &0xffff_ffff_ffffu64);
        }
        assert!(b.should_flush(1024));
    }

    #[test]
    fn record_overhead_is_small() {
        // A (u32 vertex, u32 vertex) record with a one-byte handler id must
        // cost single-digit bytes — this is the communication-volume story.
        let mut b = SendBuffer::new();
        let n = b.push_record(2, &(17u32, 103u32));
        assert!(n <= 3 + 1, "record cost {n} bytes");
    }

    #[test]
    fn push_record_with_matches_push_record() {
        let mut a = SendBuffer::new();
        let mut b = SendBuffer::new();
        let msg = (17u64, "meta".to_string());
        let na = a.push_record(5, &msg);
        let nb = b.push_record_with(5, |buf| {
            use crate::wire::WireEncode;
            (17u64, &msg.1).encode_wire(buf);
        });
        assert_eq!(na, nb);
        assert_eq!(a.drain().0, b.drain().0);
    }

    #[test]
    fn push_raw_replays_an_encoded_record() {
        let mut origin = SendBuffer::new();
        origin.push_record(9, &(1u64, 2u64));
        let (bytes, _) = origin.drain();

        let mut fanout = SendBuffer::new();
        assert_eq!(fanout.push_raw(&bytes), bytes.len());
        assert_eq!(fanout.push_raw(&bytes), bytes.len());
        assert_eq!(fanout.records(), 2);
        let (data, records) = fanout.drain();
        assert_eq!(records, 2);
        let mut r = WireReader::new(&data);
        for _ in 0..2 {
            assert_eq!(r.take_varint().unwrap(), 9);
            assert_eq!(<(u64, u64)>::decode(&mut r).unwrap(), (1, 2));
        }
        assert!(r.is_empty());
    }

    #[test]
    fn push_multicast_frames_dest_set_then_record() {
        let mut origin = SendBuffer::new();
        origin.push_record(9, &(1u64, 2u64));
        let (record, _) = origin.drain();

        let mut b = SendBuffer::new();
        let n = b.push_multicast(&[0, 2, 3], &record);
        // One delivery counted per destination, bytes far below 3 copies.
        assert_eq!(b.records(), 3);
        assert_eq!(b.len(), n);
        assert!(n < 3 * record.len() + 1);

        let (data, _) = b.drain();
        let mut r = WireReader::new(&data);
        assert_eq!(r.take_varint().unwrap(), 3);
        assert_eq!(r.take_varint().unwrap(), 0);
        assert_eq!(r.take_varint().unwrap(), 2);
        assert_eq!(r.take_varint().unwrap(), 3);
        let len = r.take_varint().unwrap() as usize;
        assert_eq!(len, record.len());
        assert_eq!(r.take(len).unwrap(), &record[..]);
        assert!(r.is_empty());
    }

    #[test]
    fn pool_recycles_capacity() {
        let mut pool = BufferPool::new(2, 1 << 20);
        let mut b = SendBuffer::new();
        for i in 0..100u64 {
            b.push_record(0, &i);
        }
        let (data, _) = b.drain_pooled(&mut pool);
        let grown = data.capacity();
        assert!(grown > 0);
        pool.put(data);
        assert_eq!(pool.available(), 1);

        // Next drain restarts the send buffer from the recycled vector.
        b.push_record(0, &1u64);
        let before_reuses = pool.reuses();
        let _ = b.drain_pooled(&mut pool);
        assert_eq!(pool.reuses(), before_reuses + 1);
        b.push_record(0, &2u64);
        // The recycled capacity is now backing the live buffer: pushing
        // did not need to grow from zero.
        let (data2, _) = b.drain();
        assert!(data2.capacity() >= grown.min(64));
    }

    #[test]
    fn pool_capacity_is_bounded() {
        let mut pool = BufferPool::new(1, 1 << 20);
        pool.put(Vec::with_capacity(10));
        pool.put(Vec::with_capacity(10));
        assert_eq!(pool.available(), 1, "over-count vectors are dropped");
        // Zero-capacity vectors are not worth pooling.
        let mut pool = BufferPool::new(4, 1 << 20);
        pool.put(Vec::new());
        assert_eq!(pool.available(), 0);
    }

    #[test]
    fn pool_drops_oversized_vectors() {
        // One giant envelope (a hub vertex's adjacency projection) must
        // not stay resident in the pool: memory would then scale with
        // the largest envelope ever received instead of the cap.
        let mut pool = BufferPool::new(4, 1024);
        pool.put(Vec::with_capacity(64 * 1024));
        assert_eq!(pool.available(), 0, "oversized vector dropped");
        pool.put(Vec::with_capacity(512));
        assert_eq!(pool.available(), 1, "regular vector pooled");
    }

    #[test]
    fn decode_error_type_is_exported() {
        // Compile-time check that wire errors surface through the buffer's
        // public decode path.
        fn assert_err_ty(_e: WireError) {}
        let _ = assert_err_ty;
    }
}
