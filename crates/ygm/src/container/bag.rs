//! Distributed bag: an unordered, location-transparent collection.
//!
//! Bulk data (edge lists read from generators or files) starts life in a
//! bag: items are scattered round-robin across ranks as buffered async
//! records, then each rank processes its local share. This mirrors YGM's
//! `ygm::container::bag`, the usual entry point of its graph pipelines.

use std::cell::RefCell;
use std::rc::Rc;

use crate::comm::{Comm, Handler};
use crate::wire::Wire;

/// An unordered distributed collection of `T`.
pub struct DistBag<T>
where
    T: Wire + 'static,
{
    handler: Handler<T>,
    local: Rc<RefCell<Vec<T>>>,
    next_dest: std::cell::Cell<usize>,
}

impl<T> DistBag<T>
where
    T: Wire + 'static,
{
    /// Creates the bag. Collective (handler registration).
    pub fn new(comm: &Comm) -> Self {
        let local: Rc<RefCell<Vec<T>>> = Rc::new(RefCell::new(Vec::new()));
        let local_in = local.clone();
        let handler = comm.register::<T, _>(move |_c, item| {
            local_in.borrow_mut().push(item);
        });
        DistBag {
            handler,
            local,
            // Stagger starting destinations so single-producer workloads
            // still spread items evenly.
            next_dest: std::cell::Cell::new(comm.rank()),
        }
    }

    /// Adds an item, placing it on a rank chosen round-robin.
    pub fn async_add(&self, comm: &Comm, item: T) {
        let dest = self.next_dest.get() % comm.nranks();
        self.next_dest.set(dest + 1);
        comm.send(dest, &self.handler, &item);
    }

    /// Adds an item on a specific rank.
    pub fn async_add_on(&self, comm: &Comm, dest: usize, item: T) {
        comm.send(dest, &self.handler, &item);
    }

    /// This rank's items (valid after a barrier).
    pub fn local(&self) -> std::cell::Ref<'_, Vec<T>> {
        self.local.borrow()
    }

    /// Takes ownership of this rank's items, leaving the bag shard empty.
    pub fn take_local(&self) -> Vec<T> {
        std::mem::take(&mut *self.local.borrow_mut())
    }

    /// Items on this rank.
    pub fn local_len(&self) -> usize {
        self.local.borrow().len()
    }

    /// Total items across ranks. Collective; barriers first.
    pub fn global_len(&self, comm: &Comm) -> u64 {
        comm.barrier();
        comm.all_reduce_sum(self.local_len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn items_are_spread_evenly() {
        let out = World::new(4).run(|comm| {
            let bag = DistBag::<u64>::new(comm);
            if comm.rank() == 0 {
                for i in 0..400u64 {
                    bag.async_add(comm, i);
                }
            }
            comm.barrier();
            bag.local_len()
        });
        assert_eq!(out.iter().sum::<usize>(), 400);
        for &n in &out {
            assert_eq!(n, 100, "round-robin must be exact: {out:?}");
        }
    }

    #[test]
    fn global_len() {
        let out = World::new(3).run(|comm| {
            let bag = DistBag::<(u64, u64)>::new(comm);
            for i in 0..10u64 {
                bag.async_add(comm, (i, i + 1));
            }
            bag.global_len(comm)
        });
        assert_eq!(out, vec![30; 3]);
    }

    #[test]
    fn directed_placement() {
        let out = World::new(3).run(|comm| {
            let bag = DistBag::<String>::new(comm);
            if comm.rank() == 0 {
                bag.async_add_on(comm, 2, "hello".to_string());
            }
            comm.barrier();
            bag.local_len()
        });
        assert_eq!(out, vec![0, 0, 1]);
    }

    #[test]
    fn take_local_empties_shard() {
        let out = World::new(2).run(|comm| {
            let bag = DistBag::<u64>::new(comm);
            bag.async_add(comm, 1);
            bag.async_add(comm, 2);
            comm.barrier();
            let taken = bag.take_local();
            (taken.len(), bag.local_len())
        });
        let total: usize = out.iter().map(|(t, _)| t).sum();
        assert_eq!(total, 4);
        for (_, remaining) in out {
            assert_eq!(remaining, 0);
        }
    }
}
