//! Distributed containers composed on top of the active-message layer
//! (paper §4.1.4).
//!
//! YGM's fire-and-forget RPC makes it possible to build small, composable
//! distributed data structures whose update messages interleave freely
//! with application traffic. TriPoll uses two of them heavily:
//!
//! * [`DistMap`] — key/value storage at `owner(key) = hash(key) % nranks`;
//!   the DODGr graph store is built on this pattern (§4.2).
//! * [`DistCountingSet`] — a counting multiset with a per-rank write-back
//!   cache, used by every survey callback that tallies metadata categories
//!   (Algs. 3 and 4). Cache flushes piggyback on the same runtime as the
//!   triangle-identification messages, "without ever interfering" (§4.1.4).
//! * [`DistBag`] — an unordered distributed collection for bulk ingest
//!   (edge lists start here before being shuffled to their owners).

mod bag;
mod counting_set;
mod map;

pub use bag::DistBag;
pub use counting_set::DistCountingSet;
pub use map::DistMap;

use crate::hash::FastBuildHasher;
use std::hash::{BuildHasher, Hash};

/// Deterministic owner rank for a hashable key.
///
/// Uses the crate's deterministic [`FastBuildHasher`], so every rank (and
/// every run) agrees where a key lives — the distributed-container
/// equivalent of the paper's `Rank(u)`.
#[inline]
pub fn owner_of<K: Hash>(key: &K, nranks: usize) -> usize {
    let h = FastBuildHasher::default().hash_one(key);
    (h % nranks as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_stable_and_in_range() {
        for nranks in [1usize, 2, 5, 16] {
            for key in 0u64..1000 {
                let o1 = owner_of(&key, nranks);
                let o2 = owner_of(&key, nranks);
                assert_eq!(o1, o2);
                assert!(o1 < nranks);
            }
        }
    }

    #[test]
    fn owner_spreads_keys() {
        let nranks = 4;
        let mut counts = vec![0usize; nranks];
        for key in 0u64..4000 {
            counts[owner_of(&key, nranks)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed ownership: {counts:?}");
        }
    }

    #[test]
    fn string_keys_have_owners() {
        let o = owner_of(&"amazon.example".to_string(), 7);
        assert!(o < 7);
        assert_eq!(o, owner_of(&"amazon.example".to_string(), 7));
    }
}
