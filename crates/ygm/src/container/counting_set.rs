//! Distributed counting set with a per-rank write-back cache.
//!
//! This is the structure the paper leans on for every non-trivial survey:
//! "a distributed counting set that keeps individual counts of different
//! items seen across ranks. This structure stores a small cache on each
//! rank to keep values seen recently, which must be flushed and have its
//! contents sent across the network occasionally" (§4.1.4).
//!
//! Increments hit the local cache; when the cache exceeds its capacity the
//! accumulated `(key, count)` pairs are shipped to each key's owner rank
//! as ordinary buffered records, interleaving with whatever else the
//! application is sending (triangle pushes, pulls, ...). After a
//! `flush` + barrier, the owner shards hold the authoritative counts.

use std::cell::RefCell;
use std::hash::Hash;
use std::rc::Rc;

use crate::comm::{Comm, Handler};
use crate::container::owner_of;
use crate::hash::FastMap;
use crate::wire::Wire;

/// Default number of distinct cached keys before a flush.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// A distributed multiset of counters keyed by `K`.
pub struct DistCountingSet<K>
where
    K: Wire + Hash + Eq + Clone + 'static,
{
    handler: Handler<Vec<(K, u64)>>,
    cache: Rc<RefCell<FastMap<K, u64>>>,
    counts: Rc<RefCell<FastMap<K, u64>>>,
    cache_capacity: usize,
}

impl<K> Clone for DistCountingSet<K>
where
    K: Wire + Hash + Eq + Clone + 'static,
{
    /// Clones a *handle*: both handles share the same cache and counts,
    /// so one can be captured by a survey callback while the original
    /// gathers results afterwards.
    fn clone(&self) -> Self {
        DistCountingSet {
            handler: self.handler,
            cache: self.cache.clone(),
            counts: self.counts.clone(),
            cache_capacity: self.cache_capacity,
        }
    }
}

impl<K> DistCountingSet<K>
where
    K: Wire + Hash + Eq + Clone + 'static,
{
    /// Creates the set; must be called collectively (all ranks, same
    /// registration order) like every handler registration.
    pub fn new(comm: &Comm) -> Self {
        Self::with_cache_capacity(comm, DEFAULT_CACHE_CAPACITY)
    }

    /// Creates the set with an explicit cache capacity (distinct keys).
    pub fn with_cache_capacity(comm: &Comm, cache_capacity: usize) -> Self {
        let counts: Rc<RefCell<FastMap<K, u64>>> = Rc::new(RefCell::new(FastMap::default()));
        let counts_in = counts.clone();
        let handler = comm.register::<Vec<(K, u64)>, _>(move |_c, batch| {
            let mut counts = counts_in.borrow_mut();
            for (key, amount) in batch {
                *counts.entry(key).or_insert(0) += amount;
            }
        });
        DistCountingSet {
            handler,
            cache: Rc::new(RefCell::new(FastMap::default())),
            counts,
            cache_capacity: cache_capacity.max(1),
        }
    }

    /// Adds 1 to `key`'s count.
    #[inline]
    pub fn increment(&self, comm: &Comm, key: K) {
        self.add(comm, key, 1);
    }

    /// Adds `amount` to `key`'s count.
    pub fn add(&self, comm: &Comm, key: K, amount: u64) {
        {
            let mut cache = self.cache.borrow_mut();
            *cache.entry(key).or_insert(0) += amount;
            if cache.len() < self.cache_capacity {
                return;
            }
        }
        self.flush(comm);
    }

    /// Ships all cached counts to their owner ranks. Counts are visible on
    /// owners only after a subsequent `comm.barrier()`.
    pub fn flush(&self, comm: &Comm) {
        let drained: Vec<(K, u64)> = self.cache.borrow_mut().drain().collect();
        if drained.is_empty() {
            return;
        }
        let nranks = comm.nranks();
        let mut per_rank: Vec<Vec<(K, u64)>> = (0..nranks).map(|_| Vec::new()).collect();
        for (key, amount) in drained {
            per_rank[owner_of(&key, nranks)].push((key, amount));
        }
        for (dest, batch) in per_rank.into_iter().enumerate() {
            if !batch.is_empty() {
                comm.send(dest, &self.handler, &batch);
            }
        }
    }

    /// Flushes and synchronizes; afterwards `local_counts` on each rank
    /// holds that rank's authoritative shard. Collective.
    pub fn finalize(&self, comm: &Comm) {
        self.flush(comm);
        comm.barrier();
    }

    /// This rank's authoritative shard (valid after [`Self::finalize`]).
    pub fn local_counts(&self) -> std::cell::Ref<'_, FastMap<K, u64>> {
        self.counts.borrow()
    }

    /// Number of distinct keys owned by this rank.
    pub fn local_len(&self) -> usize {
        self.counts.borrow().len()
    }

    /// Total distinct keys across all ranks. Collective; finalizes first.
    pub fn global_len(&self, comm: &Comm) -> u64 {
        self.finalize(comm);
        comm.all_reduce_sum(self.local_len() as u64)
    }

    /// Gathers the complete distribution onto every rank, sorted by key
    /// bytes for determinism. Collective; finalizes first. Intended for
    /// post-processing of survey results (the paper does this step "on a
    /// single machine", §5.8).
    pub fn gather(&self, comm: &Comm) -> Vec<(K, u64)>
    where
        K: Ord,
    {
        self.finalize(comm);
        let local: Vec<(K, u64)> = self
            .counts
            .borrow()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        let mut all: Vec<(K, u64)> = comm.all_gather(&local).into_iter().flatten().collect();
        all.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn counts_across_ranks() {
        let out = World::new(4).run(|comm| {
            let set = DistCountingSet::<u64>::new(comm);
            // Every rank increments keys 0..10, key k gets k+1 increments.
            for key in 0..10u64 {
                for _ in 0..=key {
                    set.increment(comm, key);
                }
            }
            set.gather(comm)
        });
        for gathered in out {
            assert_eq!(gathered.len(), 10);
            for (key, count) in gathered {
                assert_eq!(count, 4 * (key + 1), "key {key}");
            }
        }
    }

    #[test]
    fn tiny_cache_forces_flushes() {
        let out = World::new(2).run_with_stats(|comm| {
            let set = DistCountingSet::<u64>::with_cache_capacity(comm, 2);
            for key in 0..100u64 {
                set.increment(comm, key);
            }
            set.gather(comm).len()
        });
        assert_eq!(out.results, vec![100, 100]);
        // With capacity 2, caches flushed ~50 times per rank; most records
        // hit the wire.
        assert!(out.total_stats().records_total() > 0);
    }

    #[test]
    fn string_keys() {
        let out = World::new(3).run(|comm| {
            let set = DistCountingSet::<String>::new(comm);
            set.increment(comm, "alpha".to_string());
            set.add(comm, "beta".to_string(), comm.rank() as u64);
            set.gather(comm)
        });
        for gathered in out {
            assert_eq!(
                gathered,
                vec![("alpha".to_string(), 3), ("beta".to_string(), 3)]
            );
        }
    }

    #[test]
    fn tuple_keys_for_joint_distributions() {
        // The Reddit survey counts (open_time, close_time) pairs (Alg. 4).
        let out = World::new(2).run(|comm| {
            let set = DistCountingSet::<(u32, u32)>::new(comm);
            set.increment(comm, (3, 5));
            set.increment(comm, (3, 5));
            set.increment(comm, (1, 9));
            set.gather(comm)
        });
        for gathered in out {
            assert_eq!(gathered, vec![((1, 9), 2), ((3, 5), 4)]);
        }
    }

    #[test]
    fn add_amounts() {
        let out = World::new(2).run(|comm| {
            let set = DistCountingSet::<u64>::new(comm);
            set.add(comm, 7, 100);
            set.gather(comm)
        });
        for gathered in out {
            assert_eq!(gathered, vec![(7u64, 200)]);
        }
    }

    #[test]
    fn global_len_counts_distinct_keys_once() {
        let out = World::new(4).run(|comm| {
            let set = DistCountingSet::<u64>::new(comm);
            // All ranks touch the same 5 keys.
            for key in 0..5u64 {
                set.increment(comm, key);
            }
            set.global_len(comm)
        });
        assert_eq!(out, vec![5; 4]);
    }

    #[test]
    fn empty_set_gathers_empty() {
        let out = World::new(3).run(|comm| {
            let set = DistCountingSet::<u64>::new(comm);
            set.gather(comm)
        });
        for gathered in out {
            assert!(gathered.is_empty());
        }
    }

    #[test]
    fn counts_survive_interleaved_barriers() {
        let out = World::new(2).run(|comm| {
            let set = DistCountingSet::<u64>::new(comm);
            set.increment(comm, 1);
            comm.barrier();
            set.increment(comm, 1);
            comm.barrier();
            set.increment(comm, 2);
            set.gather(comm)
        });
        for gathered in out {
            assert_eq!(gathered, vec![(1u64, 4), (2u64, 2)]);
        }
    }
}
