//! Distributed key/value map.
//!
//! "This structure stores key-value pairs at deterministic MPI ranks based
//! on a hash of the keys" (§4.1.4). TriPoll's graph storage is a custom
//! structure following exactly this pattern, so [`DistMap`] doubles as the
//! reference implementation for it: asynchronous inserts and merges route
//! records to `owner_of(key)`, and after a barrier the owning rank holds
//! the value.

use std::cell::RefCell;
use std::hash::Hash;
use std::rc::Rc;

use crate::comm::{Comm, Handler};
use crate::container::owner_of;
use crate::hash::FastMap;
use crate::wire::Wire;

/// A distributed hash map. Values live on `owner_of(key)`.
pub struct DistMap<K, V>
where
    K: Wire + Hash + Eq + Clone + 'static,
    V: Wire + 'static,
{
    insert_handler: Handler<(K, V)>,
    merge_handler: Handler<(K, V)>,
    local: Rc<RefCell<FastMap<K, V>>>,
}

impl<K, V> DistMap<K, V>
where
    K: Wire + Hash + Eq + Clone + 'static,
    V: Wire + 'static,
{
    /// Creates a map whose conflicting inserts are resolved by `merge`
    /// (applied as `merge(&mut existing, incoming)`); plain
    /// [`DistMap::async_insert`] overwrites. Collective.
    pub fn new_with_merge<F>(comm: &Comm, merge: F) -> Self
    where
        F: Fn(&mut V, V) + 'static,
    {
        let local: Rc<RefCell<FastMap<K, V>>> = Rc::new(RefCell::new(FastMap::default()));
        let local_ins = local.clone();
        let insert_handler = comm.register::<(K, V), _>(move |_c, (k, v)| {
            local_ins.borrow_mut().insert(k, v);
        });
        let local_mrg = local.clone();
        let merge_handler = comm.register::<(K, V), _>(move |_c, (k, v)| {
            let mut map = local_mrg.borrow_mut();
            match map.entry(k) {
                std::collections::hash_map::Entry::Occupied(mut e) => merge(e.get_mut(), v),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(v);
                }
            }
        });
        DistMap {
            insert_handler,
            merge_handler,
            local,
        }
    }

    /// Creates a map with overwrite-on-conflict semantics. Collective.
    pub fn new(comm: &Comm) -> Self {
        Self::new_with_merge(comm, |existing, incoming| *existing = incoming)
    }

    /// Owner rank of `key`.
    #[inline]
    pub fn owner(&self, comm: &Comm, key: &K) -> usize {
        owner_of(key, comm.nranks())
    }

    /// Asynchronously stores `(key, value)`, overwriting any prior value.
    /// Visible on the owner after the next barrier.
    pub fn async_insert(&self, comm: &Comm, key: K, value: V) {
        let dest = self.owner(comm, &key);
        comm.send(dest, &self.insert_handler, &(key, value));
    }

    /// Asynchronously merges `value` into `key`'s entry with the map's
    /// merge function (inserting if absent).
    pub fn async_merge(&self, comm: &Comm, key: K, value: V) {
        let dest = self.owner(comm, &key);
        comm.send(dest, &self.merge_handler, &(key, value));
    }

    /// This rank's shard.
    pub fn local(&self) -> std::cell::Ref<'_, FastMap<K, V>> {
        self.local.borrow()
    }

    /// Mutable access to this rank's shard (rank-local post-processing).
    pub fn local_mut(&self) -> std::cell::RefMut<'_, FastMap<K, V>> {
        self.local.borrow_mut()
    }

    /// Entries owned by this rank.
    pub fn local_len(&self) -> usize {
        self.local.borrow().len()
    }

    /// Total entries across ranks. Collective; barriers first.
    pub fn global_len(&self, comm: &Comm) -> u64 {
        comm.barrier();
        comm.all_reduce_sum(self.local_len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn inserts_land_on_owners() {
        let out = World::new(4).run(|comm| {
            let map = DistMap::<u64, String>::new(comm);
            if comm.rank() == 0 {
                for k in 0..100u64 {
                    map.async_insert(comm, k, format!("v{k}"));
                }
            }
            comm.barrier();
            // Each key must be exactly on its owner.
            for (k, v) in map.local().iter() {
                assert_eq!(owner_of(k, comm.nranks()), comm.rank());
                assert_eq!(v, &format!("v{k}"));
            }
            map.local_len() as u64
        });
        assert_eq!(out.iter().sum::<u64>(), 100);
    }

    #[test]
    fn overwrite_semantics() {
        let out = World::new(2).run(|comm| {
            let map = DistMap::<u64, u64>::new(comm);
            // All ranks insert the same key; after the barrier exactly one
            // value survives (some rank's write — both are valid).
            map.async_insert(comm, 7, comm.rank() as u64);
            comm.barrier();
            map.global_len(comm)
        });
        assert_eq!(out, vec![1, 1]);
    }

    #[test]
    fn merge_accumulates() {
        let out = World::new(3).run(|comm| {
            let map = DistMap::<u64, u64>::new_with_merge(comm, |e, v| *e += v);
            for k in 0..10u64 {
                map.async_merge(comm, k, 1);
            }
            comm.barrier();
            let local_sum: u64 = map.local().values().sum();
            comm.all_reduce_sum(local_sum)
        });
        // 3 ranks × 10 keys × 1 = 30.
        assert_eq!(out, vec![30; 3]);
    }

    #[test]
    fn merge_inserts_when_absent() {
        let out = World::new(2).run(|comm| {
            let map = DistMap::<String, Vec<u64>>::new_with_merge(comm, |e, mut v| {
                e.append(&mut v);
            });
            map.async_merge(comm, "adj".to_string(), vec![comm.rank() as u64]);
            comm.barrier();
            let total: u64 =
                comm.all_reduce_sum(map.local().get("adj").map(|v| v.len() as u64).unwrap_or(0));
            total
        });
        assert_eq!(out, vec![2, 2]);
    }

    #[test]
    fn global_len_empty() {
        let out = World::new(3).run(|comm| {
            let map = DistMap::<u64, u64>::new(comm);
            map.global_len(comm)
        });
        assert_eq!(out, vec![0; 3]);
    }
}
