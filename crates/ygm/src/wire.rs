//! Compact binary wire format for active-message payloads.
//!
//! The C++ TriPoll prototype relies on the `cereal` serialization library to
//! move heterogeneous, variable-length payloads (strings, STL containers,
//! user structs) through MPI without padding. This module is the Rust
//! equivalent: a small, self-contained codec with
//!
//! * LEB128 varints for unsigned integers (so small vertex ids and counts
//!   cost one byte on the wire, which matters when the whole point of the
//!   evaluation is communication volume),
//! * zigzag encoding for signed integers,
//! * little-endian bit patterns for floats,
//! * length-prefixed strings, vectors and maps,
//! * tuples up to arity four.
//!
//! Every type that crosses a rank boundary implements [`Wire`]. Encoding
//! appends to a caller-supplied buffer (so per-destination send buffers are
//! filled without intermediate allocations); decoding reads from a
//! [`WireReader`] cursor and is fully checked — a truncated or corrupt
//! buffer yields [`WireError`], never undefined behaviour.
//!
//! # Encode-once sends: the borrowed half of the codec
//!
//! [`Wire`] requires an owned value, which forces a sender that holds its
//! payload scattered across graph storage (an adjacency slice, a metadata
//! field behind a reference) to first materialize an owned message — the
//! `O(d²)` per-vertex `Vec` + clone churn the TriPoll hot path used to
//! pay. [`WireEncode`] is the write-only, borrowed counterpart: anything
//! implementing it can append a wire image **byte-identical** to some
//! `Wire` type's encoding, straight from borrowed data.
//!
//! * references `&T` to any `T: Wire` encode as `T` does;
//! * owned primitives encode as themselves (so mixed tuples work);
//! * tuples of `WireEncode` values encode like tuples of the owned types;
//! * [`SliceSeq`] encodes a `&[T]` byte-identically to `Vec<T>`;
//! * [`encode_seq`] encodes a *projection* of a slice byte-identically to
//!   `Vec<U>` without materializing any `U` — each element writes its
//!   fields through a closure.
//!
//! A handler registered for `M: Wire` can therefore be fed by
//! `Comm::send_encoded` / `Comm::send_to_many` with a `WireEncode` value
//! whose byte image matches `M`; the byte-identity contract is checked by
//! the property tests in this module. This is what lets a wedge-batch
//! suffix serialize directly from `Adjm+(p)` storage, and lets one
//! encoded adjacency projection fan out to many ranks as a memcpy.
//!
//! # Zero-copy receive: the borrowed half of decoding
//!
//! [`Wire::decode`] mirrors `Wire::encode`'s owned-value contract: it
//! materializes the message, which for a sequence-carrying record means
//! re-allocating exactly the sorted bytes that just arrived. The
//! receive-side mirror of [`WireEncode`] is [`WireDecode`]: a *view*
//! over the receive buffer, decoded in place with lifetime tied to the
//! buffer. The building blocks:
//!
//! * [`Wire::skip`] advances a reader past one encoded value without
//!   materializing it (bounds-only walks for strings, fixed widths and
//!   length-prefixed containers);
//! * [`SeqCursor`] streams a length-prefixed sequence off a shared
//!   reader, one element at a time — the consumer advances the record
//!   framing itself, so a sorted candidate list can be zipped against
//!   local storage with **zero** heap allocation;
//! * [`SeqView`] captures a sequence's byte extent (one cheap skip
//!   walk) so it can be re-iterated via [`SeqView::walk`] — for
//!   receivers that intersect one batch against many local lists;
//! * [`Lazy`] captures a single value's byte range and decodes it only
//!   if the consumer actually asks ([`Lazy::get`]) — metadata riding
//!   along with every candidate is paid for only on a triangle match;
//! * `&str` / `&[u8]` views decode length-prefixed payloads without
//!   copying them out of the buffer.
//!
//! Every length prefix read by this layer (and by the owned container
//! decoders) is validated against the bytes remaining in the cursor
//! before any allocation or walk: a hostile or truncated prefix yields
//! [`WireError::SeqOverrun`], never an OOM-sized reservation.
//!
//! # Columnar (SoA) sequences: the wedge-batch frame
//!
//! The interleaved sequence layouts above ship a candidate batch as
//! `n × (vertex, degree, meta)` tuples. The columnar frame stores the
//! same batch as three packed columns instead — better varint locality
//! (like values compress alike and prefetch alike), fewer bytes per
//! candidate (the degree column is delta-coded), and a receive side
//! that can intersect on the key columns while leaving the metadata
//! column untouched until a triangle actually matches. The wire image,
//! in order:
//!
//! ```text
//! varint n                    element count
//! varint vbytes ; vertex column   n raw varints
//! varint dbytes ; degree column   first value raw, then zigzag varint
//!                                 deltas (wrapping, so any sequence
//!                                 round-trips; sorted batches yield
//!                                 1-byte deltas)
//! varint mbytes ; meta column     n × T wire encodings
//! ```
//!
//! Each column carries its **byte length**, so capturing a whole frame
//! is three bounded `take`s — no element walk, unlike [`SeqView`] —
//! and a consumer that exits the merge early leaves no framing debt
//! (the record was fully consumed at capture; contrast
//! [`SeqCursor::skip_rest`]). Hardening mirrors the interleaved path,
//! applied per column: `n` is rejected if it exceeds the bytes
//! remaining ([`WireError::SeqOverrun`] — every vertex varint costs at
//! least one byte), each byte-length prefix is validated against the
//! bytes remaining before its column is sliced, each column must hold
//! at least `n × MIN_ENCODED_BYTES` of its element type, and a
//! zero-element frame must have empty columns. Beyond the bounds
//! checks, columns must be consumed *byte-budget exactly* — trailing
//! bytes inside a column are an error, not slack — enforced wherever a
//! column is actually walked to its end: always by the owned
//! [`ColBatch`] decode, by [`ColKeys`] when the key walk completes,
//! and by [`ColMetas`] when the final metadata element is decoded
//! (bytes behind an early exit are never walked; see [`ColMetas`]).
//!
//! The shapes:
//!
//! * [`ColBatch`] — the owned message type (`Vec<(u64, u64, T)>` with
//!   the columnar wire image); the reference decode path.
//! * [`encode_columns`] / [`ColumnSeq`] — the borrowed encoder: three
//!   projection closures stream the columns straight from application
//!   storage, byte-identical to [`ColBatch`], with the meta column
//!   staged through a capacity-capped thread-local scratch (zero
//!   steady-state allocation).
//! * [`ColCursor`] — single-pass decode: [`ColKeys`] walks the two key
//!   columns in lockstep while [`ColMetas`] advances the meta column
//!   lazily, only as far as the indices actually requested.
//! * [`ColView`] — a captured frame that can be re-walked any number
//!   of times (the pull delivery's one-batch-many-suffixes pattern).

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasher, Hash};

/// Errors produced while decoding a wire buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The reader ran out of bytes mid-value.
    UnexpectedEof {
        /// Bytes that were needed to finish the value.
        needed: usize,
        /// Bytes that remained in the buffer.
        remaining: usize,
    },
    /// A varint ran longer than the maximum encodable width.
    VarintOverflow,
    /// A length prefix or discriminant had an impossible value.
    InvalidValue(&'static str),
    /// A string payload was not valid UTF-8.
    InvalidUtf8,
    /// A sequence length prefix claimed more payload than the bytes
    /// remaining in the buffer could possibly hold.
    SeqOverrun {
        /// Element (or byte) count the prefix claimed.
        claimed: u64,
        /// Bytes that remained in the buffer.
        remaining: usize,
    },
    /// A multicast destination set was structurally invalid: empty,
    /// non-strictly-increasing, or naming a node-local offset outside
    /// the receiving node's rank range.
    BadDestSet {
        /// The offending offset (or destination count).
        value: u64,
        /// Ranks on the receiving node.
        node_width: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of wire buffer: needed {needed} bytes, {remaining} remaining"
            ),
            WireError::VarintOverflow => write!(f, "varint exceeded 64 bits"),
            WireError::InvalidValue(what) => write!(f, "invalid wire value: {what}"),
            WireError::InvalidUtf8 => write!(f, "string payload is not valid UTF-8"),
            WireError::SeqOverrun { claimed, remaining } => write!(
                f,
                "sequence length prefix claims {claimed} elements, more than the {remaining} \
                 remaining bytes could hold"
            ),
            WireError::BadDestSet { value, node_width } => write!(
                f,
                "multicast destination set is invalid: offset/count {value} on a node of \
                 {node_width} ranks"
            ),
        }
    }
}

impl std::error::Error for WireError {}

/// Checked cursor over a received byte buffer.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Creates a reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current read offset from the start of the buffer.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Consumes and returns exactly `n` bytes.
    #[inline]
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Consumes a single byte.
    #[inline]
    pub fn take_u8(&mut self) -> Result<u8, WireError> {
        if self.remaining() < 1 {
            return Err(WireError::UnexpectedEof {
                needed: 1,
                remaining: 0,
            });
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(b)
    }

    /// The bytes consumed since `start` (a previously saved
    /// [`WireReader::position`]). Borrowed from the underlying buffer,
    /// so the slice outlives the reader — the primitive underneath
    /// [`Lazy`] and [`SeqView`].
    #[inline]
    pub fn since(&self, start: usize) -> &'a [u8] {
        &self.buf[start..self.pos]
    }

    /// Advances past one LEB128 varint without assembling its value.
    #[inline]
    pub fn skip_varint(&mut self) -> Result<(), WireError> {
        // 10 bytes is the widest encoding take_varint accepts.
        for _ in 0..10 {
            if self.take_u8()? & 0x80 == 0 {
                return Ok(());
            }
        }
        Err(WireError::VarintOverflow)
    }

    /// Decodes an LEB128 varint of at most 64 bits.
    ///
    /// One-byte varints (counts, small ids, delta-coded degrees) take
    /// the earliest exit; longer varints whose terminator lies within
    /// the next eight buffer bytes are cracked in one SWAR pass
    /// (`crack_word`) instead of the byte-at-a-time loop. Both paths
    /// accept exactly the byte strings the scalar loop accepts and
    /// yield the same values and errors.
    #[inline]
    pub fn take_varint(&mut self) -> Result<u64, WireError> {
        if let Some(&b0) = self.buf.get(self.pos) {
            if b0 & 0x80 == 0 {
                self.pos += 1;
                return Ok(u64::from(b0));
            }
            if let Some(word) = self.buf.get(self.pos..self.pos + 8) {
                let w = u64::from_le_bytes(word.try_into().unwrap());
                if let Some((v, len)) = crack_word(w) {
                    self.pos += len;
                    return Ok(v);
                }
            }
        }
        self.take_varint_scalar()
    }

    /// The byte-at-a-time LEB128 decode loop — the reference decoder
    /// ([`take_varint`](WireReader::take_varint)'s slow path: buffer
    /// tails shorter than a SWAR word, and 9–10-byte varints, whose
    /// overflow checks live here).
    fn take_varint_scalar(&mut self) -> Result<u64, WireError> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.take_u8()?;
            if shift == 63 && byte > 1 {
                return Err(WireError::VarintOverflow);
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::VarintOverflow);
            }
        }
    }

    /// Bulk-decodes exactly `out.len()` LEB128 varints into `out` — the
    /// block primitive underneath [`ColKeys::next_block`]. The hot loop
    /// keeps a local cursor and cracks each varint from one
    /// little-endian `u64` load (`crack_word`: find the terminator
    /// byte with a single SWAR pass over the continuation bits, then
    /// shift-and-mask the 7-bit payload lanes together); buffer tails
    /// and 9–10-byte varints fall back to the scalar decoder, so the
    /// accepted byte strings, values and errors are identical to
    /// `out.len()` calls of [`take_varint`](WireReader::take_varint).
    ///
    /// On an error the reader is left where the scalar decoder left it
    /// (mid-varint); callers are expected to poison their walk, as
    /// [`ColKeys`] does.
    pub fn take_varints(&mut self, out: &mut [u64]) -> Result<(), WireError> {
        let buf = self.buf;
        let mut pos = self.pos;
        for slot in out.iter_mut() {
            if let Some(&b0) = buf.get(pos) {
                // One-byte varints (delta-coded degree columns are
                // almost nothing else) skip the crack entirely.
                if b0 & 0x80 == 0 {
                    *slot = u64::from(b0);
                    pos += 1;
                    continue;
                }
                if let Some(word) = buf.get(pos..pos + 8) {
                    let w = u64::from_le_bytes(word.try_into().unwrap());
                    if let Some((v, len)) = crack_word(w) {
                        *slot = v;
                        pos += len;
                        continue;
                    }
                }
            }
            self.pos = pos;
            *slot = self.take_varint_scalar()?;
            pos = self.pos;
        }
        self.pos = pos;
        Ok(())
    }
}

/// Every continuation bit of a little-endian varint word.
const VARINT_CONT_MASK: u64 = 0x8080_8080_8080_8080;

/// Cracks one LEB128 varint out of a little-endian `u64` load: one SWAR
/// pass over the inverted continuation bits locates the terminator
/// (`trailing_zeros` — the movemask equivalent on a scalar word), then
/// [`swar_extract`] folds the payload lanes. Returns `None` when no
/// byte in the word terminates the varint (a 9–10-byte encoding, which
/// the scalar loop must decode for its overflow checks).
#[inline]
fn crack_word(w: u64) -> Option<(u64, usize)> {
    let term = !w & VARINT_CONT_MASK;
    if term == 0 {
        return None;
    }
    let nbytes = (term.trailing_zeros() as usize >> 3) + 1;
    Some((swar_extract(w, nbytes), nbytes))
}

/// Compacts the low `nbytes` 7-bit payload lanes of `w` into one value
/// by three mask-and-shift folds (8×7-bit → 4×14 → 2×28 → 56 bits).
/// `nbytes ≤ 8`, so the result never exceeds 56 bits and no overflow
/// check is needed on this path.
#[inline]
fn swar_extract(w: u64, nbytes: usize) -> u64 {
    let w = if nbytes == 8 {
        w
    } else {
        w & ((1u64 << (8 * nbytes)) - 1)
    };
    let w = w & 0x7f7f_7f7f_7f7f_7f7f;
    let w = (w & 0x007f_007f_007f_007f) | ((w & 0x7f00_7f00_7f00_7f00) >> 1);
    let w = (w & 0x0000_3fff_0000_3fff) | ((w & 0x3fff_0000_3fff_0000) >> 2);
    (w & 0x0000_0000_0fff_ffff) | ((w & 0x0fff_ffff_0000_0000) >> 4)
}

/// Appends an LEB128 varint to `buf`.
#[inline]
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Number of bytes [`put_varint`] will emit for `v`.
#[inline]
pub fn varint_len(v: u64) -> usize {
    // 1 + floor(bits/7); bits==0 for v==0 still needs one byte.
    let bits = 64 - v.leading_zeros() as usize;
    std::cmp::max(1, bits.div_ceil(7))
}

#[inline]
fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Types that can cross a rank boundary.
///
/// The contract is symmetric: `decode(encode(x)) == x` and decode consumes
/// exactly the bytes encode produced. The proptest suite in this module
/// checks both properties for every implementation.
///
/// One deliberate exception: sequences of **zero-sized** elements
/// (`MIN_ENCODED_BYTES == 0`, i.e. `()` and tuples of it) decode only up
/// to `ZST_SEQ_MAX` elements — beyond that the length prefix is
/// indistinguishable from a hostile frame that would spin the decode
/// loop, so `decode` returns [`WireError::SeqOverrun`] even for bytes
/// `encode` produced.
pub trait Wire: Sized {
    /// Minimum bytes one encoded value can occupy on the wire. Used to
    /// reject hostile sequence length prefixes *before* any allocation
    /// or walk: a prefix claiming `n` elements needs at least
    /// `n * MIN_ENCODED_BYTES` bytes to follow. `0` is reserved for
    /// zero-sized encodings (`()` and tuples thereof).
    const MIN_ENCODED_BYTES: usize = 1;

    /// Appends the encoded representation to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Reads one value from `r`.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;
    /// Advances `r` past one encoded value without materializing it.
    ///
    /// The default decodes and drops; implementations with length
    /// prefixes or fixed widths override it with bounds-only walks (no
    /// allocation, no UTF-8 validation, no value assembly). Skipping
    /// validates *structure* only: a skipped value may still fail
    /// value-level checks (UTF-8, discriminants) when later decoded.
    fn skip(r: &mut WireReader<'_>) -> Result<(), WireError> {
        Self::decode(r).map(drop)
    }
}

/// Ceiling on the element count of a sequence whose elements occupy
/// zero wire bytes (`MIN_ENCODED_BYTES == 0`): the byte bound gives no
/// purchase there, and without a cap a hostile length prefix would
/// spin the decode loop up to 2^64 times. This caps decodable
/// zero-sized sequences (see the [`Wire`] contract note).
const ZST_SEQ_MAX: u64 = 1 << 24;

/// Single home of the hostile-length-prefix policy, shared by the
/// owned container decoders, the skip walks and the sequence cursors:
/// each of the `claimed` elements occupies at least `min_bytes` on the
/// wire (zero-sized elements are bounded by [`ZST_SEQ_MAX`] instead).
#[inline]
fn check_seq_len_min(
    claimed: u64,
    min_bytes: usize,
    r: &WireReader<'_>,
) -> Result<usize, WireError> {
    let fits = if min_bytes == 0 {
        claimed <= ZST_SEQ_MAX
    } else {
        claimed.saturating_mul(min_bytes as u64) <= r.remaining() as u64
    };
    if !fits {
        return Err(WireError::SeqOverrun {
            claimed,
            remaining: r.remaining(),
        });
    }
    Ok(claimed as usize)
}

/// [`check_seq_len_min`] with the bound taken from `T`'s encoding.
#[inline]
fn check_seq_len<T: Wire>(claimed: u64, r: &WireReader<'_>) -> Result<usize, WireError> {
    check_seq_len_min(claimed, T::MIN_ENCODED_BYTES, r)
}

/// Safe pre-allocation capacity for a validated sequence length: a
/// zero-sized wire encoding says nothing about `T`'s in-memory size,
/// so such sequences start at capacity 0 and grow normally.
#[inline]
fn seq_capacity<T: Wire>(len: usize) -> usize {
    if T::MIN_ENCODED_BYTES == 0 {
        0
    } else {
        len
    }
}

impl Wire for () {
    const MIN_ENCODED_BYTES: usize = 0;
    #[inline]
    fn encode(&self, _buf: &mut Vec<u8>) {}
    #[inline]
    fn decode(_r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

impl Wire for bool {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
    #[inline]
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::InvalidValue("bool discriminant")),
        }
    }
}

impl Wire for u8 {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self);
    }
    #[inline]
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.take_u8()
    }
}

macro_rules! impl_wire_varint {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            #[inline]
            fn encode(&self, buf: &mut Vec<u8>) {
                put_varint(buf, *self as u64);
            }
            #[inline]
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                let v = r.take_varint()?;
                <$t>::try_from(v).map_err(|_| WireError::InvalidValue(stringify!($t)))
            }
            #[inline]
            fn skip(r: &mut WireReader<'_>) -> Result<(), WireError> {
                r.skip_varint()
            }
        }
    )*};
}

impl_wire_varint!(u16, u32, u64, usize);

macro_rules! impl_wire_zigzag {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            #[inline]
            fn encode(&self, buf: &mut Vec<u8>) {
                put_varint(buf, zigzag_encode(*self as i64));
            }
            #[inline]
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                let v = zigzag_decode(r.take_varint()?);
                <$t>::try_from(v).map_err(|_| WireError::InvalidValue(stringify!($t)))
            }
            #[inline]
            fn skip(r: &mut WireReader<'_>) -> Result<(), WireError> {
                r.skip_varint()
            }
        }
    )*};
}

impl_wire_zigzag!(i8, i16, i32, i64, isize);

impl Wire for f32 {
    const MIN_ENCODED_BYTES: usize = 4;
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    #[inline]
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let b = r.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    #[inline]
    fn skip(r: &mut WireReader<'_>) -> Result<(), WireError> {
        r.take(4).map(drop)
    }
}

impl Wire for f64 {
    const MIN_ENCODED_BYTES: usize = 8;
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    #[inline]
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let b = r.take(8)?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
    #[inline]
    fn skip(r: &mut WireReader<'_>) -> Result<(), WireError> {
        r.take(8).map(drop)
    }
}

impl Wire for String {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.len() as u64);
        buf.extend_from_slice(self.as_bytes());
    }
    #[inline]
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = check_seq_len::<u8>(r.take_varint()?, r)?;
        let bytes = r.take(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| WireError::InvalidUtf8)
    }
    #[inline]
    fn skip(r: &mut WireReader<'_>) -> Result<(), WireError> {
        // Bounds-only: no copy, no UTF-8 validation.
        let len = check_seq_len::<u8>(r.take_varint()?, r)?;
        r.take(len).map(drop)
    }
}

impl<T: Wire> Wire for Option<T> {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    #[inline]
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(WireError::InvalidValue("Option discriminant")),
        }
    }
    #[inline]
    fn skip(r: &mut WireReader<'_>) -> Result<(), WireError> {
        match r.take_u8()? {
            0 => Ok(()),
            1 => T::skip(r),
            _ => Err(WireError::InvalidValue("Option discriminant")),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }
    #[inline]
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        // A hostile length prefix errors here, before any reservation.
        let len = check_seq_len::<T>(r.take_varint()?, r)?;
        let mut out = Vec::with_capacity(seq_capacity::<T>(len));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
    #[inline]
    fn skip(r: &mut WireReader<'_>) -> Result<(), WireError> {
        let len = check_seq_len::<T>(r.take_varint()?, r)?;
        for _ in 0..len {
            T::skip(r)?;
        }
        Ok(())
    }
}

impl<K, V, S> Wire for HashMap<K, V, S>
where
    K: Wire + Eq + Hash,
    V: Wire,
    S: BuildHasher + Default,
{
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.len() as u64);
        for (k, v) in self {
            k.encode(buf);
            v.encode(buf);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = check_seq_len::<(K, V)>(r.take_varint()?, r)?;
        let mut out = HashMap::with_capacity_and_hasher(seq_capacity::<(K, V)>(len), S::default());
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
    fn skip(r: &mut WireReader<'_>) -> Result<(), WireError> {
        let len = check_seq_len::<(K, V)>(r.take_varint()?, r)?;
        for _ in 0..len {
            K::skip(r)?;
            V::skip(r)?;
        }
        Ok(())
    }
}

macro_rules! impl_wire_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            const MIN_ENCODED_BYTES: usize = $(<$name>::MIN_ENCODED_BYTES +)+ 0;
            #[inline]
            fn encode(&self, buf: &mut Vec<u8>) {
                $(self.$idx.encode(buf);)+
            }
            #[inline]
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                Ok(($($name::decode(r)?,)+))
            }
            #[inline]
            fn skip(r: &mut WireReader<'_>) -> Result<(), WireError> {
                $($name::skip(r)?;)+
                Ok(())
            }
        }
    };
}

impl_wire_tuple!(A: 0);
impl_wire_tuple!(A: 0, B: 1);
impl_wire_tuple!(A: 0, B: 1, C: 2);
impl_wire_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_wire_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_wire_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Write-only, borrowed wire encoding (see the module docs).
///
/// Implementors append bytes that are **byte-identical** to the
/// [`Wire::encode`] output of some owned message type; the receiving
/// handler decodes with that owned type's [`Wire::decode`]. The codec
/// itself guarantees the identity for the impls in this module; adapter
/// closures passed to [`encode_seq`] must uphold it for their element
/// projection (encode exactly the fields, in order, that the owned
/// element type encodes).
pub trait WireEncode {
    /// Appends the wire image to `buf`.
    fn encode_wire(&self, buf: &mut Vec<u8>);
}

/// A reference encodes exactly as its referent.
impl<T: Wire> WireEncode for &T {
    #[inline]
    fn encode_wire(&self, buf: &mut Vec<u8>) {
        (*self).encode(buf);
    }
}

macro_rules! impl_wire_encode_owned {
    ($($t:ty),*) => {$(
        impl WireEncode for $t {
            #[inline]
            fn encode_wire(&self, buf: &mut Vec<u8>) {
                self.encode(buf);
            }
        }
    )*};
}

impl_wire_encode_owned!(
    (),
    bool,
    u8,
    u16,
    u32,
    u64,
    usize,
    i8,
    i16,
    i32,
    i64,
    isize,
    f32,
    f64
);

macro_rules! impl_wire_encode_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: WireEncode),+> WireEncode for ($($name,)+) {
            #[inline]
            fn encode_wire(&self, buf: &mut Vec<u8>) {
                $(self.$idx.encode_wire(buf);)+
            }
        }
    };
}

impl_wire_encode_tuple!(A: 0);
impl_wire_encode_tuple!(A: 0, B: 1);
impl_wire_encode_tuple!(A: 0, B: 1, C: 2);
impl_wire_encode_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_wire_encode_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_wire_encode_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Encodes a borrowed slice byte-identically to `Vec<T>`: length varint,
/// then each element.
pub struct SliceSeq<'a, T>(pub &'a [T]);

impl<T: Wire> WireEncode for SliceSeq<'_, T> {
    #[inline]
    fn encode_wire(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.0.len() as u64);
        for item in self.0 {
            item.encode(buf);
        }
    }
}

/// Encodes a projection of a borrowed slice byte-identically to the
/// `Vec` of projected elements, without materializing any of them.
///
/// `write` receives each source element and the output buffer, and must
/// append exactly the bytes the projected element type would encode —
/// e.g. for a candidate `(v, degree, meta)` projection of an adjacency
/// entry: `e.v.encode(buf); e.key.degree.encode(buf); e.em.encode(buf)`.
pub struct EncodeSeq<'a, T, F> {
    items: &'a [T],
    write: F,
}

/// Builds an [`EncodeSeq`] over `items`.
pub fn encode_seq<T, F: Fn(&T, &mut Vec<u8>)>(items: &[T], write: F) -> EncodeSeq<'_, T, F> {
    EncodeSeq { items, write }
}

impl<T, F: Fn(&T, &mut Vec<u8>)> WireEncode for EncodeSeq<'_, T, F> {
    #[inline]
    fn encode_wire(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.items.len() as u64);
        for item in self.items {
            (self.write)(item, buf);
        }
    }
}

/// Read-only, borrowed wire decoding (see the module docs) — the
/// decode-side mirror of [`WireEncode`].
///
/// Implementors are **views** over a receive buffer with lifetime `'a`:
/// decoding consumes the same bytes the corresponding owned
/// [`Wire::decode`] would, but keeps references into the buffer instead
/// of copying payloads out. Owned primitives implement it too (decoding
/// as themselves), so mixed tuples of eager scalars and borrowed views
/// decode in one call.
pub trait WireDecode<'a>: Sized {
    /// Reads one view from `r`, borrowing from the underlying buffer.
    fn decode_borrowed(r: &mut WireReader<'a>) -> Result<Self, WireError>;
}

macro_rules! impl_wire_decode_owned {
    ($($t:ty),*) => {$(
        impl<'a> WireDecode<'a> for $t {
            #[inline]
            fn decode_borrowed(r: &mut WireReader<'a>) -> Result<Self, WireError> {
                <$t as Wire>::decode(r)
            }
        }
    )*};
}

impl_wire_decode_owned!(
    (),
    bool,
    u8,
    u16,
    u32,
    u64,
    usize,
    i8,
    i16,
    i32,
    i64,
    isize,
    f32,
    f64,
    String
);

macro_rules! impl_wire_decode_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<'a, $($name: WireDecode<'a>),+> WireDecode<'a> for ($($name,)+) {
            #[inline]
            fn decode_borrowed(r: &mut WireReader<'a>) -> Result<Self, WireError> {
                Ok(($($name::decode_borrowed(r)?,)+))
            }
        }
    };
}

impl_wire_decode_tuple!(A: 0);
impl_wire_decode_tuple!(A: 0, B: 1);
impl_wire_decode_tuple!(A: 0, B: 1, C: 2);
impl_wire_decode_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_wire_decode_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_wire_decode_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Zero-copy string view: decodes the bytes a `String` encoded, but
/// borrows them from the receive buffer (UTF-8 validated, not copied).
impl<'a> WireDecode<'a> for &'a str {
    #[inline]
    fn decode_borrowed(r: &mut WireReader<'a>) -> Result<Self, WireError> {
        let len = check_seq_len::<u8>(r.take_varint()?, r)?;
        let start = r.position();
        r.take(len)?;
        std::str::from_utf8(r.since(start)).map_err(|_| WireError::InvalidUtf8)
    }
}

/// Zero-copy byte-slice view, byte-compatible with `Vec<u8>` (whose
/// elements encode raw, so the payload is contiguous).
impl<'a> WireDecode<'a> for &'a [u8] {
    #[inline]
    fn decode_borrowed(r: &mut WireReader<'a>) -> Result<Self, WireError> {
        let len = check_seq_len::<u8>(r.take_varint()?, r)?;
        let start = r.position();
        r.take(len)?;
        Ok(r.since(start))
    }
}

/// A captured-but-undecoded value: the byte range of one `T` on the
/// wire, skipped past structurally and decoded only if [`Lazy::get`] is
/// called. This is how per-candidate metadata rides through the
/// merge-path for free — it is materialized only for actual matches.
pub struct Lazy<'a, T> {
    bytes: &'a [u8],
    _marker: std::marker::PhantomData<fn() -> T>,
}

// Manual impls: a `Lazy` is a borrowed byte range, copyable regardless
// of whether `T` itself is (a derive would wrongly bound `T: Copy`).
impl<T> Clone for Lazy<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Lazy<'_, T> {}

impl<'a, T: Wire> WireDecode<'a> for Lazy<'a, T> {
    #[inline]
    fn decode_borrowed(r: &mut WireReader<'a>) -> Result<Self, WireError> {
        let start = r.position();
        T::skip(r)?;
        Ok(Lazy {
            bytes: r.since(start),
            _marker: std::marker::PhantomData,
        })
    }
}

impl<'a, T: Wire> Lazy<'a, T> {
    /// Captures one `T`'s byte range off `r` (alias of
    /// [`WireDecode::decode_borrowed`] for call-site clarity).
    #[inline]
    pub fn capture(r: &mut WireReader<'a>) -> Result<Self, WireError> {
        Self::decode_borrowed(r)
    }

    /// Decodes the captured value. Structure was validated by the skip
    /// at capture time; this can still fail on value-level checks
    /// (UTF-8, discriminants, integer ranges).
    #[inline]
    pub fn get(&self) -> Result<T, WireError> {
        from_bytes(self.bytes)
    }

    /// The captured wire bytes.
    #[inline]
    pub fn raw(&self) -> &'a [u8] {
        self.bytes
    }
}

/// Streaming cursor over a length-prefixed sequence, sharing the
/// caller's reader — the zero-allocation receive path for a sequence
/// consumed in a single sweep (TriPoll's sorted candidate lists).
///
/// [`SeqCursor::begin`] validates the length prefix against the bytes
/// remaining, then each element is decoded (or skipped) **in place**,
/// advancing the shared reader. Because the reader frames subsequent
/// records in the same envelope, a consumer that stops early must call
/// [`SeqCursor::skip_rest`] so the record boundary stays intact.
///
/// Elements must occupy at least one byte on the wire (true for every
/// sequence this runtime ships); zero-sized element sequences must use
/// the owned `Vec` decode.
pub struct SeqCursor<'r, 'a> {
    r: &'r mut WireReader<'a>,
    remaining: usize,
    /// Set once an element decode fails: the shared reader is then
    /// stranded mid-element, so no further framing can be trusted.
    poisoned: bool,
}

impl<'r, 'a> SeqCursor<'r, 'a> {
    /// Reads and validates the length prefix; the cursor is positioned
    /// at the first element. The cursor is untyped, so the shared
    /// length policy is applied with the 1-byte-per-element floor;
    /// call sites that know the element type should prefer
    /// [`SeqCursor::begin_typed`] for the tighter up-front bound.
    pub fn begin(r: &'r mut WireReader<'a>) -> Result<Self, WireError> {
        let claimed = r.take_varint()?;
        let remaining = check_seq_len_min(claimed, 1, r)?;
        Ok(SeqCursor {
            remaining,
            r,
            poisoned: false,
        })
    }

    /// [`SeqCursor::begin`] with the length prefix validated against
    /// `T::MIN_ENCODED_BYTES` — the same bound the owned `Vec<T>`
    /// decode applies, so both decode paths reject a given corrupt
    /// frame at the same point with the same error.
    pub fn begin_typed<T: Wire>(r: &'r mut WireReader<'a>) -> Result<Self, WireError> {
        let claimed = r.take_varint()?;
        let remaining = check_seq_len::<T>(claimed, r)?;
        Ok(SeqCursor {
            remaining,
            r,
            poisoned: false,
        })
    }

    /// Elements not yet consumed.
    #[inline]
    pub fn len(&self) -> usize {
        self.remaining
    }

    /// True when every element has been consumed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.remaining == 0
    }

    /// Decodes the next element through `f`, which must consume exactly
    /// one element's bytes (the decode-side mirror of [`encode_seq`]'s
    /// write closure). Returns `None` once the sequence is exhausted.
    ///
    /// An element decode error **poisons** the cursor: the shared
    /// reader is stranded mid-element, so a later [`SeqCursor::skip_rest`]
    /// reports the corruption instead of silently misframing the
    /// records that follow.
    #[inline]
    pub fn next_with<T>(
        &mut self,
        f: impl FnOnce(&mut WireReader<'a>) -> Result<T, WireError>,
    ) -> Option<Result<T, WireError>> {
        if self.poisoned || self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let out = f(self.r);
        if out.is_err() {
            self.poisoned = true;
        }
        Some(out)
    }

    /// Decodes the next element as an owned `T`.
    #[inline]
    pub fn next_value<T: Wire>(&mut self) -> Option<Result<T, WireError>> {
        self.next_with(T::decode)
    }

    /// Decodes up to `out.len()` elements into `out` through `f` — the
    /// wire-level block primitive for interleaved sequences, mirroring
    /// [`ColKeys::next_block`] for consumers that hold the cursor
    /// directly and want a block of decoded views to scan without a
    /// decode call inside the compare loop. (The engine's streaming
    /// blocked kernel buffers through its generic element closure
    /// instead, so it can serve [`SeqWalk`] and cursors alike.)
    /// Returns the number decoded (`0` once the sequence is exhausted;
    /// the final call yields the remainder tail). Slots past the
    /// returned count are left untouched.
    ///
    /// An element decode error poisons the cursor exactly as
    /// [`SeqCursor::next_with`] does, and no partially decoded block is
    /// exposed: the error is returned instead of a count.
    pub fn next_block_with<T>(
        &mut self,
        out: &mut [Option<T>],
        mut f: impl FnMut(&mut WireReader<'a>) -> Result<T, WireError>,
    ) -> Result<usize, WireError> {
        if self.poisoned {
            return Ok(0);
        }
        let take = out.len().min(self.remaining);
        for slot in out.iter_mut().take(take) {
            match f(self.r) {
                Ok(v) => *slot = Some(v),
                Err(e) => {
                    self.poisoned = true;
                    self.remaining = 0;
                    return Err(e);
                }
            }
            self.remaining -= 1;
        }
        Ok(take)
    }

    /// Skips every unconsumed element (cheap bounds-only walk), leaving
    /// the shared reader at the record boundary. Errors if a prior
    /// element decode failed — the boundary is unrecoverable then.
    pub fn skip_rest<T: Wire>(mut self) -> Result<(), WireError> {
        if self.poisoned {
            return Err(WireError::InvalidValue(
                "sequence cursor poisoned by an element decode error",
            ));
        }
        while self.remaining > 0 {
            T::skip(self.r)?;
            self.remaining -= 1;
        }
        Ok(())
    }
}

/// A captured length-prefixed sequence: one cheap skip-walk records the
/// byte extent, after which the elements can be re-iterated any number
/// of times via [`SeqView::walk`] — for receivers that intersect one
/// arriving batch against several local lists (the pull delivery).
pub struct SeqView<'a, T> {
    bytes: &'a [u8],
    len: usize,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<'a, T: Wire> WireDecode<'a> for SeqView<'a, T> {
    fn decode_borrowed(r: &mut WireReader<'a>) -> Result<Self, WireError> {
        let len = check_seq_len::<T>(r.take_varint()?, r)?;
        let start = r.position();
        for _ in 0..len {
            T::skip(r)?;
        }
        Ok(SeqView {
            bytes: r.since(start),
            len,
            _marker: std::marker::PhantomData,
        })
    }
}

impl<'a, T: Wire> SeqView<'a, T> {
    /// Captures one sequence off `r` (alias of
    /// [`WireDecode::decode_borrowed`] for call-site clarity).
    #[inline]
    pub fn capture(r: &mut WireReader<'a>) -> Result<Self, WireError> {
        Self::decode_borrowed(r)
    }

    /// Number of elements in the sequence.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the sequence has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A fresh walk over the captured elements.
    #[inline]
    pub fn walk(&self) -> SeqWalk<'a, T> {
        SeqWalk {
            r: WireReader::new(self.bytes),
            remaining: self.len,
            _marker: std::marker::PhantomData,
        }
    }
}

/// One pass over a [`SeqView`]'s elements. Unlike [`SeqCursor`] it owns
/// its reader (the captured range), so it can be dropped mid-walk
/// without disturbing any record framing.
pub struct SeqWalk<'a, T> {
    r: WireReader<'a>,
    remaining: usize,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<'a, T: Wire> SeqWalk<'a, T> {
    /// Elements not yet consumed by this walk.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Decodes the next element through `f` (one element's bytes,
    /// exactly). Returns `None` once the walk is exhausted.
    #[inline]
    pub fn next_with<U>(
        &mut self,
        f: impl FnOnce(&mut WireReader<'a>) -> Result<U, WireError>,
    ) -> Option<Result<U, WireError>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(f(&mut self.r))
    }
}

impl<'a, T: Wire> Iterator for SeqWalk<'a, T> {
    type Item = Result<T, WireError>;
    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        self.next_with(T::decode)
    }
}

// --------------------------------------------------------------------
// Columnar (SoA) sequences — see the module docs for the frame layout.
// --------------------------------------------------------------------

/// Capacity above which the thread-local meta-column scratch is dropped
/// instead of retained (one giant hub batch must not stay resident).
const COL_SCRATCH_MAX: usize = 1 << 20;

thread_local! {
    /// Scratch for staging a meta column so its byte length can prefix
    /// it. Taken out of the cell while in use, so a re-entrant encode
    /// (a `T` whose encoding itself builds a columnar frame) falls back
    /// to a fresh vector instead of corrupting the outer column.
    static COL_SCRATCH: std::cell::Cell<Vec<u8>> = const { std::cell::Cell::new(Vec::new()) };
}

fn with_col_scratch<R>(f: impl FnOnce(&mut Vec<u8>) -> R) -> R {
    COL_SCRATCH.with(|cell| {
        let mut s = cell.take();
        s.clear();
        let out = f(&mut s);
        if s.capacity() <= COL_SCRATCH_MAX {
            cell.set(s);
        }
        out
    })
}

/// Writes one byte-length-prefixed column of raw varints. The byte
/// budget is computed by an arithmetic pre-pass ([`varint_len`]), so no
/// scratch staging is needed.
fn write_raw_col(buf: &mut Vec<u8>, vals: impl Iterator<Item = u64> + Clone) {
    let bytes: usize = vals.clone().map(varint_len).sum();
    put_varint(buf, bytes as u64);
    for v in vals {
        put_varint(buf, v);
    }
}

/// Writes one byte-length-prefixed delta-coded column: first value raw,
/// then zigzag varints of wrapping differences. Monotone inputs (a
/// `<+`-sorted batch's degrees) become one-byte deltas; arbitrary
/// inputs still round-trip via the wrapping arithmetic.
fn write_delta_col(buf: &mut Vec<u8>, vals: impl Iterator<Item = u64> + Clone) {
    let mut bytes = 0usize;
    let mut prev = 0u64;
    let mut first = true;
    for v in vals.clone() {
        bytes += if first {
            first = false;
            varint_len(v)
        } else {
            varint_len(zigzag_encode(v.wrapping_sub(prev) as i64))
        };
        prev = v;
    }
    put_varint(buf, bytes as u64);
    let mut prev = 0u64;
    let mut first = true;
    for v in vals {
        if first {
            first = false;
            put_varint(buf, v);
        } else {
            put_varint(buf, zigzag_encode(v.wrapping_sub(prev) as i64));
        }
        prev = v;
    }
}

/// Writes the byte-length-prefixed meta column: `write_all` appends
/// every element's encoding to the scratch, which is then measured and
/// copied behind its prefix.
fn write_meta_col(buf: &mut Vec<u8>, write_all: impl FnOnce(&mut Vec<u8>)) {
    with_col_scratch(|s| {
        write_all(s);
        put_varint(buf, s.len() as u64);
        buf.extend_from_slice(s);
    });
}

/// Takes one byte-length-prefixed column off `r`, validating the prefix
/// against the bytes remaining and the `n × min_bytes` element floor
/// before slicing — the per-column [`WireError::SeqOverrun`] hardening.
fn take_col<'a>(r: &mut WireReader<'a>, n: usize, min_bytes: usize) -> Result<&'a [u8], WireError> {
    let claimed = r.take_varint()?;
    if claimed > r.remaining() as u64 {
        return Err(WireError::SeqOverrun {
            claimed,
            remaining: r.remaining(),
        });
    }
    let bytes = claimed as usize;
    if (n as u64).saturating_mul(min_bytes as u64) > bytes as u64 {
        return Err(WireError::SeqOverrun {
            claimed: n as u64,
            remaining: bytes,
        });
    }
    r.take(bytes)
}

/// The captured column extents of one frame: `(n, vertex column,
/// degree column, meta column)`.
type ColExtents<'a> = (usize, &'a [u8], &'a [u8], &'a [u8]);

/// Captures the three column extents of one frame (bounded takes only —
/// no element walks, no allocation). Shared by the owned decode, the
/// skip walk and both borrowed cursor shapes, so every path rejects a
/// given hostile frame at the same point with the same error.
fn capture_cols<'a, T: Wire>(r: &mut WireReader<'a>) -> Result<ColExtents<'a>, WireError> {
    let n64 = r.take_varint()?;
    // Every vertex-column element costs at least one byte, so a count
    // beyond the whole buffer is hostile before any prefix is read.
    if n64 > r.remaining() as u64 {
        return Err(WireError::SeqOverrun {
            claimed: n64,
            remaining: r.remaining(),
        });
    }
    let n = n64 as usize;
    let vcol = take_col(r, n, 1)?;
    let dcol = take_col(r, n, 1)?;
    let mcol = take_col(r, n, T::MIN_ENCODED_BYTES)?;
    // A zero-element frame with nonempty columns would evade every
    // walk-time budget check (there is nothing to walk); reject it here
    // so all decode paths refuse it identically.
    if n == 0 && (!vcol.is_empty() || !dcol.is_empty() || !mcol.is_empty()) {
        return Err(WireError::InvalidValue("columnar byte budget mismatch"));
    }
    Ok((n, vcol, dcol, mcol))
}

/// An owned `(u64, u64, T)` batch with the **columnar** wire image —
/// the SoA counterpart of `Vec<(u64, u64, T)>` (which encodes
/// interleaved). This is the message type columnar handlers are keyed
/// on and the reference decode path for differential testing; the hot
/// send path never materializes one (see [`encode_columns`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ColBatch<T>(pub Vec<(u64, u64, T)>);

impl<T: Wire> Wire for ColBatch<T> {
    /// Empty frame: a zero count plus three zero byte-length prefixes.
    const MIN_ENCODED_BYTES: usize = 4;

    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.0.len() as u64);
        write_raw_col(buf, self.0.iter().map(|c| c.0));
        write_delta_col(buf, self.0.iter().map(|c| c.1));
        write_meta_col(buf, |s| {
            for c in &self.0 {
                c.2.encode(s);
            }
        });
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let (n, vcol, dcol, mcol) = capture_cols::<T>(r)?;
        let mut vr = WireReader::new(vcol);
        let mut dr = WireReader::new(dcol);
        let mut mr = WireReader::new(mcol);
        let mut out = Vec::with_capacity(n);
        let mut prev = 0u64;
        for i in 0..n {
            let v = vr.take_varint()?;
            let d = if i == 0 {
                dr.take_varint()?
            } else {
                prev.wrapping_add(zigzag_decode(dr.take_varint()?) as u64)
            };
            prev = d;
            out.push((v, d, T::decode(&mut mr)?));
        }
        if !vr.is_empty() || !dr.is_empty() || !mr.is_empty() {
            return Err(WireError::InvalidValue("columnar byte budget mismatch"));
        }
        Ok(ColBatch(out))
    }

    fn skip(r: &mut WireReader<'_>) -> Result<(), WireError> {
        // Structure-only: the byte prefixes bound the whole frame, so a
        // columnar batch skips in O(columns), not O(elements).
        capture_cols::<T>(r).map(drop)
    }
}

/// Borrowed columnar encoder: serializes a projection of `&[S]` as
/// three packed columns, **byte-identical** to the [`ColBatch`] of the
/// projected tuples, without materializing any of them. Built by
/// [`encode_columns`].
pub struct ColumnSeq<'a, S, FV, FD, FM> {
    items: &'a [S],
    v: FV,
    d: FD,
    m: FM,
}

/// Builds a [`ColumnSeq`] over `items`: `v` and `d` project the two key
/// columns, `m` appends one element's metadata encoding (exactly the
/// bytes the owned element type would encode — the same adapter
/// contract as [`encode_seq`]).
///
/// The encoding is byte-identical to the [`ColBatch`] of the projected
/// tuples, so the receiving handler can stay keyed on the owned type
/// while the sender streams straight from storage:
///
/// ```
/// use tripoll_ygm::wire::{encode_columns, to_bytes, ColBatch, Wire, WireEncode};
///
/// // Application storage: (vertex, degree, metadata) scattered in a struct.
/// struct Entry { v: u64, degree: u64, meta: u32 }
/// let adj = [
///     Entry { v: 7, degree: 3, meta: 40 },
///     Entry { v: 19, degree: 3, meta: 41 },
///     Entry { v: 4, degree: 5, meta: 42 },
/// ];
///
/// let mut borrowed = Vec::new();
/// encode_columns(&adj, |e| e.v, |e| e.degree, |e, buf| e.meta.encode(buf))
///     .encode_wire(&mut borrowed);
///
/// // Byte-identical to materializing the owned columnar batch.
/// let owned = ColBatch::<u32>(adj.iter().map(|e| (e.v, e.degree, e.meta)).collect());
/// assert_eq!(borrowed, to_bytes(&owned));
/// ```
pub fn encode_columns<S, FV, FD, FM>(
    items: &[S],
    v: FV,
    d: FD,
    m: FM,
) -> ColumnSeq<'_, S, FV, FD, FM>
where
    FV: Fn(&S) -> u64,
    FD: Fn(&S) -> u64,
    FM: Fn(&S, &mut Vec<u8>),
{
    ColumnSeq { items, v, d, m }
}

impl<S, FV, FD, FM> WireEncode for ColumnSeq<'_, S, FV, FD, FM>
where
    FV: Fn(&S) -> u64,
    FD: Fn(&S) -> u64,
    FM: Fn(&S, &mut Vec<u8>),
{
    fn encode_wire(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.items.len() as u64);
        write_raw_col(buf, self.items.iter().map(&self.v));
        write_delta_col(buf, self.items.iter().map(&self.d));
        write_meta_col(buf, |s| {
            for item in self.items {
                (self.m)(item, s);
            }
        });
    }
}

/// One element of the key columns: its batch index plus the two eagerly
/// decoded key values. The metadata at `idx` is fetched separately —
/// and only on demand — through [`ColMetas::get`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColKey {
    /// Position of this element within the batch.
    pub idx: usize,
    /// First key column value (the candidate vertex id).
    pub v: u64,
    /// Second key column value (delta-decoded; the candidate degree).
    pub degree: u64,
}

/// Lockstep walk of the two key columns — the only bytes the merge-path
/// intersection touches. A decode error exhausts the walk (the column
/// readers are stranded mid-element), mirroring [`SeqCursor`] poisoning.
pub struct ColKeys<'a> {
    v: WireReader<'a>,
    d: WireReader<'a>,
    prev: u64,
    idx: usize,
    n: usize,
}

impl ColKeys<'_> {
    /// Elements not yet walked.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.n - self.idx
    }

    /// Decodes the next key pair, `None` once exhausted. The final
    /// element also enforces the byte budget: key columns longer than
    /// the element count are corrupt, not slack.
    #[inline]
    pub fn next_key(&mut self) -> Option<Result<ColKey, WireError>> {
        if self.idx == self.n {
            return None;
        }
        let out = (|| {
            let v = self.v.take_varint()?;
            let degree = if self.idx == 0 {
                self.d.take_varint()?
            } else {
                self.prev
                    .wrapping_add(zigzag_decode(self.d.take_varint()?) as u64)
            };
            if self.idx + 1 == self.n && (!self.v.is_empty() || !self.d.is_empty()) {
                return Err(WireError::InvalidValue("columnar byte budget mismatch"));
            }
            Ok(ColKey {
                idx: self.idx,
                v,
                degree,
            })
        })();
        match &out {
            Ok(k) => {
                self.prev = k.degree;
                self.idx += 1;
            }
            Err(_) => self.idx = self.n,
        }
        Some(out)
    }
}

/// Number of key pairs one [`ColKeys::next_block`] call decodes (the
/// final block of a frame is the remainder tail, `frame len %
/// KEY_BLOCK_LEN` elements long).
///
/// 32 keeps a [`KeyBlock`] (two `u64` arrays) at 512 bytes — small
/// enough to live in L1 beside the merge target, big enough that the
/// varint-decode loop and the compare loop amortize their setup.
pub const KEY_BLOCK_LEN: usize = 32;

/// One decoded run of a columnar frame's key columns: fixed-size stack
/// arrays a blocked intersection kernel can scan with branch-light
/// compares, no per-element decode call in the compare loop.
///
/// Filled by [`ColKeys::next_block`]; only the prefix `..len` is valid
/// (`len == KEY_BLOCK_LEN` for every block except a frame's remainder
/// tail). Element `i` of the block is batch element `base + i` — the
/// index to hand to [`ColMetas::get`] on a match.
#[derive(Debug, Clone, Copy)]
pub struct KeyBlock {
    /// Vertex ids (first key column).
    pub v: [u64; KEY_BLOCK_LEN],
    /// Delta-decoded degrees (second key column).
    pub degree: [u64; KEY_BLOCK_LEN],
    /// Batch index of block element 0.
    pub base: usize,
    /// Valid prefix length (0 only for a never-filled block).
    pub len: usize,
}

impl KeyBlock {
    /// An empty block, ready to pass to [`ColKeys::next_block`].
    pub const fn new() -> Self {
        KeyBlock {
            v: [0; KEY_BLOCK_LEN],
            degree: [0; KEY_BLOCK_LEN],
            base: 0,
            len: 0,
        }
    }
}

impl Default for KeyBlock {
    fn default() -> Self {
        Self::new()
    }
}

impl ColKeys<'_> {
    /// Decodes the next up-to-[`KEY_BLOCK_LEN`] key pairs into `block`
    /// — the bulk mirror of [`ColKeys::next_key`], separating the
    /// varint-decode loop from the caller's compare loop so the
    /// compares run over contiguous stack arrays. Returns `None` once
    /// the walk is exhausted.
    ///
    /// Each key column is bulk-decoded by the SWAR varint cracker
    /// ([`WireReader::take_varints`]: terminator bytes located in one
    /// packed pass, payload lanes folded by shift-and-mask — no
    /// byte-at-a-time loop), then the delta prefix-sum runs over the
    /// decoded degree lanes. Because the columns are independent
    /// readers, a corrupt frame whose columns *both* truncate may
    /// surface the vertex column's error where the scalar
    /// [`ColKeys::next_key`] walk, which interleaves the columns
    /// element by element, would surface the degree column's — the
    /// failing frame set and the walk's poisoned end state are
    /// identical either way.
    ///
    /// The contract matches the scalar walk: the block that consumes
    /// the final element also enforces the key columns' byte budget
    /// (trailing bytes are corruption, not slack), and any error
    /// exhausts the walk and leaves `block.len == 0` — a partially
    /// decoded block is never exposed.
    pub fn next_block(&mut self, block: &mut KeyBlock) -> Option<Result<(), WireError>> {
        if self.idx == self.n {
            return None;
        }
        block.base = self.idx;
        block.len = 0;
        let take = KEY_BLOCK_LEN.min(self.n - self.idx);
        let out = (|| {
            self.v.take_varints(&mut block.v[..take])?;
            let mut deltas = [0u64; KEY_BLOCK_LEN];
            self.d.take_varints(&mut deltas[..take])?;
            let mut prev = self.prev;
            for (i, &raw) in deltas[..take].iter().enumerate() {
                prev = if self.idx + i == 0 {
                    raw
                } else {
                    prev.wrapping_add(zigzag_decode(raw) as u64)
                };
                block.degree[i] = prev;
            }
            self.prev = prev;
            if self.idx + take == self.n && (!self.v.is_empty() || !self.d.is_empty()) {
                return Err(WireError::InvalidValue("columnar byte budget mismatch"));
            }
            Ok(())
        })();
        match out {
            Ok(()) => {
                self.idx += take;
                block.len = take;
            }
            Err(_) => self.idx = self.n,
        }
        Some(out)
    }
}

impl Iterator for ColKeys<'_> {
    type Item = Result<ColKey, WireError>;
    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        self.next_key()
    }
}

/// Lazy forward reader over the meta column: [`ColMetas::get`] skips to
/// the requested index (bounds-only walks) and decodes exactly one
/// element. Indices must be requested in increasing order — which a
/// merge-path intersection produces by construction — so misses cost a
/// skip, not a decode, and unmatched tails cost nothing at all.
///
/// The laziness is a deliberate trade against validation depth: the
/// column's *byte extent* was bounds-checked at capture (it can never
/// be over-read), but elements behind the last index actually requested
/// are not even structurally walked, so value-level corruption hiding
/// there goes unreported — one step lazier than the interleaved path's
/// [`Lazy`], which skip-walks every element's structure. The owned
/// [`ColBatch`] decode, which materializes everything, is the strict
/// reference: it rejects any column not consumed byte-budget exactly.
pub struct ColMetas<'a, T> {
    r: WireReader<'a>,
    pos: usize,
    n: usize,
    /// Set once an element skip/decode fails: the reader is stranded
    /// mid-element, so no later index can be located reliably.
    poisoned: bool,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Wire> ColMetas<'_, T> {
    /// Decodes the metadata of batch element `idx`. Errors on repeated,
    /// backward or out-of-range indices. A request that consumes the
    /// final element also enforces the column's byte budget (trailing
    /// bytes are corruption, not slack); budgets of elements *behind*
    /// an early exit are never walked — that is the laziness contract
    /// (see the type docs).
    ///
    /// An element skip/decode error **poisons** the reader — it is
    /// stranded mid-element, so a later request reports the corruption
    /// instead of decoding from a misaligned offset (the same
    /// convention as [`SeqCursor`] and [`ColKeys`] poisoning).
    pub fn get(&mut self, idx: usize) -> Result<T, WireError> {
        if self.poisoned {
            return Err(WireError::InvalidValue(
                "meta column poisoned by an element decode error",
            ));
        }
        if idx >= self.n {
            return Err(WireError::InvalidValue("meta column index out of range"));
        }
        if idx < self.pos {
            return Err(WireError::InvalidValue(
                "meta column indices must be requested in increasing order",
            ));
        }
        let out = (|| {
            while self.pos < idx {
                T::skip(&mut self.r)?;
                self.pos += 1;
            }
            self.pos += 1;
            let out = T::decode(&mut self.r)?;
            if self.pos == self.n && !self.r.is_empty() {
                return Err(WireError::InvalidValue("columnar byte budget mismatch"));
            }
            Ok(out)
        })();
        if out.is_err() {
            self.poisoned = true;
        }
        out
    }
}

/// Single-pass decode of one columnar frame. [`ColCursor::begin`]
/// captures the whole frame off the shared envelope reader (three
/// bounded takes), so unlike [`SeqCursor`] there is no framing debt: a
/// consumer may stop anywhere and the next record still decodes.
///
/// The two halves are independent fields so the key walk and the lazy
/// meta reads can be borrowed by different closures of one merge-path
/// call.
pub struct ColCursor<'a, T> {
    /// The key columns, walked during intersection.
    pub keys: ColKeys<'a>,
    /// The meta column, decoded on match only.
    pub metas: ColMetas<'a, T>,
}

impl<'a, T: Wire> ColCursor<'a, T> {
    /// Captures one frame off `r` and positions both column walks at
    /// the first element.
    pub fn begin(r: &mut WireReader<'a>) -> Result<Self, WireError> {
        let (n, vcol, dcol, mcol) = capture_cols::<T>(r)?;
        Ok(Self::from_cols(n, vcol, dcol, mcol))
    }

    fn from_cols(n: usize, vcol: &'a [u8], dcol: &'a [u8], mcol: &'a [u8]) -> Self {
        ColCursor {
            keys: ColKeys {
                v: WireReader::new(vcol),
                d: WireReader::new(dcol),
                prev: 0,
                idx: 0,
                n,
            },
            metas: ColMetas {
                r: WireReader::new(mcol),
                pos: 0,
                n,
                poisoned: false,
                _marker: std::marker::PhantomData,
            },
        }
    }

    /// Total elements in the frame.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.n
    }

    /// True when the frame holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.n == 0
    }
}

/// A captured columnar frame that can be walked any number of times —
/// the columnar counterpart of [`SeqView`], but captured with three
/// bounded takes instead of an O(n) skip walk.
pub struct ColView<'a, T> {
    n: usize,
    vcol: &'a [u8],
    dcol: &'a [u8],
    mcol: &'a [u8],
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<'a, T: Wire> WireDecode<'a> for ColView<'a, T> {
    fn decode_borrowed(r: &mut WireReader<'a>) -> Result<Self, WireError> {
        let (n, vcol, dcol, mcol) = capture_cols::<T>(r)?;
        Ok(ColView {
            n,
            vcol,
            dcol,
            mcol,
            _marker: std::marker::PhantomData,
        })
    }
}

impl<'a, T: Wire> ColView<'a, T> {
    /// Captures one frame off `r` (alias of
    /// [`WireDecode::decode_borrowed`] for call-site clarity).
    #[inline]
    pub fn capture(r: &mut WireReader<'a>) -> Result<Self, WireError> {
        Self::decode_borrowed(r)
    }

    /// Number of elements in the frame.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the frame holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// A fresh single-pass walk over the captured columns.
    #[inline]
    pub fn walk(&self) -> ColCursor<'a, T> {
        ColCursor::from_cols(self.n, self.vcol, self.dcol, self.mcol)
    }
}

/// Convenience: decode a borrowed view that must consume the whole
/// buffer — the [`WireDecode`] mirror of [`from_bytes`].
pub fn view_bytes<'a, T: WireDecode<'a>>(bytes: &'a [u8]) -> Result<T, WireError> {
    let mut r = WireReader::new(bytes);
    let v = T::decode_borrowed(&mut r)?;
    if !r.is_empty() {
        return Err(WireError::InvalidValue("trailing bytes after view"));
    }
    Ok(v)
}

/// Convenience: encode a value into a fresh buffer.
pub fn to_bytes<T: Wire>(value: &T) -> Vec<u8> {
    let mut buf = Vec::new();
    value.encode(&mut buf);
    buf
}

/// Convenience: decode a value that must consume the whole buffer.
pub fn from_bytes<T: Wire>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = WireReader::new(bytes);
    let v = T::decode(&mut r)?;
    if !r.is_empty() {
        return Err(WireError::InvalidValue("trailing bytes after value"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v);
        let back: T = from_bytes(&bytes).expect("decode");
        assert_eq!(v, back);
    }

    #[test]
    fn varint_small_values_are_one_byte() {
        for v in 0..128u64 {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), 1, "value {v}");
            assert_eq!(varint_len(v), 1);
        }
    }

    #[test]
    fn varint_boundaries() {
        for (v, len) in [
            (0u64, 1),
            (127, 1),
            (128, 2),
            (16_383, 2),
            (16_384, 3),
            (u32::MAX as u64, 5),
            (u64::MAX, 10),
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), len, "value {v}");
            assert_eq!(varint_len(v), len, "varint_len({v})");
            let mut r = WireReader::new(&buf);
            assert_eq!(r.take_varint().unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn varint_overflow_detected() {
        // Eleven continuation bytes can never be a valid 64-bit varint.
        let buf = [0xffu8; 11];
        let mut r = WireReader::new(&buf);
        assert_eq!(r.take_varint(), Err(WireError::VarintOverflow));
    }

    /// The SWAR crack path and the scalar loop must accept the same
    /// byte strings, consume the same bytes and yield the same values —
    /// across every width class, at every buffer-tail distance (which
    /// decides whether the crack path engages at all).
    #[test]
    fn swar_crack_matches_scalar_decode() {
        let mut values: Vec<u64> = vec![0, 1, 127, 128, 255, 16_383, 16_384, u64::MAX];
        for bits in 0..64 {
            values.push(1u64 << bits);
            values.push((1u64 << bits) | 0x55);
            values.push(hashish(bits) >> (bits % 64));
        }
        for &v in &values {
            let mut encoded = Vec::new();
            put_varint(&mut encoded, v);
            // Pad so the 8-byte word load is exercised, then retry at
            // every shorter tail down to the exact encoding length.
            for pad in (0..=8usize).rev() {
                let mut buf = encoded.clone();
                buf.extend(std::iter::repeat_n(0xABu8, pad));
                let mut fast = WireReader::new(&buf);
                assert_eq!(fast.take_varint(), Ok(v), "value {v} pad {pad}");
                let mut scalar = WireReader::new(&buf);
                assert_eq!(scalar.take_varint_scalar(), Ok(v));
                assert_eq!(fast.position(), scalar.position(), "value {v} pad {pad}");
            }
        }
        // Non-canonical (overlong) encodings decode identically too.
        let overlong = [0x80u8, 0x80, 0x00, 0xAB, 0xAB, 0xAB, 0xAB, 0xAB];
        let mut fast = WireReader::new(&overlong);
        assert_eq!(fast.take_varint(), Ok(0));
        assert_eq!(fast.position(), 3);
    }

    #[test]
    fn take_varints_bulk_matches_element_wise() {
        // A mixed stream: every width class, including 10-byte
        // encodings that force the scalar fallback mid-run.
        let values: Vec<u64> = (0..300u64)
            .map(|i| match i % 5 {
                0 => i,
                1 => 128 + i,
                2 => hashish(i),
                3 => u64::MAX - i,
                _ => 1u64 << (i % 57),
            })
            .collect();
        let mut buf = Vec::new();
        for &v in &values {
            put_varint(&mut buf, v);
        }
        for chunk in [1usize, 2, 31, 32, 33, 300] {
            let mut r = WireReader::new(&buf);
            let mut out = vec![0u64; values.len()];
            for lanes in out.chunks_mut(chunk) {
                r.take_varints(lanes).expect("bulk decode");
            }
            assert_eq!(out, values, "chunk {chunk}");
            assert!(r.is_empty());
        }
        // Truncation inside the run errors exactly like the scalar walk.
        let mut r = WireReader::new(&buf[..buf.len() - 1]);
        let mut out = vec![0u64; values.len()];
        assert!(matches!(
            r.take_varints(&mut out),
            Err(WireError::UnexpectedEof { .. })
        ));
        // An 11-byte continuation run overflows, not spins.
        let hostile = [0xffu8; 16];
        let mut r = WireReader::new(&hostile);
        assert_eq!(
            r.take_varints(&mut [0u64; 2]),
            Err(WireError::VarintOverflow)
        );
    }

    #[test]
    fn truncated_buffer_is_an_error() {
        // The length prefix survives truncation but the payload does
        // not: caught by the up-front length check.
        let bytes = to_bytes(&"hello".to_string());
        let mut r = WireReader::new(&bytes[..3]);
        assert!(matches!(
            String::decode(&mut r),
            Err(WireError::SeqOverrun { .. })
        ));
        // Truncation inside the prefix itself is an EOF.
        let long = to_bytes(&"x".repeat(200));
        let mut r = WireReader::new(&long[..1]);
        assert!(matches!(
            String::decode(&mut r),
            Err(WireError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(());
        roundtrip(true);
        roundtrip(false);
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u16::MAX);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX);
        roundtrip(i8::MIN);
        roundtrip(i16::MIN);
        roundtrip(i32::MIN);
        roundtrip(i64::MIN);
        roundtrip(-1i64);
        roundtrip(isize::MIN);
        roundtrip(std::f32::consts::E);
        roundtrip(std::f64::consts::PI);
        roundtrip(f64::NEG_INFINITY);
    }

    #[test]
    fn zigzag_keeps_small_magnitudes_small() {
        for v in [-64i64, -1, 0, 1, 63] {
            let mut buf = Vec::new();
            v.encode(&mut buf);
            assert_eq!(buf.len(), 1, "value {v}");
        }
    }

    #[test]
    fn string_roundtrips() {
        roundtrip(String::new());
        roundtrip("amazon.example".to_string());
        roundtrip("ünïcödé 🎉 strings".to_string());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(from_bytes::<String>(&buf), Err(WireError::InvalidUtf8));
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(Vec::<u64>::new());
        roundtrip(vec![1u64, 128, 16_384, u64::MAX]);
        roundtrip(vec!["a".to_string(), String::new(), "ccc".to_string()]);
        roundtrip(Some(42u32));
        roundtrip(Option::<u32>::None);
        let mut m = HashMap::new();
        m.insert("host".to_string(), 3u64);
        m.insert("edge".to_string(), 0);
        roundtrip(m);
    }

    #[test]
    fn tuple_roundtrips() {
        roundtrip((1u64,));
        roundtrip((1u64, "x".to_string()));
        roundtrip((1u64, 2u32, 3u16));
        roundtrip((1u64, 2u32, 3u16, true));
        roundtrip((1u64, 2u32, 3u16, true, 2.5f64));
        roundtrip((1u64, 2u32, 3u16, true, 2.5f64, -7i32));
    }

    #[test]
    fn nested_containers() {
        roundtrip(vec![vec![1u32, 2], vec![], vec![3]]);
        roundtrip(vec![(1u64, "a".to_string()), (2, "b".to_string())]);
        roundtrip(Some(vec![(0u64, None), (1, Some(9u8))]));
    }

    #[test]
    fn hostile_length_prefix_does_not_allocate() {
        // Length prefix claims 2^60 elements but only a few bytes follow.
        let mut buf = Vec::new();
        put_varint(&mut buf, 1u64 << 60);
        buf.push(1);
        assert!(from_bytes::<Vec<u64>>(&buf).is_err());
    }

    #[test]
    fn from_bytes_rejects_trailing_garbage() {
        let mut bytes = to_bytes(&7u64);
        bytes.push(0);
        assert!(from_bytes::<u64>(&bytes).is_err());
    }

    #[test]
    fn bool_bad_discriminant() {
        assert!(from_bytes::<bool>(&[2]).is_err());
    }

    /// A stand-in for graph storage: the borrowed encoders must be able
    /// to serialize a projection of this without materializing tuples.
    struct FakeAdjEntry {
        v: u64,
        degree: u64,
        em: u64,
    }

    /// Deterministic id spreader for synthetic batches.
    fn hashish(i: u64) -> u64 {
        crate::hash::hash64(i)
    }

    #[test]
    fn slice_seq_matches_vec_encoding() {
        let owned: Vec<u64> = vec![0, 1, 127, 128, 16_384, u64::MAX];
        let mut via_vec = Vec::new();
        owned.encode(&mut via_vec);
        let mut via_slice = Vec::new();
        SliceSeq(&owned[..]).encode_wire(&mut via_slice);
        assert_eq!(via_vec, via_slice);
    }

    #[test]
    fn encode_seq_matches_projected_vec_encoding() {
        let adj: Vec<FakeAdjEntry> = (0..20)
            .map(|i| FakeAdjEntry {
                v: i * 1000,
                degree: i,
                em: i ^ 0xff,
            })
            .collect();
        // Old path: materialize the candidate vector, encode it.
        let candidates: Vec<(u64, u64, u64)> = adj.iter().map(|e| (e.v, e.degree, e.em)).collect();
        let mut via_vec = Vec::new();
        candidates.encode(&mut via_vec);
        // New path: stream straight from the borrowed entries.
        let mut via_seq = Vec::new();
        encode_seq(&adj, |e: &FakeAdjEntry, buf| {
            e.v.encode(buf);
            e.degree.encode(buf);
            e.em.encode(buf);
        })
        .encode_wire(&mut via_seq);
        assert_eq!(via_vec, via_seq);
        // And the bytes decode back through the owned type.
        assert_eq!(
            from_bytes::<Vec<(u64, u64, u64)>>(&via_seq).unwrap(),
            candidates
        );
    }

    #[test]
    fn borrowed_tuple_matches_owned_tuple_encoding() {
        let meta = "edge-meta".to_string();
        let owned = (7u64, 9u64, meta.clone(), true);
        let mut via_owned = Vec::new();
        owned.encode(&mut via_owned);
        let mut via_borrowed = Vec::new();
        (7u64, 9u64, &meta, true).encode_wire(&mut via_borrowed);
        assert_eq!(via_owned, via_borrowed);
    }

    #[test]
    fn hostile_string_length_prefix_rejected() {
        // Length prefix claims 2^60 bytes; only two follow.
        let mut buf = Vec::new();
        put_varint(&mut buf, 1u64 << 60);
        buf.extend_from_slice(b"ab");
        assert!(matches!(
            from_bytes::<String>(&buf),
            Err(WireError::SeqOverrun { .. })
        ));
    }

    #[test]
    fn hostile_vec_length_prefix_rejected_before_allocation() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        buf.push(1);
        assert!(matches!(
            from_bytes::<Vec<u64>>(&buf),
            Err(WireError::SeqOverrun { .. })
        ));
        // Wide fixed-width elements tighten the bound: 4 f64s need 32
        // bytes, so claiming 4 with 20 remaining is rejected up front.
        let mut buf = Vec::new();
        put_varint(&mut buf, 4);
        buf.extend_from_slice(&[0u8; 20]);
        assert!(matches!(
            from_bytes::<Vec<f64>>(&buf),
            Err(WireError::SeqOverrun { .. })
        ));
    }

    #[test]
    fn hostile_map_length_prefix_rejected() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 1u64 << 40);
        buf.push(0);
        assert!(matches!(
            from_bytes::<HashMap<String, u64>>(&buf),
            Err(WireError::SeqOverrun { .. })
        ));
    }

    #[test]
    fn hostile_seq_cursor_prefix_rejected() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 1u64 << 50);
        buf.push(7);
        let mut r = WireReader::new(&buf);
        assert!(matches!(
            SeqCursor::begin(&mut r),
            Err(WireError::SeqOverrun { .. })
        ));
    }

    #[test]
    fn zero_sized_element_sequences_still_roundtrip() {
        // `()` encodes zero bytes; the length check must not misfire.
        roundtrip(vec![(); 300]);
    }

    #[test]
    fn hostile_zero_sized_sequence_prefix_rejected() {
        // Zero-sized elements defeat the byte bound, so the element
        // count itself is capped: a prefix claiming 2^60 `()`s must
        // error, not spin the decode loop for 2^60 iterations.
        let mut buf = Vec::new();
        put_varint(&mut buf, 1u64 << 60);
        assert!(matches!(
            from_bytes::<Vec<()>>(&buf),
            Err(WireError::SeqOverrun { .. })
        ));
        let mut r = WireReader::new(&buf);
        assert!(matches!(
            Vec::<()>::skip(&mut r),
            Err(WireError::SeqOverrun { .. })
        ));
    }

    #[test]
    fn skip_consumes_exactly_what_decode_does() {
        fn check<T: Wire>(v: &T) {
            let mut bytes = to_bytes(v);
            bytes.extend_from_slice(&[0xAA; 3]); // trailing sentinel
            let mut rd = WireReader::new(&bytes);
            T::decode(&mut rd).expect("decode");
            let mut rs = WireReader::new(&bytes);
            T::skip(&mut rs).expect("skip");
            assert_eq!(rd.position(), rs.position());
        }
        check(&42u64);
        check(&-17i32);
        check(&3.25f64);
        check(&true);
        check(&"ünïcödé metadata".to_string());
        check(&vec![1u64, 128, 16_384]);
        check(&Some(vec!["a".to_string(), "bb".to_string()]));
        check(&(7u64, "x".to_string(), vec![1u8, 2], 2.5f32));
        let mut m = HashMap::new();
        m.insert("k".to_string(), 9u64);
        check(&m);
    }

    #[test]
    fn str_view_borrows_without_copying() {
        let owned = "zero-copy payload".to_string();
        let bytes = to_bytes(&owned);
        let view: &str = view_bytes(&bytes).expect("view");
        assert_eq!(view, owned);
        // The view points into the encoded buffer itself.
        let payload_start = bytes.len() - owned.len();
        assert!(std::ptr::eq(view.as_bytes(), &bytes[payload_start..]));
    }

    #[test]
    fn byte_slice_view_matches_vec_u8() {
        let owned: Vec<u8> = (0..=255).collect();
        let bytes = to_bytes(&owned);
        let view: &[u8] = view_bytes(&bytes).expect("view");
        assert_eq!(view, &owned[..]);
    }

    #[test]
    fn lazy_defers_decoding_and_validation() {
        let bytes = to_bytes(&(1u64, "meta".to_string(), 2u64));
        let mut r = WireReader::new(&bytes);
        let a = u64::decode(&mut r).unwrap();
        let lazy: Lazy<'_, String> = Lazy::capture(&mut r).unwrap();
        let b = u64::decode(&mut r).unwrap();
        assert!(r.is_empty(), "capture consumed exactly the string");
        assert_eq!((a, b), (1, 2));
        assert_eq!(lazy.get().unwrap(), "meta");
        // Invalid UTF-8 is caught at get() time, not capture time.
        let mut evil = Vec::new();
        put_varint(&mut evil, 2);
        evil.extend_from_slice(&[0xff, 0xfe]);
        let mut r = WireReader::new(&evil);
        let lazy: Lazy<'_, String> = Lazy::capture(&mut r).unwrap();
        assert_eq!(lazy.get(), Err(WireError::InvalidUtf8));
    }

    #[test]
    fn seq_cursor_streams_what_vec_decodes() {
        let owned: Vec<(u64, u64, u64)> = (0..50).map(|i| (i, i * 7, i ^ 3)).collect();
        let bytes = to_bytes(&owned);
        let mut r = WireReader::new(&bytes);
        let mut cur = SeqCursor::begin(&mut r).unwrap();
        assert_eq!(cur.len(), owned.len());
        let mut streamed = Vec::new();
        while let Some(item) = cur.next_value::<(u64, u64, u64)>() {
            streamed.push(item.unwrap());
        }
        assert!(r.is_empty(), "cursor consumed the whole sequence");
        assert_eq!(streamed, owned);
    }

    #[test]
    fn seq_cursor_skip_rest_reaches_record_boundary() {
        // Two records back to back; consume half of the first sequence,
        // skip the rest, and the second record must decode cleanly.
        let first: Vec<(u64, String)> = (0..10).map(|i| (i, format!("m{i}"))).collect();
        let mut buf = to_bytes(&first);
        99u64.encode(&mut buf);
        let mut r = WireReader::new(&buf);
        let mut cur = SeqCursor::begin(&mut r).unwrap();
        for _ in 0..4 {
            cur.next_value::<(u64, String)>().unwrap().unwrap();
        }
        cur.skip_rest::<(u64, String)>().unwrap();
        assert_eq!(u64::decode(&mut r).unwrap(), 99);
        assert!(r.is_empty());
    }

    #[test]
    fn seq_cursor_element_error_poisons_skip_rest() {
        // Sequence of 3 strings whose second element is truncated
        // mid-payload: after the failed decode the reader sits inside
        // the broken element, so skip_rest must refuse rather than
        // "skip" from a garbage offset and pretend framing survived.
        let mut buf = Vec::new();
        put_varint(&mut buf, 3); // claims 3 elements
        "ok".to_string().encode(&mut buf);
        put_varint(&mut buf, 50); // element 2: claims 50 bytes...
        buf.extend_from_slice(b"short"); // ...but only 5 follow
        let mut r = WireReader::new(&buf);
        let mut cur = SeqCursor::begin(&mut r).unwrap();
        assert_eq!(cur.next_value::<String>().unwrap().unwrap(), "ok");
        assert!(cur.next_value::<String>().unwrap().is_err());
        assert!(
            cur.next_value::<String>().is_none(),
            "poisoned cursor stops"
        );
        assert!(matches!(
            cur.skip_rest::<String>(),
            Err(WireError::InvalidValue(_))
        ));
    }

    #[test]
    fn seq_view_is_reiterable() {
        let owned: Vec<(u64, u64)> = (0..20).map(|i| (i, i + 1)).collect();
        let mut buf = to_bytes(&(7u64, owned.clone()));
        buf.push(0x55); // trailing byte outside the message
        let mut r = WireReader::new(&buf[..buf.len() - 1]);
        let q = u64::decode(&mut r).unwrap();
        let view: SeqView<'_, (u64, u64)> = SeqView::capture(&mut r).unwrap();
        assert_eq!(q, 7);
        assert!(r.is_empty(), "capture advanced past the sequence");
        assert_eq!(view.len(), owned.len());
        for _pass in 0..3 {
            let walked: Vec<(u64, u64)> = view.walk().map(|e| e.unwrap()).collect();
            assert_eq!(walked, owned);
        }
        // Partial walks are fine: the view owns its range.
        {
            let mut w = view.walk();
            w.next();
        }
        assert_eq!(view.walk().count(), owned.len());
    }

    #[test]
    fn borrowed_tuple_view_decodes_push_shaped_message() {
        // The wedge-batch shape: eager scalars, then a candidate list.
        let cands: Vec<(u64, u64, u64)> = (0..16).map(|i| (i * 3, i + 1, i)).collect();
        let owned = (5u64, 9u64, "vertex-meta".to_string(), cands.clone());
        let bytes = to_bytes(&owned);
        let mut r = WireReader::new(&bytes);
        let (p, q, meta, view): (u64, u64, &str, SeqView<'_, (u64, u64, u64)>) =
            WireDecode::decode_borrowed(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!((p, q, meta), (5, 9, "vertex-meta"));
        let walked: Vec<(u64, u64, u64)> = view.walk().map(|e| e.unwrap()).collect();
        assert_eq!(walked, cands);
    }

    /// The candidate projection used by columnar tests: byte-identity
    /// between the borrowed encoder and the owned `ColBatch`.
    fn encode_cols_of(adj: &[FakeAdjEntry], buf: &mut Vec<u8>) {
        encode_columns(adj, |e| e.v, |e| e.degree, |e, b| e.em.encode(b)).encode_wire(buf);
    }

    #[test]
    fn column_seq_matches_col_batch_encoding() {
        let adj: Vec<FakeAdjEntry> = (0..40)
            .map(|i| FakeAdjEntry {
                v: hashish(i),
                degree: 100 + i * 3, // monotone, as a sorted batch's degrees are
                em: i ^ 0xff,
            })
            .collect();
        let owned = ColBatch(
            adj.iter()
                .map(|e| (e.v, e.degree, e.em))
                .collect::<Vec<_>>(),
        );
        let mut via_owned = Vec::new();
        owned.encode(&mut via_owned);
        let mut via_cols = Vec::new();
        encode_cols_of(&adj, &mut via_cols);
        assert_eq!(via_owned, via_cols);
        assert_eq!(from_bytes::<ColBatch<u64>>(&via_cols).unwrap(), owned);
    }

    #[test]
    fn columnar_beats_interleaved_on_sorted_batches() {
        // The communication claim itself: same candidates, fewer bytes,
        // because the monotone degree column delta-codes to one byte per
        // element while the interleaved layout re-pays the full varint.
        let cands: Vec<(u64, u64, u64)> =
            (0..64).map(|i| (hashish(i), 5000 + i * 7, i % 7)).collect();
        let interleaved = to_bytes(&cands);
        let columnar = to_bytes(&ColBatch(cands));
        assert!(
            columnar.len() < interleaved.len(),
            "columnar {} >= interleaved {}",
            columnar.len(),
            interleaved.len()
        );
    }

    #[test]
    fn col_batch_roundtrips_edge_cases() {
        roundtrip(ColBatch::<u64>(Vec::new()));
        roundtrip(ColBatch(vec![(7u64, 9u64, "meta".to_string())]));
        // Descending and wrapping degree sequences survive delta coding.
        roundtrip(ColBatch(vec![
            (1u64, u64::MAX, ()),
            (2, 0, ()),
            (3, 1u64 << 63, ()),
        ]));
        roundtrip(ColBatch(
            (0..300u64)
                .map(|i| (i, 300 - i, i as u8))
                .collect::<Vec<_>>(),
        ));
    }

    #[test]
    fn col_cursor_streams_what_owned_decodes() {
        let owned = ColBatch(
            (0..50u64)
                .map(|i| (hashish(i), 10 + i, format!("m{i}")))
                .collect::<Vec<_>>(),
        );
        let bytes = to_bytes(&owned);
        let mut r = WireReader::new(&bytes);
        let mut cur: ColCursor<'_, String> = ColCursor::begin(&mut r).unwrap();
        assert!(r.is_empty(), "frame fully consumed at begin");
        assert_eq!(cur.len(), 50);
        let mut got = Vec::new();
        while let Some(k) = cur.keys.next_key() {
            let k = k.unwrap();
            got.push((k.v, k.degree, cur.metas.get(k.idx).unwrap()));
        }
        assert_eq!(got, owned.0);
    }

    #[test]
    fn col_metas_skips_unmatched_and_rejects_backward_access() {
        let owned = ColBatch(
            (0..10u64)
                .map(|i| (i, i, format!("meta-{i}")))
                .collect::<Vec<_>>(),
        );
        let bytes = to_bytes(&owned);
        let mut r = WireReader::new(&bytes);
        let mut cur: ColCursor<'_, String> = ColCursor::begin(&mut r).unwrap();
        // Sparse increasing access decodes only the requested elements.
        assert_eq!(cur.metas.get(3).unwrap(), "meta-3");
        assert_eq!(cur.metas.get(7).unwrap(), "meta-7");
        assert_eq!(
            cur.metas.get(7),
            Err(WireError::InvalidValue(
                "meta column indices must be requested in increasing order",
            )),
            "repeat access rejected"
        );
        assert!(cur.metas.get(5).is_err(), "backward access rejected");
        assert_eq!(
            cur.metas.get(10),
            Err(WireError::InvalidValue("meta column index out of range")),
            "out of range rejected"
        );
    }

    #[test]
    fn col_meta_decoded_only_on_demand() {
        // A frame whose meta column is invalid UTF-8 still walks its key
        // columns cleanly; the corruption surfaces only if a meta is
        // actually requested. (Built by the adapter contract being
        // violated on purpose.)
        let mut bytes = Vec::new();
        put_varint(&mut bytes, 1); // n = 1
        write_raw_col(&mut bytes, [42u64].into_iter());
        write_delta_col(&mut bytes, [7u64].into_iter());
        let mut evil = Vec::new();
        put_varint(&mut evil, 2);
        evil.extend_from_slice(&[0xff, 0xfe]);
        put_varint(&mut bytes, evil.len() as u64);
        bytes.extend_from_slice(&evil);
        let mut r = WireReader::new(&bytes);
        let mut cur: ColCursor<'_, String> = ColCursor::begin(&mut r).unwrap();
        let k = cur.keys.next_key().unwrap().unwrap();
        assert_eq!((k.v, k.degree), (42, 7));
        assert_eq!(cur.metas.get(0), Err(WireError::InvalidUtf8));
    }

    #[test]
    fn col_view_is_reiterable() {
        let owned = ColBatch((0..20u64).map(|i| (i * 3, i + 1, i)).collect::<Vec<_>>());
        let mut buf = to_bytes(&(9u64, owned.clone()));
        buf.push(0x55);
        let mut r = WireReader::new(&buf[..buf.len() - 1]);
        let q = u64::decode(&mut r).unwrap();
        let view: ColView<'_, u64> = ColView::capture(&mut r).unwrap();
        assert_eq!(q, 9);
        assert!(r.is_empty());
        assert_eq!(view.len(), 20);
        for _pass in 0..3 {
            let mut cur = view.walk();
            let mut walked = Vec::new();
            while let Some(k) = cur.keys.next_key() {
                let k = k.unwrap();
                walked.push((k.v, k.degree, cur.metas.get(k.idx).unwrap()));
            }
            assert_eq!(walked, owned.0);
        }
        // Partial walks leave the view intact.
        {
            let mut cur = view.walk();
            cur.keys.next_key();
        }
        assert_eq!(view.walk().keys.count(), 20);
    }

    #[test]
    fn col_skip_consumes_exactly_what_decode_does() {
        let owned = ColBatch(
            (0..17u64)
                .map(|i| (i, i * i, format!("s{i}")))
                .collect::<Vec<_>>(),
        );
        let mut bytes = to_bytes(&owned);
        bytes.extend_from_slice(&[0xAA; 3]);
        let mut rd = WireReader::new(&bytes);
        ColBatch::<String>::decode(&mut rd).unwrap();
        let mut rs = WireReader::new(&bytes);
        ColBatch::<String>::skip(&mut rs).unwrap();
        assert_eq!(rd.position(), rs.position());
    }

    #[test]
    fn hostile_columnar_prefixes_rejected() {
        // Hostile element count: claims 2^60 elements, 3 bytes follow.
        let mut buf = Vec::new();
        put_varint(&mut buf, 1u64 << 60);
        buf.extend_from_slice(&[0, 0, 0]);
        assert!(matches!(
            from_bytes::<ColBatch<u64>>(&buf),
            Err(WireError::SeqOverrun { .. })
        ));
        // Hostile column byte length: vertex column claims 2^50 bytes.
        let mut buf = Vec::new();
        put_varint(&mut buf, 2); // n
        put_varint(&mut buf, 1u64 << 50);
        buf.push(1);
        assert!(matches!(
            from_bytes::<ColBatch<u64>>(&buf),
            Err(WireError::SeqOverrun { .. })
        ));
        let mut r = WireReader::new(&buf);
        assert!(matches!(
            ColCursor::<u64>::begin(&mut r),
            Err(WireError::SeqOverrun { .. })
        ));
        // Column too short for its element floor: n=4 but 2-byte column.
        let mut buf = Vec::new();
        put_varint(&mut buf, 4);
        put_varint(&mut buf, 2);
        buf.extend_from_slice(&[1, 1]);
        assert!(matches!(
            from_bytes::<ColBatch<u64>>(&buf),
            Err(WireError::SeqOverrun { .. })
        ));
        // Wide fixed-width metas tighten the meta-column floor.
        let mut buf = Vec::new();
        put_varint(&mut buf, 2); // n = 2
        put_varint(&mut buf, 2);
        buf.extend_from_slice(&[1, 1]); // vertex col
        put_varint(&mut buf, 2);
        buf.extend_from_slice(&[1, 1]); // degree col
        put_varint(&mut buf, 9); // meta col: 2 f64s need 16
        buf.extend_from_slice(&[0u8; 9]);
        assert!(matches!(
            from_bytes::<ColBatch<f64>>(&buf),
            Err(WireError::SeqOverrun { .. })
        ));
    }

    #[test]
    fn columnar_byte_budget_mismatch_rejected() {
        // A key column longer than the element count is corrupt on both
        // decode paths: the owned decode and the streaming key walk.
        let mut buf = Vec::new();
        put_varint(&mut buf, 1); // n = 1
        put_varint(&mut buf, 2);
        buf.extend_from_slice(&[1, 1]); // vertex col: TWO varints
        write_delta_col(&mut buf, [5u64].into_iter());
        write_meta_col(&mut buf, |s| 3u64.encode(s));
        assert_eq!(
            from_bytes::<ColBatch<u64>>(&buf),
            Err(WireError::InvalidValue("columnar byte budget mismatch"))
        );
        let mut r = WireReader::new(&buf);
        let mut cur: ColCursor<'_, u64> = ColCursor::begin(&mut r).unwrap();
        assert!(cur.keys.next_key().unwrap().is_err());
        assert!(cur.keys.next_key().is_none(), "errored walk is exhausted");
    }

    /// The scalar key walk is the oracle for the block walk: every
    /// frame length — in particular a remainder tail of every length
    /// `0..KEY_BLOCK_LEN` — must yield the same keys in the same order,
    /// in runs of `KEY_BLOCK_LEN` plus one tail.
    #[test]
    fn key_blocks_match_scalar_walk_for_every_tail_length() {
        for n in 0..=(2 * KEY_BLOCK_LEN + 3) {
            let batch = ColBatch::<u64>(
                (0..n as u64)
                    .map(|i| (hashish(i), 100 + i * 3, i ^ 0x5a))
                    .collect(),
            );
            let bytes = to_bytes(&batch);
            // Scalar oracle walk.
            let mut r = WireReader::new(&bytes);
            let mut cur: ColCursor<'_, u64> = ColCursor::begin(&mut r).unwrap();
            let scalar: Vec<ColKey> = (&mut cur.keys).map(|k| k.unwrap()).collect();
            // Block walk.
            let mut r = WireReader::new(&bytes);
            let mut cur: ColCursor<'_, u64> = ColCursor::begin(&mut r).unwrap();
            let mut block = KeyBlock::new();
            let mut blocked = Vec::new();
            let mut lens = Vec::new();
            while let Some(res) = cur.keys.next_block(&mut block) {
                res.unwrap();
                lens.push(block.len);
                assert_eq!(block.base, blocked.len(), "n={n}");
                for i in 0..block.len {
                    blocked.push(ColKey {
                        idx: block.base + i,
                        v: block.v[i],
                        degree: block.degree[i],
                    });
                }
            }
            assert_eq!(blocked, scalar, "n={n}");
            // Full blocks followed by exactly one remainder tail.
            let full = n / KEY_BLOCK_LEN;
            let tail = n % KEY_BLOCK_LEN;
            let mut want = vec![KEY_BLOCK_LEN; full];
            if tail > 0 {
                want.push(tail);
            }
            assert_eq!(lens, want, "n={n}");
            assert_eq!(cur.keys.remaining(), 0, "n={n}");
            assert!(cur.keys.next_block(&mut block).is_none(), "n={n}");
        }
    }

    #[test]
    fn truncated_key_block_errors_without_exposing_partial_data() {
        // n = 5 but the vertex column's 5 bytes hold only 3 varints
        // (two 2-byte encodings): the capture's byte floor passes, so
        // the corruption must surface mid-block — with the walk
        // exhausted and no partially decoded block exposed.
        let mut buf = Vec::new();
        put_varint(&mut buf, 5); // n
        put_varint(&mut buf, 5); // vertex column: 5 bytes...
        buf.extend_from_slice(&[0x80, 0x01, 0x80, 0x01, 0x01]); // ...3 varints
        write_delta_col(&mut buf, (0..5u64).map(|i| 10 + i));
        write_meta_col(&mut buf, |s| {
            for i in 0..5u64 {
                i.encode(s);
            }
        });
        let mut r = WireReader::new(&buf);
        let mut cur: ColCursor<'_, u64> = ColCursor::begin(&mut r).unwrap();
        let mut block = KeyBlock::new();
        assert!(matches!(
            cur.keys.next_block(&mut block),
            Some(Err(WireError::UnexpectedEof { .. }))
        ));
        assert_eq!(block.len, 0, "partial block must not be exposed");
        assert!(cur.keys.next_block(&mut block).is_none(), "walk exhausted");
        assert!(cur.keys.next_key().is_none(), "scalar walk exhausted too");
        // The owned reference decode rejects the same frame.
        assert!(from_bytes::<ColBatch<u64>>(&buf).is_err());
    }

    #[test]
    fn key_block_enforces_byte_budget_on_final_block() {
        // Key columns longer than the element count are corruption the
        // block walk must catch exactly where the scalar walk does: on
        // the block that consumes the final element.
        let mut buf = Vec::new();
        put_varint(&mut buf, 1); // n = 1
        put_varint(&mut buf, 2);
        buf.extend_from_slice(&[1, 1]); // vertex col: TWO varints
        write_delta_col(&mut buf, [5u64].into_iter());
        write_meta_col(&mut buf, |s| 3u64.encode(s));
        let mut r = WireReader::new(&buf);
        let mut cur: ColCursor<'_, u64> = ColCursor::begin(&mut r).unwrap();
        let mut block = KeyBlock::new();
        assert_eq!(
            cur.keys.next_block(&mut block),
            Some(Err(WireError::InvalidValue(
                "columnar byte budget mismatch"
            )))
        );
        assert_eq!(block.len, 0);
        assert!(cur.keys.next_block(&mut block).is_none());
        // A multi-block frame reports the smuggled bytes on its final
        // block, not before.
        let n = KEY_BLOCK_LEN as u64 + 7;
        let mut buf = Vec::new();
        put_varint(&mut buf, n);
        {
            // Vertex column with one trailing extra varint.
            let vals: Vec<u64> = (0..=n).collect();
            let bytes: usize = vals.iter().map(|&v| varint_len(v)).sum();
            put_varint(&mut buf, bytes as u64);
            for v in vals {
                put_varint(&mut buf, v);
            }
        }
        write_delta_col(&mut buf, (0..n).map(|i| 50 + i));
        write_meta_col(&mut buf, |s| {
            for i in 0..n {
                i.encode(s);
            }
        });
        let mut r = WireReader::new(&buf);
        let mut cur: ColCursor<'_, u64> = ColCursor::begin(&mut r).unwrap();
        let mut block = KeyBlock::new();
        assert_eq!(cur.keys.next_block(&mut block), Some(Ok(())));
        assert_eq!(block.len, KEY_BLOCK_LEN, "first block is clean");
        assert_eq!(
            cur.keys.next_block(&mut block),
            Some(Err(WireError::InvalidValue(
                "columnar byte budget mismatch"
            )))
        );
        assert!(cur.keys.next_block(&mut block).is_none());
    }

    #[test]
    fn meta_column_poisons_after_an_element_decode_error() {
        // n = 2; the meta column's bytes are a valid budget but the
        // first element is an over-long varint. The first get must
        // error, and a later get must report the poisoning instead of
        // decoding from the stranded mid-element offset.
        let mut buf = Vec::new();
        put_varint(&mut buf, 2); // n
        put_varint(&mut buf, 2);
        buf.extend_from_slice(&[1, 2]); // vertex col
        write_delta_col(&mut buf, [5u64, 6].into_iter());
        put_varint(&mut buf, 12); // meta col: 11 continuation bytes + 1
        buf.extend_from_slice(&[0xff; 11]);
        buf.push(1);
        let mut r = WireReader::new(&buf);
        let mut cur: ColCursor<'_, u64> = ColCursor::begin(&mut r).unwrap();
        assert_eq!(cur.metas.get(0), Err(WireError::VarintOverflow));
        assert_eq!(
            cur.metas.get(1),
            Err(WireError::InvalidValue(
                "meta column poisoned by an element decode error"
            ))
        );
    }

    #[test]
    fn hostile_frame_rejected_before_any_block_is_materialized() {
        // A hostile element count or column byte-length prefix must
        // fail at capture ([`SeqOverrun`]), before `next_block` can
        // even be called — no block-sized buffer is ever filled from a
        // frame that failed validation.
        let mut buf = Vec::new();
        put_varint(&mut buf, 1u64 << 60); // n beyond the buffer
        buf.extend_from_slice(&[0, 0, 0]);
        let mut r = WireReader::new(&buf);
        assert!(matches!(
            ColCursor::<u64>::begin(&mut r),
            Err(WireError::SeqOverrun { .. })
        ));
        let mut buf = Vec::new();
        put_varint(&mut buf, 2); // n = 2
        put_varint(&mut buf, 1u64 << 50); // hostile vertex-column bytes
        buf.push(1);
        let mut r = WireReader::new(&buf);
        assert!(matches!(
            ColCursor::<u64>::begin(&mut r),
            Err(WireError::SeqOverrun { .. })
        ));
    }

    #[test]
    fn seq_cursor_block_decode_matches_scalar_and_poisons() {
        // Interleaved mirror: next_block_with yields the same elements
        // as next_with, in runs of the block size plus a remainder.
        let owned: Vec<(u64, u64)> = (0..45u64).map(|i| (hashish(i), i)).collect();
        let bytes = to_bytes(&owned);
        let mut r = WireReader::new(&bytes);
        let mut cur = SeqCursor::begin_typed::<(u64, u64)>(&mut r).unwrap();
        let mut got = Vec::new();
        loop {
            let mut block: [Option<(u64, u64)>; 16] = [None; 16];
            let k = cur
                .next_block_with(&mut block, <(u64, u64)>::decode)
                .unwrap();
            if k == 0 {
                break;
            }
            assert!(k == 16 || cur.is_empty(), "only the tail is short");
            got.extend(block[..k].iter().map(|s| s.unwrap()));
        }
        assert_eq!(got, owned);
        assert!(r.is_empty(), "block walk consumed the exact extent");
        // An element error poisons the cursor: further block reads
        // yield zero and skip_rest refuses.
        let mut bad = Vec::new();
        put_varint(&mut bad, 3);
        bad.push(1); // element 0 ok
        bad.extend_from_slice(&[0xff; 11]); // element 1: varint overflow
        let mut r = WireReader::new(&bad);
        let mut cur = SeqCursor::begin_typed::<u64>(&mut r).unwrap();
        let mut block: [Option<u64>; 4] = [None; 4];
        assert!(cur.next_block_with(&mut block, u64::decode).is_err());
        assert_eq!(cur.next_block_with(&mut block, u64::decode), Ok(0));
        assert!(cur.skip_rest::<u64>().is_err(), "poisoned framing");
    }

    #[test]
    fn zero_element_frame_with_nonempty_columns_rejected_everywhere() {
        // n = 0 means there is nothing to walk, so walk-time budget
        // checks never run — the capture itself must reject smuggled
        // column bytes, identically on every decode path.
        let mut buf = Vec::new();
        put_varint(&mut buf, 0); // n = 0
        put_varint(&mut buf, 1);
        buf.push(7); // vertex column: 1 stray byte
        put_varint(&mut buf, 0);
        put_varint(&mut buf, 0);
        assert_eq!(
            from_bytes::<ColBatch<u64>>(&buf),
            Err(WireError::InvalidValue("columnar byte budget mismatch"))
        );
        let mut r = WireReader::new(&buf);
        assert!(ColCursor::<u64>::begin(&mut r).is_err());
        let mut r = WireReader::new(&buf);
        assert!(ColBatch::<u64>::skip(&mut r).is_err());
        // Stray bytes in the meta column are caught the same way.
        let mut buf = Vec::new();
        put_varint(&mut buf, 0);
        put_varint(&mut buf, 0);
        put_varint(&mut buf, 0);
        put_varint(&mut buf, 1);
        buf.push(7);
        assert!(from_bytes::<ColBatch<u64>>(&buf).is_err());
        let mut r = WireReader::new(&buf);
        assert!(ColView::<u64>::capture(&mut r).is_err());
    }

    #[test]
    fn meta_column_trailing_garbage_caught_on_final_decode() {
        // One element, but the meta column carries an extra byte: the
        // owned decode rejects, and the lazy reader rejects too once it
        // consumes the final element.
        let mut buf = Vec::new();
        put_varint(&mut buf, 1); // n = 1
        write_raw_col(&mut buf, [42u64].into_iter());
        write_delta_col(&mut buf, [7u64].into_iter());
        put_varint(&mut buf, 2); // meta column: element + 1 stray byte
        3u64.encode(&mut buf);
        buf.push(0x55);
        assert_eq!(
            from_bytes::<ColBatch<u64>>(&buf),
            Err(WireError::InvalidValue("columnar byte budget mismatch"))
        );
        let mut r = WireReader::new(&buf);
        let mut cur: ColCursor<'_, u64> = ColCursor::begin(&mut r).unwrap();
        assert!(cur.keys.next_key().unwrap().is_ok());
        assert_eq!(
            cur.metas.get(0),
            Err(WireError::InvalidValue("columnar byte budget mismatch"))
        );
    }

    #[test]
    fn columnar_zst_meta_column_roundtrips() {
        roundtrip(ColBatch(
            (0..100u64).map(|i| (i, i, ())).collect::<Vec<_>>(),
        ));
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn u64_roundtrip(v in any::<u64>()) {
                roundtrip(v);
            }

            #[test]
            fn i64_roundtrip(v in any::<i64>()) {
                roundtrip(v);
            }

            #[test]
            fn f64_roundtrip(v in any::<f64>()) {
                let bytes = to_bytes(&v);
                let back: f64 = from_bytes(&bytes).unwrap();
                prop_assert_eq!(v.to_bits(), back.to_bits());
            }

            #[test]
            fn string_roundtrip(v in ".*") {
                roundtrip(v.to_string());
            }

            #[test]
            fn vec_tuple_roundtrip(v in proptest::collection::vec((any::<u64>(), any::<u32>()), 0..64)) {
                roundtrip(v);
            }

            #[test]
            fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
                // Decoding arbitrary bytes must return Ok or Err, never panic.
                let _ = from_bytes::<Vec<(u64, String)>>(&bytes);
                let _ = from_bytes::<(u32, bool, f64)>(&bytes);
                let _ = from_bytes::<Option<Vec<u8>>>(&bytes);
            }

            #[test]
            fn varint_len_matches_encoding(v in any::<u64>()) {
                let mut buf = Vec::new();
                put_varint(&mut buf, v);
                prop_assert_eq!(buf.len(), varint_len(v));
            }

            #[test]
            fn slice_seq_identical_to_vec(v in proptest::collection::vec(any::<u64>(), 0..64)) {
                let mut via_vec = Vec::new();
                v.encode(&mut via_vec);
                let mut via_slice = Vec::new();
                SliceSeq(&v[..]).encode_wire(&mut via_slice);
                prop_assert_eq!(via_vec, via_slice);
            }

            #[test]
            fn encode_seq_identical_to_projected_vec(
                v in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..64)
            ) {
                // The borrowed projection of a candidate batch must be
                // byte-identical to the owned Vec<Candidate> it replaced.
                let mut via_vec = Vec::new();
                v.encode(&mut via_vec);
                let mut via_seq = Vec::new();
                encode_seq(&v, |c: &(u64, u64, u64), buf| {
                    c.0.encode(buf);
                    c.1.encode(buf);
                    c.2.encode(buf);
                })
                .encode_wire(&mut via_seq);
                prop_assert_eq!(&via_vec, &via_seq);
                prop_assert_eq!(from_bytes::<Vec<(u64, u64, u64)>>(&via_seq).unwrap(), v);
            }

            #[test]
            fn skip_position_matches_decode_position(
                v in proptest::collection::vec((any::<u64>(), ".*"), 0..32)
            ) {
                let bytes = to_bytes(&v);
                let mut rd = WireReader::new(&bytes);
                Vec::<(u64, String)>::decode(&mut rd).unwrap();
                let mut rs = WireReader::new(&bytes);
                Vec::<(u64, String)>::skip(&mut rs).unwrap();
                prop_assert_eq!(rd.position(), rs.position());
            }

            #[test]
            fn cursor_and_view_agree_with_owned_decode(
                v in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..64)
            ) {
                let bytes = to_bytes(&v);
                // Streaming cursor.
                let mut r = WireReader::new(&bytes);
                let mut cur = SeqCursor::begin(&mut r).unwrap();
                let mut streamed = Vec::new();
                while let Some(item) = cur.next_value::<(u64, u64, u64)>() {
                    streamed.push(item.unwrap());
                }
                prop_assert!(r.is_empty());
                prop_assert_eq!(&streamed, &v);
                // Captured view.
                let mut r = WireReader::new(&bytes);
                let view: SeqView<'_, (u64, u64, u64)> = SeqView::capture(&mut r).unwrap();
                prop_assert!(r.is_empty());
                let walked: Vec<(u64, u64, u64)> =
                    view.walk().map(|e| e.unwrap()).collect();
                prop_assert_eq!(&walked, &v);
            }

            #[test]
            fn skip_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
                let mut r = WireReader::new(&bytes);
                let _ = Vec::<(u64, String)>::skip(&mut r);
                let mut r = WireReader::new(&bytes);
                let _ = <(u32, bool, f64)>::skip(&mut r);
                let mut r = WireReader::new(&bytes);
                if let Ok(cur) = SeqCursor::begin(&mut r) {
                    let _ = cur.skip_rest::<(u64, String)>();
                }
            }

            #[test]
            fn col_batch_roundtrips(
                v in proptest::collection::vec((any::<u64>(), any::<u64>(), ".*"), 0..64)
            ) {
                // Arbitrary (unsorted, wrapping) key columns and string
                // metadata round-trip through the columnar frame.
                roundtrip(ColBatch(v.into_iter().map(|(a, b, s)| (a, b, s.to_string())).collect::<Vec<_>>()));
            }

            #[test]
            fn column_seq_identical_to_col_batch(
                v in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..64)
            ) {
                let adj: Vec<FakeAdjEntry> = v
                    .iter()
                    .map(|&(v, degree, em)| FakeAdjEntry { v, degree, em })
                    .collect();
                let mut via_owned = Vec::new();
                ColBatch(v.clone()).encode(&mut via_owned);
                let mut via_cols = Vec::new();
                encode_cols_of(&adj, &mut via_cols);
                prop_assert_eq!(&via_owned, &via_cols);
                prop_assert_eq!(from_bytes::<ColBatch<u64>>(&via_cols).unwrap().0, v);
            }

            #[test]
            fn col_cursor_agrees_with_owned_and_is_budget_exact(
                v in proptest::collection::vec((any::<u64>(), any::<u64>(), ".*"), 0..48)
            ) {
                let owned = ColBatch(
                    v.iter().map(|(a, b, s)| (*a, *b, s.to_string())).collect::<Vec<_>>(),
                );
                let mut bytes = to_bytes(&owned);
                bytes.extend_from_slice(&[0xAA; 3]); // trailing sentinel
                // Owned decode, cursor walk and skip all consume exactly
                // the encoded extent — byte-budget exact framing.
                let mut rd = WireReader::new(&bytes);
                let back = ColBatch::<String>::decode(&mut rd).unwrap();
                prop_assert_eq!(&back, &owned);
                prop_assert_eq!(rd.remaining(), 3);
                let mut rs = WireReader::new(&bytes);
                ColBatch::<String>::skip(&mut rs).unwrap();
                prop_assert_eq!(rs.position(), rd.position());
                let mut rc = WireReader::new(&bytes);
                let mut cur: ColCursor<'_, String> = ColCursor::begin(&mut rc).unwrap();
                prop_assert_eq!(rc.position(), rd.position());
                let mut walked = Vec::new();
                while let Some(k) = cur.keys.next_key() {
                    let k = k.unwrap();
                    walked.push((k.v, k.degree, cur.metas.get(k.idx).unwrap()));
                }
                prop_assert_eq!(walked, owned.0);
            }

            #[test]
            fn col_decode_never_panics_on_garbage(
                bytes in proptest::collection::vec(any::<u8>(), 0..256)
            ) {
                let _ = from_bytes::<ColBatch<u64>>(&bytes);
                let _ = from_bytes::<ColBatch<String>>(&bytes);
                let mut r = WireReader::new(&bytes);
                let _ = ColBatch::<u64>::skip(&mut r);
                let mut r = WireReader::new(&bytes);
                if let Ok(mut cur) = ColCursor::<String>::begin(&mut r) {
                    while let Some(k) = cur.keys.next_key() {
                        let Ok(k) = k else { break };
                        let _ = cur.metas.get(k.idx);
                    }
                }
            }

            #[test]
            fn borrowed_push_message_identical_to_owned(
                p in any::<u64>(),
                q in any::<u64>(),
                meta in ".*",
                cands in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..32)
            ) {
                // Shape of a full wedge-batch message, owned vs borrowed.
                let owned = (p, q, meta.clone(), cands.clone());
                let mut via_owned = Vec::new();
                owned.encode(&mut via_owned);
                let mut via_borrowed = Vec::new();
                (p, q, &meta, encode_seq(&cands, |c: &(u64, u64), buf| {
                    c.0.encode(buf);
                    c.1.encode(buf);
                }))
                .encode_wire(&mut via_borrowed);
                prop_assert_eq!(via_owned, via_borrowed);
            }
        }
    }
}
