//! Compact binary wire format for active-message payloads.
//!
//! The C++ TriPoll prototype relies on the `cereal` serialization library to
//! move heterogeneous, variable-length payloads (strings, STL containers,
//! user structs) through MPI without padding. This module is the Rust
//! equivalent: a small, self-contained codec with
//!
//! * LEB128 varints for unsigned integers (so small vertex ids and counts
//!   cost one byte on the wire, which matters when the whole point of the
//!   evaluation is communication volume),
//! * zigzag encoding for signed integers,
//! * little-endian bit patterns for floats,
//! * length-prefixed strings, vectors and maps,
//! * tuples up to arity four.
//!
//! Every type that crosses a rank boundary implements [`Wire`]. Encoding
//! appends to a caller-supplied buffer (so per-destination send buffers are
//! filled without intermediate allocations); decoding reads from a
//! [`WireReader`] cursor and is fully checked — a truncated or corrupt
//! buffer yields [`WireError`], never undefined behaviour.
//!
//! # Encode-once sends: the borrowed half of the codec
//!
//! [`Wire`] requires an owned value, which forces a sender that holds its
//! payload scattered across graph storage (an adjacency slice, a metadata
//! field behind a reference) to first materialize an owned message — the
//! `O(d²)` per-vertex `Vec` + clone churn the TriPoll hot path used to
//! pay. [`WireEncode`] is the write-only, borrowed counterpart: anything
//! implementing it can append a wire image **byte-identical** to some
//! `Wire` type's encoding, straight from borrowed data.
//!
//! * references `&T` to any `T: Wire` encode as `T` does;
//! * owned primitives encode as themselves (so mixed tuples work);
//! * tuples of `WireEncode` values encode like tuples of the owned types;
//! * [`SliceSeq`] encodes a `&[T]` byte-identically to `Vec<T>`;
//! * [`encode_seq`] encodes a *projection* of a slice byte-identically to
//!   `Vec<U>` without materializing any `U` — each element writes its
//!   fields through a closure.
//!
//! A handler registered for `M: Wire` can therefore be fed by
//! `Comm::send_encoded` / `Comm::send_to_many` with a `WireEncode` value
//! whose byte image matches `M`; the byte-identity contract is checked by
//! the property tests in this module. This is what lets a wedge-batch
//! suffix serialize directly from `Adjm+(p)` storage, and lets one
//! encoded adjacency projection fan out to many ranks as a memcpy.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasher, Hash};

/// Errors produced while decoding a wire buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The reader ran out of bytes mid-value.
    UnexpectedEof {
        /// Bytes that were needed to finish the value.
        needed: usize,
        /// Bytes that remained in the buffer.
        remaining: usize,
    },
    /// A varint ran longer than the maximum encodable width.
    VarintOverflow,
    /// A length prefix or discriminant had an impossible value.
    InvalidValue(&'static str),
    /// A string payload was not valid UTF-8.
    InvalidUtf8,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of wire buffer: needed {needed} bytes, {remaining} remaining"
            ),
            WireError::VarintOverflow => write!(f, "varint exceeded 64 bits"),
            WireError::InvalidValue(what) => write!(f, "invalid wire value: {what}"),
            WireError::InvalidUtf8 => write!(f, "string payload is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

/// Checked cursor over a received byte buffer.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Creates a reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current read offset from the start of the buffer.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Consumes and returns exactly `n` bytes.
    #[inline]
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Consumes a single byte.
    #[inline]
    pub fn take_u8(&mut self) -> Result<u8, WireError> {
        if self.remaining() < 1 {
            return Err(WireError::UnexpectedEof {
                needed: 1,
                remaining: 0,
            });
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(b)
    }

    /// Decodes an LEB128 varint of at most 64 bits.
    #[inline]
    pub fn take_varint(&mut self) -> Result<u64, WireError> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.take_u8()?;
            if shift == 63 && byte > 1 {
                return Err(WireError::VarintOverflow);
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::VarintOverflow);
            }
        }
    }
}

/// Appends an LEB128 varint to `buf`.
#[inline]
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Number of bytes [`put_varint`] will emit for `v`.
#[inline]
pub fn varint_len(v: u64) -> usize {
    // 1 + floor(bits/7); bits==0 for v==0 still needs one byte.
    let bits = 64 - v.leading_zeros() as usize;
    std::cmp::max(1, bits.div_ceil(7))
}

#[inline]
fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Types that can cross a rank boundary.
///
/// The contract is symmetric: `decode(encode(x)) == x` and decode consumes
/// exactly the bytes encode produced. The proptest suite in this module
/// checks both properties for every implementation.
pub trait Wire: Sized {
    /// Appends the encoded representation to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Reads one value from `r`.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

impl Wire for () {
    #[inline]
    fn encode(&self, _buf: &mut Vec<u8>) {}
    #[inline]
    fn decode(_r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

impl Wire for bool {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
    #[inline]
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::InvalidValue("bool discriminant")),
        }
    }
}

impl Wire for u8 {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self);
    }
    #[inline]
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.take_u8()
    }
}

macro_rules! impl_wire_varint {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            #[inline]
            fn encode(&self, buf: &mut Vec<u8>) {
                put_varint(buf, *self as u64);
            }
            #[inline]
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                let v = r.take_varint()?;
                <$t>::try_from(v).map_err(|_| WireError::InvalidValue(stringify!($t)))
            }
        }
    )*};
}

impl_wire_varint!(u16, u32, u64, usize);

macro_rules! impl_wire_zigzag {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            #[inline]
            fn encode(&self, buf: &mut Vec<u8>) {
                put_varint(buf, zigzag_encode(*self as i64));
            }
            #[inline]
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                let v = zigzag_decode(r.take_varint()?);
                <$t>::try_from(v).map_err(|_| WireError::InvalidValue(stringify!($t)))
            }
        }
    )*};
}

impl_wire_zigzag!(i8, i16, i32, i64, isize);

impl Wire for f32 {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    #[inline]
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let b = r.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

impl Wire for f64 {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    #[inline]
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let b = r.take(8)?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

impl Wire for String {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.len() as u64);
        buf.extend_from_slice(self.as_bytes());
    }
    #[inline]
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.take_varint()? as usize;
        let bytes = r.take(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| WireError::InvalidUtf8)
    }
}

impl<T: Wire> Wire for Option<T> {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    #[inline]
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(WireError::InvalidValue("Option discriminant")),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }
    #[inline]
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.take_varint()? as usize;
        // Guard against hostile length prefixes: never pre-reserve more
        // entries than bytes remaining (each entry costs >= 1 byte).
        let mut out = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<K, V, S> Wire for HashMap<K, V, S>
where
    K: Wire + Eq + Hash,
    V: Wire,
    S: BuildHasher + Default,
{
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.len() as u64);
        for (k, v) in self {
            k.encode(buf);
            v.encode(buf);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.take_varint()? as usize;
        let mut out = HashMap::with_capacity_and_hasher(len.min(r.remaining()), S::default());
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

macro_rules! impl_wire_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            #[inline]
            fn encode(&self, buf: &mut Vec<u8>) {
                $(self.$idx.encode(buf);)+
            }
            #[inline]
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                Ok(($($name::decode(r)?,)+))
            }
        }
    };
}

impl_wire_tuple!(A: 0);
impl_wire_tuple!(A: 0, B: 1);
impl_wire_tuple!(A: 0, B: 1, C: 2);
impl_wire_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_wire_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_wire_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Write-only, borrowed wire encoding (see the module docs).
///
/// Implementors append bytes that are **byte-identical** to the
/// [`Wire::encode`] output of some owned message type; the receiving
/// handler decodes with that owned type's [`Wire::decode`]. The codec
/// itself guarantees the identity for the impls in this module; adapter
/// closures passed to [`encode_seq`] must uphold it for their element
/// projection (encode exactly the fields, in order, that the owned
/// element type encodes).
pub trait WireEncode {
    /// Appends the wire image to `buf`.
    fn encode_wire(&self, buf: &mut Vec<u8>);
}

/// A reference encodes exactly as its referent.
impl<T: Wire> WireEncode for &T {
    #[inline]
    fn encode_wire(&self, buf: &mut Vec<u8>) {
        (*self).encode(buf);
    }
}

macro_rules! impl_wire_encode_owned {
    ($($t:ty),*) => {$(
        impl WireEncode for $t {
            #[inline]
            fn encode_wire(&self, buf: &mut Vec<u8>) {
                self.encode(buf);
            }
        }
    )*};
}

impl_wire_encode_owned!(
    (),
    bool,
    u8,
    u16,
    u32,
    u64,
    usize,
    i8,
    i16,
    i32,
    i64,
    isize,
    f32,
    f64
);

macro_rules! impl_wire_encode_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: WireEncode),+> WireEncode for ($($name,)+) {
            #[inline]
            fn encode_wire(&self, buf: &mut Vec<u8>) {
                $(self.$idx.encode_wire(buf);)+
            }
        }
    };
}

impl_wire_encode_tuple!(A: 0);
impl_wire_encode_tuple!(A: 0, B: 1);
impl_wire_encode_tuple!(A: 0, B: 1, C: 2);
impl_wire_encode_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_wire_encode_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_wire_encode_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Encodes a borrowed slice byte-identically to `Vec<T>`: length varint,
/// then each element.
pub struct SliceSeq<'a, T>(pub &'a [T]);

impl<T: Wire> WireEncode for SliceSeq<'_, T> {
    #[inline]
    fn encode_wire(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.0.len() as u64);
        for item in self.0 {
            item.encode(buf);
        }
    }
}

/// Encodes a projection of a borrowed slice byte-identically to the
/// `Vec` of projected elements, without materializing any of them.
///
/// `write` receives each source element and the output buffer, and must
/// append exactly the bytes the projected element type would encode —
/// e.g. for a candidate `(v, degree, meta)` projection of an adjacency
/// entry: `e.v.encode(buf); e.key.degree.encode(buf); e.em.encode(buf)`.
pub struct EncodeSeq<'a, T, F> {
    items: &'a [T],
    write: F,
}

/// Builds an [`EncodeSeq`] over `items`.
pub fn encode_seq<T, F: Fn(&T, &mut Vec<u8>)>(items: &[T], write: F) -> EncodeSeq<'_, T, F> {
    EncodeSeq { items, write }
}

impl<T, F: Fn(&T, &mut Vec<u8>)> WireEncode for EncodeSeq<'_, T, F> {
    #[inline]
    fn encode_wire(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.items.len() as u64);
        for item in self.items {
            (self.write)(item, buf);
        }
    }
}

/// Convenience: encode a value into a fresh buffer.
pub fn to_bytes<T: Wire>(value: &T) -> Vec<u8> {
    let mut buf = Vec::new();
    value.encode(&mut buf);
    buf
}

/// Convenience: decode a value that must consume the whole buffer.
pub fn from_bytes<T: Wire>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = WireReader::new(bytes);
    let v = T::decode(&mut r)?;
    if !r.is_empty() {
        return Err(WireError::InvalidValue("trailing bytes after value"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v);
        let back: T = from_bytes(&bytes).expect("decode");
        assert_eq!(v, back);
    }

    #[test]
    fn varint_small_values_are_one_byte() {
        for v in 0..128u64 {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), 1, "value {v}");
            assert_eq!(varint_len(v), 1);
        }
    }

    #[test]
    fn varint_boundaries() {
        for (v, len) in [
            (0u64, 1),
            (127, 1),
            (128, 2),
            (16_383, 2),
            (16_384, 3),
            (u32::MAX as u64, 5),
            (u64::MAX, 10),
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), len, "value {v}");
            assert_eq!(varint_len(v), len, "varint_len({v})");
            let mut r = WireReader::new(&buf);
            assert_eq!(r.take_varint().unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn varint_overflow_detected() {
        // Eleven continuation bytes can never be a valid 64-bit varint.
        let buf = [0xffu8; 11];
        let mut r = WireReader::new(&buf);
        assert_eq!(r.take_varint(), Err(WireError::VarintOverflow));
    }

    #[test]
    fn truncated_buffer_is_an_error() {
        let bytes = to_bytes(&"hello".to_string());
        let mut r = WireReader::new(&bytes[..3]);
        assert!(matches!(
            String::decode(&mut r),
            Err(WireError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(());
        roundtrip(true);
        roundtrip(false);
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u16::MAX);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX);
        roundtrip(i8::MIN);
        roundtrip(i16::MIN);
        roundtrip(i32::MIN);
        roundtrip(i64::MIN);
        roundtrip(-1i64);
        roundtrip(isize::MIN);
        roundtrip(std::f32::consts::E);
        roundtrip(std::f64::consts::PI);
        roundtrip(f64::NEG_INFINITY);
    }

    #[test]
    fn zigzag_keeps_small_magnitudes_small() {
        for v in [-64i64, -1, 0, 1, 63] {
            let mut buf = Vec::new();
            v.encode(&mut buf);
            assert_eq!(buf.len(), 1, "value {v}");
        }
    }

    #[test]
    fn string_roundtrips() {
        roundtrip(String::new());
        roundtrip("amazon.example".to_string());
        roundtrip("ünïcödé 🎉 strings".to_string());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(from_bytes::<String>(&buf), Err(WireError::InvalidUtf8));
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(Vec::<u64>::new());
        roundtrip(vec![1u64, 128, 16_384, u64::MAX]);
        roundtrip(vec!["a".to_string(), String::new(), "ccc".to_string()]);
        roundtrip(Some(42u32));
        roundtrip(Option::<u32>::None);
        let mut m = HashMap::new();
        m.insert("host".to_string(), 3u64);
        m.insert("edge".to_string(), 0);
        roundtrip(m);
    }

    #[test]
    fn tuple_roundtrips() {
        roundtrip((1u64,));
        roundtrip((1u64, "x".to_string()));
        roundtrip((1u64, 2u32, 3u16));
        roundtrip((1u64, 2u32, 3u16, true));
        roundtrip((1u64, 2u32, 3u16, true, 2.5f64));
        roundtrip((1u64, 2u32, 3u16, true, 2.5f64, -7i32));
    }

    #[test]
    fn nested_containers() {
        roundtrip(vec![vec![1u32, 2], vec![], vec![3]]);
        roundtrip(vec![(1u64, "a".to_string()), (2, "b".to_string())]);
        roundtrip(Some(vec![(0u64, None), (1, Some(9u8))]));
    }

    #[test]
    fn hostile_length_prefix_does_not_allocate() {
        // Length prefix claims 2^60 elements but only a few bytes follow.
        let mut buf = Vec::new();
        put_varint(&mut buf, 1u64 << 60);
        buf.push(1);
        assert!(from_bytes::<Vec<u64>>(&buf).is_err());
    }

    #[test]
    fn from_bytes_rejects_trailing_garbage() {
        let mut bytes = to_bytes(&7u64);
        bytes.push(0);
        assert!(from_bytes::<u64>(&bytes).is_err());
    }

    #[test]
    fn bool_bad_discriminant() {
        assert!(from_bytes::<bool>(&[2]).is_err());
    }

    /// A stand-in for graph storage: the borrowed encoders must be able
    /// to serialize a projection of this without materializing tuples.
    struct FakeAdjEntry {
        v: u64,
        degree: u64,
        em: u64,
    }

    #[test]
    fn slice_seq_matches_vec_encoding() {
        let owned: Vec<u64> = vec![0, 1, 127, 128, 16_384, u64::MAX];
        let mut via_vec = Vec::new();
        owned.encode(&mut via_vec);
        let mut via_slice = Vec::new();
        SliceSeq(&owned[..]).encode_wire(&mut via_slice);
        assert_eq!(via_vec, via_slice);
    }

    #[test]
    fn encode_seq_matches_projected_vec_encoding() {
        let adj: Vec<FakeAdjEntry> = (0..20)
            .map(|i| FakeAdjEntry {
                v: i * 1000,
                degree: i,
                em: i ^ 0xff,
            })
            .collect();
        // Old path: materialize the candidate vector, encode it.
        let candidates: Vec<(u64, u64, u64)> = adj.iter().map(|e| (e.v, e.degree, e.em)).collect();
        let mut via_vec = Vec::new();
        candidates.encode(&mut via_vec);
        // New path: stream straight from the borrowed entries.
        let mut via_seq = Vec::new();
        encode_seq(&adj, |e: &FakeAdjEntry, buf| {
            e.v.encode(buf);
            e.degree.encode(buf);
            e.em.encode(buf);
        })
        .encode_wire(&mut via_seq);
        assert_eq!(via_vec, via_seq);
        // And the bytes decode back through the owned type.
        assert_eq!(
            from_bytes::<Vec<(u64, u64, u64)>>(&via_seq).unwrap(),
            candidates
        );
    }

    #[test]
    fn borrowed_tuple_matches_owned_tuple_encoding() {
        let meta = "edge-meta".to_string();
        let owned = (7u64, 9u64, meta.clone(), true);
        let mut via_owned = Vec::new();
        owned.encode(&mut via_owned);
        let mut via_borrowed = Vec::new();
        (7u64, 9u64, &meta, true).encode_wire(&mut via_borrowed);
        assert_eq!(via_owned, via_borrowed);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn u64_roundtrip(v in any::<u64>()) {
                roundtrip(v);
            }

            #[test]
            fn i64_roundtrip(v in any::<i64>()) {
                roundtrip(v);
            }

            #[test]
            fn f64_roundtrip(v in any::<f64>()) {
                let bytes = to_bytes(&v);
                let back: f64 = from_bytes(&bytes).unwrap();
                prop_assert_eq!(v.to_bits(), back.to_bits());
            }

            #[test]
            fn string_roundtrip(v in ".*") {
                roundtrip(v.to_string());
            }

            #[test]
            fn vec_tuple_roundtrip(v in proptest::collection::vec((any::<u64>(), any::<u32>()), 0..64)) {
                roundtrip(v);
            }

            #[test]
            fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
                // Decoding arbitrary bytes must return Ok or Err, never panic.
                let _ = from_bytes::<Vec<(u64, String)>>(&bytes);
                let _ = from_bytes::<(u32, bool, f64)>(&bytes);
                let _ = from_bytes::<Option<Vec<u8>>>(&bytes);
            }

            #[test]
            fn varint_len_matches_encoding(v in any::<u64>()) {
                let mut buf = Vec::new();
                put_varint(&mut buf, v);
                prop_assert_eq!(buf.len(), varint_len(v));
            }

            #[test]
            fn slice_seq_identical_to_vec(v in proptest::collection::vec(any::<u64>(), 0..64)) {
                let mut via_vec = Vec::new();
                v.encode(&mut via_vec);
                let mut via_slice = Vec::new();
                SliceSeq(&v[..]).encode_wire(&mut via_slice);
                prop_assert_eq!(via_vec, via_slice);
            }

            #[test]
            fn encode_seq_identical_to_projected_vec(
                v in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..64)
            ) {
                // The borrowed projection of a candidate batch must be
                // byte-identical to the owned Vec<Candidate> it replaced.
                let mut via_vec = Vec::new();
                v.encode(&mut via_vec);
                let mut via_seq = Vec::new();
                encode_seq(&v, |c: &(u64, u64, u64), buf| {
                    c.0.encode(buf);
                    c.1.encode(buf);
                    c.2.encode(buf);
                })
                .encode_wire(&mut via_seq);
                prop_assert_eq!(&via_vec, &via_seq);
                prop_assert_eq!(from_bytes::<Vec<(u64, u64, u64)>>(&via_seq).unwrap(), v);
            }

            #[test]
            fn borrowed_push_message_identical_to_owned(
                p in any::<u64>(),
                q in any::<u64>(),
                meta in ".*",
                cands in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..32)
            ) {
                // Shape of a full wedge-batch message, owned vs borrowed.
                let owned = (p, q, meta.clone(), cands.clone());
                let mut via_owned = Vec::new();
                owned.encode(&mut via_owned);
                let mut via_borrowed = Vec::new();
                (p, q, &meta, encode_seq(&cands, |c: &(u64, u64), buf| {
                    c.0.encode(buf);
                    c.1.encode(buf);
                }))
                .encode_wire(&mut via_borrowed);
                prop_assert_eq!(via_owned, via_borrowed);
            }
        }
    }
}
