//! Network cost model: turning measured communication into modeled
//! distributed runtimes.
//!
//! The simulated runtime measures *exactly* what each rank sends (records,
//! envelopes, bytes — see [`crate::stats`]). Wall-clock on a many-threads/
//! few-cores development box cannot exhibit the scaling behaviour of a
//! 256-node InfiniBand cluster, so the experiment harness combines the
//! measured counters with a classic α-β (latency–bandwidth) model:
//!
//! ```text
//! t_rank = handlers·γ  +  envelopes·α  +  bytes/β
//! t_phase = max over ranks of t_rank        (bulk-synchronous bound)
//! ```
//!
//! * `α` — per-message overhead (MPI header, handshake, injection). This is
//!   the term YGM's buffering exists to amortize (§4.1.1).
//! * `β` — link bandwidth in bytes/second.
//! * `γ` — per-record handler cost, standing in for the merge-path compute.
//!
//! Defaults approximate the paper's Catalyst cluster (QDR InfiniBand:
//! ~32 Gbit/s ≈ 4 GB/s per node, ~1.3 µs MPI latency). The *absolute*
//! numbers are not meaningful — the *ratios* between algorithm variants
//! and rank counts are, which is what the paper's figures report.

use crate::stats::CommStats;

/// α-β-γ network/compute cost model.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Seconds of fixed overhead per envelope (MPI message), `α`.
    pub latency_per_message: f64,
    /// Link bandwidth in bytes per second, `β`.
    pub bandwidth_bytes_per_sec: f64,
    /// Seconds of compute per delivered record (handler execution), `γ`.
    pub per_record_cost: f64,
    /// Seconds per application work unit (one wedge-check comparison).
    pub per_work_unit: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::catalyst_like()
    }
}

impl CostModel {
    /// Parameters loosely resembling one Catalyst node (QDR InfiniBand).
    pub fn catalyst_like() -> Self {
        CostModel {
            latency_per_message: 1.3e-6,
            bandwidth_bytes_per_sec: 4.0e9,
            per_record_cost: 2.0e-8,
            per_work_unit: 5.0e-9,
        }
    }

    /// The latency–bandwidth product `α·β` in bytes: the envelope size
    /// at which per-message overhead and wire time break even. Buffers
    /// below this waste `α`; the flush threshold should sit at or above
    /// it.
    pub fn latency_bandwidth_product(&self) -> usize {
        (self.latency_per_message * self.bandwidth_bytes_per_sec) as usize
    }

    /// The adaptive flush threshold for *remote* destinations in a world
    /// of `nranks` ranks at `ranks_per_node` ranks per simulated compute
    /// node (the resolution of [`crate::CommConfig`]'s
    /// `flush_threshold: None`).
    ///
    /// Rationale: a fixed phase volume splits across more destination
    /// buffers as the world grows, so each buffer fills slower and a
    /// fixed threshold degenerates into the §5.4 small-message blowup.
    /// With node aggregation, envelopes coalesce per *node* (one bundle
    /// per remote node), so the count that must stay flat scales with
    /// the node count, not the rank count — scaling by `nranks` at
    /// rpn > 1 would over-buffer by the node width. The threshold is
    /// floored at the `α·β` break-even (never below the tiny-world
    /// 8 KiB default) and capped at 1 MiB — the order of YGM's
    /// real-cluster buffers — so per-rank buffer memory stays bounded.
    pub fn adaptive_flush_threshold(&self, nranks: usize, ranks_per_node: usize) -> usize {
        let nnodes = nranks.max(1).div_ceil(ranks_per_node.max(1));
        let per_node = self.latency_bandwidth_product().saturating_mul(nnodes);
        per_node.clamp(8 * 1024, 1 << 20)
    }

    /// The flush threshold for *same-node* destinations (self-sends and
    /// intra-node peers under aggregation). These cost no `α`, so there
    /// is nothing to amortize by deep buffering — a shallow threshold
    /// (a quarter of the `α·β` break-even, clamped to [2 KiB, 64 KiB])
    /// delivers records to local handlers sooner and keeps resident
    /// buffer memory low without changing modeled network time at all.
    pub fn local_flush_threshold(&self) -> usize {
        (self.latency_bandwidth_product() / 4).clamp(2 * 1024, 64 * 1024)
    }

    /// Modeled time for one rank's traffic.
    pub fn rank_time(&self, stats: &CommStats) -> f64 {
        let msgs = stats.envelopes_remote as f64;
        let bytes = stats.bytes_remote as f64;
        // Local records still execute handlers; local bytes skip the wire.
        let records = (stats.handlers_run) as f64;
        msgs * self.latency_per_message
            + bytes / self.bandwidth_bytes_per_sec
            + records * self.per_record_cost
            + stats.work as f64 * self.per_work_unit
    }

    /// Modeled time for a bulk-synchronous phase: the slowest rank bounds
    /// the phase (everyone waits at the barrier).
    pub fn phase_time(&self, per_rank: &[CommStats]) -> f64 {
        per_rank
            .iter()
            .map(|s| self.rank_time(s))
            .fold(0.0, f64::max)
    }

    /// Modeled time for a phase given per-rank deltas of two snapshots.
    pub fn phase_time_delta(&self, before: &[CommStats], after: &[CommStats]) -> f64 {
        assert_eq!(before.len(), after.len());
        after
            .iter()
            .zip(before.iter())
            .map(|(a, b)| self.rank_time(&a.delta(b)))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(envelopes: u64, bytes: u64, handlers: u64) -> CommStats {
        CommStats {
            envelopes_remote: envelopes,
            bytes_remote: bytes,
            handlers_run: handlers,
            ..Default::default()
        }
    }

    #[test]
    fn rank_time_components() {
        let m = CostModel {
            latency_per_message: 1.0,
            bandwidth_bytes_per_sec: 10.0,
            per_record_cost: 0.5,
            per_work_unit: 0.0,
        };
        // 2 messages (2s) + 20 bytes (2s) + 4 records (2s) = 6s.
        let t = m.rank_time(&stats(2, 20, 4));
        assert!((t - 6.0).abs() < 1e-12, "t={t}");
    }

    #[test]
    fn phase_time_is_max_over_ranks() {
        let m = CostModel {
            latency_per_message: 0.0,
            bandwidth_bytes_per_sec: 1.0,
            per_record_cost: 0.0,
            per_work_unit: 0.0,
        };
        let ranks = vec![stats(0, 5, 0), stats(0, 50, 0), stats(0, 7, 0)];
        assert!((m.phase_time(&ranks) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn buffering_reduces_modeled_time() {
        // Same bytes, fewer envelopes → strictly cheaper under the model.
        let m = CostModel::catalyst_like();
        let unbuffered = stats(1_000_000, 8_000_000, 1_000_000);
        let buffered = stats(1_000, 8_000_000, 1_000_000);
        assert!(m.rank_time(&buffered) < m.rank_time(&unbuffered));
    }

    #[test]
    fn adaptive_threshold_scales_and_clamps() {
        let m = CostModel::catalyst_like();
        // Catalyst-like α·β ≈ 5.2 KB, so tiny worlds sit on the 8 KiB floor.
        assert_eq!(m.adaptive_flush_threshold(0, 1), 8 * 1024);
        assert_eq!(m.adaptive_flush_threshold(1, 1), 8 * 1024);
        // Growth is monotone in the rank count...
        let mut last = 0;
        for nranks in [2, 4, 16, 64, 256, 4096] {
            let t = m.adaptive_flush_threshold(nranks, 1);
            assert!(t >= last, "threshold shrank at nranks={nranks}");
            last = t;
        }
        // ...tracks α·β·nranks in the mid range...
        let t4 = m.adaptive_flush_threshold(4, 1);
        assert_eq!(t4, m.latency_bandwidth_product() * 4);
        // ...and caps at the 1 MiB buffer bound.
        assert_eq!(m.adaptive_flush_threshold(1 << 20, 1), 1 << 20);
    }

    #[test]
    fn adaptive_threshold_scales_with_nodes_not_ranks() {
        let m = CostModel::catalyst_like();
        // With node aggregation, envelopes coalesce per node: 64 ranks at
        // 4 per node behave like 16 single-rank nodes.
        assert_eq!(
            m.adaptive_flush_threshold(64, 4),
            m.adaptive_flush_threshold(16, 1)
        );
        // A partial last node still counts as a node.
        assert_eq!(
            m.adaptive_flush_threshold(7, 3),
            m.adaptive_flush_threshold(3, 1)
        );
        // rpn <= 1 (or 0) degenerates to the per-rank scaling.
        assert_eq!(
            m.adaptive_flush_threshold(64, 0),
            m.adaptive_flush_threshold(64, 1)
        );
        // Wider nodes never raise the threshold.
        for rpn in [1usize, 2, 4, 8, 24] {
            assert!(m.adaptive_flush_threshold(256, rpn) <= m.adaptive_flush_threshold(256, 1));
        }
    }

    #[test]
    fn local_threshold_is_shallow_and_clamped() {
        let m = CostModel::catalyst_like();
        let local = m.local_flush_threshold();
        // Local flushes pay no α: threshold sits well below the remote one.
        assert!(local < m.adaptive_flush_threshold(1, 1));
        assert!((2 * 1024..=64 * 1024).contains(&local));
        // A degenerate model still yields a usable threshold.
        let zero = CostModel {
            latency_per_message: 0.0,
            bandwidth_bytes_per_sec: 1.0,
            per_record_cost: 0.0,
            per_work_unit: 0.0,
        };
        assert_eq!(zero.local_flush_threshold(), 2 * 1024);
    }

    #[test]
    fn delta_phase_time() {
        let m = CostModel {
            latency_per_message: 0.0,
            bandwidth_bytes_per_sec: 1.0,
            per_record_cost: 0.0,
            per_work_unit: 0.0,
        };
        let before = vec![stats(0, 100, 0), stats(0, 100, 0)];
        let after = vec![stats(0, 160, 0), stats(0, 130, 0)];
        assert!((m.phase_time_delta(&before, &after) - 60.0).abs() < 1e-12);
    }
}
