//! Overlapped transport: a double-buffered drain stage that moves the
//! channel handoff of [`crate::Comm`]'s `ship()` off the encode path.
//!
//! Without overlap, every buffer flush performs the transport send
//! inline: encode stalls while the envelope is injected. [`DrainStage`]
//! decouples the two — the encode path appends `(dest, envelope)` pairs
//! to a staged batch under a mutex and returns immediately, while a
//! dedicated transport worker swaps the staged batch for its own empty
//! one (double buffering: the two `Vec`s alternate roles, so steady
//! state allocates nothing) and performs the sends outside the lock.
//! Encode and transport pipeline instead of serializing, which is the
//! async-flush half of the paper's §5.4 comm-layer scaling.
//!
//! ## Quiescence contract
//!
//! The stage is invisible to the quiescence protocol by construction:
//! the comm layer calls `record_sent` *before* an envelope becomes
//! visible to anyone (see `send_encoded`), so while an envelope sits in
//! the stage the pending counter is already positive and no barrier can
//! release. The stage's own `in_flight` counter exists for the *drop*
//! path: `Comm` teardown must not destroy the receiving channels while
//! the worker still holds envelopes, so it shuts the stage down and
//! joins the worker, which drains everything first ([`DrainStage::shutdown`]
//! never drops queued items). The AcqRel increment/decrement pair makes
//! [`DrainStage::is_idle`] a real synchronization point: observing
//! `in_flight == 0` happens-after every completed send.
//!
//! All shared state routes through the `tripoll-sync` facade, so the
//! whole protocol is bounded-exhaustively model-checked under
//! `--cfg tripoll_model` (`crates/core/tests/model.rs`), including a
//! quiescence-with-in-flight-transport interleaving.

use tripoll_sync::atomic::{AtomicUsize, Ordering};
use tripoll_sync::thread::yield_now;
use tripoll_sync::{Condvar, Mutex};

/// The staged batch plus the shutdown flag, guarded by one mutex.
struct StageState<T> {
    batch: Vec<T>,
    shutdown: bool,
}

/// A double-buffered producer/consumer stage: producers [`DrainStage::push`]
/// items, one transport worker loops in [`DrainStage::worker_loop`]
/// swapping the staged batch out and delivering it outside the lock.
/// See the module docs for the protocol and its quiescence argument.
pub struct DrainStage<T> {
    state: Mutex<StageState<T>>,
    ready: Condvar,
    /// Items pushed but not yet delivered by the worker. Incremented
    /// *before* an item becomes visible in the batch (mirroring the
    /// quiescence pending counter), decremented after its delivery
    /// closure returns; AcqRel on both sides so an `is_idle() == true`
    /// observer is ordered after every delivery's effects.
    in_flight: AtomicUsize,
}

impl<T> Default for DrainStage<T> {
    fn default() -> Self {
        DrainStage::new()
    }
}

impl<T> DrainStage<T> {
    /// An empty stage with no worker attached; the owner spawns the
    /// worker thread itself and points it at [`DrainStage::worker_loop`].
    pub fn new() -> Self {
        DrainStage {
            state: Mutex::new(StageState {
                batch: Vec::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
            in_flight: AtomicUsize::new(0),
        }
    }

    /// Stages one item for the transport worker and returns immediately.
    ///
    /// The in-flight count is raised *before* the item becomes visible
    /// so no observer can see an empty stage (`is_idle`) while the item
    /// exists but is uncounted.
    pub fn push(&self, item: T) {
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        let mut st = self.state.lock().unwrap();
        st.batch.push(item);
        drop(st);
        self.ready.notify_one();
    }

    /// The transport worker's body: parks until items are staged, swaps
    /// the whole batch out under the lock, delivers each item via
    /// `send` *outside* the lock, and repeats. Returns only when
    /// [`DrainStage::shutdown`] has been called *and* the stage is
    /// empty — queued items are always delivered, never dropped.
    pub fn worker_loop(&self, mut send: impl FnMut(T)) {
        // The worker's spare vec and the staged batch alternate roles;
        // steady state allocates nothing.
        let mut local: Vec<T> = Vec::new();
        loop {
            {
                let mut st = self.state.lock().unwrap();
                while st.batch.is_empty() && !st.shutdown {
                    st = self.ready.wait(st).unwrap();
                }
                if st.batch.is_empty() {
                    return; // shutdown with nothing left to drain
                }
                std::mem::swap(&mut st.batch, &mut local);
            }
            for item in local.drain(..) {
                send(item);
                self.in_flight.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }

    /// Tells the worker to exit once the stage is drained. Items staged
    /// before (or even after) this call are still delivered.
    pub fn shutdown(&self) {
        let mut st = self.state.lock().unwrap();
        st.shutdown = true;
        drop(st);
        self.ready.notify_all();
    }

    /// True when every pushed item has been delivered. An `is_idle()`
    /// observation is ordered after the effects of all those deliveries
    /// (Acquire pairing with the worker's AcqRel decrements).
    pub fn is_idle(&self) -> bool {
        self.in_flight.load(Ordering::Acquire) == 0
    }

    /// Spin-yields until the stage is idle. Used only on teardown and
    /// in tests — the barrier path never needs it (see the module docs'
    /// quiescence argument).
    pub fn wait_idle(&self) {
        while !self.is_idle() {
            yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;
    use tripoll_sync::thread;

    #[test]
    fn delivers_every_item_then_goes_idle() {
        let stage = Arc::new(DrainStage::<u64>::new());
        let sum = Arc::new(AtomicU64::new(0));
        let (s2, sum2) = (stage.clone(), sum.clone());
        let worker = thread::spawn(move || {
            s2.worker_loop(|v| {
                sum2.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
            });
        });
        for v in 1..=100u64 {
            stage.push(v);
        }
        stage.wait_idle();
        assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 5050);
        stage.shutdown();
        worker.join().unwrap();
        assert!(stage.is_idle());
    }

    #[test]
    fn shutdown_drains_queued_items_before_exit() {
        // Items staged before the worker even starts must survive an
        // immediate shutdown: worker_loop only exits on empty+shutdown.
        let stage = Arc::new(DrainStage::<u64>::new());
        for v in 0..10u64 {
            stage.push(v);
        }
        stage.shutdown();
        let got = Arc::new(AtomicU64::new(0));
        let (s2, g2) = (stage.clone(), got.clone());
        let worker = thread::spawn(move || {
            s2.worker_loop(|_| {
                g2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
        });
        worker.join().unwrap();
        assert_eq!(got.load(std::sync::atomic::Ordering::Relaxed), 10);
        assert!(stage.is_idle());
    }

    #[test]
    fn many_producers_one_worker() {
        let stage = Arc::new(DrainStage::<u64>::new());
        let sum = Arc::new(AtomicU64::new(0));
        let (s2, sum2) = (stage.clone(), sum.clone());
        let worker = thread::spawn(move || {
            s2.worker_loop(|v| {
                sum2.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
            });
        });
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let s = stage.clone();
                thread::spawn(move || {
                    for v in 0..50u64 {
                        s.push(p * 1000 + v);
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        stage.shutdown();
        worker.join().unwrap();
        let expect: u64 = (0..4u64)
            .map(|p| (0..50).map(|v| p * 1000 + v).sum::<u64>())
            .sum();
        assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), expect);
    }
}
