//! SPMD world driver.
//!
//! A [`World`] stands in for `mpirun -n <N>`: it spawns one OS thread per
//! simulated rank, hands each a [`Comm`] endpoint wired to its peers, runs
//! the same program closure on every rank, and joins. The closure is the
//! SPMD `main`; differences in behaviour between ranks come only from
//! `comm.rank()`, exactly as in an MPI program.
//!
//! If any rank panics, the world poisons the shared barrier state so
//! peer ranks abort instead of waiting forever, then re-raises the first
//! panic (by rank order) on the driving thread.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crossbeam::channel::unbounded;

use crate::comm::{Comm, CommConfig, Envelope, Shared};
use crate::stats::CommStats;

/// Results of a world run plus the per-rank communication statistics.
#[derive(Debug)]
pub struct WorldOutput<R> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<R>,
    /// Final per-rank communication counters, indexed by rank.
    pub stats: Vec<CommStats>,
}

impl<R> WorldOutput<R> {
    /// Global communication totals (sum over ranks).
    pub fn total_stats(&self) -> CommStats {
        CommStats::sum(&self.stats)
    }
}

/// A simulated MPI world: a rank count plus communicator configuration.
#[derive(Debug, Clone)]
pub struct World {
    nranks: usize,
    config: CommConfig,
}

impl World {
    /// Creates a world of `nranks` simulated ranks with default config.
    pub fn new(nranks: usize) -> Self {
        assert!(nranks > 0, "a world needs at least one rank");
        World {
            nranks,
            config: CommConfig::default(),
        }
    }

    /// Overrides the communicator configuration.
    pub fn with_config(mut self, config: CommConfig) -> Self {
        self.config = config;
        self
    }

    /// Number of ranks this world will spawn.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Runs `f` as the SPMD program and returns each rank's result.
    pub fn run<F, R>(&self, f: F) -> Vec<R>
    where
        F: Fn(&Comm) -> R + Sync,
        R: Send,
    {
        self.run_full(f).results
    }

    /// Runs `f` and returns results together with per-rank statistics.
    pub fn run_with_stats<F, R>(&self, f: F) -> WorldOutput<R>
    where
        F: Fn(&Comm) -> R + Sync,
        R: Send,
    {
        self.run_full(f)
    }

    fn run_full<F, R>(&self, f: F) -> WorldOutput<R>
    where
        F: Fn(&Comm) -> R + Sync,
        R: Send,
    {
        let nranks = self.nranks;
        let (senders, receivers): (Vec<_>, Vec<_>) =
            (0..nranks).map(|_| unbounded::<Envelope>()).unzip();
        let shared = Arc::new(Shared::new(nranks, senders));
        let config = self.config.clone();
        let f = &f;

        let mut outcomes: Vec<Option<std::thread::Result<R>>> = (0..nranks).map(|_| None).collect();

        std::thread::scope(|scope| {
            let mut joins = Vec::with_capacity(nranks);
            for (rank, rx) in receivers.into_iter().enumerate() {
                let shared = Arc::clone(&shared);
                let config = config.clone();
                joins.push(scope.spawn(move || {
                    let comm = Comm::new(rank, Arc::clone(&shared), config, rx);
                    let result = catch_unwind(AssertUnwindSafe(|| f(&comm)));
                    if result.is_err() {
                        // Wake peers stuck in barriers before unwinding.
                        shared.q.poison();
                    }
                    result
                }));
            }
            for (rank, join) in joins.into_iter().enumerate() {
                // The thread itself never panics (the program panic was
                // caught inside), so join() is infallible in practice.
                outcomes[rank] = Some(join.join().expect("rank thread join"));
            }
        });

        let stats: Vec<CommStats> = shared.counters.iter().map(|c| c.snapshot()).collect();

        let mut results = Vec::with_capacity(nranks);
        let mut panics = Vec::new();
        for outcome in outcomes.into_iter() {
            match outcome.expect("every rank produced an outcome") {
                Ok(r) => results.push(r),
                Err(payload) => panics.push(payload),
            }
        }
        if !panics.is_empty() {
            // Prefer the root-cause panic over secondary "peer panicked"
            // aborts raised by ranks that were poisoned out of a barrier.
            let root = panics.iter().position(|p| !is_poison_panic(p)).unwrap_or(0);
            std::panic::resume_unwind(panics.swap_remove(root));
        }

        debug_assert_eq!(
            shared.q.pending(),
            0,
            "records left unprocessed after world shutdown — missing barrier?"
        );

        WorldOutput { results, stats }
    }
}

fn is_poison_panic(payload: &Box<dyn std::any::Any + Send>) -> bool {
    let msg = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&'static str>().copied());
    msg.is_some_and(|m| m.contains(crate::comm::POISON_MSG))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let out = World::new(1).run(|comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.nranks(), 1);
            comm.barrier();
            7u32
        });
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn results_indexed_by_rank() {
        let out = World::new(5).run(|comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn stats_are_per_rank() {
        // Pin ranks_per_node: the remote counts below assume every peer
        // is on its own node (TRIPOLL_RPN would reclassify rank 1).
        let config = CommConfig {
            ranks_per_node: 1,
            ..Default::default()
        };
        let out = World::new(3).with_config(config).run_with_stats(|comm| {
            let h = comm.register::<u64, _>(|_c, _v| {});
            if comm.rank() == 0 {
                comm.send(1, &h, &42u64);
                comm.send(2, &h, &43u64);
            }
            comm.barrier();
        });
        assert_eq!(out.stats[0].records_remote, 2);
        assert_eq!(out.stats[1].records_remote, 0);
        assert_eq!(out.stats[2].records_remote, 0);
        assert_eq!(out.total_stats().records_remote, 2);
        assert_eq!(out.total_stats().handlers_run, 2);
    }

    #[test]
    #[should_panic(expected = "rank 1 says no")]
    fn panic_propagates_to_driver() {
        World::new(3).run(|comm| {
            if comm.rank() == 1 {
                panic!("rank 1 says no");
            }
            comm.barrier();
        });
    }

    #[test]
    fn worlds_are_reusable() {
        let w = World::new(2);
        for trial in 0..3 {
            let out = w.run(|comm| {
                comm.barrier();
                comm.rank()
            });
            assert_eq!(out, vec![0, 1], "trial {trial}");
        }
    }
}
