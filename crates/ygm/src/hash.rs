//! Fast, deterministic hashing.
//!
//! Two jobs in one module:
//!
//! 1. [`hash64`] — the *deterministic* 64-bit mix used everywhere a hash
//!    must agree across ranks and across runs: vertex ownership
//!    (`Rank(v) = hash64(v) % nranks` for the "random" partitioning of
//!    §4.2) and the tie-break in the degree comparator `<+` of §3. It is a
//!    SplitMix64 finalizer: bijective on `u64`, so distinct vertices never
//!    collide in the tie-break.
//! 2. [`FastHasher`] / [`FastBuildHasher`] — an FxHash-style `Hasher` for
//!    rank-local hash maps on hot paths, where SipHash's HashDoS
//!    resistance is unnecessary (keys are internal vertex ids, not
//!    attacker-controlled input).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Deterministic 64-bit mixing function (SplitMix64 finalizer).
///
/// Bijective: `hash64(a) == hash64(b)` implies `a == b`, which the
/// degree-order tie-break relies on for a total order over vertices.
#[inline]
pub fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Combines two hashes into one (order-sensitive).
#[inline]
pub fn hash_combine(a: u64, b: u64) -> u64 {
    hash64(a ^ b.rotate_left(32))
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style multiply-rotate hasher for rank-local tables.
#[derive(Default, Clone)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // One extra mix so sequential keys spread across all bits.
        hash64(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
            self.add(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// `HashMap` keyed with the fast rank-local hasher.
pub type FastMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// `HashSet` keyed with the fast rank-local hasher.
pub type FastSet<K> = HashSet<K, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn hash64_is_deterministic() {
        assert_eq!(hash64(42), hash64(42));
        assert_ne!(hash64(42), hash64(43));
    }

    #[test]
    fn hash64_bijective_on_small_range() {
        let mut seen = std::collections::HashSet::new();
        for v in 0..100_000u64 {
            assert!(seen.insert(hash64(v)), "collision at {v}");
        }
    }

    #[test]
    fn hash64_spreads_low_bits() {
        // Ownership uses hash64(v) % nranks; sequential ids must not all
        // land on the same rank.
        let nranks = 8;
        let mut counts = vec![0usize; nranks];
        for v in 0..8000u64 {
            counts[(hash64(v) % nranks as u64) as usize] += 1;
        }
        for (rank, &c) in counts.iter().enumerate() {
            assert!(
                (800..1200).contains(&c),
                "rank {rank} owns {c} of 8000 sequential ids"
            );
        }
    }

    #[test]
    fn fast_map_works_with_common_keys() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for i in 0..1000 {
            m.insert(i, (i * 2) as u32);
        }
        for i in 0..1000 {
            assert_eq!(m[&i], (i * 2) as u32);
        }
    }

    #[test]
    fn fast_hasher_string_keys_distinct() {
        let bh = FastBuildHasher::default();
        let h = |s: &str| bh.hash_one(s);
        assert_ne!(h("amazon.example"), h("amazon.example2"));
        assert_ne!(h("ab"), h("ba"));
        assert_ne!(h(""), h("\0"));
    }

    #[test]
    fn hash_combine_order_sensitive() {
        assert_ne!(hash_combine(1, 2), hash_combine(2, 1));
    }
}
