//! The quiescence protocol: the pending-record counter and the
//! generation barrier, extracted into one type so the *shipping*
//! protocol code — not a transliteration — runs under the concurrency
//! model checker (`cargo test -p tripoll-core --test model` with
//! `RUSTFLAGS="--cfg tripoll_model"`; see `docs/CONCURRENCY.md`).
//!
//! Every atomic here goes through the `tripoll-sync` facade, so in a
//! normal build this module compiles to exactly the std atomics it
//! always used, while under `--cfg tripoll_model` each operation is a
//! schedule point with its `Ordering` driving happens-before
//! bookkeeping.
//!
//! ## Protocol (also catalogued in `docs/CONCURRENCY.md` and pinned by
//! `lint/orderings.toml`)
//!
//! * `pending` (**quiescence-pending-counter**): records sent but not
//!   yet fully processed, summed over all ranks, plus engine-deferred
//!   work units. Increments happen *before* the record becomes visible
//!   anywhere; decrements happen *after* the record's handler ran.
//!   AcqRel on the increments/decrements suffices: the Release half of
//!   each decrement orders the record's execution before it, and the
//!   barrier's SeqCst read acquires the whole chain (read-modify-writes
//!   continue a release sequence), so a barrier that observes 0 has
//!   synchronized with every completed record. The model test
//!   `quiescence_relaxed_decrement_races` demonstrates that downgrading
//!   the decrement to Relaxed breaks exactly this edge.
//! * `barrier_count` / `barrier_gen` (**barrier-generation**): the
//!   rendezvous. The last arrival drives the world to quiescence, then
//!   resets the count *before* advancing the generation — ranks can
//!   only re-enter after observing the new generation, so their
//!   increments always land on the reset counter. SeqCst throughout:
//!   the barrier needs a total order between the count, the generation
//!   and the pending counter, and it is far off the hot path.
//! * `poisoned` (**poison-flag**): one-way abort flag; SeqCst store and
//!   loads keep it totally ordered with the barrier spins that must
//!   observe it.

use tripoll_sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use tripoll_sync::thread::yield_now;

/// Shared quiescence state for one world. See the module docs for the
/// protocol; [`Comm`](crate::Comm) methods delegate here.
pub struct Quiescence {
    /// Records sent but not yet fully processed, summed over all
    /// ranks (may transiently exceed the true count, never undershoot).
    pending: AtomicI64,
    /// Ranks currently inside `barrier()`.
    barrier_count: AtomicUsize,
    /// Completed-barrier generation; waiters leave when it advances.
    barrier_gen: AtomicU64,
    /// Set when any rank panics, so peers abort instead of hanging.
    poisoned: AtomicBool,
}

impl Default for Quiescence {
    fn default() -> Self {
        Quiescence::new()
    }
}

impl Quiescence {
    /// Fresh state: nothing pending, generation zero, not poisoned.
    pub const fn new() -> Self {
        Quiescence {
            pending: AtomicI64::new(0),
            barrier_count: AtomicUsize::new(0),
            barrier_gen: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Counts a record as pending. Must be called *before* the record
    /// becomes visible to any receiver, so the barrier can never
    /// observe a transient zero.
    ///
    /// Ordering: AcqRel suffices for the per-record counter. The
    /// quiescence invariant needs (a) each increment to precede the
    /// record's enqueue — program order here, made visible to the
    /// receiver by the channel's release/acquire handoff — and (b)
    /// each decrement to follow the record's execution, which the
    /// Release half of [`Quiescence::record_done`]'s AcqRel gives the
    /// barrier's SeqCst read. No cross-variable total order is
    /// required outside the barrier itself, which keeps its SeqCst
    /// load.
    #[inline]
    pub fn record_sent(&self) {
        self.pending.fetch_add(1, Ordering::AcqRel);
    }

    /// Balances one [`Quiescence::record_sent`] after the record's
    /// handler has run.
    ///
    /// Ordering: AcqRel — the Release half orders the record's
    /// execution (and any sends the handler performed, whose
    /// increments precede this decrement in program order) before the
    /// decrement, so a barrier that reads 0 has synchronized with
    /// every completed record.
    #[inline]
    pub fn record_done(&self) {
        self.pending.fetch_sub(1, Ordering::AcqRel);
    }

    /// [`Quiescence::record_done`] with the ordering deliberately
    /// downgraded to Relaxed — **for the model-checker regression test
    /// only**, which proves the AcqRel above is load-bearing: with
    /// Relaxed the decrement stops publishing the handler's work to
    /// the barrier's read and the checker reports a data race.
    #[cfg(tripoll_model)]
    pub fn record_done_relaxed(&self) {
        self.pending.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current pending count (diagnostics and shutdown asserts).
    pub fn pending(&self) -> i64 {
        self.pending.load(Ordering::SeqCst)
    }

    /// Marks the world poisoned (any rank, on its way out).
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
    }

    /// Whether the world has been poisoned.
    #[inline]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// The quiescence barrier rendezvous. `progress` is the caller's
    /// poll-and-drain step: it must make message progress (dispatch
    /// received records, run drain hooks, flush what they produced),
    /// return whether anything happened, and panic if the world is
    /// poisoned. The last arrival drives `progress` until the world is
    /// quiescent (`pending == 0` with nothing left to poll), then
    /// releases the generation; everyone else keeps making progress
    /// until the generation advances.
    pub fn barrier(&self, nranks: usize, mut progress: impl FnMut() -> bool) {
        let gen = self.barrier_gen.load(Ordering::SeqCst);
        let arrived = self.barrier_count.fetch_add(1, Ordering::SeqCst) + 1;
        if arrived == nranks {
            // Last arrival: drive the world to quiescence, then release.
            loop {
                if progress() {
                    continue;
                }
                if self.pending.load(Ordering::SeqCst) == 0 {
                    break;
                }
                yield_now();
            }
            // Reset count *before* advancing the generation: ranks can
            // only re-enter after observing the new generation, so
            // their increments always land on the reset counter.
            self.barrier_count.store(0, Ordering::SeqCst);
            self.barrier_gen.fetch_add(1, Ordering::SeqCst);
        } else {
            while self.barrier_gen.load(Ordering::SeqCst) == gen {
                if !progress() {
                    yield_now();
                }
            }
        }
    }
}
