//! Communication accounting.
//!
//! The TriPoll evaluation measures *communication volume* (Table 4) and
//! per-phase runtimes (Figs. 4, 7). On a real cluster those numbers come
//! from instrumenting the MPI layer; in this simulated runtime they are
//! first-class: every record, every buffer flush ("MPI message") and every
//! payload byte is counted at the moment it leaves a rank.
//!
//! Counters are split into *remote* (traffic that would cross the
//! network) and *local* (self-sends and — when node-level aggregation
//! models several ranks per compute node — intra-node peers; the runtime
//! still routes these through the message queue but they cost no network
//! traffic). The cost model prices remote traffic only; the Table 4
//! "communication volume" experiment reports totals, since on the
//! paper's 24-rank-per-node clusters rank-to-rank payloads are ordinary
//! MPI volume wherever they land.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live per-rank counters, updated by the owning rank and readable by any
/// thread (the world driver snapshots them between phases).
#[derive(Debug, Default)]
pub struct RankCounters {
    /// Application-level records sent to other ranks.
    pub records_remote: AtomicU64,
    /// Application-level records a rank sent to itself.
    pub records_local: AtomicU64,
    /// Buffer flushes to other ranks — each one would be an MPI message.
    pub envelopes_remote: AtomicU64,
    /// Buffer flushes to self.
    pub envelopes_local: AtomicU64,
    /// Payload bytes shipped to other ranks.
    pub bytes_remote: AtomicU64,
    /// Payload bytes shipped to self.
    pub bytes_local: AtomicU64,
    /// Handler invocations executed on this rank.
    pub handlers_run: AtomicU64,
    /// Application-declared work units (e.g. wedge-check comparisons)
    /// performed on this rank — the compute term of the cost model.
    pub work: AtomicU64,
    /// Quiescence barriers this rank has completed.
    pub barriers: AtomicU64,
    /// Encode operations performed (one per `send`/`send_encoded`, one
    /// per `send_to_many` regardless of destination count). With
    /// fan-out, `records_total - records_encoded` deliveries were served
    /// by memcpy of already-encoded bytes.
    pub records_encoded: AtomicU64,
    /// Bytes produced by the wire encoder. `bytes_total - bytes_encoded`
    /// bytes were delivered without re-encoding (fan-out copies).
    pub bytes_encoded: AtomicU64,
    /// Send-buffer drains whose replacement allocation came from the
    /// recycled-buffer pool instead of the allocator.
    pub pool_reuses: AtomicU64,
    /// Records decoded **in place** from the receive buffer (zero-copy
    /// receive handlers). `handlers_run - records_borrowed` records
    /// were materialized through owned decode.
    pub records_borrowed: AtomicU64,
    /// Record bytes consumed by in-place (borrowed) handlers. A
    /// borrowed handler may still decode individual header fields to
    /// owned values (e.g. string vertex metadata), so this measures the
    /// payload volume that *skipped the owned-message materialization*,
    /// not a strict never-copied guarantee per byte.
    pub bytes_decoded_in_place: AtomicU64,
    /// Record deliveries served by a node-multicast section: the payload
    /// went on the wire once and the gateway fanned it out locally.
    pub records_multicast: AtomicU64,
    /// Wire bytes saved by multicast sections versus appending the
    /// encoded record once per destination rank.
    pub multicast_bytes_saved: AtomicU64,
}

impl RankCounters {
    /// Takes a point-in-time snapshot.
    pub fn snapshot(&self) -> CommStats {
        CommStats {
            records_remote: self.records_remote.load(Ordering::Relaxed),
            records_local: self.records_local.load(Ordering::Relaxed),
            envelopes_remote: self.envelopes_remote.load(Ordering::Relaxed),
            envelopes_local: self.envelopes_local.load(Ordering::Relaxed),
            bytes_remote: self.bytes_remote.load(Ordering::Relaxed),
            bytes_local: self.bytes_local.load(Ordering::Relaxed),
            handlers_run: self.handlers_run.load(Ordering::Relaxed),
            work: self.work.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
            records_encoded: self.records_encoded.load(Ordering::Relaxed),
            bytes_encoded: self.bytes_encoded.load(Ordering::Relaxed),
            pool_reuses: self.pool_reuses.load(Ordering::Relaxed),
            records_borrowed: self.records_borrowed.load(Ordering::Relaxed),
            bytes_decoded_in_place: self.bytes_decoded_in_place.load(Ordering::Relaxed),
            records_multicast: self.records_multicast.load(Ordering::Relaxed),
            multicast_bytes_saved: self.multicast_bytes_saved.load(Ordering::Relaxed),
        }
    }
}

/// Immutable snapshot of one rank's counters (or a sum / delta of such).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Application-level records sent to other ranks.
    pub records_remote: u64,
    /// Application-level records a rank sent to itself.
    pub records_local: u64,
    /// Buffer flushes to other ranks.
    pub envelopes_remote: u64,
    /// Buffer flushes to self.
    pub envelopes_local: u64,
    /// Payload bytes shipped to other ranks.
    pub bytes_remote: u64,
    /// Payload bytes shipped to self.
    pub bytes_local: u64,
    /// Handler invocations executed.
    pub handlers_run: u64,
    /// Application-declared work units performed.
    pub work: u64,
    /// Barriers completed.
    pub barriers: u64,
    /// Encode operations performed (fan-out deliveries excluded).
    pub records_encoded: u64,
    /// Bytes produced by the wire encoder (fan-out copies excluded).
    pub bytes_encoded: u64,
    /// Buffer drains served by the recycled-allocation pool.
    pub pool_reuses: u64,
    /// Records decoded in place from the receive buffer.
    pub records_borrowed: u64,
    /// Record bytes consumed by in-place (borrowed) handlers.
    pub bytes_decoded_in_place: u64,
    /// Record deliveries served by a node-multicast section.
    pub records_multicast: u64,
    /// Wire bytes saved by multicast sections versus per-rank copies.
    pub multicast_bytes_saved: u64,
}

impl CommStats {
    /// Total records regardless of destination.
    pub fn records_total(&self) -> u64 {
        self.records_remote + self.records_local
    }

    /// Total payload bytes regardless of destination.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_remote + self.bytes_local
    }

    /// Component-wise difference `self - earlier`; saturates at zero so a
    /// stale snapshot can never underflow.
    pub fn delta(&self, earlier: &CommStats) -> CommStats {
        CommStats {
            records_remote: self.records_remote.saturating_sub(earlier.records_remote),
            records_local: self.records_local.saturating_sub(earlier.records_local),
            envelopes_remote: self
                .envelopes_remote
                .saturating_sub(earlier.envelopes_remote),
            envelopes_local: self.envelopes_local.saturating_sub(earlier.envelopes_local),
            bytes_remote: self.bytes_remote.saturating_sub(earlier.bytes_remote),
            bytes_local: self.bytes_local.saturating_sub(earlier.bytes_local),
            handlers_run: self.handlers_run.saturating_sub(earlier.handlers_run),
            work: self.work.saturating_sub(earlier.work),
            barriers: self.barriers.saturating_sub(earlier.barriers),
            records_encoded: self.records_encoded.saturating_sub(earlier.records_encoded),
            bytes_encoded: self.bytes_encoded.saturating_sub(earlier.bytes_encoded),
            pool_reuses: self.pool_reuses.saturating_sub(earlier.pool_reuses),
            records_borrowed: self
                .records_borrowed
                .saturating_sub(earlier.records_borrowed),
            bytes_decoded_in_place: self
                .bytes_decoded_in_place
                .saturating_sub(earlier.bytes_decoded_in_place),
            records_multicast: self
                .records_multicast
                .saturating_sub(earlier.records_multicast),
            multicast_bytes_saved: self
                .multicast_bytes_saved
                .saturating_sub(earlier.multicast_bytes_saved),
        }
    }

    /// Component-wise sum, for aggregating over ranks.
    pub fn merge(&self, other: &CommStats) -> CommStats {
        CommStats {
            records_remote: self.records_remote + other.records_remote,
            records_local: self.records_local + other.records_local,
            envelopes_remote: self.envelopes_remote + other.envelopes_remote,
            envelopes_local: self.envelopes_local + other.envelopes_local,
            bytes_remote: self.bytes_remote + other.bytes_remote,
            bytes_local: self.bytes_local + other.bytes_local,
            handlers_run: self.handlers_run + other.handlers_run,
            work: self.work + other.work,
            barriers: self.barriers + other.barriers,
            records_encoded: self.records_encoded + other.records_encoded,
            bytes_encoded: self.bytes_encoded + other.bytes_encoded,
            pool_reuses: self.pool_reuses + other.pool_reuses,
            records_borrowed: self.records_borrowed + other.records_borrowed,
            bytes_decoded_in_place: self.bytes_decoded_in_place + other.bytes_decoded_in_place,
            records_multicast: self.records_multicast + other.records_multicast,
            multicast_bytes_saved: self.multicast_bytes_saved + other.multicast_bytes_saved,
        }
    }

    /// Sums a collection of per-rank snapshots into a global total.
    pub fn sum<'a, I: IntoIterator<Item = &'a CommStats>>(stats: I) -> CommStats {
        stats
            .into_iter()
            .fold(CommStats::default(), |acc, s| acc.merge(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let c = RankCounters::default();
        c.records_remote.fetch_add(3, Ordering::Relaxed);
        c.bytes_remote.fetch_add(100, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s.records_remote, 3);
        assert_eq!(s.bytes_remote, 100);
        assert_eq!(s.records_local, 0);
    }

    #[test]
    fn delta_and_merge() {
        let a = CommStats {
            records_remote: 10,
            bytes_remote: 100,
            ..Default::default()
        };
        let b = CommStats {
            records_remote: 25,
            bytes_remote: 260,
            handlers_run: 5,
            ..Default::default()
        };
        let d = b.delta(&a);
        assert_eq!(d.records_remote, 15);
        assert_eq!(d.bytes_remote, 160);
        assert_eq!(d.handlers_run, 5);

        let m = a.merge(&b);
        assert_eq!(m.records_remote, 35);
        assert_eq!(m.bytes_remote, 360);
    }

    #[test]
    fn delta_saturates() {
        let a = CommStats {
            records_remote: 10,
            ..Default::default()
        };
        let b = CommStats::default();
        assert_eq!(b.delta(&a).records_remote, 0);
    }

    #[test]
    fn sum_over_ranks() {
        let per_rank = vec![
            CommStats {
                bytes_remote: 1,
                ..Default::default()
            },
            CommStats {
                bytes_remote: 2,
                ..Default::default()
            },
            CommStats {
                bytes_remote: 3,
                ..Default::default()
            },
        ];
        assert_eq!(CommStats::sum(&per_rank).bytes_remote, 6);
    }

    #[test]
    fn totals() {
        let s = CommStats {
            records_remote: 2,
            records_local: 3,
            bytes_remote: 10,
            bytes_local: 20,
            ..Default::default()
        };
        assert_eq!(s.records_total(), 5);
        assert_eq!(s.bytes_total(), 30);
    }
}
